//! The ratcheting baseline: committed per-file violation counts.
//!
//! `gx-lint.baseline` freezes the repo's *known* violations per
//! `(rule, file)`. `--check` then enforces a one-way ratchet:
//!
//! - **count above baseline** → fail: new violations must be fixed or
//!   explicitly `allow`-annotated with a justification;
//! - **count below baseline** → *also* fail ("stale baseline"): a fix
//!   must shrink the committed file (via `--update-baseline`) in the
//!   same change, so the ratchet can never silently slacken back;
//! - equal everywhere → pass.
//!
//! The file format is one `rule count path` line per entry, sorted, so
//! diffs review like code.

use crate::engine::{Finding, Rule};
use std::collections::BTreeMap;

/// Violation counts keyed by `(rule, workspace-relative path)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    pub counts: BTreeMap<(Rule, String), usize>,
}

/// One baseline/current divergence, in ratchet terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Drift {
    /// More findings than baselined: names the offending file+rule and
    /// how many above the allowance.
    New { rule: Rule, path: String, baseline: usize, found: usize },
    /// Fewer findings than baselined: the committed file is stale.
    Stale { rule: Rule, path: String, baseline: usize, found: usize },
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Drift::New { rule, path, baseline, found } => write!(
                f,
                "{path}: {found} `{rule}` finding(s), baseline allows {baseline} — fix the new \
                 violation(s) or add a justified `// gx-lint: allow({rule})`"
            ),
            Drift::Stale { rule, path, baseline, found } => write!(
                f,
                "{path}: {found} `{rule}` finding(s), baseline expects {baseline} — violations \
                 were fixed; shrink the baseline with `cargo run -p gx-lint -- --update-baseline`"
            ),
        }
    }
}

impl Baseline {
    /// Builds a baseline from a finding set (what `--update-baseline`
    /// commits).
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<(Rule, String), usize> = BTreeMap::new();
        for f in findings {
            *counts.entry((f.rule, f.path.clone())).or_default() += 1;
        }
        Baseline { counts }
    }

    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Compares current findings against this committed baseline.
    /// Empty result = the ratchet holds.
    pub fn drift(&self, current: &Baseline) -> Vec<Drift> {
        let mut out = Vec::new();
        let keys: std::collections::BTreeSet<_> =
            self.counts.keys().chain(current.counts.keys()).cloned().collect();
        for key in keys {
            let base = self.counts.get(&key).copied().unwrap_or(0);
            let found = current.counts.get(&key).copied().unwrap_or(0);
            let (rule, path) = (key.0, key.1);
            if found > base {
                out.push(Drift::New { rule, path, baseline: base, found });
            } else if found < base {
                out.push(Drift::Stale { rule, path, baseline: base, found });
            }
        }
        out
    }

    /// Serializes to the committed file format (sorted, commented).
    pub fn render(&self, header: &str) -> String {
        let mut s = String::new();
        for line in header.lines() {
            s.push_str("# ");
            s.push_str(line);
            s.push('\n');
        }
        for ((rule, path), count) in &self.counts {
            if *count > 0 {
                s.push_str(&format!("{rule} {count} {path}\n"));
            }
        }
        s
    }

    /// Parses the committed file format. Unknown rules or malformed
    /// lines are hard errors: a corrupt baseline must not weaken the
    /// ratchet.
    pub fn parse(content: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        for (idx, raw) in content.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, ' ');
            let (Some(rule_id), Some(count_s), Some(path)) =
                (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!("baseline line {}: expected `rule count path`", idx + 1));
            };
            let Some(rule) = Rule::from_id(rule_id) else {
                return Err(format!("baseline line {}: unknown rule `{rule_id}`", idx + 1));
            };
            let Ok(count) = count_s.parse::<usize>() else {
                return Err(format!("baseline line {}: bad count `{count_s}`", idx + 1));
            };
            if counts.insert((rule, path.to_string()), count).is_some() {
                return Err(format!("baseline line {}: duplicate entry", idx + 1));
            }
        }
        Ok(Baseline { counts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, path: &str, line: u32) -> Finding {
        Finding { rule, path: path.into(), line, col: 1, message: "m".into() }
    }

    fn sample() -> Baseline {
        Baseline::from_findings(&[
            finding(Rule::PanicSurface, "a.rs", 1),
            finding(Rule::PanicSurface, "a.rs", 2),
            finding(Rule::Determinism, "b.rs", 3),
        ])
    }

    #[test]
    fn round_trip() {
        let b = sample();
        let text = b.render("hello\nworld");
        assert!(text.starts_with("# hello\n# world\n"));
        let parsed = Baseline::parse(&text).expect("parses");
        assert_eq!(parsed, b);
        assert_eq!(parsed.total(), 3);
    }

    #[test]
    fn both_drift_directions_fail() {
        let committed = sample();

        // One *new* finding in a.rs → New drift.
        let mut more = committed.clone();
        *more.counts.get_mut(&(Rule::PanicSurface, "a.rs".into())).expect("entry") = 3;
        let d = committed.drift(&more);
        assert_eq!(d.len(), 1);
        assert!(matches!(&d[0], Drift::New { found: 3, baseline: 2, .. }), "{d:?}");

        // One finding *fixed* in a.rs → Stale drift (must re-ratchet).
        let mut fewer = committed.clone();
        *fewer.counts.get_mut(&(Rule::PanicSurface, "a.rs".into())).expect("entry") = 1;
        let d = committed.drift(&fewer);
        assert_eq!(d.len(), 1);
        assert!(matches!(&d[0], Drift::Stale { found: 1, baseline: 2, .. }), "{d:?}");

        // Equal → holds.
        assert!(committed.drift(&committed.clone()).is_empty());
    }

    #[test]
    fn files_appearing_and_disappearing() {
        let committed = sample();
        // A violation in a file the baseline has never seen.
        let mut current = committed.clone();
        current.counts.insert((Rule::NoAlloc, "new.rs".into()), 1);
        assert!(matches!(committed.drift(&current)[..], [Drift::New { .. }]));

        // A baselined file goes fully clean.
        let mut current = committed.clone();
        current.counts.remove(&(Rule::Determinism, "b.rs".into()));
        assert!(matches!(committed.drift(&current)[..], [Drift::Stale { .. }]));
    }

    #[test]
    fn corrupt_baselines_rejected() {
        assert!(Baseline::parse("panic_surface two a.rs\n").is_err());
        assert!(Baseline::parse("no_such_rule 1 a.rs\n").is_err());
        assert!(Baseline::parse("panic_surface 1\n").is_err());
        assert!(Baseline::parse("panic_surface 1 a.rs\npanic_surface 2 a.rs\n").is_err());
    }
}
