//! The rule engine: four lexical rule families over [`crate::lexer`]
//! token streams, with test-code skipping and `// gx-lint: allow(…)`
//! suppression.
//!
//! # Rules
//!
//! | id | protects | fires on |
//! |----|----------|----------|
//! | `determinism` | bit-identical estimates/checkpoints | `HashMap`/`HashSet`/`Instant`/`SystemTime`/`available_parallelism`/`RandomState`/`DefaultHasher` mentioned in a manifest-declared deterministic path |
//! | `panic_surface` | typed-error contract | `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` in non-test library code; direct indexing in `index`-manifested paths |
//! | `lock_discipline` | deadlock freedom in `gx-service` | `.lock()`/`locked(…)` acquiring against the declared order, re-acquiring a held lock, or locking an undeclared name |
//! | `no_alloc` | hot-loop zero-allocation contract | `Vec::new`, `vec!`, `Box::new`, `format!`, `.collect(`, `.to_vec(`, `.to_string(`, `.to_owned(`, `with_capacity` inside a `// gx-lint: no_alloc`-marked function |
//!
//! A fifth internal id, `directive`, reports malformed `gx-lint:`
//! comments so a typo cannot silently disable a rule.
//!
//! # What "test code" means
//!
//! Items annotated `#[test]`, `#[cfg(test)]` (or any `cfg` mentioning
//! `test`), and everything after a file-level `#![cfg(test)]` are
//! skipped for every rule. Files under `tests/`, `benches/`,
//! `examples/`, or `fixtures/` directories never reach the engine
//! (excluded by the manifest walk).
//!
//! # Suppression
//!
//! `// gx-lint: allow(rule)` suppresses `rule` findings on its own line
//! and the next line — so both trailing and preceding-line comments
//! work. Justify every allow after ` -- `; the comment is the audit
//! trail.

use crate::lexer::{lex, Directive, DirectiveKind, Tok, TokKind};
use crate::manifest::{LockManifest, Manifest};
use std::collections::{BTreeMap, BTreeSet};

/// Rule families. `Directive` is internal hygiene (malformed control
/// comments), not a contract rule, but participates in check/baseline
/// like any other so it cannot rot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    Determinism,
    PanicSurface,
    LockDiscipline,
    NoAlloc,
    Directive,
}

impl Rule {
    /// The stable id used in allow comments and the baseline file.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::PanicSurface => "panic_surface",
            Rule::LockDiscipline => "lock_discipline",
            Rule::NoAlloc => "no_alloc",
            Rule::Directive => "directive",
        }
    }

    pub fn from_id(id: &str) -> Option<Rule> {
        Some(match id {
            "determinism" => Rule::Determinism,
            "panic_surface" => Rule::PanicSurface,
            "lock_discipline" => Rule::LockDiscipline,
            "no_alloc" => Rule::NoAlloc,
            "directive" => Rule::Directive,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// One violation, pointing at a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}: {}: {}", self.path, self.line, self.col, self.rule, self.message)
    }
}

/// Lints one file's source text. `rel_path` scopes the path-keyed
/// rules (determinism/index/locks) via the manifests.
pub fn lint_source(
    rel_path: &str,
    src: &str,
    manifest: &Manifest,
    locks: &LockManifest,
) -> Vec<Finding> {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let skip = SkipMap::build(toks);
    let fns = fn_spans(toks, &lexed.directives, &skip);
    let mut findings = Vec::new();

    directive_hygiene(rel_path, &lexed.directives, &mut findings);
    if manifest.is_deterministic(rel_path) {
        determinism_rule(rel_path, toks, &skip, &mut findings);
    }
    panic_rule(rel_path, toks, &skip, manifest.is_index_checked(rel_path), &mut findings);
    no_alloc_rule(rel_path, toks, &fns, &mut findings);
    if locks.applies_to(rel_path) {
        lock_rule(rel_path, toks, &fns, locks, &mut findings);
    }

    apply_allows(&lexed.directives, &mut findings);
    findings.sort_by_key(|a| (a.line, a.col, a.rule));
    findings
}

/// Per-token skip/attr classification for one file.
struct SkipMap {
    /// `skip[i]` — token `i` is inside test-gated code.
    skip: Vec<bool>,
    /// `attr[i]` — token `i` is inside a `#[…]` / `#![…]` attribute.
    attr: Vec<bool>,
}

impl SkipMap {
    fn is_code(&self, i: usize) -> bool {
        !self.skip[i] && !self.attr[i]
    }

    /// Marks attribute token ranges and the bodies of test-gated items.
    fn build(toks: &[Tok]) -> SkipMap {
        let n = toks.len();
        let mut skip = vec![false; n];
        let mut attr = vec![false; n];
        let mut i = 0;
        while i < n {
            if skip[i] {
                i += 1;
                continue;
            }
            if toks[i].kind == TokKind::Punct && toks[i].text == "#" {
                let mut j = i + 1;
                let inner = j < n && toks[j].kind == TokKind::Punct && toks[j].text == "!";
                if inner {
                    j += 1;
                }
                if j < n && toks[j].kind == TokKind::Punct && toks[j].text == "[" {
                    let close = match_bracket(toks, j);
                    let is_test = toks[j..=close.min(n - 1)]
                        .iter()
                        .any(|t| t.kind == TokKind::Ident && t.text == "test");
                    for slot in attr.iter_mut().take((close + 1).min(n)).skip(i) {
                        *slot = true;
                    }
                    if is_test {
                        if inner {
                            // #![cfg(test)] gates the rest of the file.
                            for slot in skip.iter_mut().take(n).skip(close + 1) {
                                *slot = true;
                            }
                        } else {
                            let end = item_end(toks, close + 1);
                            for slot in skip.iter_mut().take(end.min(n)).skip(close + 1) {
                                *slot = true;
                            }
                        }
                    }
                    i = close + 1;
                    continue;
                }
            }
            i += 1;
        }
        SkipMap { skip, attr }
    }
}

/// Index of the `]`/`)`/`}` matching the opener at `open` (which must
/// be an opening punct). Returns the last index if unterminated.
fn match_bracket(toks: &[Tok], open: usize) -> usize {
    let (o, c) = match toks[open].text.as_str() {
        "[" => ('[', ']'),
        "(" => ('(', ')'),
        "{" => ('{', '}'),
        _ => return open,
    };
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            let ch = t.text.chars().next();
            if ch == Some(o) {
                depth += 1;
            } else if ch == Some(c) {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// End (exclusive) of the item starting at `start`: after the matching
/// `}` of its first top-level `{`, or after the first top-level `;`.
/// Skips any further attributes between `start` and the item proper.
fn item_end(toks: &[Tok], start: usize) -> usize {
    let n = toks.len();
    let mut i = start;
    // Skip stacked attributes (e.g. `#[cfg(test)] #[allow(…)] mod t`).
    while i < n && toks[i].kind == TokKind::Punct && toks[i].text == "#" {
        let mut j = i + 1;
        if j < n && toks[j].kind == TokKind::Punct && toks[j].text == "!" {
            j += 1;
        }
        if j < n && toks[j].kind == TokKind::Punct && toks[j].text == "[" {
            i = match_bracket(toks, j) + 1;
        } else {
            break;
        }
    }
    let mut paren = 0isize;
    while i < n {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                ";" if paren == 0 => return i + 1,
                "{" if paren == 0 => return match_bracket(toks, i) + 1,
                _ => {}
            }
        }
        i += 1;
    }
    n
}

/// One function item: name, body token range, and whether a
/// `// gx-lint: no_alloc` marker precedes it.
struct FnSpan {
    name: String,
    body: std::ops::Range<usize>,
    no_alloc: bool,
    /// Whether the fn sits inside test-gated code (rules skip it).
    skipped: bool,
    /// Line of the `fn` keyword (for marker-orphan diagnostics).
    line: u32,
}

/// Finds every function item (not closures) with its body range.
/// `no_alloc` markers attach to the next `fn` token after them.
fn fn_spans(toks: &[Tok], directives: &[Directive], skip: &SkipMap) -> Vec<FnSpan> {
    let mut marker_lines: Vec<u32> =
        directives.iter().filter(|d| d.kind == DirectiveKind::NoAlloc).map(|d| d.line).collect();
    marker_lines.sort_unstable();
    let mut spans = Vec::new();
    let n = toks.len();
    let mut i = 0;
    while i < n {
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" && !skip.attr[i] {
            let fn_line = toks[i].line;
            let name = toks
                .get(i + 1)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            // Body = first `{` at bracket depth 0 after the signature.
            // `;`-terminated declarations (trait methods) have no body.
            let mut depth = 0isize;
            let mut j = i + 1;
            let mut body = None;
            while j < n {
                let t = &toks[j];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        ";" if depth == 0 => break,
                        "{" if depth == 0 => {
                            body = Some((j, match_bracket(toks, j)));
                            break;
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
            if let Some((open, close)) = body {
                // A marker claims this fn if it sits on an earlier line
                // than the `fn` keyword and no other fn consumed it.
                let marked = match marker_lines.iter().position(|&m| m < fn_line) {
                    Some(pos) => {
                        marker_lines.remove(pos);
                        true
                    }
                    None => false,
                };
                let skipped = skip.skip[i];
                spans.push(FnSpan {
                    name,
                    body: open + 1..close,
                    no_alloc: marked && !skipped,
                    skipped,
                    line: fn_line,
                });
                // Nested fns (in tests, mostly) still get their own
                // span: continue scanning *inside* the body too.
                i += 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    spans
}

/// Reports malformed `gx-lint:` comments.
fn directive_hygiene(path: &str, directives: &[Directive], out: &mut Vec<Finding>) {
    for d in directives {
        match &d.kind {
            DirectiveKind::Unknown(body) => out.push(Finding {
                rule: Rule::Directive,
                path: path.to_string(),
                line: d.line,
                col: 1,
                message: format!(
                    "unrecognized gx-lint directive `{body}` — use `allow(rule, …)` or `no_alloc`"
                ),
            }),
            // An allow naming a nonexistent rule would silently
            // suppress nothing forever — flag the typo instead.
            DirectiveKind::Allow(rules) => {
                for r in rules.iter().filter(|r| Rule::from_id(r).is_none()) {
                    out.push(Finding {
                        rule: Rule::Directive,
                        path: path.to_string(),
                        line: d.line,
                        col: 1,
                        message: format!("allow names unknown rule `{r}`"),
                    });
                }
            }
            DirectiveKind::NoAlloc => {}
        }
    }
}

/// Identifiers whose mere mention in a deterministic module is a
/// violation. Banning the *types* (not just iteration) is deliberate:
/// membership-only use needs an `allow` with a written justification.
const NONDETERMINISTIC: &[(&str, &str)] = &[
    ("HashMap", "iteration order is randomized per process"),
    ("HashSet", "iteration order is randomized per process"),
    ("Instant", "wall-clock reads differ across runs"),
    ("SystemTime", "wall-clock reads differ across runs"),
    ("available_parallelism", "host-dependent thread counts change execution shape"),
    ("RandomState", "per-process random hasher seed"),
    ("DefaultHasher", "hasher output is not stable across releases"),
];

fn determinism_rule(path: &str, toks: &[Tok], skip: &SkipMap, out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !skip.is_code(i) {
            continue;
        }
        if let Some((name, why)) = NONDETERMINISTIC.iter().find(|(n, _)| *n == t.text) {
            out.push(Finding {
                rule: Rule::Determinism,
                path: path.to_string(),
                line: t.line,
                col: t.col,
                message: format!("`{name}` in a deterministic module: {why}"),
            });
        }
    }
}

/// Macros that abort: `name!` in library code is panic surface.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn panic_rule(
    path: &str,
    toks: &[Tok],
    skip: &SkipMap,
    index_checked: bool,
    out: &mut Vec<Finding>,
) {
    let mut push = |rule: Rule, t: &Tok, message: String| {
        out.push(Finding { rule, path: path.to_string(), line: t.line, col: t.col, message });
    };
    for (i, t) in toks.iter().enumerate() {
        if !skip.is_code(i) {
            continue;
        }
        match t.kind {
            TokKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                let after_dot =
                    i > 0 && toks[i - 1].kind == TokKind::Punct && toks[i - 1].text == ".";
                let called =
                    toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct && n.text == "(");
                if after_dot && called {
                    push(
                        Rule::PanicSurface,
                        t,
                        format!(
                            "`.{}()` in library code — return a typed `GxError` (or prove \
                             infallibility without a panicking call)",
                            t.text
                        ),
                    );
                }
            }
            TokKind::Ident if PANIC_MACROS.contains(&t.text.as_str()) => {
                let bang =
                    toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct && n.text == "!");
                if bang {
                    push(Rule::PanicSurface, t, format!("`{}!` in library code", t.text));
                }
            }
            TokKind::Punct if index_checked && t.text == "[" => {
                // Indexing expression: `expr[…]` — previous token ends
                // an expression. Type/array-literal/attr positions have
                // non-expression predecessors and are not flagged.
                let is_index = i > 0
                    && match &toks[i - 1] {
                        p if p.kind == TokKind::Ident => !is_keyword_nonexpr(&p.text),
                        p if p.kind == TokKind::Punct => p.text == ")" || p.text == "]",
                        p => p.kind == TokKind::Str,
                    };
                if is_index {
                    push(
                        Rule::PanicSurface,
                        t,
                        "direct indexing in library code — use `.get(…)` and surface a typed \
                         error"
                            .into(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Keywords that may directly precede `[` without forming an indexing
/// expression (`impl [T; N]`-style positions, `mut` bindings, etc.).
fn is_keyword_nonexpr(text: &str) -> bool {
    matches!(
        text,
        "mut"
            | "ref"
            | "in"
            | "as"
            | "dyn"
            | "impl"
            | "where"
            | "return"
            | "break"
            | "const"
            | "let"
            | "else"
            | "match"
            | "if"
    )
}

/// Allocation constructors/macros/methods banned inside `no_alloc` fns.
const ALLOC_TYPES: &[&str] = &[
    "Vec", "Box", "String", "VecDeque", "BTreeMap", "BTreeSet", "HashMap", "HashSet", "Rc", "Arc",
];
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];
const ALLOC_MACROS: &[&str] = &["vec", "format"];
const ALLOC_METHODS: &[&str] = &["collect", "to_vec", "to_string", "to_owned"];

fn no_alloc_rule(path: &str, toks: &[Tok], fns: &[FnSpan], out: &mut Vec<Finding>) {
    for f in fns.iter().filter(|f| f.no_alloc) {
        for i in f.body.clone() {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let next_is =
                |s: &str| toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct && n.text == s);
            let prev_is_dot =
                i > 0 && toks[i - 1].kind == TokKind::Punct && toks[i - 1].text == ".";
            let hit = if ALLOC_MACROS.contains(&t.text.as_str()) && next_is("!") {
                Some(format!("`{}!` allocates", t.text))
            } else if ALLOC_TYPES.contains(&t.text.as_str())
                && next_is(":")
                && toks.get(i + 2).is_some_and(|c| c.kind == TokKind::Punct && c.text == ":")
                && toks.get(i + 3).is_some_and(|c| {
                    c.kind == TokKind::Ident && ALLOC_CTORS.contains(&c.text.as_str())
                })
            {
                Some(format!("`{}::{}` allocates", t.text, toks[i + 3].text))
            } else if ALLOC_METHODS.contains(&t.text.as_str()) && prev_is_dot && next_is("(") {
                Some(format!("`.{}()` allocates", t.text))
            } else {
                None
            };
            if let Some(what) = hit {
                out.push(Finding {
                    rule: Rule::NoAlloc,
                    path: path.to_string(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "{what} inside `{}` (marked `gx-lint: no_alloc` at line {})",
                        f.name, f.line
                    ),
                });
            }
        }
    }
}

/// One lock the lexical checker currently considers held.
struct Held {
    name: String,
    rank: usize,
    /// Brace depth at acquisition (guards die when depth drops below).
    depth: usize,
    /// `let`-bound variable, if any (released early by `drop(var)`).
    var: Option<String>,
    /// Un-bound guard temporaries die at the next `;` at their depth.
    temp: bool,
    line: u32,
}

/// Lexical nested-`.lock()` discipline inside each function body.
///
/// Acquisitions are `recv.lock(` chains and `locked(&recv)` calls (the
/// poison-recovery helper); `wait_unpoisoned(cv, guard)`-style Condvar
/// waits are *not* counted — a wait re-acquires the lock it released.
/// The receiver name is the last identifier of the receiver expression
/// (`self.state.lock()` and `locked(&shared.state)` both name
/// `state`), ranked against the manifest order.
fn lock_rule(
    path: &str,
    toks: &[Tok],
    fns: &[FnSpan],
    locks: &LockManifest,
    out: &mut Vec<Finding>,
) {
    for f in fns.iter().filter(|f| !f.skipped) {
        let mut held: Vec<Held> = Vec::new();
        let mut depth = 0usize;
        let mut stmt_start = f.body.start;
        for i in f.body.clone() {
            let t = &toks[i];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => {
                        depth += 1;
                        stmt_start = i + 1;
                    }
                    "}" => {
                        depth = depth.saturating_sub(1);
                        held.retain(|h| h.depth <= depth);
                        stmt_start = i + 1;
                    }
                    ";" => {
                        held.retain(|h| !(h.temp && h.depth == depth));
                        stmt_start = i + 1;
                    }
                    _ => {}
                }
                continue;
            }
            if t.kind != TokKind::Ident {
                continue;
            }
            // drop(guard) releases a named guard early.
            if t.text == "drop" && toks.get(i + 1).is_some_and(|n| n.text == "(") {
                if let Some(v) = toks.get(i + 2).filter(|v| v.kind == TokKind::Ident) {
                    held.retain(|h| h.var.as_deref() != Some(v.text.as_str()));
                }
                continue;
            }
            // Acquisition: `recv.lock(` or the poison-recovery helper
            // `locked(&recv)`.
            let method_call = t.text == "lock"
                && i > 0
                && toks[i - 1].kind == TokKind::Punct
                && toks[i - 1].text == "."
                && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct && n.text == "(");
            let helper_call = t.text == "locked"
                && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct && n.text == "(");
            let name = if method_call {
                match toks.get(i.wrapping_sub(2)).filter(|p| p.kind == TokKind::Ident) {
                    Some(name_tok) => name_tok.text.clone(),
                    None => continue,
                }
            } else if helper_call {
                // Last identifier of the argument expression names the
                // lock: `locked(&shared.state)` → `state`.
                let close = match_bracket(toks, i + 1);
                match toks[i + 2..close].iter().rev().find(|p| p.kind == TokKind::Ident) {
                    Some(name_tok) => name_tok.text.clone(),
                    None => continue,
                }
            } else {
                continue;
            };
            let Some(rank) = locks.rank(&name) else {
                out.push(Finding {
                    rule: Rule::LockDiscipline,
                    path: path.to_string(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "lock on undeclared name `{name}` — add it to gx-lint.locks at its \
                         place in the acquisition order"
                    ),
                });
                continue;
            };
            for h in &held {
                let problem = if h.name == name {
                    format!("re-acquires `{name}` already held (line {})", h.line)
                } else if h.rank >= rank {
                    format!(
                        "acquires `{name}` while holding `{}` (line {}) — declared order is {}",
                        h.name,
                        h.line,
                        locks.order.join(" → ")
                    )
                } else {
                    continue;
                };
                out.push(Finding {
                    rule: Rule::LockDiscipline,
                    path: path.to_string(),
                    line: t.line,
                    col: t.col,
                    message: problem,
                });
            }
            // Binding: statement starting `let [mut] v =` holds to
            // block end; anything else is a temporary (dies at `;`).
            let mut s = stmt_start;
            while s < i && toks[s].kind == TokKind::Punct && toks[s].text == "#" {
                // Skip stmt-level attributes.
                if toks.get(s + 1).is_some_and(|n| n.text == "[") {
                    s = match_bracket(toks, s + 1) + 1;
                } else {
                    break;
                }
            }
            let (var, temp) = if toks.get(s).is_some_and(|t| t.text == "let") {
                let mut v = s + 1;
                if toks.get(v).is_some_and(|t| t.text == "mut") {
                    v += 1;
                }
                match toks.get(v) {
                    Some(vt) if vt.kind == TokKind::Ident => (Some(vt.text.clone()), false),
                    _ => (None, false),
                }
            } else {
                (None, true)
            };
            held.push(Held { name, rank, depth, var, temp, line: t.line });
        }
    }
}

/// Drops findings suppressed by an `allow` on their line or the line
/// above.
fn apply_allows(directives: &[Directive], findings: &mut Vec<Finding>) {
    let mut allowed: BTreeMap<u32, BTreeSet<&str>> = BTreeMap::new();
    for d in directives {
        if let DirectiveKind::Allow(rules) = &d.kind {
            let entry = allowed.entry(d.line).or_default();
            for r in rules {
                entry.insert(r.as_str());
            }
        }
    }
    if allowed.is_empty() {
        return;
    }
    findings.retain(|f| {
        let hit = |line: u32| allowed.get(&line).is_some_and(|rules| rules.contains(f.rule.id()));
        !(hit(f.line) || (f.line > 1 && hit(f.line - 1)))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{parse_locks, parse_manifest};
    use std::path::Path;

    fn det_manifest() -> Manifest {
        parse_manifest("deterministic det\nindex idx\n", Path::new("m")).expect("manifest")
    }

    fn svc_locks() -> LockManifest {
        parse_locks("scope svc\norder state threads result inner\n", Path::new("l")).expect("locks")
    }

    fn run(path: &str, src: &str) -> Vec<Finding> {
        lint_source(path, src, &det_manifest(), &svc_locks())
    }

    fn rules_of(f: &[Finding]) -> Vec<Rule> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn determinism_only_in_declared_paths() {
        let src = "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }\n";
        assert_eq!(rules_of(&run("det/a.rs", src)), vec![Rule::Determinism, Rule::Determinism]);
        assert!(run("other/a.rs", src).iter().all(|f| f.rule != Rule::Determinism));
    }

    #[test]
    fn test_code_is_skipped_everywhere() {
        let src = "#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n  fn g() { x.unwrap(); panic!(); }\n}\nfn h() { y.expect(\"m\"); }\n";
        let f = run("det/a.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::PanicSurface);
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn test_attribute_skips_single_fn() {
        let src = "#[test]\nfn t() { a.unwrap(); }\nfn real() { b.unwrap(); }\n";
        let f = run("x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn inner_cfg_test_gates_whole_file() {
        let src = "#![cfg(test)]\nfn t() { a.unwrap(); panic!(); }\n";
        assert!(run("x.rs", src).is_empty());
    }

    #[test]
    fn panic_macros_and_calls() {
        let src =
            "fn f() { panic!(\"x\"); unreachable!(); todo!(); q.unwrap(); r.expect(\"m\"); }\n";
        assert_eq!(run("x.rs", src).len(), 5);
    }

    #[test]
    fn panic_names_without_bang_or_dot_are_clean() {
        // std::panic::catch_unwind and a fn named `expect_value` must
        // not trip the rule; nor `unwrap` without a call.
        let src = "fn f() { std::panic::catch_unwind(g); expect_value(); let unwrap = 1; }\n";
        assert!(run("x.rs", src).is_empty());
    }

    #[test]
    fn should_panic_attr_is_not_a_finding() {
        let src = "#[should_panic(expected = \"boom\")]\nfn t() {}\nfn f() {}\n";
        // `should_panic` contains no standalone `test` ident… but such
        // attrs appear only on tests in practice; what matters here is
        // that the attr contents are not scanned as code.
        assert!(run("x.rs", src).is_empty());
    }

    #[test]
    fn indexing_only_in_index_paths() {
        let src =
            "fn f(a: &[u32], i: usize) -> u32 { let t: [u8; 4] = [0; 4]; a[i] + t[0] as u32 }\n";
        let f = run("idx/a.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(run("other/a.rs", src).is_empty());
    }

    #[test]
    fn slice_patterns_are_not_indexing() {
        let src = "fn f(a: [u8; 1]) -> u8 { let [b] = a; b }\n";
        assert!(run("idx/a.rs", src).is_empty());
    }

    #[test]
    fn indexing_skips_types_literals_attrs_macros() {
        let src = "#[derive(Debug)]\nstruct S { a: [u8; 2] }\nfn f() -> Vec<u32> { vec![1, 2] }\nfn g(x: &mut [u8]) {}\n";
        assert!(run("idx/a.rs", src).is_empty());
    }

    #[test]
    fn no_alloc_marker_fires_and_scopes() {
        let src = "\
// gx-lint: no_alloc
fn hot(&mut self) { let v = Vec::new(); let s = format!(\"x\"); let c: Vec<_> = it.collect(); }
fn cold() { let v = Vec::new(); }
";
        let f = run("x.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::NoAlloc; 3], "{f:?}");
        assert!(f.iter().all(|x| x.line == 2));
        assert!(f[0].message.contains("hot"));
    }

    #[test]
    fn no_alloc_with_attrs_between_marker_and_fn() {
        let src = "// gx-lint: no_alloc\n#[inline]\nfn hot() { x.to_vec(); }\n";
        let f = run("x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("to_vec"));
    }

    #[test]
    fn lock_order_violations() {
        let src = "\
fn good(&self) { let a = self.state.lock().unwrap(); let b = self.result.lock().unwrap(); }
fn bad(&self) { let a = self.result.lock().unwrap(); let b = self.state.lock().unwrap(); }
fn recursive(&self) { let a = self.state.lock().unwrap(); let b = self.state.lock().unwrap(); }
fn undeclared(&self) { let a = self.mystery.lock().unwrap(); }
";
        let f: Vec<_> =
            run("svc/a.rs", src).into_iter().filter(|f| f.rule == Rule::LockDiscipline).collect();
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f[0].message.contains("declared order"));
        assert!(f[1].message.contains("re-acquires"));
        assert!(f[2].message.contains("undeclared"));
        assert_eq!((f[0].line, f[1].line, f[2].line), (2, 3, 4));
    }

    #[test]
    fn locked_helper_counts_as_acquisition() {
        let src = "\
fn bad(shared: &S) { let a = locked(&shared.result); let b = locked(&shared.state); }
fn good(shared: &S) { let a = locked(&shared.state); let b = locked(&shared.result); }
";
        let f: Vec<_> =
            run("svc/a.rs", src).into_iter().filter(|f| f.rule == Rule::LockDiscipline).collect();
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn test_fns_exempt_from_lock_rule() {
        let src = "#[cfg(test)]\nmod tests {\n fn t(s: &S) { let a = s.inner.lock().unwrap(); let b = s.state.lock().unwrap(); }\n}\n";
        assert!(run("svc/a.rs", src).iter().all(|f| f.rule != Rule::LockDiscipline));
    }

    #[test]
    fn lock_temporaries_die_at_statement_end() {
        // PR-7 idiom: a guard temporary in one statement, then a
        // different lock in the next statement — no nesting.
        let src = "\
fn f(shared: &S) { shared.state.lock().unwrap().field += 1; shared.threads.lock().unwrap().push(h); }
";
        assert!(run("svc/a.rs", src).iter().all(|f| f.rule != Rule::LockDiscipline));
    }

    #[test]
    fn lock_guard_dies_at_block_end_and_drop() {
        let src = "\
fn scoped(&self) { { let st = self.result.lock().unwrap(); } let a = self.state.lock().unwrap(); }
fn dropped(&self) { let st = self.result.lock().unwrap(); drop(st); let a = self.state.lock().unwrap(); }
fn held(&self) { let st = self.result.lock().unwrap(); let a = self.state.lock().unwrap(); }
";
        let f: Vec<_> =
            run("svc/a.rs", src).into_iter().filter(|f| f.rule == Rule::LockDiscipline).collect();
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn allow_suppresses_same_and_next_line() {
        let src = "\
fn f() {
    a.unwrap(); // gx-lint: allow(panic_surface) -- justified
    // gx-lint: allow(panic_surface) -- also justified
    b.unwrap();
    c.unwrap();
}
";
        let f = run("x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn allow_is_rule_specific() {
        let src = "fn f() { a.unwrap(); } // gx-lint: allow(determinism) -- wrong rule\n";
        assert_eq!(run("x.rs", src).len(), 1);
    }

    #[test]
    fn unknown_directive_is_a_finding() {
        let f = run("x.rs", "// gx-lint: alow(panic_surface)\nfn f() {}\n");
        assert_eq!(rules_of(&f), vec![Rule::Directive]);
    }

    #[test]
    fn allow_of_unknown_rule_is_a_finding() {
        let f = run("x.rs", "// gx-lint: allow(panic_surfase) -- typo\nfn f() {}\n");
        assert_eq!(rules_of(&f), vec![Rule::Directive]);
        assert!(f[0].message.contains("panic_surfase"), "{f:?}");
    }

    #[test]
    fn cfg_any_test_is_skipped() {
        let src = "#[cfg(any(test, doctest))]\nmod helpers { fn f() { x.unwrap(); } }\nfn g() { y.unwrap(); }\n";
        let f = run("x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }
}
