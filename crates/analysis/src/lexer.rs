//! A lightweight, span-accurate Rust lexer.
//!
//! `gx-lint` rules are lexical: they match token *sequences*, never an
//! AST. That only works if the lexer never mistakes text inside a
//! string, comment, or char literal for code, so this module handles
//! the full set of Rust token-boundary subtleties that matter for that
//! guarantee:
//!
//! - raw strings with arbitrary hash fences (`r##"…"##`, `br#"…"#`),
//! - nested block comments (`/* /* */ */`),
//! - lifetimes vs. char literals (`'a` vs. `'a'`, escapes, `'\u{…}'`),
//! - raw identifiers (`r#match`),
//! - line/column spans for every token (1-based, like rustc).
//!
//! Comments are not tokens, but line comments are scanned for
//! `gx-lint:` [`Directive`]s (allow scoping and `no_alloc` markers) and
//! surfaced to the engine alongside the token stream.

/// What kind of token this is. Rules mostly dispatch on `Ident` and
/// `Punct`; literal kinds exist so rule code can *skip* them safely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `HashMap`, `r#match`).
    Ident,
    /// A lifetime such as `'a` (without the leading quote in `text`).
    Lifetime,
    /// String literal of any flavor (plain, raw, byte, byte-raw).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    /// Token text. For `Str` the *contents are omitted* (rules must
    /// never match inside literals); for `Ident` the `r#` prefix is
    /// stripped so `r#match` compares equal to `match`.
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// A `gx-lint:` control comment found while lexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectiveKind {
    /// `// gx-lint: allow(rule, rule2) -- justification` — suppress the
    /// named rules on this line and the next.
    Allow(Vec<String>),
    /// `// gx-lint: no_alloc` — the next `fn` must not allocate.
    NoAlloc,
    /// Anything after `gx-lint:` the parser does not understand. The
    /// engine reports these: a typo must not silently disable a rule.
    Unknown(String),
}

/// A directive plus the line it appeared on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    pub kind: DirectiveKind,
    pub line: u32,
}

/// The lexer's full output for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub directives: Vec<Directive>,
}

/// Marker every directive comment must contain.
const DIRECTIVE_TAG: &str = "gx-lint:";

/// Lexes `src` into tokens and directives. Never fails: unterminated
/// literals simply end at end-of-file (the real compiler rejects the
/// file anyway; the linter's job is only to never misclassify spans
/// *before* the error point).
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self { chars: src.chars().peekable(), line: 1, col: 1, out: Lexed::default() }
    }

    /// Consumes one char, maintaining line/col.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    /// Peeks two chars ahead without consuming (clone is cheap: the
    /// iterator is a pair of pointers).
    fn peek2(&self) -> Option<char> {
        let mut it = self.chars.clone();
        it.next();
        it.next()
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.toks.push(Tok { kind, text, line, col });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek() {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' => match self.peek2() {
                    Some('/') => self.line_comment(),
                    Some('*') => self.block_comment(),
                    _ => {
                        self.bump();
                        self.push(TokKind::Punct, "/".into(), line, col);
                    }
                },
                '\'' => self.quote(line, col),
                '"' => {
                    self.bump();
                    self.string_body();
                    self.push(TokKind::Str, String::new(), line, col);
                }
                c if c.is_ascii_digit() => self.number(line, col),
                c if c.is_alphabetic() || c == '_' => self.ident_or_prefixed(line, col),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line, col);
                }
            }
        }
        self.out
    }

    /// `// …` to end of line; scans for a `gx-lint:` directive.
    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // A directive must be the comment's entire content: strip the
        // leading slashes (`//`, `///`, `//!`) and require the body to
        // *start* with the tag, so prose that merely mentions
        // `gx-lint:` (like this crate's own docs) is not a directive.
        let body = text.trim_start_matches(['/', '!']).trim();
        if let Some(rest) = body.strip_prefix(DIRECTIVE_TAG) {
            self.out.directives.push(Directive { kind: parse_directive(rest.trim()), line });
        }
    }

    /// `/* … */` with nesting, as in real Rust.
    fn block_comment(&mut self) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                Some('/') if self.peek() == Some('*') => {
                    self.bump();
                    depth += 1;
                }
                Some('*') if self.peek() == Some('/') => {
                    self.bump();
                    depth -= 1;
                }
                Some(_) => {}
                None => break,
            }
        }
    }

    /// After a `'`: lifetime, char literal, or escaped char literal.
    ///
    /// Disambiguation (mirrors rustc): `'` + ident-start + … is a char
    /// literal only if a closing `'` immediately follows one ident
    /// char; a longer ident or no closing quote makes it a lifetime.
    fn quote(&mut self, line: u32, col: u32) {
        self.bump(); // the opening '
        match self.peek() {
            Some(c) if c.is_alphabetic() || c == '_' => {
                // Could be 'a' (char) or 'a / 'abc (lifetime).
                let mut name = String::new();
                while let Some(c) = self.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if name.chars().count() == 1 && self.peek() == Some('\'') {
                    self.bump(); // closing '
                    self.push(TokKind::Char, name, line, col);
                } else {
                    self.push(TokKind::Lifetime, name, line, col);
                }
            }
            Some('\\') => {
                // Escaped char literal: consume to the closing quote,
                // honoring \' and \u{…}.
                self.bump();
                if let Some(e) = self.bump() {
                    if e == 'u' && self.peek() == Some('{') {
                        while let Some(c) = self.bump() {
                            if c == '}' {
                                break;
                            }
                        }
                    }
                }
                if self.peek() == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Char, String::new(), line, col);
            }
            Some(_) => {
                // '1', '+', etc. — any single char then closing quote.
                self.bump();
                if self.peek() == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Char, String::new(), line, col);
            }
            None => {}
        }
    }

    /// Body of a plain `"…"` string (opening quote already consumed).
    fn string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Raw string body: `#`* `"` … `"` `#`*-with-matching-count. The
    /// caller consumed the `r`/`br` prefix. Returns false if this was
    /// not actually a raw string (caller falls back to ident).
    fn raw_string_body(&mut self) -> bool {
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.peek() != Some('"') {
            // `r#ident` (raw identifier) lands here with hashes == 1.
            return false;
        }
        self.bump(); // opening quote
        'outer: loop {
            match self.bump() {
                Some('"') => {
                    // Need exactly `hashes` following '#'.
                    let mut seen = 0usize;
                    while seen < hashes && self.peek() == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break 'outer;
                    }
                }
                Some(_) => {}
                None => break 'outer,
            }
        }
        true
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        // Loose numeric scan: digits, underscores, radix/exponent
        // letters, and `.` only when followed by a digit (so `x[0].iter`
        // does not swallow the dot). Precision here does not matter to
        // any rule; not misclassifying the *next* token does.
        while let Some(c) = self.peek() {
            let take = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek2().is_some_and(|d| d.is_ascii_digit()))
                || ((c == '+' || c == '-')
                    && matches!(text.chars().last(), Some('e') | Some('E'))
                    && text.starts_with(|f: char| f.is_ascii_digit())
                    && !text.starts_with("0x"));
            if take {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line, col);
    }

    /// Identifier, or a string literal introduced by an `r`/`b`/`br`
    /// prefix, or a raw identifier `r#name`.
    fn ident_or_prefixed(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match (text.as_str(), self.peek()) {
            // r"…", r#"…"#, br"…", br##"…"## — raw (byte) strings.
            ("r" | "br", Some('"' | '#')) => {
                if self.raw_string_body() {
                    self.push(TokKind::Str, String::new(), line, col);
                } else {
                    // `r#name`: raw identifier. The '#'s were consumed
                    // by the probe; read the identifier proper.
                    let mut name = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_alphanumeric() || c == '_' {
                            name.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokKind::Ident, name, line, col);
                }
            }
            // b"…" / b'x' — byte string or byte char.
            ("b", Some('"')) => {
                self.bump();
                self.string_body();
                self.push(TokKind::Str, String::new(), line, col);
            }
            ("b", Some('\'')) => self.quote(line, col),
            _ => self.push(TokKind::Ident, text, line, col),
        }
    }
}

/// Parses the text after `gx-lint:` in a comment.
fn parse_directive(body: &str) -> DirectiveKind {
    if body == "no_alloc" {
        return DirectiveKind::NoAlloc;
    }
    if let Some(rest) = body.strip_prefix("allow(") {
        if let Some(close) = rest.find(')') {
            let rules: Vec<String> = rest[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            if !rules.is_empty() {
                return DirectiveKind::Allow(rules);
            }
        }
    }
    DirectiveKind::Unknown(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn raw_strings_with_hashes_hide_their_contents() {
        // The `.unwrap()` inside the raw string must not surface as
        // tokens — including fences the naive scanner would trip on.
        let src = r####"let s = r#"x.unwrap() "quoted" end"#; s.len()"####;
        let ids = idents(src);
        assert!(ids.contains(&"len".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");

        let src2 = "let s = r##\"has \"# inside\"##; t.unwrap()";
        let ids2 = idents(src2);
        assert_eq!(ids2, vec!["let", "s", "t", "unwrap"]);
    }

    #[test]
    fn byte_and_byte_raw_strings() {
        let ids = idents(r##"let x = b"panic!"; let y = br#"unwrap"#; done()"##);
        assert_eq!(ids, vec!["let", "x", "let", "y", "done"]);
    }

    #[test]
    fn nested_block_comments() {
        let ids = idents("a /* x /* deeper .unwrap() */ still comment */ b");
        assert_eq!(ids, vec!["a", "b"]);
    }

    #[test]
    fn unterminated_nested_comment_consumes_rest() {
        assert_eq!(idents("a /* open /* */ still open b"), vec!["a"]);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let lexed =
            lex("fn f<'a>(x: &'a str) { let c = 'a'; let d = '\\''; let z = '\\u{1F600}'; }");
        let lifetimes: Vec<_> = lexed.toks.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        let chars: Vec<_> = lexed.toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{:?}", lexed.toks);
        assert_eq!(chars.len(), 3, "{:?}", lexed.toks);
    }

    #[test]
    fn long_lifetime_and_underscore() {
        let lexed = lex("&'static str; &'_ T; 'label: loop {}");
        let lts: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lts, vec!["static", "_", "label"]);
    }

    #[test]
    fn raw_identifier() {
        let lexed = lex("let r#match = 1; r#fn()");
        let ids: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>();
        assert_eq!(ids, vec!["let", "match", "fn"]);
    }

    #[test]
    fn macro_bodies_lex_as_plain_tokens() {
        // Rules look through macro invocations; the lexer must produce
        // ordinary tokens for their bodies.
        let lexed = lex("vec![x.unwrap(), 'a', \"s\"]");
        let texts: Vec<_> = lexed.toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"unwrap"));
        assert!(texts.contains(&"vec"));
    }

    #[test]
    fn spans_are_one_based_and_accurate() {
        let lexed = lex("ab\n  cd.unwrap()");
        let unwrap = lexed.toks.iter().find(|t| t.text == "unwrap").expect("token");
        assert_eq!((unwrap.line, unwrap.col), (2, 6));
    }

    #[test]
    fn strings_with_escapes_do_not_leak() {
        let ids = idents(r#"let s = "a\"b.unwrap()\\"; f()"#);
        assert_eq!(ids, vec!["let", "s", "f"]);
    }

    #[test]
    fn directives_parse() {
        let lexed = lex(concat!(
            "// gx-lint: allow(panic_surface, determinism) -- test harness\n",
            "// gx-lint: no_alloc\n",
            "// gx-lint: alow(typo)\n",
            "// ordinary comment\n",
        ));
        assert_eq!(lexed.directives.len(), 3);
        assert_eq!(
            lexed.directives[0].kind,
            DirectiveKind::Allow(vec!["panic_surface".into(), "determinism".into()])
        );
        assert_eq!(lexed.directives[0].line, 1);
        assert_eq!(lexed.directives[1].kind, DirectiveKind::NoAlloc);
        assert!(matches!(lexed.directives[2].kind, DirectiveKind::Unknown(_)));
    }

    #[test]
    fn number_does_not_eat_method_dot() {
        let lexed = lex("1.5e-3; x[0].iter(); 0x1f; 1_000u64");
        let texts: Vec<_> = lexed.toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"iter"));
        assert!(texts.contains(&"1.5e-3"));
        assert!(texts.contains(&"0x1f"));
        assert!(texts.contains(&"1_000u64"));
    }
}
