//! `gx-lint` — repo-invariant static analysis for the graphlet-rw
//! workspace.
//!
//! Every guarantee this reproduction ships — golden-bit resume,
//! service answers bit-identical to solo runs, the zero-allocation CSS
//! hot loop — is an invariant the compiler cannot see. This crate
//! machine-checks them with four lexical rule families (see
//! [`engine`]) scoped by two committed manifests ([`manifest`]) and
//! enforced through a ratcheting committed [`baseline`]: new
//! violations fail CI, fixes must shrink the baseline, and drift in
//! either direction is an error.
//!
//! Run it as a workspace binary:
//!
//! ```text
//! cargo run -p gx-lint -- --check             # CI gate
//! cargo run -p gx-lint -- --list              # print every finding
//! cargo run -p gx-lint -- --update-baseline   # re-ratchet after fixes
//! ```
//!
//! The library surface exists so the crate can test itself (fixture
//! files, ratchet drills) and so the repo's own test suite can enforce
//! the gate without shelling out.

pub mod baseline;
pub mod engine;
pub mod lexer;
pub mod manifest;

pub use baseline::{Baseline, Drift};
pub use engine::{lint_source, Finding, Rule};
pub use manifest::{LockManifest, Manifest};

use std::path::{Path, PathBuf};

/// Names of the three committed control files, all at workspace root.
pub const MANIFEST_FILE: &str = "gx-lint.manifest";
/// Lock-order manifest file name.
pub const LOCKS_FILE: &str = "gx-lint.locks";
/// Ratchet baseline file name.
pub const BASELINE_FILE: &str = "gx-lint.baseline";

/// A fully loaded workspace: manifests plus the resolved file list.
pub struct Workspace {
    pub root: PathBuf,
    pub manifest: Manifest,
    pub locks: LockManifest,
    pub files: Vec<String>,
}

/// Anything that stops a lint run before findings can be produced.
#[derive(Debug)]
pub enum LintError {
    Io { path: PathBuf, error: std::io::Error },
    Manifest(manifest::ManifestError),
    Baseline(String),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            LintError::Manifest(e) => write!(f, "{e}"),
            LintError::Baseline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LintError {}

impl From<manifest::ManifestError> for LintError {
    fn from(e: manifest::ManifestError) -> Self {
        LintError::Manifest(e)
    }
}

fn read(path: &Path) -> Result<String, LintError> {
    std::fs::read_to_string(path).map_err(|error| LintError::Io { path: path.to_path_buf(), error })
}

impl Workspace {
    /// Loads manifests from `root` and walks the scan tree.
    pub fn load(root: &Path) -> Result<Workspace, LintError> {
        let manifest_path = root.join(MANIFEST_FILE);
        let manifest = manifest::parse_manifest(&read(&manifest_path)?, &manifest_path)?;
        let locks_path = root.join(LOCKS_FILE);
        let locks = manifest::parse_locks(&read(&locks_path)?, &locks_path)?;
        let files = manifest
            .walk(root)
            .map_err(|error| LintError::Io { path: root.to_path_buf(), error })?;
        Ok(Workspace { root: root.to_path_buf(), manifest, locks, files })
    }

    /// Lints every in-scope file, returning all findings sorted by
    /// path then span.
    pub fn lint(&self) -> Result<Vec<Finding>, LintError> {
        let mut findings = Vec::new();
        for rel in &self.files {
            let src = read(&self.root.join(rel))?;
            findings.extend(lint_source(rel, &src, &self.manifest, &self.locks));
        }
        findings.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
        });
        Ok(findings)
    }

    /// Loads the committed baseline.
    pub fn baseline(&self) -> Result<Baseline, LintError> {
        Baseline::parse(&read(&self.root.join(BASELINE_FILE))?).map_err(LintError::Baseline)
    }

    /// The full `--check`: lint, compare against the committed
    /// baseline, return the findings and any ratchet drift.
    pub fn check(&self) -> Result<(Vec<Finding>, Vec<Drift>), LintError> {
        let findings = self.lint()?;
        let committed = self.baseline()?;
        let current = Baseline::from_findings(&findings);
        Ok((findings, committed.drift(&current)))
    }
}

/// Walks upward from `start` to the first directory containing
/// [`MANIFEST_FILE`] (so the binary works from any subdirectory).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join(MANIFEST_FILE).is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
