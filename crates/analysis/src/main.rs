//! The `gx-lint` command-line front end. See the crate docs
//! ([`gx_lint`]) for what the rules protect and how the baseline
//! ratchets.

use gx_lint::{find_root, Baseline, Drift, Workspace, BASELINE_FILE};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
gx-lint — repo-invariant static analysis with a ratcheting baseline

USAGE:
    cargo run -p gx-lint -- [--check | --list | --update-baseline] [--root DIR]

MODES (default --check):
    --check             lint and enforce the committed gx-lint.baseline:
                        counts above baseline fail (new violations), counts
                        below fail too (stale baseline — re-ratchet)
    --list              print every finding, ignoring the baseline
    --update-baseline   rewrite gx-lint.baseline from the current scan

OPTIONS:
    --root DIR          workspace root (default: walk up from cwd to the
                        directory containing gx-lint.manifest)
";

enum Mode {
    Check,
    List,
    UpdateBaseline,
}

fn main() -> ExitCode {
    let mut mode = Mode::Check;
    let mut root_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => mode = Mode::Check,
            "--list" => mode = Mode::List,
            "--update-baseline" => mode = Mode::UpdateBaseline,
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => return fail("--root needs a directory"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }

    let root =
        match root_arg.or_else(|| std::env::current_dir().ok().and_then(|cwd| find_root(&cwd))) {
            Some(r) => r,
            None => return fail("no gx-lint.manifest found here or in any parent directory"),
        };

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => return fail(&format!("{e}")),
    };

    match mode {
        Mode::List => {
            let findings = match ws.lint() {
                Ok(f) => f,
                Err(e) => return fail(&format!("{e}")),
            };
            for f in &findings {
                println!("{f}");
            }
            println!("gx-lint: {} finding(s) in {} file(s)", findings.len(), ws.files.len());
            ExitCode::SUCCESS
        }
        Mode::UpdateBaseline => {
            let findings = match ws.lint() {
                Ok(f) => f,
                Err(e) => return fail(&format!("{e}")),
            };
            let baseline = Baseline::from_findings(&findings);
            let header = format!(
                "gx-lint ratchet baseline: per-(rule, file) violation counts.\n\
                 Checked by `cargo run -p gx-lint -- --check`: counts above an entry fail\n\
                 (new violations), counts below fail too (stale baseline). Regenerate with\n\
                 `cargo run -p gx-lint -- --update-baseline` in the same change that fixes\n\
                 violations, so this file only ever shrinks.\n\
                 total: {} finding(s)",
                baseline.total()
            );
            let path = ws.root.join(BASELINE_FILE);
            if let Err(e) = std::fs::write(&path, baseline.render(&header)) {
                return fail(&format!("{}: {e}", path.display()));
            }
            println!(
                "gx-lint: baselined {} finding(s) across {} (rule, file) pair(s)",
                baseline.total(),
                baseline.counts.len()
            );
            ExitCode::SUCCESS
        }
        Mode::Check => {
            let (findings, drift) = match ws.check() {
                Ok(r) => r,
                Err(e) => return fail(&format!("{e}")),
            };
            if drift.is_empty() {
                println!(
                    "gx-lint: ok — {} file(s) scanned, {} baselined finding(s), zero drift",
                    ws.files.len(),
                    findings.len()
                );
                return ExitCode::SUCCESS;
            }
            // Print the precise findings for every (rule, file) that
            // grew, then the drift summary: the span list is what a
            // developer actually navigates to.
            for d in &drift {
                if let Drift::New { rule, path, .. } = d {
                    for f in findings.iter().filter(|f| f.rule == *rule && &f.path == path) {
                        eprintln!("{f}");
                    }
                }
            }
            for d in &drift {
                eprintln!("gx-lint: {d}");
            }
            eprintln!(
                "gx-lint: FAILED — {} (rule, file) pair(s) drifted from baseline",
                drift.len()
            );
            ExitCode::FAILURE
        }
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("gx-lint: {msg}");
    ExitCode::FAILURE
}
