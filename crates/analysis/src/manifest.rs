//! The two committed manifests that scope `gx-lint`'s rules.
//!
//! Both use a deliberately trivial line format (`keyword value…`, `#`
//! comments) so the linter stays std-only and the files read as
//! documentation:
//!
//! - **`gx-lint.manifest`** — what to scan and which paths carry the
//!   `determinism` and indexing contracts.
//! - **`gx-lint.locks`** — the declared lock-acquisition order for the
//!   scoped crate(s); see [`LockManifest`].
//!
//! Paths in both files are workspace-relative with `/` separators and
//! match by prefix: `crates/core/src` covers every file below it.

use std::path::{Path, PathBuf};

/// Parsed `gx-lint.manifest`.
#[derive(Debug, Default, Clone)]
pub struct Manifest {
    /// Directory roots to walk for `.rs` files.
    pub scan: Vec<String>,
    /// Path prefixes excluded from the walk (e.g. vendored shims).
    pub exclude: Vec<String>,
    /// Directory *components* excluded anywhere in a path (`tests`,
    /// `benches`, `examples`): non-library code is out of scope.
    pub exclude_components: Vec<String>,
    /// Path prefixes whose modules are declared deterministic.
    pub deterministic: Vec<String>,
    /// Path prefixes where direct indexing counts as panic surface.
    pub index: Vec<String>,
}

/// Parsed `gx-lint.locks`: where the lock rule applies and the one
/// global acquisition order.
///
/// The discipline is: a lock may be acquired while holding only locks
/// that appear *strictly earlier* in `order`. Re-acquiring a held lock
/// or acquiring against the order is a violation, and so is calling
/// `.lock()` on a receiver name the manifest does not declare — adding
/// a mutex to a scoped crate forces a (reviewed) manifest edit.
#[derive(Debug, Default, Clone)]
pub struct LockManifest {
    /// Path prefixes the lock-discipline rule applies to.
    pub scope: Vec<String>,
    /// Lock names (receiver field/variable names) in acquisition order.
    pub order: Vec<String>,
}

impl LockManifest {
    /// Rank of a lock name in the declared order (lower acquires
    /// first), or `None` for undeclared names.
    pub fn rank(&self, name: &str) -> Option<usize> {
        self.order.iter().position(|n| n == name)
    }

    pub fn applies_to(&self, rel_path: &str) -> bool {
        self.scope.iter().any(|p| path_has_prefix(rel_path, p))
    }
}

impl Manifest {
    pub fn is_deterministic(&self, rel_path: &str) -> bool {
        self.deterministic.iter().any(|p| path_has_prefix(rel_path, p))
    }

    pub fn is_index_checked(&self, rel_path: &str) -> bool {
        self.index.iter().any(|p| path_has_prefix(rel_path, p))
    }

    fn is_excluded(&self, rel_path: &str) -> bool {
        self.exclude.iter().any(|p| path_has_prefix(rel_path, p))
            || Path::new(rel_path)
                .components()
                .any(|c| self.exclude_components.iter().any(|e| c.as_os_str() == e.as_str()))
    }

    /// Walks the scan roots under `root`, returning the sorted,
    /// workspace-relative paths of every `.rs` file in scope.
    pub fn walk(&self, root: &Path) -> std::io::Result<Vec<String>> {
        let mut files = Vec::new();
        for scan_root in &self.scan {
            let dir = root.join(scan_root);
            if dir.is_dir() {
                walk_dir(&dir, root, &mut files)?;
            } else if dir.is_file() {
                if let Some(rel) = relative_str(&dir, root) {
                    files.push(rel);
                }
            }
        }
        files.retain(|f| !self.is_excluded(f));
        files.sort();
        files.dedup();
        Ok(files)
    }
}

/// True when `path` equals `prefix` or starts with `prefix/`.
fn path_has_prefix(path: &str, prefix: &str) -> bool {
    path == prefix
        || (path.len() > prefix.len()
            && path.starts_with(prefix)
            && path.as_bytes()[prefix.len()] == b'/')
}

fn relative_str(path: &Path, root: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let s = rel.to_string_lossy().replace('\\', "/");
    Some(s)
}

fn walk_dir(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk_dir(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Some(rel) = relative_str(&path, root) {
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// A malformed manifest line (the linter refuses to run on a manifest
/// it cannot fully understand — a typo must not silently narrow scope).
#[derive(Debug)]
pub struct ManifestError {
    pub file: PathBuf,
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file.display(), self.line, self.message)
    }
}

impl std::error::Error for ManifestError {}

/// Parses `gx-lint.manifest` content.
pub fn parse_manifest(content: &str, file: &Path) -> Result<Manifest, ManifestError> {
    let mut m = Manifest::default();
    for (idx, raw) in content.lines().enumerate() {
        let Some((keyword, rest)) = split_line(raw) else { continue };
        let err =
            |message: String| ManifestError { file: file.to_path_buf(), line: idx + 1, message };
        if rest.is_empty() {
            return Err(err(format!("`{keyword}` needs a value")));
        }
        match keyword {
            "scan" => m.scan.push(rest.to_string()),
            "exclude" => m.exclude.push(rest.to_string()),
            "exclude-component" => m.exclude_components.push(rest.to_string()),
            "deterministic" => m.deterministic.push(rest.to_string()),
            "index" => m.index.push(rest.to_string()),
            other => return Err(err(format!("unknown manifest keyword `{other}`"))),
        }
    }
    Ok(m)
}

/// Parses `gx-lint.locks` content.
pub fn parse_locks(content: &str, file: &Path) -> Result<LockManifest, ManifestError> {
    let mut m = LockManifest::default();
    for (idx, raw) in content.lines().enumerate() {
        let Some((keyword, rest)) = split_line(raw) else { continue };
        let err =
            |message: String| ManifestError { file: file.to_path_buf(), line: idx + 1, message };
        match keyword {
            "scope" => {
                if rest.is_empty() {
                    return Err(err("`scope` needs a path".into()));
                }
                m.scope.push(rest.to_string());
            }
            "order" => {
                for name in rest.split_whitespace() {
                    if m.order.iter().any(|n| n == name) {
                        return Err(err(format!("lock `{name}` listed twice in order")));
                    }
                    m.order.push(name.to_string());
                }
                if m.order.is_empty() {
                    return Err(err("`order` needs at least one lock name".into()));
                }
            }
            other => return Err(err(format!("unknown locks keyword `{other}`"))),
        }
    }
    Ok(m)
}

/// Strips comments/blank lines; splits `keyword rest…`.
fn split_line(raw: &str) -> Option<(&str, &str)> {
    let line = match raw.find('#') {
        Some(pos) => &raw[..pos],
        None => raw,
    }
    .trim();
    if line.is_empty() {
        return None;
    }
    match line.split_once(char::is_whitespace) {
        Some((k, r)) => Some((k, r.trim())),
        None => Some((line, "")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trip() {
        let m = parse_manifest(
            "# comment\nscan src\nscan crates\nexclude crates/vendor\n\
             exclude-component tests\ndeterministic crates/core/src\nindex crates/service/src\n",
            Path::new("gx-lint.manifest"),
        )
        .expect("parses");
        assert_eq!(m.scan, vec!["src", "crates"]);
        assert!(m.is_deterministic("crates/core/src/runner.rs"));
        assert!(!m.is_deterministic("crates/core/srcx/evil.rs"));
        assert!(m.is_index_checked("crates/service/src/api.rs"));
        assert!(m.is_excluded("crates/vendor/rand/src/lib.rs"));
        assert!(m.is_excluded("crates/core/tests/foo.rs"));
        assert!(!m.is_excluded("crates/core/src/lib.rs"));
    }

    #[test]
    fn unknown_keyword_rejected() {
        let e = parse_manifest("scann src\n", Path::new("m")).expect_err("must fail");
        assert!(e.message.contains("scann"), "{e}");
        assert_eq!(e.line, 1);
    }

    #[test]
    fn locks_round_trip_and_rank() {
        let m = parse_locks(
            "scope crates/service/src\norder state threads progress result inner\n",
            Path::new("gx-lint.locks"),
        )
        .expect("parses");
        assert!(m.applies_to("crates/service/src/scheduler.rs"));
        assert!(!m.applies_to("crates/core/src/runner.rs"));
        assert_eq!(m.rank("state"), Some(0));
        assert_eq!(m.rank("inner"), Some(4));
        assert_eq!(m.rank("nope"), None);
    }

    #[test]
    fn duplicate_lock_name_rejected() {
        let e = parse_locks("order a b a\n", Path::new("l")).expect_err("must fail");
        assert!(e.message.contains("twice"), "{e}");
    }
}
