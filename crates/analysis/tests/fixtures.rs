//! Per-rule fixture tests: each fixture file under `tests/fixtures/`
//! is linted against a small in-memory manifest pair and compared to a
//! committed `.expected` golden (one `line:col rule` per diagnostic,
//! sorted). Together these prove that injecting any violation class
//! produces findings — i.e. that each rule actually fires — and that
//! the lexer's literal/comment handling never leaks matches.

use gx_lint::manifest::{parse_locks, parse_manifest};
use gx_lint::{lint_source, Finding};
use std::path::Path;

/// Test manifest: everything under `src` scanned, `src/det` declared
/// deterministic, `src/idx` index-checked.
const MANIFEST: &str = "scan src\ndeterministic src/det\nindex src/idx\n";
/// Test lock order: three locks `a < b < c` scoped to `src`.
const LOCKS: &str = "scope src\norder a b c\n";

fn lint_fixture(fixture: &str, lint_as: &str) -> Vec<Finding> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let src = std::fs::read_to_string(dir.join(fixture))
        .unwrap_or_else(|e| panic!("fixture {fixture}: {e}"));
    let manifest = parse_manifest(MANIFEST, Path::new("test.manifest")).expect("test manifest");
    let locks = parse_locks(LOCKS, Path::new("test.locks")).expect("test locks");
    lint_source(lint_as, &src, &manifest, &locks)
}

/// Asserts the fixture's findings match its `.expected` golden exactly.
fn check_golden(fixture: &str, lint_as: &str) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let golden_name = fixture.replace(".rs", ".expected");
    let golden_raw = std::fs::read_to_string(dir.join(&golden_name))
        .unwrap_or_else(|e| panic!("golden {golden_name}: {e}"));
    let expected: Vec<&str> = golden_raw
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let got: Vec<String> = lint_fixture(fixture, lint_as)
        .iter()
        .map(|f| format!("{}:{} {}", f.line, f.col, f.rule))
        .collect();
    assert_eq!(
        got, expected,
        "\nfixture {fixture} (linted as {lint_as}) diverged from {golden_name};\n\
         left = actual findings, right = golden"
    );
}

#[test]
fn determinism_fixture_matches_golden() {
    check_golden("determinism.rs", "src/det/f.rs");
}

#[test]
fn determinism_fixture_is_clean_outside_deterministic_scope() {
    assert!(lint_fixture("determinism.rs", "src/f.rs").is_empty());
}

#[test]
fn panic_fixture_matches_golden() {
    check_golden("panic.rs", "src/f.rs");
}

#[test]
fn index_fixture_matches_golden() {
    check_golden("index.rs", "src/idx/f.rs");
}

#[test]
fn index_fixture_is_clean_outside_index_scope() {
    assert!(lint_fixture("index.rs", "src/f.rs").is_empty());
}

#[test]
fn locks_fixture_matches_golden() {
    check_golden("locks.rs", "src/f.rs");
}

#[test]
fn no_alloc_fixture_matches_golden() {
    check_golden("no_alloc.rs", "src/f.rs");
}

#[test]
fn allow_fixture_matches_golden() {
    check_golden("allow.rs", "src/det/f.rs");
}

#[test]
fn directive_fixture_matches_golden() {
    check_golden("directive.rs", "src/f.rs");
}

#[test]
fn lexer_torture_fixture_is_finding_free() {
    // The strictest scope (deterministic): every banned name in the
    // fixture lives inside a literal or comment, so a span-accurate
    // lexer must report nothing at all.
    let f = lint_fixture("lexer_torture.rs", "src/det/f.rs");
    assert!(f.is_empty(), "torture fixture leaked matches: {f:?}");
}
