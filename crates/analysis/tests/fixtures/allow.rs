// Fixture: allow comments suppress findings on the same line and the
// next line — and only for the named rule. Linted as `src/det/f.rs`
// (deterministic scope), so `HashMap` mentions are determinism
// findings unless allowed.

// gx-lint: allow(determinism) -- fixture: justified membership-only use
use std::collections::HashMap;

pub fn suppressed() -> usize {
    let m: HashMap<u32, u32> = HashMap::default(); // gx-lint: allow(determinism) -- fixture: same-line allow
    m.len()
}

pub fn wrong_rule_does_not_suppress(xs: &[u32]) -> u32 {
    // gx-lint: allow(determinism) -- fixture: names the wrong rule
    *xs.first().unwrap()
}
