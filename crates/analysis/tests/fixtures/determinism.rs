// Fixture: nondeterministic constructs in a declared-deterministic
// module. Linted as `src/det/f.rs` (inside the test manifest's
// `deterministic src/det` scope).
use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> usize {
    let mut seen = HashMap::new();
    for &x in xs {
        *seen.entry(x).or_insert(0u32) += 1;
    }
    let started = std::time::Instant::now();
    let _ = started;
    seen.len()
}
