// Fixture: malformed gx-lint directives are themselves findings, so a
// typo cannot silently disable a rule. Linted as `src/f.rs`.

// gx-lint: allow(not_a_rule) -- unknown rule name
pub fn a() {}

// gx-lint: alow(determinism) -- misspelled verb
pub fn b() {}
