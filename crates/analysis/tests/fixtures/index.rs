// Fixture: direct indexing in a declared index-checked path. Linted as
// `src/idx/f.rs`. Type positions, array literals, and slice patterns
// must not be flagged.
pub fn pick(xs: &[u32], i: usize) -> u32 {
    let table: [u8; 2] = [0; 2];
    let [lo] = [table[0]];
    let _ = lo;
    xs[i]
}
