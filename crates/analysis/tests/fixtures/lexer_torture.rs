// Fixture: pathological token sequences that must produce ZERO
// findings. Linted as `src/det/f.rs` (the strictest scope): every
// banned name below lives inside a literal or a comment, where a
// span-accurate lexer must never match.
//
// HashMap::new() — banned name in a line comment, not code.
/* Instant::now() inside a block comment.
   /* nested: SystemTime::now() .unwrap() */
   still comment: panic!("x") */

pub fn torture<'a>(s: &'a str) -> usize {
    let plain = "HashMap::new() and .unwrap() in a string";
    let raw = r#"Instant::now() and "quoted" panic!()"#;
    let fenced = r##"a raw string ending with "# is not the end: HashMap"##;
    let byte = b"SystemTime in a byte string";
    let braw = br#".expect("msg") in a raw byte string"#;
    let ch = 'x';
    let not_char_a_lifetime: &'a str = s;
    let r#struct = plain.len() + raw.len() + fenced.len() + byte.len() + braw.len();
    r#struct + (ch as usize) + not_char_a_lifetime.len()
}
