// Fixture: lock-discipline violations against the test lock manifest
// `order a b c` with scope `src`. Linted as `src/f.rs`.
pub fn violations(s: &Shared) {
    let _b = s.b.lock();
    let _a = s.a.lock(); // inversion: a ranks before held b
    let _b2 = s.b.lock(); // re-acquire of held b
    let _z = s.z.lock(); // undeclared lock name
}

pub fn legal(s: &Shared) {
    let _a = locked(&s.a);
    let _c = s.c.lock(); // a -> c skips b: strictly later is fine
    drop(_a);
}

pub fn temporaries_die_at_statement_end(s: &Shared) {
    *s.c.lock() += 1;
    let _a = s.a.lock(); // legal: the c guard above was a temporary
}
