// Fixture: allocation in a `no_alloc`-marked hot-loop function, and
// the same constructs unmarked (not flagged). Linted as `src/f.rs`.

// gx-lint: no_alloc
pub fn hot(xs: &[u32]) -> u32 {
    let buf = Vec::new();
    let msg = format!("{}", xs.len());
    let doubled: u32 = xs.iter().map(|x| x * 2).sum();
    let _ = (buf, msg);
    let copied = xs.to_vec();
    doubled + copied.len() as u32
}

pub fn cold(xs: &[u32]) -> usize {
    // Unmarked function: allocation is fine here.
    let all: Vec<u32> = xs.iter().copied().collect();
    all.len()
}
