// Fixture: panic-surface constructs in non-test library code. Linted
// as `src/f.rs` — outside the index scope, so the slicing at the end
// is NOT flagged (indexing is only checked in declared index paths).
pub fn first(xs: &[u32]) -> u32 {
    let head = xs.first().unwrap();
    let tail = xs.last().expect("nonempty");
    if *head > *tail {
        panic!("unsorted");
    }
    xs[0]
}

#[test]
fn test_code_is_exempt() {
    let xs = [1u32];
    assert_eq!(xs.first().unwrap(), &1);
}
