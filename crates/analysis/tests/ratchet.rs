//! End-to-end ratchet drills against a throwaway mini-workspace on
//! disk: prove that *both* drift directions fail `--check` — new
//! violations (count above baseline) and silently-fixed ones (count
//! below baseline) — and that `--update-baseline`'s output round-trips.

use gx_lint::baseline::Baseline;
use gx_lint::{Drift, Workspace, BASELINE_FILE, LOCKS_FILE, MANIFEST_FILE};
use std::path::PathBuf;

/// One violation: `.unwrap()` in library code.
const DIRTY_SRC: &str = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
/// Zero violations.
const CLEAN_SRC: &str = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";

/// Builds a throwaway workspace under the target tmpdir with one
/// source file and a baseline recording `baselined` findings for it.
struct MiniRepo {
    root: PathBuf,
}

impl MiniRepo {
    fn new(tag: &str, src: &str, baseline: &str) -> MiniRepo {
        let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("ratchet-{tag}"));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("src")).expect("mkdir src");
        std::fs::write(root.join(MANIFEST_FILE), "scan src\n").expect("write manifest");
        std::fs::write(root.join(LOCKS_FILE), "scope src\norder a\n").expect("write locks");
        std::fs::write(root.join(BASELINE_FILE), baseline).expect("write baseline");
        std::fs::write(root.join("src/f.rs"), src).expect("write src");
        MiniRepo { root }
    }

    fn check(&self) -> Vec<Drift> {
        let ws = Workspace::load(&self.root).expect("workspace loads");
        let (_, drift) = ws.check().expect("check runs");
        drift
    }
}

#[test]
fn in_baseline_violation_passes() {
    let repo = MiniRepo::new("match", DIRTY_SRC, "panic_surface 1 src/f.rs\n");
    assert!(repo.check().is_empty(), "baselined violation must not drift");
}

#[test]
fn new_violation_fails_check() {
    // Baseline says clean; the tree has one violation -> `New` drift.
    let repo = MiniRepo::new("new", DIRTY_SRC, "");
    let drift = repo.check();
    assert_eq!(drift.len(), 1, "{drift:?}");
    assert!(matches!(drift[0], Drift::New { found: 1, baseline: 0, .. }), "{drift:?}");
}

#[test]
fn fixed_violation_without_reratchet_fails_check() {
    // Baseline says one violation; the tree is clean -> `Stale` drift,
    // forcing the fix and the baseline shrink into the same change.
    let repo = MiniRepo::new("stale", CLEAN_SRC, "panic_surface 1 src/f.rs\n");
    let drift = repo.check();
    assert_eq!(drift.len(), 1, "{drift:?}");
    assert!(matches!(drift[0], Drift::Stale { found: 0, baseline: 1, .. }), "{drift:?}");
}

#[test]
fn reratcheting_restores_a_passing_check() {
    // The documented recovery for either drift direction: regenerate
    // the baseline from the current tree and re-check.
    let repo = MiniRepo::new("reratchet", DIRTY_SRC, "");
    assert!(!repo.check().is_empty(), "precondition: drifted");
    let ws = Workspace::load(&repo.root).expect("workspace loads");
    let rendered = Baseline::from_findings(&ws.lint().expect("lint")).render("# regenerated\n");
    std::fs::write(repo.root.join(BASELINE_FILE), rendered).expect("rewrite baseline");
    assert!(repo.check().is_empty(), "regenerated baseline must be drift-free");
}

#[test]
fn every_rule_class_fails_check_when_injected() {
    // The acceptance drill: inject one violation of each rule family
    // into an otherwise-clean workspace and demand `--check` fails.
    let cases: &[(&str, &str)] = &[
        ("determinism", "use std::collections::HashMap;\npub fn f() {}\n"),
        ("panic_surface", "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n"),
        ("lock_discipline", "pub fn f(s: &S) { let _b = s.b.lock(); let _a = s.a.lock(); }\n"),
        ("no_alloc", "// gx-lint: no_alloc\npub fn f() -> Vec<u32> { Vec::new() }\n"),
        ("directive", "// gx-lint: allow(nonexistent_rule) -- typo\npub fn f() {}\n"),
    ];
    for (rule, src) in cases {
        let tag = format!("inject-{rule}");
        let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("ratchet-{tag}"));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("src/det")).expect("mkdir");
        std::fs::write(root.join(MANIFEST_FILE), "scan src\ndeterministic src/det\n")
            .expect("manifest");
        std::fs::write(root.join(LOCKS_FILE), "scope src\norder a b\n").expect("locks");
        std::fs::write(root.join(BASELINE_FILE), "").expect("baseline");
        let path = if *rule == "determinism" { "src/det/f.rs" } else { "src/f.rs" };
        std::fs::write(root.join(path), src).expect("src");
        let ws = Workspace::load(&root).expect("workspace loads");
        let (findings, drift) = ws.check().expect("check runs");
        assert!(!drift.is_empty(), "injected {rule} violation must drift the empty baseline");
        assert!(
            findings.iter().any(|f| f.rule.id() == *rule),
            "injected violation must be reported under `{rule}`: {findings:?}"
        );
    }
}
