//! The repo's own lint gate, enforced from inside tier-1 `cargo test`:
//! this workspace must lint clean against its committed baseline, so a
//! change that introduces a violation (or fixes one without
//! re-ratcheting) fails the test suite even before CI's dedicated
//! `gx-lint --check` step runs.

use gx_lint::{find_root, Workspace};
use std::path::Path;

#[test]
fn workspace_lints_clean_against_committed_baseline() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_root(here).expect("gx-lint.manifest reachable from crates/analysis");
    let ws = Workspace::load(&root).expect("workspace manifests load");
    let (_, drift) = ws.check().expect("lint runs");
    let report: Vec<String> = drift.iter().map(|d| d.to_string()).collect();
    assert!(
        drift.is_empty(),
        "gx-lint ratchet drift — run `cargo run -p gx-lint -- --list` to see findings,\n\
         fix new violations (or re-ratchet after fixes with `--update-baseline`):\n{}",
        report.join("\n")
    );
}

#[test]
fn committed_baseline_is_materially_smaller_than_the_initial_scan() {
    // PR 8's fix tranche dropped the scan from 78 findings to the
    // committed baseline; the ratchet direction only ever shrinks this.
    const INITIAL_SCAN: usize = 78;
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_root(here).expect("gx-lint.manifest reachable from crates/analysis");
    let ws = Workspace::load(&root).expect("workspace manifests load");
    let total = ws.baseline().expect("baseline parses").total();
    assert!(
        total + 25 <= INITIAL_SCAN,
        "baseline ({total}) must stay >= 25 findings under the initial scan ({INITIAL_SCAN})"
    );
}
