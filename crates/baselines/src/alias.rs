//! Walker's alias method: O(n) preprocessing, O(1) weighted sampling.
//!
//! Wedge sampling picks nodes ∝ C(d_v, 2) and path sampling picks edges
//! ∝ (d_u−1)(d_v−1); both need many independent draws from a fixed
//! discrete distribution — the textbook alias-table use case (and the
//! preprocessing cost the paper's §6.3.2 charges them with).

use gx_walks::WalkRng;
use rand::Rng;

/// Alias table over indices `0..n` with the given non-negative weights.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table. At least one weight must be positive; negative
    /// weights are rejected.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        assert!(weights.iter().all(|&w| w >= 0.0), "negative weight");
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "all weights are zero");
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // leftovers are numerically ~1
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table is empty (never: constructor requires n ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws an index with probability proportional to its weight.
    pub fn sample(&self, rng: &mut WalkRng) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matches_weights_empirically() {
        let weights = [1.0, 0.0, 3.0, 6.0];
        let table = AliasTable::new(&weights);
        let mut rng = rand_pcg::Pcg64::seed_from_u64(5);
        let n = 200_000;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let got = counts[i] as f64 / n as f64;
            let want = w / total;
            assert!((got - want).abs() < 0.01, "i={i}: {got:.4} vs {want:.4}");
        }
    }

    #[test]
    fn uniform_weights() {
        let table = AliasTable::new(&[2.0; 7]);
        let mut rng = rand_pcg::Pcg64::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[table.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(table.len(), 7);
        assert!(!table.is_empty());
    }

    #[test]
    fn single_outcome() {
        let table = AliasTable::new(&[0.5]);
        let mut rng = rand_pcg::Pcg64::seed_from_u64(1);
        assert_eq!(table.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "all weights are zero")]
    fn rejects_all_zero() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn rejects_negative() {
        let _ = AliasTable::new(&[1.0, -0.1]);
    }
}
