//! GUISE (Bhuiyan et al. \[6\]): uniform Metropolis–Hastings sampling over
//! the union of all 3-, 4-, 5-node connected induced subgraphs,
//! estimating all three concentration vectors simultaneously.
//!
//! The state graph connects subgraphs differing by one node
//! (grow/shrink); a proposal from the uniform distribution over the
//! current state's neighborhood is accepted with
//! `min(1, |N(x)| / |N(y)|)`, which makes the stationary distribution
//! uniform over *all* states — so within each size class the visit
//! frequencies estimate concentrations directly.
//!
//! Deviations from the original: GUISE also proposes same-size swaps; the
//! grow/shrink moves alone already connect the state space and satisfy
//! detailed balance, so they suffice for correctness. The neighborhood
//! enumeration each step is exactly the cost (and the sample rejection the
//! paper's §1.1 criticizes) that motivated the framework's walks.

use gx_graph::{GraphAccess, NodeId};
use gx_graphlets::{classify_nodes, num_graphlets};
use gx_walks::gd::subset_is_connected;
use gx_walks::{random_start_state, rng_from_seed};
use rand::Rng;

/// Concentration estimates for k = 3, 4, 5 from one GUISE run.
#[derive(Debug, Clone)]
pub struct GuiseEstimate {
    /// Visit tallies per type, for k = 3, 4, 5.
    pub tallies: [Vec<u64>; 3],
    /// Steps taken.
    pub steps: usize,
    /// Proposals rejected (the method's known inefficiency).
    pub rejected: u64,
}

impl GuiseEstimate {
    /// Concentration vector for `k ∈ {3, 4, 5}`.
    pub fn concentrations(&self, k: usize) -> Vec<f64> {
        assert!((3..=5).contains(&k));
        let tally = &self.tallies[k - 3];
        let total: u64 = tally.iter().sum();
        if total == 0 {
            return vec![0.0; tally.len()];
        }
        tally.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// Fraction of proposals rejected.
    pub fn rejection_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.rejected as f64 / self.steps as f64
        }
    }
}

/// All neighbor states of `state` in the GUISE state graph:
/// grow by one adjacent node (size < 5) or shrink by one node keeping
/// connectivity (size > 3).
fn neighbors<G: GraphAccess>(g: &G, state: &[NodeId]) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    let size = state.len();
    if size < 5 {
        let mut candidates: Vec<NodeId> = Vec::new();
        for &v in state {
            candidates.extend_from_slice(g.neighbors(v));
        }
        candidates.sort_unstable();
        candidates.dedup();
        for w in candidates {
            if !state.contains(&w) {
                let mut next = state.to_vec();
                next.push(w);
                next.sort_unstable();
                out.push(next);
            }
        }
    }
    if size > 3 {
        for drop in 0..size {
            let mut next: Vec<NodeId> =
                state.iter().enumerate().filter(|&(i, _)| i != drop).map(|(_, &v)| v).collect();
            if subset_is_connected(g, &next) {
                next.sort_unstable();
                out.push(next);
            }
        }
    }
    out
}

/// Runs GUISE for `steps` steps from a random 4-node start state.
pub fn guise_estimate<G: GraphAccess>(g: &G, steps: usize, seed: u64) -> GuiseEstimate {
    let mut rng = rng_from_seed(seed);
    let mut state = random_start_state(g, 4, &mut rng);
    let mut est = GuiseEstimate {
        tallies: [vec![0; num_graphlets(3)], vec![0; num_graphlets(4)], vec![0; num_graphlets(5)]],
        steps,
        rejected: 0,
    };
    let mut cur_neighbors = neighbors(g, &state);
    for _ in 0..steps {
        // tally the current state
        let k = state.len();
        let id = classify_nodes(g, &state).expect("GUISE states are connected");
        est.tallies[k - 3][id.index as usize] += 1;
        // propose uniform neighbor, accept with min(1, |N(x)|/|N(y)|)
        let proposal = &cur_neighbors[rng.gen_range(0..cur_neighbors.len())];
        let prop_neighbors = neighbors(g, proposal);
        let ratio = cur_neighbors.len() as f64 / prop_neighbors.len() as f64;
        if ratio >= 1.0 || rng.gen::<f64>() < ratio {
            state = proposal.clone();
            cur_neighbors = prop_neighbors;
        } else {
            est.rejected += 1;
        }
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use gx_exact::exact_counts;
    use gx_graph::generators::classic;
    use gx_graph::Graph;

    #[test]
    fn neighbor_moves_are_symmetric() {
        let g = classic::lollipop(5, 3);
        let state = vec![0u32, 1, 2];
        for next in neighbors(&g, &state) {
            let back = neighbors(&g, &next);
            assert!(back.iter().any(|s| s == &state), "asymmetric move {state:?} -> {next:?}");
        }
    }

    #[test]
    fn states_stay_connected_and_sized() {
        use gx_walks::gd::subset_is_connected;
        let g = classic::petersen();
        let mut rng = gx_walks::rng_from_seed(3);
        let mut state = vec![0u32, 1, 2];
        for _ in 0..2000 {
            let ns = neighbors(&g, &state);
            state = ns[rand::Rng::gen_range(&mut rng, 0..ns.len())].clone();
            assert!((3..=5).contains(&state.len()));
            assert!(subset_is_connected(&g, &state));
        }
    }

    #[test]
    fn converges_to_exact_concentrations_all_k() {
        let g: Graph = classic::lollipop(6, 3);
        let est = guise_estimate(&g, 400_000, 7);
        for k in 3..=5 {
            let exact = exact_counts(&g, k).concentrations();
            let got = est.concentrations(k);
            for (i, (e, x)) in got.iter().zip(&exact).enumerate() {
                assert!((e - x).abs() < 0.03, "k={k} type {}: {e:.4} vs {x:.4}", i + 1);
            }
        }
    }

    #[test]
    fn rejection_rate_is_nonzero_on_irregular_graphs() {
        let g = classic::lollipop(5, 4);
        let est = guise_estimate(&g, 20_000, 5);
        assert!(est.rejection_rate() > 0.05, "rate {}", est.rejection_rate());
        assert!(est.rejection_rate() < 0.95);
    }

    #[test]
    fn empty_estimate_behaviour() {
        let g = classic::complete(6);
        let est = guise_estimate(&g, 0, 1);
        assert_eq!(est.concentrations(3), vec![0.0, 0.0]);
        assert_eq!(est.rejection_rate(), 0.0);
    }
}
