//! Competing estimators the paper evaluates against (§6.3).
//!
//! * [`wedge`] — wedge sampling (Seshadhri–Pinar–Kolda \[32\]): independent
//!   uniform wedges, full-access, needs O(|V|) preprocessing;
//! * [`path_sampling`] — 3-path sampling (Jha–Seshadhri–Pinar \[14\]):
//!   independent weighted 3-paths for 4-node counts, full-access, O(|E|)
//!   preprocessing (plus centered star sampling for the 3-star, which
//!   contains no 3-path);
//! * [`mod@wedge_mhrw`] — the paper's own adaptation of wedge sampling to the
//!   restricted-access setting (Appendix F, Algorithm 4): a
//!   Metropolis–Hastings walk targeting π(v) ∝ C(d_v, 2), paying 3 API
//!   calls per step;
//! * [`guise`] — GUISE (Bhuiyan et al. \[6\]): Metropolis–Hastings walk that
//!   samples uniformly over the union of all 3-, 4-, 5-node connected
//!   subgraphs, estimating all three concentration vectors at once;
//! * [`alias`] — the alias-method sampler underpinning the full-access
//!   baselines' preprocessing.
//!
//! PSRW \[36\] and the Hardiman–Katzir clustering estimator \[11\] need no
//! code here: they are exactly `EstimatorConfig::psrw(k)` and
//! `EstimatorConfig { k: 3, d: 1, .. }` of `gx-core` (paper §6.3.1).

pub mod alias;
pub mod guise;
pub mod path_sampling;
pub mod wedge;
pub mod wedge_mhrw;

pub use alias::AliasTable;
pub use guise::{guise_estimate, GuiseEstimate};
pub use path_sampling::{path_sampling_counts, PathSamplingEstimate};
pub use wedge::{wedge_sampling, WedgeEstimate};
pub use wedge_mhrw::{wedge_mhrw, WedgeMhrwEstimate};
