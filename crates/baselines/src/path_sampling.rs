//! 3-path sampling (Jha, Seshadhri, Pinar \[14\]) — the full-access baseline
//! for 4-node graphlet counts (§6.3.2).
//!
//! An edge e = (u, v) is drawn ∝ τ_e = (d_u − 1)(d_v − 1) (alias table,
//! O(|E|) preprocessing), then uniform outside neighbors u′ of u and v′ of
//! v complete a non-induced 3-path. For each 4-node type t containing p_t
//! 3-paths, `E[1{sample induces t}] = p_t · N_t / S` with S = Σ_e τ_e, so
//! `N̂_t = frac_t · S / p_t`. The multipliers p_t are the Hamilton-path
//! counts — i.e. the paper's α⁴/2 under SRW(1) (Table 2): the same
//! combinatorial object surfacing in both methods.
//!
//! The 3-star contains no 3-path, so it is estimated by the companion
//! *centered sampler*: v ∝ C(d_v, 3) plus a uniform neighbor triple, with
//! per-type star-embedding multipliers (0, 1, 0, 1, 2, 4).

use crate::alias::AliasTable;
use gx_graph::{Graph, GraphAccess, NodeId};
use gx_graphlets::alpha::alpha_table;
use gx_graphlets::classify_nodes;
use gx_walks::{rng_from_seed, WalkRng};
use rand::Rng;

/// Result of a path sampling run.
#[derive(Debug, Clone)]
pub struct PathSamplingEstimate {
    /// Estimated induced counts of the six 4-node types (paper order).
    pub counts: Vec<f64>,
    /// 3-path samples drawn.
    pub path_samples: usize,
    /// Star samples drawn.
    pub star_samples: usize,
}

impl PathSamplingEstimate {
    /// Concentration estimates derived from the counts.
    pub fn concentrations(&self) -> Vec<f64> {
        let total: f64 = self.counts.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c / total).collect()
    }
}

/// Number of non-induced 3-stars inside each induced 4-node type
/// (Σ_x C(deg_x, 3) within the type).
const STAR_EMBEDDINGS: [f64; 6] = [0.0, 1.0, 0.0, 1.0, 2.0, 4.0];

/// Runs 3-path sampling (`path_samples` draws) plus centered star
/// sampling (`star_samples` draws).
pub fn path_sampling_counts(
    g: &Graph,
    path_samples: usize,
    star_samples: usize,
    seed: u64,
) -> PathSamplingEstimate {
    let mut rng = rng_from_seed(seed);
    let mut counts = vec![0.0f64; 6];

    // ---- 3-path sampler for the five path-containing types ----
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let tau: Vec<f64> =
        edges.iter().map(|&(u, v)| ((g.degree(u) - 1) * (g.degree(v) - 1)) as f64).collect();
    let s_total: f64 = tau.iter().sum();
    if s_total > 0.0 && path_samples > 0 {
        let table = AliasTable::new(&tau);
        let mut freq = [0u64; 6];
        for _ in 0..path_samples {
            let (u, v) = edges[table.sample(&mut rng)];
            let u2 = sample_neighbor_excluding(g, u, v, &mut rng);
            let v2 = sample_neighbor_excluding(g, v, u, &mut rng);
            if u2 == v2 || u2 == v || v2 == u {
                continue; // degenerate: fewer than 4 distinct nodes
            }
            let id = classify_nodes(g, &[u2, u, v, v2]).expect("3-path union is connected");
            freq[id.index as usize] += 1;
        }
        // p_t = α⁴_t/2 under SRW(1) = Hamilton paths of the type.
        let alphas = alpha_table(4, 1);
        for t in 0..6 {
            let p_t = alphas[t] as f64 / 2.0;
            if p_t > 0.0 {
                counts[t] = freq[t] as f64 / path_samples as f64 * s_total / p_t;
            }
        }
    }

    // ---- centered star sampler for the 3-star ----
    let star_weights: Vec<f64> = (0..g.num_nodes())
        .map(|v| {
            let d = g.degree(v as NodeId) as f64;
            d * (d - 1.0) * (d - 2.0) / 6.0
        })
        .collect();
    let s3_total: f64 = star_weights.iter().sum();
    if s3_total > 0.0 && star_samples > 0 {
        let table = AliasTable::new(&star_weights);
        let mut freq = [0u64; 6];
        for _ in 0..star_samples {
            let v = table.sample(&mut rng) as NodeId;
            let (a, b, c) = sample_three_distinct_neighbors(g, v, &mut rng);
            let id = classify_nodes(g, &[v, a, b, c]).expect("star union is connected");
            freq[id.index as usize] += 1;
        }
        // Only the star estimate is taken from this sampler; the others
        // come from the (lower-variance) path sampler above.
        counts[1] = freq[1] as f64 / star_samples as f64 * s3_total / STAR_EMBEDDINGS[1];
    }

    PathSamplingEstimate { counts, path_samples, star_samples }
}

fn sample_neighbor_excluding<G: GraphAccess>(
    g: &G,
    v: NodeId,
    exclude: NodeId,
    rng: &mut WalkRng,
) -> NodeId {
    let d = g.degree(v);
    debug_assert!(d >= 2, "τ weighting guarantees a non-excluded neighbor");
    loop {
        let w = g.neighbor_at(v, rng.gen_range(0..d));
        if w != exclude {
            return w;
        }
    }
}

fn sample_three_distinct_neighbors<G: GraphAccess>(
    g: &G,
    v: NodeId,
    rng: &mut WalkRng,
) -> (NodeId, NodeId, NodeId) {
    let d = g.degree(v);
    debug_assert!(d >= 3, "C(d,3) weighting guarantees 3 neighbors");
    let i = rng.gen_range(0..d);
    let j = {
        let mut j = rng.gen_range(0..d - 1);
        if j >= i {
            j += 1;
        }
        j
    };
    let mut k = rng.gen_range(0..d - 2);
    for bound in [i.min(j), i.max(j)] {
        if k >= bound {
            k += 1;
        }
    }
    (g.neighbor_at(v, i), g.neighbor_at(v, j), g.neighbor_at(v, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gx_exact::four_node_counts;
    use gx_graph::generators::{classic, erdos_renyi_gnm, holme_kim};
    use rand::SeedableRng;

    #[test]
    fn converges_on_er_graph() {
        let mut rng = rand_pcg::Pcg64::seed_from_u64(4);
        let g = erdos_renyi_gnm(150, 600, &mut rng);
        let est = path_sampling_counts(&g, 200_000, 100_000, 11);
        let exact = four_node_counts(&g);
        for t in 0..6 {
            let x = exact.counts[t] as f64;
            if x == 0.0 {
                continue;
            }
            let rel = (est.counts[t] - x).abs() / x;
            assert!(rel < 0.1, "type {t}: {} vs {x} (rel {rel:.3})", est.counts[t]);
        }
    }

    #[test]
    fn converges_on_clustered_graph() {
        let mut rng = rand_pcg::Pcg64::seed_from_u64(6);
        let g = holme_kim(300, 3, 0.6, &mut rng);
        let est = path_sampling_counts(&g, 300_000, 150_000, 13);
        let exact = four_node_counts(&g);
        // clique (rarest, the Figure-7b quantity) within 15%
        let x = exact.counts[5] as f64;
        assert!(x > 0.0);
        let rel = (est.counts[5] - x).abs() / x;
        assert!(rel < 0.15, "clique: {} vs {x}", est.counts[5]);
        // star from the centered sampler within 10%
        let x = exact.counts[1] as f64;
        let rel = (est.counts[1] - x).abs() / x;
        assert!(rel < 0.10, "star: {} vs {x}", est.counts[1]);
    }

    #[test]
    fn star_graph_has_no_paths() {
        // every edge touches a leaf: τ ≡ 0, so path-type counts are 0 and
        // only the star sampler contributes.
        let g = classic::star(10);
        let est = path_sampling_counts(&g, 1000, 1000, 3);
        assert_eq!(est.counts[0], 0.0);
        let exact = four_node_counts(&g);
        assert!((est.counts[1] - exact.counts[1] as f64).abs() < 1e-9);
    }

    #[test]
    fn path_graph_has_no_stars() {
        let g = classic::path(10);
        let est = path_sampling_counts(&g, 20_000, 1000, 5);
        assert_eq!(est.counts[1], 0.0);
        let exact = four_node_counts(&g);
        let rel = (est.counts[0] - exact.counts[0] as f64).abs() / exact.counts[0] as f64;
        assert!(rel < 0.05, "{} vs {}", est.counts[0], exact.counts[0]);
    }

    #[test]
    fn concentrations_normalize() {
        let est = PathSamplingEstimate {
            counts: vec![1.0, 1.0, 0.0, 0.0, 0.0, 2.0],
            path_samples: 1,
            star_samples: 1,
        };
        let c = est.concentrations();
        assert!((c.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((c[5] - 0.5).abs() < 1e-12);
        let zero = PathSamplingEstimate { counts: vec![0.0; 6], path_samples: 0, star_samples: 0 };
        assert_eq!(zero.concentrations(), vec![0.0; 6]);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = rand_pcg::Pcg64::seed_from_u64(8);
        let g = erdos_renyi_gnm(60, 200, &mut rng);
        let a = path_sampling_counts(&g, 5000, 5000, 21);
        let b = path_sampling_counts(&g, 5000, 5000, 21);
        assert_eq!(a.counts, b.counts);
    }
}
