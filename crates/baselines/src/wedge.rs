//! Wedge sampling (Seshadhri, Pinar, Kolda \[32\]) — the full-access
//! baseline for triadic measures (§6.3.2).
//!
//! A uniform wedge is drawn by picking a center v ∝ C(d_v, 2) (alias
//! table, O(|V|) preprocessing) and a uniform pair of its neighbors. The
//! fraction q of *closed* wedges gives triangles = q·W/3 and induced
//! wedges (3-paths) = (1−q)·W, where W = Σ_v C(d_v, 2).

use crate::alias::AliasTable;
use gx_graph::stats::wedge_count;
use gx_graph::{Graph, NodeId};
use gx_walks::rng_from_seed;
use rand::Rng;

/// Result of a wedge sampling run.
#[derive(Debug, Clone)]
pub struct WedgeEstimate {
    /// Fraction of sampled wedges that were closed (binomial estimate).
    pub closed_fraction: f64,
    /// Total wedges W (exact, from the preprocessing pass).
    pub total_wedges: u64,
    /// Wedge samples drawn.
    pub samples: usize,
}

impl WedgeEstimate {
    /// Estimated counts [induced wedges (g3_1), triangles (g3_2)].
    pub fn counts(&self) -> [f64; 2] {
        let w = self.total_wedges as f64;
        [(1.0 - self.closed_fraction) * w, self.closed_fraction * w / 3.0]
    }

    /// Estimated concentrations [c³₁, c³₂].
    pub fn concentrations(&self) -> [f64; 2] {
        let [p, t] = self.counts();
        let total = p + t;
        if total == 0.0 {
            return [0.0, 0.0];
        }
        [p / total, t / total]
    }

    /// Estimated global clustering coefficient 3T/W = q.
    pub fn clustering_coefficient(&self) -> f64 {
        self.closed_fraction
    }
}

/// Runs wedge sampling with `samples` independent wedges.
pub fn wedge_sampling(g: &Graph, samples: usize, seed: u64) -> WedgeEstimate {
    let n = g.num_nodes();
    assert!(n > 0, "empty graph");
    // Preprocessing: node weights C(d_v, 2) (the O(|V|) cost of §6.3.2).
    let weights: Vec<f64> = (0..n)
        .map(|v| {
            let d = g.degree(v as NodeId) as f64;
            d * (d - 1.0) / 2.0
        })
        .collect();
    let table = AliasTable::new(&weights);
    let total_wedges = wedge_count(g);
    let mut rng = rng_from_seed(seed);
    let mut closed = 0u64;
    for _ in 0..samples {
        let v = table.sample(&mut rng) as NodeId;
        let d = g.degree(v);
        // uniform unordered pair of distinct neighbors
        let i = rng.gen_range(0..d);
        let j = {
            let mut j = rng.gen_range(0..d - 1);
            if j >= i {
                j += 1;
            }
            j
        };
        let a = g.neighbor_at(v, i);
        let b = g.neighbor_at(v, j);
        if g.has_edge(a, b) {
            closed += 1;
        }
    }
    WedgeEstimate { closed_fraction: closed as f64 / samples.max(1) as f64, total_wedges, samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gx_exact::{three_node_counts, triangle_count};
    use gx_graph::generators::{classic, holme_kim};
    use rand::SeedableRng;

    #[test]
    fn exact_on_complete_graph() {
        // K6: every wedge is closed.
        let est = wedge_sampling(&classic::complete(6), 2000, 1);
        assert_eq!(est.closed_fraction, 1.0);
        let [paths, triangles] = est.counts();
        assert_eq!(paths, 0.0);
        assert_eq!(triangles, 20.0); // C(6,3)
        assert_eq!(est.concentrations(), [0.0, 1.0]);
    }

    #[test]
    fn exact_on_triangle_free_graph() {
        let est = wedge_sampling(&classic::petersen(), 2000, 2);
        assert_eq!(est.closed_fraction, 0.0);
        assert_eq!(est.counts()[0], 30.0);
        assert_eq!(est.clustering_coefficient(), 0.0);
    }

    #[test]
    fn converges_on_clustered_graph() {
        let mut rng = rand_pcg::Pcg64::seed_from_u64(3);
        let g = holme_kim(500, 3, 0.6, &mut rng);
        let est = wedge_sampling(&g, 100_000, 7);
        let exact = three_node_counts(&g);
        let conc = est.concentrations();
        let want = exact.concentrations();
        assert!((conc[1] - want[1]).abs() < 0.01, "{} vs {}", conc[1], want[1]);
        // count estimates within 5%
        let t_est = est.counts()[1];
        let t = triangle_count(&g) as f64;
        assert!((t_est - t).abs() / t < 0.05, "{t_est} vs {t}");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = classic::lollipop(5, 3);
        let a = wedge_sampling(&g, 1000, 42);
        let b = wedge_sampling(&g, 1000, 42);
        assert_eq!(a.closed_fraction, b.closed_fraction);
    }

    #[test]
    fn zero_samples_degenerate() {
        let est = wedge_sampling(&classic::complete(4), 0, 1);
        assert_eq!(est.closed_fraction, 0.0);
        assert_eq!(est.concentrations()[0], 1.0); // all mass on paths: W>0
    }
}
