//! Adapted wedge sampling for restricted access (paper Appendix F,
//! Algorithm 4).
//!
//! A Metropolis–Hastings walk targets π(v) ∝ C(d_v, 2); at every step a
//! uniform pair of the current node's neighbors is checked for closure.
//! Per the paper's §6.3.3 accounting, each step must explore three nodes'
//! neighborhoods (the center and the two wedge endpoints) — 3× the API
//! cost of the framework's SRW-based methods at equal step budgets, which
//! is the point of Figure 8.

use gx_graph::{GraphAccess, NodeId};
use gx_walks::{rng_from_seed, MhWalk};
use rand::Rng;

/// Result of an Algorithm-4 run.
#[derive(Debug, Clone)]
pub struct WedgeMhrwEstimate {
    /// Closed wedges observed.
    pub closed: u64,
    /// Open wedges observed.
    pub open: u64,
    /// Steps taken.
    pub steps: usize,
}

impl WedgeMhrwEstimate {
    /// ĉ³₁ = 3Ĉ₁ / (3Ĉ₁ + Ĉ₂) (Algorithm 4, line 17).
    pub fn c31(&self) -> f64 {
        let denom = 3.0 * self.open as f64 + self.closed as f64;
        if denom == 0.0 {
            return 0.0;
        }
        3.0 * self.open as f64 / denom
    }

    /// ĉ³₂ = Ĉ₂ / (3Ĉ₁ + Ĉ₂) (Algorithm 4, line 17).
    pub fn c32(&self) -> f64 {
        let denom = 3.0 * self.open as f64 + self.closed as f64;
        if denom == 0.0 {
            return 0.0;
        }
        self.closed as f64 / denom
    }

    /// API calls charged: 3 per step (§6.3.3).
    pub fn api_calls(&self) -> u64 {
        3 * self.steps as u64
    }
}

/// Runs Algorithm 4 for `steps` steps from a random valid start.
pub fn wedge_mhrw<G: GraphAccess>(g: &G, steps: usize, seed: u64) -> WedgeMhrwEstimate {
    let mut rng = rng_from_seed(seed);
    // line 3: a random node with d_v ≥ 2
    let n = g.num_nodes();
    assert!(n > 0, "empty graph");
    let start = loop {
        let v = rng.gen_range(0..n as NodeId);
        if g.degree(v) >= 2 {
            break v;
        }
    };
    let choose2 = |d: usize| (d * d.saturating_sub(1)) as f64 / 2.0;
    let mut walk = MhWalk::new(g, start, choose2);
    let mut est = WedgeMhrwEstimate { closed: 0, open: 0, steps };
    for _ in 0..steps {
        let v = walk.current();
        let d = g.degree(v);
        // lines 5–9: uniform random pair of neighbors of v_t
        let i = rng.gen_range(0..d);
        let j = {
            let mut j = rng.gen_range(0..d - 1);
            if j >= i {
                j += 1;
            }
            j
        };
        let a = g.neighbor_at(v, i);
        let b = g.neighbor_at(v, j);
        if g.has_edge(a, b) {
            est.closed += 1;
        } else {
            est.open += 1;
        }
        // lines 10–15: MH transition with acceptance (d_w−1)/(d_v−1)
        walk.step(&mut rng);
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use gx_exact::three_node_counts;
    use gx_graph::generators::{classic, holme_kim};
    use gx_graph::ApiGraph;
    use rand::SeedableRng;

    #[test]
    fn exact_on_complete_graph() {
        let est = wedge_mhrw(&classic::complete(6), 2000, 1);
        assert_eq!(est.open, 0);
        assert_eq!(est.c32(), 1.0);
        assert_eq!(est.c31(), 0.0);
    }

    #[test]
    fn exact_on_triangle_free_graph() {
        let est = wedge_mhrw(&classic::petersen(), 2000, 2);
        assert_eq!(est.closed, 0);
        assert_eq!(est.c31(), 1.0);
        assert_eq!(est.c32(), 0.0);
    }

    #[test]
    fn converges_on_clustered_graph() {
        let mut rng = rand_pcg::Pcg64::seed_from_u64(5);
        let g = holme_kim(400, 3, 0.5, &mut rng);
        let est = wedge_mhrw(&g, 150_000, 9);
        let want = three_node_counts(&g).concentrations();
        assert!((est.c32() - want[1]).abs() < 0.01, "{} vs {}", est.c32(), want[1]);
        assert!((est.c31() - want[0]).abs() < 0.01);
    }

    #[test]
    fn concentrations_sum_to_one() {
        let g = classic::lollipop(4, 3);
        let est = wedge_mhrw(&g, 10_000, 3);
        assert!((est.c31() + est.c32() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn api_accounting_is_3x() {
        let g = classic::lollipop(4, 3);
        let est = wedge_mhrw(&g, 500, 3);
        assert_eq!(est.api_calls(), 1500);
        // and the metered wrapper confirms ~3 distinct-node touches/step
        let api = ApiGraph::new(&g);
        let _ = wedge_mhrw(&api, 500, 3);
        let per_step = api.stats().total_requests as f64 / 500.0;
        assert!(per_step >= 3.0, "measured {per_step} requests/step");
    }

    #[test]
    fn zero_steps() {
        let est = wedge_mhrw(&classic::complete(4), 0, 1);
        assert_eq!(est.c31(), 0.0);
        assert_eq!(est.c32(), 0.0);
    }
}
