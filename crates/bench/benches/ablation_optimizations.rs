//! Ablation (the §6.2.1 findings isolated): what CSS and NB-SRW each
//! contribute, independently and combined, for both the d = 1 / k = 3 and
//! d = 2 / k = 4 settings — plus the d-sweep that motivates the whole
//! framework.
//!
//! Expected shape: CSS is a large win (the paper reports >3x on some
//! datasets), NB-SRW's gain is marginal; and NRMSE grows with d at fixed
//! budget.

use gx_bench::{f, nrmse_of_type, print_table, runs, steps, write_json};
use gx_core::EstimatorConfig;
use gx_datasets::dataset;

fn main() {
    let n_steps = steps(20_000);
    let n_runs = runs(32);
    println!("Optimization ablation: {n_steps} steps, {n_runs} runs");
    let mut json = serde_json::Map::new();

    // CSS / NB factorial for triangles on two contrasting datasets.
    let mut rows = Vec::new();
    for name in ["facebook-sim", "slashdot-sim"] {
        let ds = dataset(name);
        let truth = ds.exact_concentrations(3);
        let mut row = vec![name.to_string()];
        for (css, nb) in [(false, false), (true, false), (false, true), (true, true)] {
            let cfg = EstimatorConfig { k: 3, d: 1, css, non_backtracking: nb, burn_in: 0 };
            let e = nrmse_of_type(ds.graph(), &cfg, &truth, 1, n_steps, n_runs, 0xAB1);
            json.insert(format!("k3/{name}/{}", cfg.name()), serde_json::json!(e));
            row.push(f(e));
        }
        rows.push(row);
    }
    print_table(
        "Ablation: triangle NRMSE, d = 1 factorial",
        ["dataset", "SRW1", "SRW1CSS", "SRW1NB", "SRW1CSSNB"].map(String::from).as_slice(),
        &rows,
    );

    // CSS / NB factorial for the 4-clique on G(2).
    let mut rows = Vec::new();
    for name in ["epinion-sim", "brightkite-sim"] {
        let ds = dataset(name);
        let truth = ds.exact_concentrations(4);
        let mut row = vec![name.to_string()];
        for (css, nb) in [(false, false), (true, false), (false, true), (true, true)] {
            let cfg = EstimatorConfig { k: 4, d: 2, css, non_backtracking: nb, burn_in: 0 };
            let e = nrmse_of_type(ds.graph(), &cfg, &truth, 5, n_steps, n_runs, 0xAB2);
            json.insert(format!("k4/{name}/{}", cfg.name()), serde_json::json!(e));
            row.push(f(e));
        }
        rows.push(row);
    }
    print_table(
        "Ablation: 4-clique NRMSE, d = 2 factorial",
        ["dataset", "SRW2", "SRW2CSS", "SRW2NB", "SRW2CSSNB"].map(String::from).as_slice(),
        &rows,
    );

    // d-sweep at fixed budget: the framework's central claim.
    let ds = dataset("brightkite-sim");
    let truth = ds.exact_concentrations(4);
    let mut row = vec!["brightkite-sim".to_string()];
    for d in 2..=4 {
        let cfg = EstimatorConfig { k: 4, d, ..Default::default() };
        let r = if d >= 4 { (n_runs / 4).max(4) } else { n_runs };
        let e = nrmse_of_type(ds.graph(), &cfg, &truth, 5, n_steps, r, 0xAB3);
        json.insert(format!("dsweep/SRW{d}"), serde_json::json!(e));
        row.push(f(e));
    }
    print_table(
        "Ablation: 4-clique NRMSE vs d (SRW4 = walk on G(4), l = 1)",
        ["dataset", "d=2", "d=3", "d=4"].map(String::from).as_slice(),
        &[row],
    );
    write_json("ablation_optimizations", &serde_json::Value::Object(json));
}
