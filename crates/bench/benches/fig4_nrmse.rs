//! Regenerates Figure 4: NRMSE of the concentration estimates of the
//! *hardest* (rarest) graphlet per size — triangle g³₂, 4-clique g⁴₆,
//! 5-clique g⁵₂₁ — at a 20K-step budget, across datasets and methods.
//!
//! Expected shape (paper §6.2.1): SRW1CSSNB wins for k = 3; SRW2CSS wins
//! for k = 4, 5; walks on smaller d beat PSRW (SRW3/SRW4); CSS helps a
//! lot, NB only a little.

use gx_bench::{
    f, methods_k3, methods_k4, methods_k5, nrmse_of_type, print_table, runs, steps, write_json,
    Method,
};
use gx_datasets::{registry, small_datasets, Dataset};

#[allow(clippy::too_many_arguments)]
fn panel(
    title: &str,
    datasets: &[&Dataset],
    methods: &[Method],
    k: usize,
    type_idx: usize,
    n_steps: usize,
    n_runs: usize,
    json: &mut serde_json::Map<String, serde_json::Value>,
) {
    let headers: Vec<String> = std::iter::once("dataset".to_string())
        .chain(methods.iter().map(|m| m.label.clone()))
        .collect();
    let mut rows = Vec::new();
    for ds in datasets {
        let truth = ds.exact_concentrations(k);
        let mut row = vec![ds.name.to_string()];
        let mut per_method = serde_json::Map::new();
        for m in methods {
            // PSRW on G(4) is slow; the paper, too, used 10x fewer runs.
            let r = if m.cfg.d >= 4 { (n_runs / 4).max(4) } else { n_runs };
            let e = nrmse_of_type(ds.graph(), &m.cfg, &truth, type_idx, n_steps, r, 0xF14);
            row.push(f(e));
            per_method.insert(m.label.clone(), serde_json::json!(e));
        }
        json.insert(format!("{title}/{}", ds.name), serde_json::Value::Object(per_method));
        rows.push(row);
    }
    print_table(title, &headers, &rows);
}

fn main() {
    let n_steps = steps(20_000);
    let n_runs = runs(24);
    println!(
        "Figure 4 reproduction: NRMSE at {n_steps} steps, {n_runs} runs \
         (set GX_RUNS / GX_STEPS to change)"
    );
    let mut json = serde_json::Map::new();

    let all: Vec<&Dataset> = registry().iter().collect();
    let small: Vec<&Dataset> = small_datasets().collect();

    panel("Fig 4a: triangle (g3_2) NRMSE", &all, &methods_k3(), 3, 1, n_steps, n_runs, &mut json);
    panel("Fig 4b: 4-clique (g4_6) NRMSE", &all, &methods_k4(), 4, 5, n_steps, n_runs, &mut json);
    panel(
        "Fig 4c: 5-clique (g5_21) NRMSE",
        &small,
        &methods_k5(),
        5,
        20,
        n_steps,
        n_runs,
        &mut json,
    );
    write_json("fig4_nrmse", &serde_json::Value::Object(json));
}
