//! Regenerates Figure 5: how the walk on `G(d)` re-weights the 4-node
//! graphlet mix (weighted concentration α·C/Σα·C, panel a) and how that
//! maps to per-type NRMSE (panel b), on the Epinion analog.
//!
//! Expected shape: SRW2 lifts the rare cycle/chordal/clique types more
//! than SRW3 does, and correspondingly SRW2/SRW2CSS beat SRW3 on every
//! type except the one SRW3 lifts higher (g4_3, the cycle).

use gx_bench::{f, methods_k4, nrmse_of_type, print_table, runs, steps, write_json};
use gx_core::theory::weighted_concentration;
use gx_datasets::dataset;
use gx_graphlets::atlas;

fn main() {
    let ds = dataset("epinion-sim");
    let truth = ds.ground_truth(4);
    let plain = truth.concentrations();
    let w2 = weighted_concentration(&truth.counts, 4, 2);
    let w3 = weighted_concentration(&truth.counts, 4, 3);

    let headers: Vec<String> = std::iter::once("quantity".to_string())
        .chain(atlas(4).iter().map(|i| i.name.to_string()))
        .collect();
    let rows = vec![
        std::iter::once("original c".to_string()).chain(plain.iter().map(|&x| f(x))).collect(),
        std::iter::once("weighted (SRW2)".to_string()).chain(w2.iter().map(|&x| f(x))).collect(),
        std::iter::once("weighted (SRW3)".to_string()).chain(w3.iter().map(|&x| f(x))).collect(),
    ];
    print_table("Fig 5a: weighted concentration, epinion-sim", &headers, &rows);

    let n_steps = steps(20_000);
    let n_runs = runs(24);
    let mut rows = Vec::new();
    let mut json = serde_json::Map::new();
    for m in methods_k4() {
        let mut row = vec![m.label.clone()];
        let mut per_type = Vec::new();
        for t in 0..6 {
            let e = nrmse_of_type(ds.graph(), &m.cfg, &plain, t, n_steps, n_runs, 0xF15);
            row.push(f(e));
            per_type.push(e);
        }
        json.insert(m.label.clone(), serde_json::json!(per_type));
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("method".to_string())
        .chain(atlas(4).iter().map(|i| i.name.to_string()))
        .collect();
    print_table(
        &format!("Fig 5b: per-type NRMSE, epinion-sim ({n_steps} steps, {n_runs} runs)"),
        &headers,
        &rows,
    );
    write_json("fig5_weighted", &serde_json::Value::Object(json));
}
