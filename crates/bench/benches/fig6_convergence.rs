//! Regenerates Figure 6: NRMSE as the walk budget grows from 2K to 20K
//! steps, for the rarest graphlet of each size on representative
//! datasets.
//!
//! Expected shape: monotone-ish decay with the same method ordering as
//! Figure 4 (SRW1CSSNB best for triangles; SRW2CSS best for 4-/5-node
//! cliques) at every budget.

use gx_bench::{
    f, methods_k3, methods_k4, methods_k5, nrmse_of_type, print_table, runs, write_json,
};
use gx_datasets::{dataset, Dataset};

fn series(
    title: &str,
    ds: &Dataset,
    methods: &[gx_bench::Method],
    k: usize,
    type_idx: usize,
    n_runs: usize,
    json: &mut serde_json::Map<String, serde_json::Value>,
) {
    let truth = ds.exact_concentrations(k);
    let budgets: Vec<usize> = (1..=10).map(|i| 2_000 * i).collect();
    let headers: Vec<String> = std::iter::once("steps".to_string())
        .chain(methods.iter().map(|m| m.label.clone()))
        .collect();
    let mut rows = Vec::new();
    let mut data = serde_json::Map::new();
    for &steps in &budgets {
        let mut row = vec![steps.to_string()];
        for m in methods {
            let r = if m.cfg.d >= 4 { (n_runs / 4).max(4) } else { n_runs };
            let e = nrmse_of_type(ds.graph(), &m.cfg, &truth, type_idx, steps, r, 0xF16);
            row.push(f(e));
            data.entry(m.label.clone())
                .or_insert_with(|| serde_json::json!([]))
                .as_array_mut()
                .unwrap()
                .push(serde_json::json!({ "steps": steps, "nrmse": e }));
        }
        rows.push(row);
    }
    print_table(title, &headers, &rows);
    json.insert(title.to_string(), serde_json::Value::Object(data));
}

fn main() {
    let n_runs = runs(24);
    println!("Figure 6 reproduction: convergence, {n_runs} runs per point (GX_RUNS to change)");
    let mut json = serde_json::Map::new();
    series(
        "Fig 6a: triangle NRMSE vs steps, slashdot-sim",
        dataset("slashdot-sim"),
        &methods_k3(),
        3,
        1,
        n_runs,
        &mut json,
    );
    series(
        "Fig 6b: 4-clique NRMSE vs steps, epinion-sim",
        dataset("epinion-sim"),
        &methods_k4(),
        4,
        5,
        n_runs,
        &mut json,
    );
    series(
        "Fig 6c: 5-clique NRMSE vs steps, facebook-sim",
        dataset("facebook-sim"),
        &methods_k5(),
        5,
        20,
        n_runs,
        &mut json,
    );
    write_json("fig6_convergence", &serde_json::Value::Object(json));
}
