//! Regenerates Figure 7: graphlet *count* estimation against the
//! full-access baselines at equal wall time — triangle counts
//! (SRW1CSSNB vs wedge sampling, panel a) and 4-clique counts (SRW2CSS vs
//! 3-path sampling, panel b).
//!
//! Expected shape: the independent samplers win on small triangle-rich
//! graphs; the walks win as graphs get larger/sparser because they skip
//! the preprocessing pass and generate samples faster (§6.3.2).

// Benchmark harness: wall-clock timing is the whole point here.
#![allow(clippy::disallowed_methods)]

use gx_baselines::{path_sampling_counts, wedge_sampling};
use gx_bench::{f, print_table, runs, write_json};
use gx_core::eval::nrmse;
use gx_core::{estimate, relationship_edge_count, EstimatorConfig};
use gx_datasets::{registry, Dataset};
use rayon::prelude::*;
use std::time::Instant;

/// Calibrates how many walk steps fit in the wall time of one baseline
/// run (the paper's protocol: same running time, §6.3.2).
fn calibrate_steps(ds: &Dataset, cfg: &EstimatorConfig, baseline_secs: f64) -> usize {
    let probe = 4_000usize;
    let t = Instant::now();
    let _ = estimate(ds.graph(), cfg, probe, 0xCAFE);
    let per_step = t.elapsed().as_secs_f64() / probe as f64;
    ((baseline_secs / per_step) as usize).clamp(1_000, 2_000_000)
}

fn main() {
    let n_runs = runs(16);
    let baseline_samples = 200_000; // the original papers' budget
    println!(
        "Figure 7 reproduction: count NRMSE at equal wall time \
         ({baseline_samples} baseline samples, {n_runs} runs)"
    );
    let datasets: Vec<&Dataset> = registry().iter().collect();
    let mut json = serde_json::Map::new();

    // ---- panel a: triangle counts ----
    let cfg3 = EstimatorConfig::recommended(3);
    let mut rows = Vec::new();
    for ds in &datasets {
        let g = ds.graph();
        let truth = ds.ground_truth(3).counts[1] as f64;
        let t = Instant::now();
        let _ = wedge_sampling(g, baseline_samples, 0);
        let wedge_secs = t.elapsed().as_secs_f64();
        let steps = calibrate_steps(ds, &cfg3, wedge_secs);
        let two_r = 2.0 * relationship_edge_count(g, 1) as f64;
        let rw: Vec<f64> = (0..n_runs as u64)
            .into_par_iter()
            .map(|s| estimate(g, &cfg3, steps, gx_walks::derive_seed(0xA1, s)).counts(two_r)[1])
            .collect();
        let wg: Vec<f64> = (0..n_runs as u64)
            .into_par_iter()
            .map(|s| wedge_sampling(g, baseline_samples, s).counts()[1])
            .collect();
        let (e_rw, e_wg) = (nrmse(&rw, truth), nrmse(&wg, truth));
        json.insert(
            format!("triangle/{}", ds.name),
            serde_json::json!({ "SRW1CSSNB": e_rw, "Wedge": e_wg, "walk_steps": steps }),
        );
        rows.push(vec![ds.name.to_string(), steps.to_string(), f(e_rw), f(e_wg)]);
    }
    print_table(
        "Fig 7a: triangle count NRMSE (equal wall time)",
        ["dataset", "walk steps", "SRW1CSSNB", "Wedge"].map(String::from).as_slice(),
        &rows,
    );

    // ---- panel b: 4-clique counts ----
    let cfg4 = EstimatorConfig::recommended(4);
    let mut rows = Vec::new();
    for ds in &datasets {
        let g = ds.graph();
        let truth = ds.ground_truth(4).counts[5] as f64;
        if truth == 0.0 {
            continue;
        }
        let t = Instant::now();
        let _ = path_sampling_counts(g, baseline_samples, baseline_samples / 2, 0);
        let path_secs = t.elapsed().as_secs_f64();
        let steps = calibrate_steps(ds, &cfg4, path_secs);
        let two_r = 2.0 * relationship_edge_count(g, 2) as f64;
        let rw: Vec<f64> = (0..n_runs as u64)
            .into_par_iter()
            .map(|s| estimate(g, &cfg4, steps, gx_walks::derive_seed(0xB2, s)).counts(two_r)[5])
            .collect();
        let ps: Vec<f64> = (0..n_runs as u64)
            .into_par_iter()
            .map(|s| path_sampling_counts(g, baseline_samples, baseline_samples / 2, s).counts[5])
            .collect();
        let (e_rw, e_ps) = (nrmse(&rw, truth), nrmse(&ps, truth));
        json.insert(
            format!("clique4/{}", ds.name),
            serde_json::json!({ "SRW2CSS": e_rw, "3-path": e_ps, "walk_steps": steps }),
        );
        rows.push(vec![ds.name.to_string(), steps.to_string(), f(e_rw), f(e_ps)]);
    }
    print_table(
        "Fig 7b: 4-clique count NRMSE (equal wall time)",
        ["dataset", "walk steps", "SRW2CSS", "3-path"].map(String::from).as_slice(),
        &rows,
    );
    write_json("fig7_fullaccess", &serde_json::Value::Object(json));
}
