//! Regenerates Figure 8: the framework's SRW1CSSNB against the adapted
//! wedge sampling (Wedge-MHRW, Algorithm 4) for triangle concentration,
//! at equal *random walk step* budgets (where MHRW additionally pays 3x
//! the API calls per step).
//!
//! Expected shape: SRW1CSSNB has uniformly lower NRMSE (the paper reports
//! up to 8x, Wikipedia), and both converge as the budget grows.

use gx_baselines::wedge_mhrw;
use gx_bench::{f, print_table, runs, steps, write_json};
use gx_core::eval::nrmse;
use gx_core::{estimate, EstimatorConfig};
use gx_datasets::{dataset, registry};
use rayon::prelude::*;

fn nrmse_pair(ds: &gx_datasets::Dataset, n_steps: usize, n_runs: usize) -> (f64, f64) {
    let g = ds.graph();
    let truth = ds.exact_concentrations(3)[1];
    let cfg = EstimatorConfig::recommended(3);
    let rw: Vec<f64> = (0..n_runs as u64)
        .into_par_iter()
        .map(|s| estimate(g, &cfg, n_steps, gx_walks::derive_seed(0xF8, s)).concentrations()[1])
        .collect();
    let mh: Vec<f64> = (0..n_runs as u64)
        .into_par_iter()
        .map(|s| wedge_mhrw(g, n_steps, gx_walks::derive_seed(0xF9, s)).c32())
        .collect();
    (nrmse(&rw, truth), nrmse(&mh, truth))
}

fn main() {
    let n_steps = steps(20_000);
    let n_runs = runs(24);
    println!("Figure 8 reproduction: {n_steps} steps, {n_runs} runs");
    let mut json = serde_json::Map::new();

    // panel a: accuracy across datasets at the full budget
    let mut rows = Vec::new();
    for ds in registry() {
        let (rw, mh) = nrmse_pair(ds, n_steps, n_runs);
        json.insert(
            format!("acc/{}", ds.name),
            serde_json::json!({ "SRW1CSSNB": rw, "Wedge-MHRW": mh }),
        );
        rows.push(vec![ds.name.to_string(), f(rw), f(mh), format!("{:.1}x", mh / rw)]);
    }
    print_table(
        "Fig 8a: triangle concentration NRMSE",
        ["dataset", "SRW1CSSNB", "Wedge-MHRW", "MHRW/RW"].map(String::from).as_slice(),
        &rows,
    );

    // panel b: convergence on the two largest analogs
    for name in ["twitter-sim", "sinaweibo-sim"] {
        let ds = dataset(name);
        let mut rows = Vec::new();
        for i in 1..=5 {
            let s = n_steps * i / 5;
            let (rw, mh) = nrmse_pair(ds, s, n_runs);
            json.insert(
                format!("conv/{name}/{s}"),
                serde_json::json!({ "SRW1CSSNB": rw, "Wedge-MHRW": mh }),
            );
            rows.push(vec![s.to_string(), f(rw), f(mh)]);
        }
        print_table(
            &format!("Fig 8b: convergence on {name}"),
            ["steps", "SRW1CSSNB", "Wedge-MHRW"].map(String::from).as_slice(),
            &rows,
        );
    }
    write_json("fig8_mhrw", &serde_json::Value::Object(json));
}
