//! Criterion micro-benchmarks for the cost model the paper's §5 claims:
//! per-step cost of the walks by d (O(1) for d ≤ 2, enumeration beyond),
//! the CSS overhead, classification, and the exact counters.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gx_core::{estimate, EstimatorConfig};
use gx_datasets::dataset;
use gx_exact::{count_graphlets_esu, four_node_counts, three_node_counts};
use gx_graphlets::classify_mask;
use gx_walks::{random_start_state, rng_from_seed, G2Walk, GdWalk, SrwWalk, StateWalk};

fn bench_walk_steps(c: &mut Criterion) {
    let g = dataset("epinion-sim").graph();
    let mut group = c.benchmark_group("walk_step");
    group.bench_function("srw1", |b| {
        let mut rng = rng_from_seed(1);
        let mut w = SrwWalk::new(g, 0, false);
        b.iter(|| {
            w.step(&mut rng);
            w.state_degree()
        });
    });
    group.bench_function("g2", |b| {
        let mut rng = rng_from_seed(2);
        let (u, v) = gx_walks::random_start_edge(g, &mut rng);
        let mut w = G2Walk::new(g, u, v, false);
        b.iter(|| {
            w.step(&mut rng);
            w.state_degree()
        });
    });
    for d in [3usize, 4] {
        group.bench_function(format!("g{d}"), |b| {
            let mut rng = rng_from_seed(3);
            let start = random_start_state(g, d, &mut rng);
            let mut w = GdWalk::new(g, &start, false);
            b.iter(|| {
                w.step(&mut rng);
                w.state_degree()
            });
        });
    }
    group.finish();
}

fn bench_estimators_end_to_end(c: &mut Criterion) {
    let g = dataset("epinion-sim").graph();
    let mut group = c.benchmark_group("estimate_1k_steps");
    group.sample_size(10);
    for cfg in [
        EstimatorConfig { k: 4, d: 2, ..Default::default() },
        EstimatorConfig { k: 4, d: 2, css: true, ..Default::default() },
        EstimatorConfig { k: 4, d: 3, ..Default::default() },
        EstimatorConfig { k: 3, d: 1, css: true, non_backtracking: true, ..Default::default() },
    ] {
        group.bench_function(format!("{}_k{}", cfg.name(), cfg.k), |b| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed += 1;
                    seed
                },
                |s| estimate(g, &cfg, 1_000, s),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_classification(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify");
    group.bench_function("classify_mask_k5", |b| {
        let mut m = 0u32;
        b.iter(|| {
            m = (m + 37) % 1024;
            classify_mask(5, m)
        });
    });
    group.finish();
}

fn bench_exact_counters(c: &mut Criterion) {
    let g = dataset("brightkite-sim").graph();
    let mut group = c.benchmark_group("exact");
    group.sample_size(10);
    group.bench_function("three_node_closed_form", |b| b.iter(|| three_node_counts(g)));
    group.bench_function("four_node_closed_form", |b| b.iter(|| four_node_counts(g)));
    group.bench_function("esu_k4", |b| b.iter(|| count_graphlets_esu(g, 4)));
    group.finish();
}

criterion_group!(
    benches,
    bench_walk_steps,
    bench_estimators_end_to_end,
    bench_classification,
    bench_exact_counters
);
criterion_main!(benches);
