//! Regenerates Tables 2 and 3 of the paper: the α/2 coefficients of every
//! 3-, 4-, 5-node graphlet under SRW(d), computed from scratch with
//! Algorithm 2.

use gx_bench::print_table;
use gx_core::alpha_table;
use gx_graphlets::atlas;

fn main() {
    for (k, ds) in [(3usize, 1..=3usize), (4, 1..=3)] {
        let headers: Vec<String> = std::iter::once("graphlet".to_string())
            .chain(atlas(k).iter().map(|i| i.name.to_string()))
            .collect();
        let rows: Vec<Vec<String>> = ds
            .map(|d| {
                std::iter::once(format!("SRW({d})  α/2"))
                    .chain(alpha_table(k, d).iter().map(|&a| {
                        if a % 2 == 0 {
                            format!("{}", a / 2)
                        } else {
                            format!("{a}/2")
                        }
                    }))
                    .collect()
            })
            .collect();
        print_table(&format!("Table 2 (k = {k}): coefficient α/2"), &headers, &rows);
    }

    let headers: Vec<String> =
        std::iter::once("ID".to_string()).chain((1..=21).map(|i: u32| i.to_string())).collect();
    let mut rows: Vec<Vec<String>> = Vec::new();
    rows.push(
        std::iter::once("name".to_string())
            .chain(atlas(5).iter().map(|i| i.name.to_string()))
            .collect(),
    );
    for d in 1..=4 {
        rows.push(
            std::iter::once(format!("SRW({d})  α/2"))
                .chain(alpha_table(5, d).iter().map(|&a| format!("{}", a / 2)))
                .collect(),
        );
    }
    print_table("Table 3 (k = 5): coefficient α/2 for all 21 five-node graphlets", &headers, &rows);
    println!(
        "\nNote: the published Table 3 prints 12 in the SRW(4) row for columns \
         8, 9, 10, 11, 15;\nthose cells are α, not α/2 (each of those graphlets \
         has |S| = 4 connected 4-subgraphs,\nso α = (|S|−1)|S| = 12 by the \
         paper's own Appendix-B formula). Values above are α/2 = 6."
    );
}
