//! Regenerates Table 5: the dataset inventory with exact c³₂ (triangle),
//! c⁴₆ (4-clique) and — for the small group — c⁵₂₁ (5-clique)
//! concentrations, on the synthetic analogs.

use gx_bench::{print_table, write_json};
use gx_datasets::registry;

fn main() {
    let headers: Vec<String> =
        ["graph", "analog of", "|V|", "|E|", "c32 (1e-2)", "c46 (1e-3)", "c521 (1e-5)"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let mut rows = Vec::new();
    let mut json = serde_json::Map::new();
    for ds in registry() {
        let g = ds.graph();
        let c3 = ds.exact_concentrations(3);
        let c4 = ds.exact_concentrations(4);
        let c5_21 = if ds.small { Some(ds.exact_concentrations(5)[20]) } else { None };
        rows.push(vec![
            ds.name.to_string(),
            ds.paper_analog.to_string(),
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            format!("{:.3}", c3[1] * 1e2),
            format!("{:.4}", c4[5] * 1e3),
            c5_21.map_or("-".to_string(), |c| format!("{:.3}", c * 1e5)),
        ]);
        json.insert(
            ds.name.to_string(),
            serde_json::json!({
                "analog": ds.paper_analog,
                "nodes": g.num_nodes(),
                "edges": g.num_edges(),
                "c32": c3[1],
                "c46": c4[5],
                "c521": c5_21,
            }),
        );
    }
    print_table("Table 5: datasets (synthetic analogs)", &headers, &rows);
    println!(
        "\nAs in the paper: clique concentrations are small everywhere, the \
         Facebook analog is the most clustered,\nthe Sinaweibo analog the \
         least, and 5-node ground truth exists only for the small group."
    );
    write_json("table5_datasets", &serde_json::Value::Object(json));
}
