//! Regenerates Table 6: wall time of 20K random-walk steps for SRW2,
//! SRW2CSS, SRW3, SRW4 (estimating 5-node graphlets) against full exact
//! enumeration, on the four small datasets.
//!
//! Expected shape: SRW2 ≈ SRW2CSS ≪ SRW3 ≪ SRW4 ≪ Exact — the walk on
//! `G(d)` gets cheaper as d shrinks because neighbor generation on G and
//! G(2) is O(1) while G(3)/G(4) need per-step neighborhood enumeration.

// Benchmark harness: wall-clock timing is the whole point here.
#![allow(clippy::disallowed_methods)]

use gx_bench::{print_table, steps, write_json};
use gx_core::{estimate, EstimatorConfig};
use gx_datasets::small_datasets;
use gx_exact::count_graphlets_esu_parallel;
use std::time::Instant;

fn time_ms(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let n_steps = steps(20_000);
    let methods: Vec<(String, EstimatorConfig)> = [
        EstimatorConfig { k: 5, d: 2, ..Default::default() },
        EstimatorConfig { k: 5, d: 2, css: true, ..Default::default() },
        EstimatorConfig { k: 5, d: 3, ..Default::default() },
        EstimatorConfig { k: 5, d: 4, ..Default::default() },
    ]
    .into_iter()
    .map(|cfg| (cfg.name(), cfg))
    .collect();

    let headers: Vec<String> = std::iter::once("graph".to_string())
        .chain(methods.iter().map(|(n, _)| n.clone()))
        .chain(std::iter::once("Exact (ESU-5)".to_string()))
        .collect();
    let mut rows = Vec::new();
    let mut json = serde_json::Map::new();
    for ds in small_datasets() {
        let g = ds.graph();
        // warm-up: touch the graph once
        let _ = estimate(g, &methods[0].1, 200, 0);
        let mut row = vec![ds.name.to_string()];
        let mut entry = serde_json::Map::new();
        for (name, cfg) in &methods {
            let ms = time_ms(|| {
                let _ = estimate(g, cfg, n_steps, 1);
            });
            row.push(format!("{ms:.1} ms"));
            entry.insert(name.clone(), serde_json::json!(ms));
        }
        let exact_ms = time_ms(|| {
            let _ = count_graphlets_esu_parallel(g, 5);
        });
        row.push(format!("{exact_ms:.0} ms"));
        entry.insert("exact".to_string(), serde_json::json!(exact_ms));
        rows.push(row);
        json.insert(ds.name.to_string(), serde_json::Value::Object(entry));
    }
    print_table(
        &format!("Table 6: running time of {n_steps} walk steps (5-node graphlets)"),
        &headers,
        &rows,
    );
    write_json("table6_runtime", &serde_json::Value::Object(json));
}
