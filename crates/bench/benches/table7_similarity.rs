//! Regenerates Table 7: graphlet-kernel similarity (cosine of 4-node
//! concentration vectors) between the Sinaweibo analog and the
//! Facebook / Twitter analogs, estimated with SRW2CSS and PSRW at 20K
//! steps and compared with the exact value.
//!
//! Expected shape: similarity to the Twitter analog near 1, similarity to
//! the Facebook analog clearly lower — "Sinaweibo acts like a news
//! medium" — with SRW2CSS at least as tight as PSRW.

use gx_bench::{print_table, runs, steps, write_json};
use gx_core::eval::{cosine_similarity, mean, variance};
use gx_core::{estimate, EstimatorConfig};
use gx_datasets::dataset;
use rayon::prelude::*;

fn main() {
    let n_steps = steps(20_000);
    let n_runs = runs(24);
    let weibo = dataset("sinaweibo-sim");
    let methods =
        [("SRW2CSS", EstimatorConfig::recommended(4)), ("PSRW", EstimatorConfig::psrw(4))];
    println!("Table 7 reproduction: {n_steps} steps, {n_runs} runs");

    let mut rows = Vec::new();
    let mut json = serde_json::Map::new();
    for other_name in ["facebook-sim", "twitter-sim"] {
        let other = dataset(other_name);
        let exact =
            cosine_similarity(&weibo.exact_concentrations(4), &other.exact_concentrations(4));
        let mut row = vec![other_name.to_string()];
        let mut entry = serde_json::Map::new();
        for (label, cfg) in &methods {
            let sims: Vec<f64> = (0..n_runs as u64)
                .into_par_iter()
                .map(|s| {
                    let a = estimate(weibo.graph(), cfg, n_steps, gx_walks::derive_seed(0x71, s))
                        .concentrations();
                    let b = estimate(other.graph(), cfg, n_steps, gx_walks::derive_seed(0x72, s))
                        .concentrations();
                    cosine_similarity(&a, &b)
                })
                .collect();
            let (m, sd) = (mean(&sims), variance(&sims).sqrt());
            row.push(format!("{m:.4}±{sd:.4}"));
            entry.insert(label.to_string(), serde_json::json!({ "mean": m, "std": sd }));
        }
        row.push(format!("{exact:.4}"));
        entry.insert("exact".to_string(), serde_json::json!(exact));
        json.insert(other_name.to_string(), serde_json::Value::Object(entry));
        rows.push(row);
    }
    print_table(
        "Table 7: similarity of sinaweibo-sim to social-network vs news-media analogs",
        ["graph", "SRW2CSS", "PSRW", "Exact"].map(String::from).as_slice(),
        &rows,
    );
    write_json("table7_similarity", &serde_json::Value::Object(json));
}
