//! Validates the *shape* of Theorem 3's sample-size bound
//! `n ≥ ξ (W/Λ)(τ/ε²) log(‖ϕ‖/δ)` on explicitly materialized chains:
//! slower-mixing graphs (larger τ from the spectral gap) and rarer
//! targets (smaller Λ) need more steps empirically, in the order the
//! bound predicts.

use gx_bench::{print_table, runs, write_json};
use gx_core::eval::nrmse;
use gx_core::theory::{lambda, mixing_time_bound, slem, w_sup};
use gx_core::{alpha_table, estimate, EstimatorConfig};
use gx_exact::exact_counts;
use gx_graph::generators::classic;
use gx_graph::subrel::subgraph_relationship_graph;
use gx_graph::Graph;
use rayon::prelude::*;

/// Empirical steps needed to push triangle-concentration NRMSE below eps.
fn empirical_steps_needed(g: &Graph, eps: f64, n_runs: usize) -> usize {
    let truth = exact_counts(g, 3).concentrations();
    let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
    let mut steps = 250;
    while steps <= 1 << 22 {
        let series: Vec<f64> = (0..n_runs as u64)
            .into_par_iter()
            .map(|s| estimate(g, &cfg, steps, gx_walks::derive_seed(0x7B, s)).concentrations()[1])
            .collect();
        if nrmse(&series, truth[1]) < eps {
            return steps;
        }
        steps *= 2;
    }
    steps
}

fn main() {
    let n_runs = runs(24);
    let eps = 0.1;
    println!("Theorem 3 shape validation ({n_runs} runs, target NRMSE {eps})");

    let cases: Vec<(&str, Graph)> = vec![
        ("complete K12 (expander)", classic::complete(12)),
        ("lollipop(8,8) (bottleneck)", classic::lollipop(8, 8)),
        ("barbell(6,2) (two communities)", classic::barbell(6, 2)),
    ];

    let mut rows = Vec::new();
    let mut json = serde_json::Map::new();
    for (name, g) in &cases {
        let rel = subgraph_relationship_graph(g, 1);
        let l2 = slem(&rel.graph, 3000);
        let pi_min = (0..g.num_nodes())
            .map(|v| g.degree(v as u32) as f64 / g.degree_sum() as f64)
            .fold(f64::INFINITY, f64::min);
        let tau = mixing_time_bound(l2, pi_min, 0.125);
        let counts = exact_counts(g, 3);
        let lam = lambda(&counts.counts, 3, 1, 1);
        let w = w_sup(&rel, 3);
        let bound_shape = w / lam * tau / (eps * eps);
        let empirical = empirical_steps_needed(g, eps, n_runs);
        json.insert(
            name.to_string(),
            serde_json::json!({
                "slem": l2, "tau": tau, "W": w, "Lambda": lam,
                "bound_shape": bound_shape, "empirical_steps": empirical,
            }),
        );
        rows.push(vec![
            name.to_string(),
            format!("{l2:.4}"),
            format!("{tau:.1}"),
            format!("{w:.0}"),
            format!("{lam:.0}"),
            format!("{bound_shape:.0}"),
            empirical.to_string(),
        ]);
    }
    print_table(
        "Theorem 3 ingredients vs empirically needed steps (triangle, SRW1)",
        ["graph", "SLEM", "tau(1/8)", "W", "Lambda", "(W/L)tau/eps2", "empirical n"]
            .map(String::from)
            .as_slice(),
        &rows,
    );

    // The α side of Λ: higher α ⇒ rare types need fewer samples. Print
    // the α mass ratio SRW2:SRW3 for the 4-clique, the quantity behind
    // Figure 5's explanation.
    let a2 = alpha_table(4, 2)[5] as f64;
    let a3 = alpha_table(4, 3)[5] as f64;
    println!(
        "\n4-clique α under SRW2 vs SRW3: {a2} vs {a3} — the x{} lift in Λ \
         that makes the d = 2 walk converge faster on rare cliques.",
        a2 / a3
    );
    write_json("theory_bound", &serde_json::Value::Object(json));
}
