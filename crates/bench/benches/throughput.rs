//! Steps/second throughput bench: the perf trajectory tracker.
//!
//! Measures raw walk stepping and end-to-end estimation throughput
//! (sequential and parallel), and writes `BENCH_walks.json` at the repo
//! root so successive PRs can be compared. Run with:
//!
//! ```text
//! cargo bench -p gx-bench --bench throughput
//! ```
//!
//! Knobs: `GX_STEPS` (default 200_000 — the acceptance budget for the
//! SRW2CSS speedup check), `GX_WALKERS` (default: available cores),
//! `GX_TRIALS` (default 3 — each section is timed this many times and
//! the fastest trial is kept, the standard steady-state-throughput
//! protocol on shared/noisy machines), `GX_BATCH` (default 24 — the
//! lock-step lane count for the batched-engine rows), `GX_LARGE_NODES`
//! (default 16M — node count of the DRAM-resident Barabási–Albert
//! workload behind the batched-vs-scalar acceptance comparison; 0
//! skips that section), `GX_DATASET` (path to a real
//! KONECT/SNAP edge list to bench on instead of the synthetic
//! epinion-sim — loaded through `gx_datasets::LoadedDataset`, so sparse
//! original ids are compacted and the largest connected component is
//! used).

// Benchmark harness: wall-clock timing is the whole point here.
#![allow(clippy::disallowed_methods)]

use gx_core::{EstimatorConfig, NodeWindow, Runner, StoppingRule};
use gx_datasets::{dataset, LoadedDataset};
use gx_graph::Graph;
use gx_graphlets::classify_mask;
use gx_walks::{random_start_edge, rng_from_seed, G2Walk, SrwWalk, StateWalk};
use std::hint::black_box;
use std::time::Instant;

fn steps_per_sec(steps: usize, secs: f64) -> f64 {
    steps as f64 / secs
}

fn trials() -> usize {
    std::env::var("GX_TRIALS").ok().and_then(|v| v.parse().ok()).unwrap_or(3).max(1)
}

/// Times one closure `GX_TRIALS` times, returning the fastest trial in
/// seconds. Minimum-of-N is the robust throughput estimator on machines
/// with scheduler/co-tenant noise: the minimum is the run least
/// disturbed by interference, and interference only ever adds time.
fn time<F: FnMut()>(mut f: F) -> f64 {
    (0..trials())
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    // A real snapshot via GX_DATASET exercises the NodeIdMap-compacting
    // loader end to end; default is the in-tree epinion analog.
    let external: Option<(String, Graph)> = std::env::var("GX_DATASET").ok().map(|path| {
        let ds = LoadedDataset::load(&path).expect("GX_DATASET must be a readable edge list");
        let (lcc, _nodes) = gx_graph::connectivity::largest_connected_component(&ds.graph);
        println!(
            "external dataset {}: {} nodes, {} edges (LCC of the compacted snapshot)",
            ds.name,
            lcc.num_nodes(),
            lcc.num_edges()
        );
        (ds.name, lcc)
    });
    let (ds_name, g): (&str, &Graph) = match &external {
        Some((name, lcc)) => (name, lcc),
        None => ("epinion-sim", dataset("epinion-sim").graph()),
    };
    let steps: usize =
        std::env::var("GX_STEPS").ok().and_then(|v| v.parse().ok()).unwrap_or(200_000);
    let walkers: usize = std::env::var("GX_WALKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(gx_core::parallel::available_cores);

    println!(
        "throughput bench: {} nodes, {} edges, {steps} steps, {walkers} walkers",
        g.num_nodes(),
        g.num_edges()
    );

    let mut json = serde_json::Map::new();
    json.insert("dataset".into(), serde_json::json!(ds_name));
    json.insert("nodes".into(), serde_json::json!(g.num_nodes()));
    json.insert("edges".into(), serde_json::json!(g.num_edges()));
    json.insert("steps".into(), serde_json::json!(steps));
    json.insert("walkers".into(), serde_json::json!(walkers));
    // Bench honesty: the speedup numbers below mean nothing without the
    // hardware context they ran on.
    json.insert(
        "available_parallelism".into(),
        serde_json::json!(gx_core::parallel::available_cores()),
    );
    json.insert("trials".into(), serde_json::json!(trials()));

    // Raw walk stepping (no estimator), the paper's per-step cost unit.
    {
        let mut rng = rng_from_seed(1);
        let mut w = SrwWalk::new(g, 0, false);
        let secs = time(|| {
            for _ in 0..steps {
                w.step(&mut rng);
            }
        });
        let rate = steps_per_sec(steps, secs);
        println!("srw1 raw step           {rate:>14.0} steps/s");
        json.insert("srw1_raw_steps_per_sec".into(), serde_json::json!(rate));
    }
    {
        let mut rng = rng_from_seed(2);
        let (u, v) = random_start_edge(g, &mut rng);
        let mut w = G2Walk::new(g, u, v, false);
        let secs = time(|| {
            for _ in 0..steps {
                w.step(&mut rng);
            }
        });
        let rate = steps_per_sec(steps, secs);
        println!("g2 raw step             {rate:>14.0} steps/s");
        json.insert("g2_raw_steps_per_sec".into(), serde_json::json!(rate));
    }

    // End-to-end SRW2CSS (the paper's recommended k=4 method) plus its
    // per-stage breakdown (walk, window bookkeeping, classification —
    // the full estimator is the "+css" row), so a regression in any
    // single stage is visible in the telemetry instead of hiding inside
    // the end-to-end number. Every stage uses the same seed and budget.
    let cfg = EstimatorConfig::recommended(4);
    assert_eq!(cfg.name(), "SRW2CSS");
    // Warm-up: classification tables, dense CSS tables. The bench
    // drives the `Runner` front door — the same entry point the legacy
    // shorthands delegate to.
    let _ = Runner::new(cfg.clone()).steps(2_000).seed(7).run(g).expect("valid config");
    let seq_runner = Runner::new(cfg.clone()).steps(steps).seed(42);

    // One trial = the three stage rows and the end-to-end sequential run,
    // timed back to back; the reported breakdown is the one trial with
    // the fastest *end-to-end* time. Taking per-metric minima instead
    // (the protocol before this note) lets every row come from a
    // different trial, so rows move independently under co-tenant noise
    // — which is exactly why the sequential numbers appeared to drift
    // between the PR 6 and PR 7 BENCH_walks.json snapshots with no code
    // change behind them. A breakdown sampled from a single trial is
    // internally consistent with the e2e number it decomposes.
    struct StageTrial {
        walk_secs: f64,
        window_secs: f64,
        classify_secs: f64,
        e2e_secs: f64,
    }
    let mut best: Option<StageTrial> = None;
    for _ in 0..trials() {
        // walk-only: the raw G(2) chain, nothing else.
        let walk_secs = {
            let mut rng = rng_from_seed(42);
            let (u, v) = random_start_edge(g, &mut rng);
            let mut w = G2Walk::new(g, u, v, false);
            let t = Instant::now();
            for _ in 0..steps {
                w.step(&mut rng);
            }
            black_box(w.state());
            t.elapsed().as_secs_f64()
        };
        // + window: sliding-union maintenance (§5 bookkeeping).
        let window_secs = {
            let mut rng = rng_from_seed(42);
            let (u, v) = random_start_edge(g, &mut rng);
            let mut w = G2Walk::new(g, u, v, false);
            let mut win = NodeWindow::new(3, 2);
            let t = Instant::now();
            for _ in 0..steps {
                let deg = w.state_degree();
                win.push(g, w.state(), deg);
                black_box(win.is_valid_sample());
                w.step(&mut rng);
            }
            t.elapsed().as_secs_f64()
        };
        // + classify: mask extraction and graphlet identification.
        let classify_secs = {
            let mut rng = rng_from_seed(42);
            let (u, v) = random_start_edge(g, &mut rng);
            let mut w = G2Walk::new(g, u, v, false);
            let mut win = NodeWindow::new(3, 2);
            let t = Instant::now();
            for _ in 0..steps {
                let deg = w.state_degree();
                win.push(g, w.state(), deg);
                if win.is_valid_sample() {
                    let (mask, _) = win.sample();
                    black_box(classify_mask(4, mask));
                }
                w.step(&mut rng);
            }
            t.elapsed().as_secs_f64()
        };
        // + css = the full single-walker estimator, end to end.
        let e2e_secs = {
            let t = Instant::now();
            let est = seq_runner.run(g).expect("valid config");
            assert!(est.valid_samples > 0);
            t.elapsed().as_secs_f64()
        };
        let trial = StageTrial { walk_secs, window_secs, classify_secs, e2e_secs };
        if best.as_ref().is_none_or(|b| trial.e2e_secs < b.e2e_secs) {
            best = Some(trial);
        }
    }
    let best = best.expect("GX_TRIALS is clamped to >= 1");
    let seq_secs = best.e2e_secs;
    let seq_rate = steps_per_sec(steps, seq_secs);
    for (label, key, secs) in [
        ("walk    ", "srw2css_stage_walk_steps_per_sec", best.walk_secs),
        ("+window ", "srw2css_stage_window_steps_per_sec", best.window_secs),
        ("+classify", "srw2css_stage_classify_steps_per_sec", best.classify_secs),
    ] {
        let rate = steps_per_sec(steps, secs);
        println!("SRW2CSS stage: {label}{rate:>14.0} steps/s");
        json.insert(key.into(), serde_json::json!(rate));
    }
    println!("SRW2CSS sequential      {seq_rate:>14.0} steps/s  ({seq_secs:.3} s)");

    // Lock-step batched engine on the same single-core budget — the
    // tentpole's acceptance comparison, in the same invocation as the
    // scalar number above. `GX_BATCH` walkers advance in lock-step on
    // the calling thread (`run_local`), splitting the same total step
    // budget; the win is memory-level parallelism, so the run is first
    // pinned bit-identical to the scalar engine at the same fan-out
    // before the clock starts.
    let batch: usize =
        std::env::var("GX_BATCH").ok().and_then(|v| v.parse().ok()).unwrap_or(24).max(1);
    let bat_runner =
        Runner::new(cfg.clone()).steps(steps).seed(42).walkers(batch).batch_width(batch);
    {
        let scalar = Runner::new(cfg.clone())
            .steps(steps)
            .seed(42)
            .walkers(batch)
            .run_local(g)
            .expect("valid config");
        let batched = bat_runner.run_local(g).expect("valid config");
        let bits =
            |e: &gx_core::Estimate| e.raw_scores.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&scalar), bits(&batched), "batched engine must be bit-identical");
    }
    let bat_secs = time(|| {
        let est = bat_runner.run_local(g).expect("valid config");
        assert!(est.valid_samples > 0);
    });
    let bat_rate = steps_per_sec(steps, bat_secs);
    let bat_speedup = seq_secs / bat_secs;
    println!(
        "SRW2CSS batched B={batch:<4} {bat_rate:>14.0} steps/s  ({bat_secs:.3} s)  vs seq {bat_speedup:.2}x"
    );

    // Memory-bound acceptance workload for the batched engine. The
    // epinion-sim analog above fits in L2, where prefetching has
    // nothing to hide (the batched row there is expected to sit at
    // ~0.8–1.0× — pure lock-step overhead); batching exists for graphs
    // that *miss*. A Barabási–Albert graph at `GX_LARGE_NODES`
    // (default 16M nodes, m = 10: ~1.3 GB of CSR, far past LLC and TLB
    // reach) makes every step a DRAM-latency neighbor-slice load, which
    // is exactly
    // what the one-tick-ahead prefetch overlaps across the B lanes.
    // Scalar and batched runs share fan-out, seed, and total budget on
    // one thread, differing in the engine alone — and the engines are
    // bit-identical, so the speedup cannot come from a sampling change.
    // `GX_LARGE_NODES=0` skips the section (smoke runs use a small n).
    let large_nodes: usize =
        std::env::var("GX_LARGE_NODES").ok().and_then(|v| v.parse().ok()).unwrap_or(16_000_000);
    let large_m: usize =
        std::env::var("GX_LARGE_M").ok().and_then(|v| v.parse().ok()).unwrap_or(10).max(1);
    if large_nodes > 0 {
        let mut grng = rng_from_seed(9);
        let big = gx_graph::generators::barabasi_albert(large_nodes, large_m, &mut grng);
        println!(
            "large workload: barabasi-albert {} nodes, {} edges",
            big.num_nodes(),
            big.num_edges()
        );
        // 4× the standard budget: per-trial windows under ~100 ms are
        // jitter-dominated at DRAM-bound step rates.
        let large_steps = steps * 4;
        let scalar_runner = Runner::new(cfg.clone()).steps(large_steps).seed(42).walkers(batch);
        let large_bat_runner =
            Runner::new(cfg.clone()).steps(large_steps).seed(42).walkers(batch).batch_width(batch);
        // The two engines are timed *alternately* within each trial, not
        // as two separate best-of-N blocks: machine conditions drift
        // across a run (co-tenant load on the shared box, frequency
        // steps), and a block protocol hands whichever engine runs
        // later a different machine than the one the other was measured
        // on. Alternation samples both engines across the same span, so
        // the trial pairs — and the speedup ratio the acceptance gate
        // reads — compare like with like.
        //
        // Unlike the small-graph rows, this section reports the *median*
        // trial, not the minimum. Min-of-N answers "how fast on an idle
        // machine" — but the scalar engine is a serial dependent-load
        // chain, so any co-tenant memory traffic lands directly on its
        // critical path, while the batched engine's overlapped misses
        // absorb the same interference. Min-of-N therefore hands the
        // scalar side its one quiet window and discards exactly the
        // latency tolerance lock-step batching exists to provide;
        // the median measures both engines under the machine conditions
        // they actually share. Per-trial pairs are printed so the
        // spread is visible in the log.
        let mut scalar_trials: Vec<f64> = Vec::new();
        let mut batched_trials: Vec<f64> = Vec::new();
        for i in 0..trials().max(3) {
            let t = Instant::now();
            let est = scalar_runner.run_local(&big).expect("valid config");
            assert!(est.valid_samples > 0);
            scalar_trials.push(t.elapsed().as_secs_f64());
            let t = Instant::now();
            let est = large_bat_runner.run_local(&big).expect("valid config");
            assert!(est.valid_samples > 0);
            batched_trials.push(t.elapsed().as_secs_f64());
            println!(
                "  large trial {i}: scalar {:.3} s, batched {:.3} s",
                scalar_trials[i], batched_trials[i]
            );
        }
        // Upper median (element at len / 2 of the sorted trials).
        let median = |xs: &[f64]| {
            let mut s = xs.to_vec();
            s.sort_by(|a, b| a.partial_cmp(b).expect("trial times are finite"));
            s[s.len() / 2]
        };
        let scalar_secs = median(&scalar_trials);
        let large_bat_secs = median(&batched_trials);
        let scalar_rate = steps_per_sec(large_steps, scalar_secs);
        let large_bat_rate = steps_per_sec(large_steps, large_bat_secs);
        let large_speedup = scalar_secs / large_bat_secs;
        println!("SRW2CSS large scalar    {scalar_rate:>14.0} steps/s  ({scalar_secs:.3} s)");
        println!(
            "SRW2CSS large B={batch:<4}   {large_bat_rate:>14.0} steps/s  ({large_bat_secs:.3} s)  vs scalar {large_speedup:.2}x"
        );
        let mut row = serde_json::Map::new();
        row.insert("nodes".into(), serde_json::json!(big.num_nodes()));
        row.insert("edges".into(), serde_json::json!(big.num_edges()));
        row.insert("batch_width".into(), serde_json::json!(batch));
        row.insert("scalar_steps_per_sec".into(), serde_json::json!(scalar_rate));
        row.insert("batched_steps_per_sec".into(), serde_json::json!(large_bat_rate));
        row.insert("batched_speedup".into(), serde_json::json!(large_speedup));
        json.insert("srw2css_large".into(), serde_json::Value::Object(row));
        json.insert("srw2css_large_scalar_steps_per_sec".into(), serde_json::json!(scalar_rate));
        json.insert(
            "srw2css_large_batched_steps_per_sec".into(),
            serde_json::json!(large_bat_rate),
        );
        json.insert("srw2css_large_batched_speedup".into(), serde_json::json!(large_speedup));
    }

    let par_runner = Runner::new(cfg.clone()).steps(steps).seed(42).walkers(walkers);
    let par_secs = time(|| {
        let est = par_runner.run(g).expect("valid config");
        assert!(est.valid_samples > 0);
    });
    let par_rate = steps_per_sec(steps, par_secs);
    let speedup = seq_secs / par_secs;
    println!(
        "SRW2CSS parallel x{walkers:<3}   {par_rate:>14.0} steps/s  ({par_secs:.3} s)  speedup {speedup:.2}x"
    );

    json.insert("srw2css_seq_steps_per_sec".into(), serde_json::json!(seq_rate));
    json.insert("srw2css_stage_css_steps_per_sec".into(), serde_json::json!(seq_rate));
    json.insert("srw2css_batched_steps_per_sec".into(), serde_json::json!(bat_rate));
    json.insert("srw2css_batched_width".into(), serde_json::json!(batch));
    json.insert("srw2css_batched_speedup_vs_seq".into(), serde_json::json!(bat_speedup));
    json.insert("srw2css_par_steps_per_sec".into(), serde_json::json!(par_rate));
    json.insert("srw2css_speedup".into(), serde_json::json!(speedup));

    // CI-width-vs-steps telemetry: the widest relative 95% half-width
    // over common types (concentration ≥ 1%) at a quarter, half, and the
    // full budget — the error-bar subsystem's convergence trajectory,
    // tracked alongside the throughput numbers it rides on.
    {
        let mut curve: Vec<serde_json::Value> = Vec::new();
        for div in [4usize, 2, 1] {
            let budget = steps / div;
            let est = Runner::new(cfg.clone()).steps(budget).seed(42).run(g).expect("valid");
            let width = est.max_relative_half_width(1.96, 0.01);
            println!("SRW2CSS 95% CI width  @ {budget:>9} steps  {:>7.3}%", 100.0 * width);
            let mut row = serde_json::Map::new();
            row.insert("steps".into(), serde_json::json!(budget));
            row.insert("rel_ci_half_width_95".into(), serde_json::json!(width));
            curve.push(serde_json::Value::Object(row));
        }
        json.insert("srw2css_ci_curve".into(), serde_json::Value::Array(curve));
    }

    // Adaptive CI-width-vs-wallclock curve: what the coordinator
    // actually costs to hit a given target — the budget-planning data
    // behind README's "how many steps for ±x%?" recipe. Each row runs
    // `estimate_until_parallel` against one target (capped at the
    // bench's step budget so a smoke run stays fast) and records the
    // steps it chose to spend, the wallclock, and the width it reached.
    {
        let mut curve: Vec<serde_json::Value> = Vec::new();
        for target in [0.10, 0.05, 0.03] {
            let rule = StoppingRule {
                target_rel_ci: target,
                check_every: (steps / 8).max(1_000),
                max_steps: steps,
                batch_len: 256,
                min_batches: 8,
                ..Default::default()
            };
            let t = Instant::now();
            let est = Runner::new(cfg.clone())
                .until(rule.clone())
                .seed(42)
                .walkers(walkers)
                .run(g)
                .expect("valid rule");
            let secs = t.elapsed().as_secs_f64();
            let report = est.adaptive().expect("adaptive runs carry a report");
            let width = est.max_relative_half_width(report.critical_value, rule.min_concentration);
            println!(
                "SRW2CSS adaptive ±{:>4.1}%  {:>9} steps  {secs:.3} s  reached {:>6.3}%{}",
                100.0 * target,
                est.steps,
                100.0 * width,
                if report.target_met { "" } else { "  (budget-capped)" }
            );
            let mut row = serde_json::Map::new();
            row.insert("target_rel_ci".into(), serde_json::json!(target));
            row.insert("steps".into(), serde_json::json!(est.steps));
            row.insert("secs".into(), serde_json::json!(secs));
            row.insert("rel_ci_half_width".into(), serde_json::json!(width));
            row.insert("target_met".into(), serde_json::json!(report.target_met));
            curve.push(serde_json::Value::Object(row));
        }
        json.insert("srw2css_adaptive_curve".into(), serde_json::Value::Array(curve));
    }

    // Checkpoint cost telemetry: what a crash-resilient run pays per
    // snapshot — encode (serialize the full run state to memory), the
    // atomic file round trip (write-fsync-rename + read back), and
    // resume (decode + revalidate against the graph) — plus the
    // snapshot size, which scales with the stored batch-means series.
    {
        let runner = Runner::new(cfg.clone()).steps(steps).seed(42);
        let mut handle = runner.start(g).expect("valid config");
        handle.advance(steps / 2);

        let mut snapshot = Vec::new();
        handle.checkpoint(&mut snapshot).expect("in-memory checkpoint");
        let bytes = snapshot.len();

        let encode_secs = time(|| {
            let mut buf = Vec::with_capacity(bytes);
            handle.checkpoint(&mut buf).expect("in-memory checkpoint");
            black_box(&buf);
        });
        let path = std::env::temp_dir().join("gx_bench_checkpoint.gxcp");
        let file_secs = time(|| {
            handle.checkpoint_to_file(&path).expect("atomic checkpoint write");
            black_box(std::fs::read(&path).expect("read snapshot back"));
        });
        let resume_secs = time(|| {
            let resumed = Runner::resume(g, &mut snapshot.as_slice()).expect("valid snapshot");
            black_box(resumed.steps());
        });
        let _ = std::fs::remove_file(&path);

        println!(
            "SRW2CSS checkpoint      {bytes:>8} bytes  encode {:.1} µs  file {:.1} µs  resume {:.1} µs",
            encode_secs * 1e6,
            file_secs * 1e6,
            resume_secs * 1e6
        );
        let mut row = serde_json::Map::new();
        row.insert("snapshot_bytes".into(), serde_json::json!(bytes));
        row.insert("encode_secs".into(), serde_json::json!(encode_secs));
        row.insert("file_roundtrip_secs".into(), serde_json::json!(file_secs));
        row.insert("resume_secs".into(), serde_json::json!(resume_secs));
        json.insert("srw2css_checkpoint".into(), serde_json::Value::Object(row));
    }

    // Out-of-core backend telemetry: the same SRW2CSS budget stepped off
    // a `.gxsn` snapshot. Reports map+validate latency, steps/s mapped
    // vs in-RAM, and the RSS cost of each open — the mapped open must
    // not copy the neighbor arrays (its RSS delta is the O(nodes)
    // offset-validation scan, not the adjacency), while the portable
    // read-into-RAM fallback pays for the whole file. `GX_DATASET_MMAP`
    // points the section at an existing snapshot (e.g. a KONECT crawl
    // converted with `gx-snapshot`) instead of the bench graph's own.
    {
        use gx_graph::{disk, MmapGraph};
        fn vm_rss_kb() -> u64 {
            std::fs::read_to_string("/proc/self/status")
                .ok()
                .and_then(|s| {
                    s.lines()
                        .find(|l| l.starts_with("VmRSS:"))
                        .and_then(|l| l.split_whitespace().nth(1))
                        .and_then(|v| v.parse().ok())
                })
                .unwrap_or(0)
        }
        let override_path = std::env::var(gx_datasets::MMAP_ENV).ok();
        let tmp_path = std::env::temp_dir().join("gx_bench_snapshot.gxsn");
        let (snap_path, snap_bytes) = match &override_path {
            Some(p) => {
                let bytes = std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
                (std::path::PathBuf::from(p), bytes)
            }
            None => {
                let info = disk::write_gxsn(g, None, &tmp_path).expect("write bench snapshot");
                (tmp_path.clone(), info.bytes)
            }
        };

        // Open latency = mmap + header checksum + O(nodes) offset
        // validation; this is the whole cost of adopting a snapshot.
        let map_secs = time(|| {
            let m = MmapGraph::open(&snap_path).expect("mapped snapshot opens");
            black_box(m.num_edges());
        });

        let rss0 = vm_rss_kb();
        let mapped = MmapGraph::open(&snap_path).expect("mapped snapshot opens");
        let mapped_rss_kb = vm_rss_kb().saturating_sub(rss0);
        let rss0 = vm_rss_kb();
        let in_ram = MmapGraph::open_in_ram(&snap_path).expect("snapshot reads into RAM");
        let in_ram_rss_kb = vm_rss_kb().saturating_sub(rss0);
        if in_ram_rss_kb > 1024 {
            assert!(
                mapped_rss_kb < in_ram_rss_kb,
                "mapped open copied the snapshot: {mapped_rss_kb} kB vs {in_ram_rss_kb} kB in RAM"
            );
        }

        let mmap_runner = Runner::new(cfg.clone()).steps(steps).seed(42);
        // Pin bit-identity before the clock starts: storage must never
        // move a sample. With an external override the reference is the
        // fallback reader over the same bytes; without one it is the
        // bench's own in-RAM CSR the snapshot was written from.
        {
            let a = mmap_runner.run_local(&mapped).expect("valid config");
            let b = mmap_runner.run_local(&in_ram).expect("valid config");
            let bits = |e: &gx_core::Estimate| {
                e.raw_scores.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            };
            assert_eq!(bits(&a), bits(&b), "mapped and fallback backends must agree");
            if override_path.is_none() {
                let c = mmap_runner.run_local(g).expect("valid config");
                assert_eq!(bits(&a), bits(&c), "mapped must be bit-identical to the RAM graph");
            }
        }
        let mapped_secs = time(|| {
            let est = mmap_runner.run_local(&mapped).expect("valid config");
            assert!(est.valid_samples > 0);
        });
        let ram_secs = match &override_path {
            None => time(|| {
                let est = mmap_runner.run_local(g).expect("valid config");
                assert!(est.valid_samples > 0);
            }),
            // With an external snapshot there is no in-RAM `Graph` of the
            // same content; the fallback reader is the RAM comparator.
            Some(_) => time(|| {
                let est = mmap_runner.run_local(&in_ram).expect("valid config");
                assert!(est.valid_samples > 0);
            }),
        };
        let mapped_rate = steps_per_sec(steps, mapped_secs);
        let ram_rate = steps_per_sec(steps, ram_secs);
        println!(
            "SRW2CSS mmap            {mapped_rate:>14.0} steps/s  (RAM {ram_rate:.0}, map+validate {:.1} µs, RSS map {mapped_rss_kb} kB vs RAM {in_ram_rss_kb} kB)",
            map_secs * 1e6
        );
        let mut row = serde_json::Map::new();
        row.insert("snapshot_bytes".into(), serde_json::json!(snap_bytes));
        row.insert("map_validate_secs".into(), serde_json::json!(map_secs));
        row.insert("mapped_steps_per_sec".into(), serde_json::json!(mapped_rate));
        row.insert("ram_steps_per_sec".into(), serde_json::json!(ram_rate));
        row.insert("mapped_open_rss_delta_kb".into(), serde_json::json!(mapped_rss_kb));
        row.insert("in_ram_open_rss_delta_kb".into(), serde_json::json!(in_ram_rss_kb));
        row.insert("external_snapshot".into(), serde_json::json!(override_path.is_some()));
        json.insert("srw2css_mmap".into(), serde_json::Value::Object(row));
        if override_path.is_none() {
            let _ = std::fs::remove_file(&tmp_path);
        }
    }

    // Multi-job serving throughput: eight equal jobs (the bench budget
    // split evenly) multiplexed onto the service's worker pool. Tracks
    // jobs/sec, the p50/p95 job-latency spread, and the fairness ratio
    // (slowest job latency / fastest) — for identical jobs under
    // deficit-round-robin the ratio should stay near 1, and a regression
    // toward run-to-completion scheduling shows up here immediately.
    {
        use gx_service::{EstimationService, JobSpec, ServiceConfig};
        let service_workers = walkers.max(1);
        let service = EstimationService::start(ServiceConfig {
            workers: service_workers,
            ..ServiceConfig::default()
        });
        let shared = std::sync::Arc::new(g.clone());
        let n_jobs = 8usize;
        let job_steps = (steps / n_jobs).max(1_000);
        let t0 = std::time::Instant::now();
        let mut pending: Vec<(usize, gx_service::JobHandle)> = (0..n_jobs)
            .map(|i| {
                let spec = JobSpec::new(shared.clone(), cfg.clone())
                    .steps(job_steps)
                    .round_windows((job_steps / 8).max(1))
                    .seed(42 + i as u64);
                (i, service.submit(spec).expect("bench jobs fit under admission"))
            })
            .collect();
        let mut latencies = vec![0.0f64; n_jobs];
        while !pending.is_empty() {
            pending.retain(|(i, handle)| match handle.try_result() {
                Some(result) => {
                    result.outcome.expect("fault-free bench job");
                    latencies[*i] = t0.elapsed().as_secs_f64();
                    false
                }
                None => true,
            });
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        let total_secs = t0.elapsed().as_secs_f64();
        service.shutdown();

        let mut sorted = latencies.clone();
        sorted.sort_by(f64::total_cmp);
        let p50 = sorted[n_jobs / 2];
        let p95 = sorted[((n_jobs as f64 * 0.95) as usize).min(n_jobs - 1)];
        let fairness = sorted[n_jobs - 1] / sorted[0].max(1e-9);
        let jobs_per_sec = n_jobs as f64 / total_secs;
        println!(
            "SRW2CSS service x{service_workers:<3}   {jobs_per_sec:>10.2} jobs/s   p50 {:.3} s  p95 {:.3} s  fairness {fairness:.2}",
            p50, p95
        );
        let mut row = serde_json::Map::new();
        row.insert("workers".into(), serde_json::json!(service_workers));
        row.insert("jobs".into(), serde_json::json!(n_jobs));
        row.insert("job_steps".into(), serde_json::json!(job_steps));
        row.insert("jobs_per_sec".into(), serde_json::json!(jobs_per_sec));
        row.insert("p50_latency_secs".into(), serde_json::json!(p50));
        row.insert("p95_latency_secs".into(), serde_json::json!(p95));
        row.insert("fairness_ratio".into(), serde_json::json!(fairness));
        json.insert("srw2css_service".into(), serde_json::Value::Object(row));
    }

    // Persist at the repo root so the perf trajectory is tracked in-tree.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_walks.json");
    let body = serde_json::to_string_pretty(&serde_json::Value::Object(json)).expect("serialize");
    std::fs::write(path, body + "\n").expect("write BENCH_walks.json");
    println!("[results written to {path}]");
}
