//! Shared harness for the reproduction benches.
//!
//! Every table and figure of the paper's evaluation has a dedicated bench
//! target (`cargo bench -p gx-bench --bench <name>`); this library holds
//! what they share: method rosters, repeated-run NRMSE evaluation
//! (parallelized over runs with rayon), plain-text table rendering, and
//! JSON result persistence under `results/`.
//!
//! Scaling knobs (environment variables):
//! * `GX_RUNS` — independent runs per NRMSE point (default varies per
//!   bench; the paper used 1000, defaults here are smaller so the full
//!   suite finishes in minutes);
//! * `GX_STEPS` — walk steps per run (default 20_000, the paper's budget).

use gx_core::{estimate, EstimatorConfig};
use gx_graph::Graph;
use rayon::prelude::*;

/// A labeled estimator configuration, named as in the paper's figures.
#[derive(Debug, Clone)]
pub struct Method {
    /// Paper-style label (`SRW2CSS`, …).
    pub label: String,
    /// The configuration behind it.
    pub cfg: EstimatorConfig,
}

impl Method {
    fn new(k: usize, d: usize, css: bool, nb: bool) -> Method {
        let cfg = EstimatorConfig { k, d, css, non_backtracking: nb, burn_in: 0 };
        Method { label: cfg.name(), cfg }
    }
}

/// Figure 4a's method roster for 3-node graphlets.
pub fn methods_k3() -> Vec<Method> {
    vec![
        Method::new(3, 1, false, false),
        Method::new(3, 1, true, false),
        Method::new(3, 1, true, true),
        Method::new(3, 2, false, false),
        Method::new(3, 2, false, true),
    ]
}

/// Figure 4b's roster for 4-node graphlets (SRW3 = PSRW).
pub fn methods_k4() -> Vec<Method> {
    vec![
        Method::new(4, 2, false, false),
        Method::new(4, 2, true, false),
        Method::new(4, 3, false, false),
    ]
}

/// Figure 4c's roster for 5-node graphlets (SRW4 = PSRW).
pub fn methods_k5() -> Vec<Method> {
    vec![
        Method::new(5, 2, false, false),
        Method::new(5, 2, true, false),
        Method::new(5, 3, false, false),
        Method::new(5, 4, false, false),
    ]
}

/// `GX_RUNS` override or the given default.
pub fn runs(default: usize) -> usize {
    std::env::var("GX_RUNS").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// `GX_STEPS` override or the given default (paper: 20K).
pub fn steps(default: usize) -> usize {
    std::env::var("GX_STEPS").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Runs `runs` independent estimates (parallel) and returns the
/// concentration vectors.
pub fn concentration_runs(
    g: &Graph,
    cfg: &EstimatorConfig,
    steps: usize,
    runs: usize,
    seed_base: u64,
) -> Vec<Vec<f64>> {
    (0..runs as u64)
        .into_par_iter()
        .map(|r| estimate(g, cfg, steps, gx_walks::derive_seed(seed_base, r)).concentrations())
        .collect()
}

/// NRMSE of one type's concentration estimate over repeated runs.
pub fn nrmse_of_type(
    g: &Graph,
    cfg: &EstimatorConfig,
    truth: &[f64],
    type_idx: usize,
    steps: usize,
    runs: usize,
    seed_base: u64,
) -> f64 {
    let series: Vec<f64> = concentration_runs(g, cfg, steps, runs, seed_base)
        .into_iter()
        .map(|c| c[type_idx])
        .collect();
    gx_core::eval::nrmse(&series, truth[type_idx])
}

/// Renders an aligned plain-text table.
pub fn print_table(title: &str, headers: &[String], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let ncol = headers.len();
    let mut width = vec![0usize; ncol];
    for (i, h) in headers.iter().enumerate() {
        width[i] = h.len();
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            width[i] = width[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = width[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(headers));
    println!("{}", width.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Persists a bench's machine-readable result under `results/<name>.json`
/// (best-effort: printing is the primary output).
pub fn write_json(name: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(s) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(&path, s);
        println!("\n[results written to {}]", path.display());
    }
}

/// Formats a float with 4 significant decimals for tables.
pub fn f(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else if x != 0.0 && x.abs() < 1e-3 {
        format!("{x:.2e}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gx_graph::generators::classic;

    #[test]
    fn rosters_match_figure4() {
        let labels: Vec<String> = methods_k3().into_iter().map(|m| m.label).collect();
        assert_eq!(labels, ["SRW1", "SRW1CSS", "SRW1CSSNB", "SRW2", "SRW2NB"]);
        let labels: Vec<String> = methods_k4().into_iter().map(|m| m.label).collect();
        assert_eq!(labels, ["SRW2", "SRW2CSS", "SRW3"]);
        let labels: Vec<String> = methods_k5().into_iter().map(|m| m.label).collect();
        assert_eq!(labels, ["SRW2", "SRW2CSS", "SRW3", "SRW4"]);
    }

    #[test]
    fn env_knobs_default() {
        std::env::remove_var("GX_RUNS");
        assert_eq!(runs(40), 40);
        assert_eq!(steps(20_000), 20_000);
    }

    #[test]
    fn concentration_runs_are_independent_and_parallel_safe() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let a = concentration_runs(&g, &cfg, 2_000, 8, 7);
        let b = concentration_runs(&g, &cfg, 2_000, 8, 7);
        assert_eq!(a, b, "seeded: parallel order must not matter");
        assert_eq!(a.len(), 8);
        // petersen is triangle-free: c32 = 0 in every run
        assert!(a.iter().all(|c| c[1] == 0.0));
    }

    #[test]
    fn nrmse_of_type_on_known_graph() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let truth = vec![1.0, 0.0];
        let e = nrmse_of_type(&g, &cfg, &truth, 0, 2_000, 4, 3);
        assert_eq!(e, 0.0, "all mass on wedges, exactly");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(f64::NAN), "-");
        assert_eq!(f(0.5), "0.5000");
        assert_eq!(f(0.00001), "1.00e-5");
        assert_eq!(f(0.0), "0.0000");
    }
}
