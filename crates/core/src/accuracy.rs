//! Error bars for running estimates: streaming batch-means variance and
//! the adaptive stopping rule built on it.
//!
//! The paper evaluates estimators by after-the-fact NRMSE over many
//! repeated runs (§6.1). A production service answering "how many
//! triangles?" cannot repeat the run a thousand times — it must ship a
//! confidence interval *with* the point estimate, computed online from
//! the one chain it has. The samples of that chain are serially
//! correlated (consecutive windows share `l − 1` states), so the naive
//! i.i.d. variance `s²/n` is badly optimistic. The standard fix from the
//! MCMC / steady-state-simulation literature is **batch means**: split
//! the step stream into `b` non-overlapping batches of `B` consecutive
//! steps, average each batch, and treat the `b` batch means as
//! approximately independent draws — valid once `B` exceeds the chain's
//! mixing scale. With the classic `B ≈ √n` policy both `b` and `B` grow
//! with the budget, which makes the variance estimator consistent under
//! geometric mixing.
//!
//! The accumulator here ([`ScoreAccumulator`]) threads through the fused
//! estimator loop at near-zero cost: the per-step work is one counter
//! increment and one predictable branch, because a batch mean is
//! recovered at the batch boundary as a *difference of running raw-score
//! snapshots* — the hot loop's own `raw[idx] += weight` store doubles as
//! the accumulation, and nothing else is touched per step. Per-type
//! means, second moments, and the cross-moment with the per-step score
//! total (needed for concentration error bars via the delta method) are
//! maintained with Welford updates per *batch*, not per step.
//!
//! [`BatchStats`] is mergeable: independent walkers produce independent
//! batches, so [`BatchStats::merge`] pools them with the standard
//! parallel Welford combination — in walker order, keeping
//! [`crate::estimate_parallel`] deterministic per `(seed, walkers)`.

use crate::checkpoint::{put_f64, put_u64, put_u8, put_usize, Reader};
use crate::error::{CheckpointError, RuleError};

/// Streaming batch-means statistics over per-step score vectors.
///
/// For each graphlet type `i` this tracks, across completed batches, the
/// batch-mean average `mean(i)` (an estimate of the per-step expected
/// score `E[Y_i]`), its second central moment, and the cross-moment with
/// the per-step score *total* `T = Σ_i Y_i` — enough to put error bars
/// on both count estimates (linear in `E[Y_i]`) and concentration
/// estimates (`E[Y_i]/E[T]`, via the delta method).
///
/// All quantities are on the *per-step score* scale; callers rescale
/// (counts multiply by `2|R(d)|`, see [`crate::Estimate`]). Only steps
/// inside completed batches contribute; a trailing partial batch is
/// ignored, which is the usual batch-means convention.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStats {
    batch_len: usize,
    /// Completed batches folded so far.
    batches: u64,
    /// Per-type average of batch means.
    mean: Vec<f64>,
    /// Per-type sum of squared deviations of batch means (Welford M2).
    m2: Vec<f64>,
    /// Per-type co-moment of (batch mean, batch total mean).
    cov_total: Vec<f64>,
    /// Average of batch total means.
    mean_total: f64,
    /// M2 of batch total means.
    m2_total: f64,
    /// Per-type batch means in fold order (`series[i][j]` is batch `j`'s
    /// mean of type `i`). This is what makes the statistics *resumable
    /// and cross-checkable*: the adaptive coordinator folds only the new
    /// suffix of each walker's series into its pooled stream per round
    /// (no from-scratch re-pool), and the overlapping-batch-means
    /// estimator ([`BatchStats::obm_var_of_mean`]) re-reads the series
    /// to cross-check the Welford moments. Memory is `types × batches`
    /// floats: ~√n per type under the fixed-budget `B ≈ √n` policy, and
    /// `steps / batch_len` per type for adaptive runs (whose rule fixes
    /// the batch length) — a ROADMAP item sketches the pair-collapsing
    /// bounded-memory variant for extreme (≫10⁹-step) budgets.
    series: Vec<Vec<f64>>,
}

impl BatchStats {
    /// Empty statistics for `types` graphlet types and batches of
    /// `batch_len` steps.
    pub fn new(types: usize, batch_len: usize) -> Self {
        assert!(batch_len >= 1, "batch length must be at least 1");
        Self {
            batch_len,
            batches: 0,
            mean: vec![0.0; types],
            m2: vec![0.0; types],
            cov_total: vec![0.0; types],
            mean_total: 0.0,
            m2_total: 0.0,
            series: vec![Vec::new(); types],
        }
    }

    /// The batch means of type `i`, in fold order. Batch `j`'s mean per-
    /// step score of type `i` is `batch_means(i)[j]`; after a merge the
    /// series concatenates the constituents in merge order.
    pub fn batch_means(&self, i: usize) -> &[f64] {
        &self.series[i]
    }

    /// Number of graphlet types tracked.
    pub fn types(&self) -> usize {
        self.mean.len()
    }

    /// Steps per batch.
    pub fn batch_len(&self) -> usize {
        self.batch_len
    }

    /// Completed batches folded so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Average per-step score of type `i` over completed batches (the
    /// batch-means estimate of `E[Y_i]`).
    pub fn mean_score(&self, i: usize) -> f64 {
        self.mean[i]
    }

    /// Average per-step score total over completed batches.
    pub fn mean_total(&self) -> f64 {
        self.mean_total
    }

    /// Batch-means concentration of type `i`: `mean(i) / mean_total`.
    /// `NaN` when no score mass has been seen.
    pub fn concentration(&self, i: usize) -> f64 {
        self.mean[i] / self.mean_total
    }

    /// Variance of the *mean-score estimator* for type `i`:
    /// `s²_batch / b` with the sample variance of the `b` batch means.
    /// `NaN` with fewer than two completed batches.
    pub fn var_of_mean(&self, i: usize) -> f64 {
        if self.batches < 2 {
            return f64::NAN;
        }
        let b = self.batches as f64;
        self.m2[i] / (b - 1.0) / b
    }

    /// Standard error of the mean score of type `i` (`NaN` with fewer
    /// than two completed batches).
    pub fn std_error(&self, i: usize) -> f64 {
        self.var_of_mean(i).sqrt()
    }

    /// Standard error of the concentration of type `i` by the delta
    /// method on `c_i = E[Y_i] / E[T]`:
    /// `Var(ĉ_i) ≈ (Var(μ̂_i) + c² Var(μ̂_T) − 2c Cov(μ̂_i, μ̂_T)) / μ_T²`.
    /// `NaN` with fewer than two batches or zero score mass.
    pub fn concentration_std_error(&self, i: usize) -> f64 {
        if self.batches < 2 || self.mean_total <= 0.0 {
            return f64::NAN;
        }
        let b = self.batches as f64;
        let scale = 1.0 / (b - 1.0) / b;
        let c = self.concentration(i);
        let var_i = self.m2[i] * scale;
        let var_t = self.m2_total * scale;
        let cov_it = self.cov_total[i] * scale;
        let var_c =
            (var_i + c * c * var_t - 2.0 * c * cov_it) / (self.mean_total * self.mean_total);
        // The delta-method quadratic form can dip below zero by rounding
        // when the terms nearly cancel; clamp instead of returning NaN.
        var_c.max(0.0).sqrt()
    }

    /// Relative half-width of the `z`-confidence interval of type `i`'s
    /// mean score: `z · SE(i) / mean(i)`. Since count estimates are the
    /// mean score times a constant, this is also the relative half-width
    /// of the count CI. `NaN` when the mean is zero or batches < 2.
    pub fn relative_half_width(&self, i: usize, z: f64) -> f64 {
        z * self.std_error(i) / self.mean[i]
    }

    /// The widest [`BatchStats::relative_half_width`] over the types
    /// whose concentration is at least `min_concentration` — the scalar
    /// the adaptive stopping rule drives to its target. Types rarer than
    /// the floor are excluded (their relative error decays like
    /// `1/√(n·c_i)` and would dominate the maximum forever). The floor
    /// is capped at `1/types`: concentrations sum to 1, so by pigeonhole
    /// at least one type always qualifies — a diffuse distribution over
    /// many types (k = 6 has 112) cannot silently disqualify every type
    /// and leave the stopping rule unable to ever fire. `NaN` when
    /// nothing has been sampled or batches < 2.
    pub fn max_relative_half_width(&self, z: f64, min_concentration: f64) -> f64 {
        if self.batches < 2 {
            return f64::NAN;
        }
        let floor = self.qualifying_floor(min_concentration);
        let mut widest = f64::NAN;
        for i in 0..self.types() {
            if self.concentration(i) >= floor {
                let w = self.relative_half_width(i, z);
                if w.is_nan() {
                    // A qualifying type with an undefined width (possible
                    // only at floor 0, for a type never sampled) keeps
                    // the whole bound undefined.
                    return f64::NAN;
                }
                if widest.is_nan() || w > widest {
                    widest = w; // first qualifying type, or a wider one
                }
            }
        }
        widest
    }

    /// The concentration floor actually applied when deciding which
    /// types qualify for the stopping metric: the caller's floor capped
    /// at `1/types` — the single source of the qualification rule shared
    /// by [`BatchStats::max_relative_half_width`] and the adaptive
    /// tracker's per-type latching, so the latch set can never diverge
    /// from the stopping decision.
    pub(crate) fn qualifying_floor(&self, min_concentration: f64) -> f64 {
        min_concentration.min(1.0 / self.types() as f64)
    }

    /// Folds one completed batch given the raw-score snapshot difference
    /// already divided down to batch means. `delta[i]` must be the mean
    /// per-step score of type `i` over the batch.
    fn fold_batch(&mut self, delta: &[f64], total: f64) {
        self.batches += 1;
        let n = self.batches as f64;
        let dt_old = total - self.mean_total;
        self.mean_total += dt_old / n;
        let dt_new = total - self.mean_total;
        self.m2_total += dt_old * dt_new;
        for (i, &x) in delta.iter().enumerate() {
            let dx_old = x - self.mean[i];
            self.mean[i] += dx_old / n;
            let dx_new = x - self.mean[i];
            self.m2[i] += dx_old * dx_new;
            self.cov_total[i] += dx_old * dt_new;
            self.series[i].push(x);
        }
    }

    /// Folds the batches `from..` of `other`'s series into this stream,
    /// one Welford fold per batch in batch order — the
    /// incremental pooled-merge of the adaptive coordinator. Unlike the
    /// moment-level Chan merge of [`BatchStats::merge`], this replays the
    /// exact Welford fold the source accumulator performed, so a pool fed
    /// one walker's series is *bit-identical* to that walker's own
    /// statistics, and a pool fed round suffixes is bit-identical to a
    /// from-scratch replay of the same chronological order.
    pub fn fold_series_suffix(&mut self, other: &BatchStats, from: u64) {
        assert_eq!(self.batch_len, other.batch_len, "pooled batch means need equal batch lengths");
        assert_eq!(self.types(), other.types(), "mismatched type counts");
        let mut delta = vec![0.0f64; self.types()];
        for j in from as usize..other.batches as usize {
            let mut total = 0.0;
            for (i, d) in delta.iter_mut().enumerate() {
                let x = other.series[i][j];
                *d = x;
                total += x;
            }
            self.fold_batch(&delta, total);
        }
    }

    /// Pools another chain's batches into this one (parallel Welford /
    /// Chan combination). Batches from independent walkers are
    /// independent draws of the same batch-mean distribution, so pooling
    /// is exact — provided both sides used the same `batch_len`
    /// (asserted). Merge order matters at the bit level: callers must
    /// fold walkers in a fixed order for deterministic output.
    pub fn merge(&mut self, other: &BatchStats) {
        assert_eq!(self.batch_len, other.batch_len, "pooled batch means need equal batch lengths");
        assert_eq!(self.types(), other.types(), "mismatched type counts");
        if other.batches == 0 {
            return;
        }
        if self.batches == 0 {
            *self = other.clone();
            return;
        }
        let na = self.batches as f64;
        let nb = other.batches as f64;
        let w = na * nb / (na + nb);
        let dt = other.mean_total - self.mean_total;
        self.m2_total += other.m2_total + dt * dt * w;
        for i in 0..self.mean.len() {
            let dx = other.mean[i] - self.mean[i];
            self.m2[i] += other.m2[i] + dx * dx * w;
            self.cov_total[i] += other.cov_total[i] + dx * dt * w;
            self.mean[i] += dx * nb / (na + nb);
            self.series[i].extend_from_slice(&other.series[i]);
        }
        self.mean_total += dt * nb / (na + nb);
        self.batches += other.batches;
    }

    // --- Overlapping batch means (OBM) cross-check -------------------------
    //
    // Non-overlapping batch means (the streaming estimator above) and
    // overlapping batch means estimate the same asymptotic variance; OBM
    // reuses every window of consecutive batches and so has ~2/3 the
    // asymptotic variance of NOBM at the same batch length (Meketon &
    // Schmeiser 1984). Agreement between the two is a practical sanity
    // check that the batch length exceeded the chain's mixing scale: a
    // large discrepancy means the "independent batches" assumption is
    // broken and *both* interval estimates are suspect.

    /// The default OBM window: `⌈√b⌉` consecutive batch means pooled per
    /// overlapping window (so the effective OBM batch length grows with
    /// the run, like the underlying `B ≈ √n` policy).
    pub fn default_obm_window(&self) -> usize {
        (self.batches as f64).sqrt().ceil().max(1.0) as usize
    }

    /// Overlapping-batch-means estimate of `Var(mean(i))`: windows of
    /// `window` consecutive batch means (over the stored series, in fold
    /// order), with the standard OBM scaling
    /// `m · Σ_j (O_j − x̄)² / ((b − m + 1)(b − m))` for `b` base batch
    /// means and window `m`. At `window == 1` the formula reduces to the
    /// non-overlapping [`BatchStats::var_of_mean`] — the same sample
    /// variance over the same batch means, equal up to floating-point
    /// association — which pins the two estimators together; larger
    /// windows give the genuine overlapping cross-check. `NaN` when
    /// `window` leaves fewer than two windows (`b ≤ m`).
    pub fn obm_var_of_mean(&self, i: usize, window: usize) -> f64 {
        let b = self.batches as usize;
        let m = window;
        if m == 0 || b <= m {
            return f64::NAN;
        }
        let series = &self.series[i];
        let xbar = self.mean[i];
        // Sliding window sum over the series: O(b) total.
        let mut wsum: f64 = series[..m].iter().sum();
        let inv_m = 1.0 / m as f64;
        let mut ss = {
            let d = wsum * inv_m - xbar;
            d * d
        };
        for j in m..b {
            wsum += series[j] - series[j - m];
            let d = wsum * inv_m - xbar;
            ss += d * d;
        }
        let (b, m) = (b as f64, m as f64);
        m * ss / ((b - m + 1.0) * (b - m))
    }

    /// Standard error of the mean score of type `i` by overlapping batch
    /// means at the [`BatchStats::default_obm_window`] — the cross-check
    /// companion of [`BatchStats::std_error`]. `NaN` until the series
    /// holds more batches than the window.
    pub fn obm_std_error(&self, i: usize) -> f64 {
        self.obm_var_of_mean(i, self.default_obm_window()).sqrt()
    }

    // --- Bounded-memory series (R-batching) --------------------------------

    /// Collapses adjacent pairs of batch means into single means over
    /// doubled batches — the R-batching step of the bounded-memory
    /// series. Each collapsed mean is the average of its pair (batches
    /// have equal length, so the average over `2B` steps *is* the mean
    /// of the two `B`-step means), the batch length doubles, the batch
    /// count halves, and all Welford moments are refolded from the
    /// collapsed series so they remain exactly the statistics a fresh
    /// fold of those means would produce. Requires an even batch count.
    pub(crate) fn collapse_pairs(&mut self) {
        assert!(
            self.batches >= 2 && self.batches.is_multiple_of(2),
            "pair collapse needs an even batch count, got {}",
            self.batches
        );
        let types = self.types();
        let mut collapsed = BatchStats::new(types, self.batch_len * 2);
        let half = (self.batches / 2) as usize;
        let mut delta = vec![0.0f64; types];
        for j in 0..half {
            let mut total = 0.0;
            for (i, d) in delta.iter_mut().enumerate() {
                let x = 0.5 * (self.series[i][2 * j] + self.series[i][2 * j + 1]);
                *d = x;
                total += x;
            }
            collapsed.fold_batch(&delta, total);
        }
        *self = collapsed;
    }

    // --- Checkpoint field encoding -----------------------------------------

    /// Serializes every field into a checkpoint payload. The series is
    /// written in full: resumed statistics must be *bit-identical* to
    /// never having stopped, and both the OBM cross-check and the
    /// adaptive coordinator's suffix folds re-read the series.
    pub(crate) fn encode_into(&self, buf: &mut Vec<u8>) {
        put_usize(buf, self.batch_len);
        put_u64(buf, self.batches);
        put_usize(buf, self.types());
        put_f64(buf, self.mean_total);
        put_f64(buf, self.m2_total);
        for i in 0..self.types() {
            put_f64(buf, self.mean[i]);
            put_f64(buf, self.m2[i]);
            put_f64(buf, self.cov_total[i]);
        }
        for s in &self.series {
            debug_assert_eq!(s.len() as u64, self.batches);
            for &x in s {
                put_f64(buf, x);
            }
        }
    }

    /// Inverse of [`BatchStats::encode_into`], with typed rejection of
    /// out-of-domain counts. Vectors are grown by pushing while reading
    /// (never pre-allocated from a decoded count), so a malformed count
    /// fails on the first missing element instead of a giant reserve.
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let batch_len = r.usize("stats.batch_len")?;
        if batch_len == 0 {
            return Err(CheckpointError::Malformed { what: "stats.batch_len" });
        }
        let batches = r.u64("stats.batches")?;
        let types = r.count(1 << 20, "stats.types")?;
        let mean_total = r.f64("stats.mean_total")?;
        let m2_total = r.f64("stats.m2_total")?;
        let mut out = BatchStats::new(types, batch_len);
        out.batches = batches;
        out.mean_total = mean_total;
        out.m2_total = m2_total;
        for i in 0..types {
            out.mean[i] = r.f64("stats.mean")?;
            out.m2[i] = r.f64("stats.m2")?;
            out.cov_total[i] = r.f64("stats.cov_total")?;
        }
        for s in &mut out.series {
            for _ in 0..batches {
                s.push(r.f64("stats.series")?);
            }
        }
        Ok(out)
    }
}

/// The hot-loop side of the batch-means machinery: ticks once per scored
/// window and recovers batch means as snapshot differences of the
/// estimator's running raw-score array.
///
/// Per-step cost is one increment plus one predictable compare; the
/// `O(types)` fold runs once per `batch_len` steps.
#[derive(Debug, Clone)]
pub struct ScoreAccumulator {
    stats: BatchStats,
    /// Raw-score array as of the last batch boundary.
    snapshot: Vec<f64>,
    /// Scratch for the per-batch mean vector (avoids a per-fold alloc).
    delta: Vec<f64>,
    in_batch: usize,
    /// Bounded-memory cap on the stored series (0 = unbounded): when a
    /// fold brings the batch count to the cap, adjacent pairs collapse
    /// ([`BatchStats::collapse_pairs`]) — batch length doubles, count
    /// halves. The series then never exceeds `cap` entries per type
    /// (O(cap·types) memory for any run length; the batch length grows
    /// as O(n/cap), i.e. the cap is hit only O(log n) times).
    max_series_batches: usize,
}

impl ScoreAccumulator {
    /// Accumulator for `types` graphlet types with `batch_len`-step
    /// batches.
    pub fn new(types: usize, batch_len: usize) -> Self {
        Self::bounded(types, batch_len, 0)
    }

    /// Accumulator with a bounded-memory series cap
    /// ([`StoppingRule::bounded_memory`]): at most `max_series_batches`
    /// batch means are retained per type; reaching the cap collapses
    /// adjacent pairs into double-length batches. `0` means unbounded.
    /// Until the cap is first hit the statistics are *bit-identical* to
    /// the unbounded accumulator — the cap only changes behavior at the
    /// collapse boundary.
    pub fn bounded(types: usize, batch_len: usize, max_series_batches: usize) -> Self {
        assert!(
            max_series_batches == 0
                || (max_series_batches >= 4 && max_series_batches.is_multiple_of(2)),
            "max_series_batches must be 0 (unbounded) or an even count >= 4"
        );
        Self {
            stats: BatchStats::new(types, batch_len),
            snapshot: vec![0.0; types],
            delta: vec![0.0; types],
            in_batch: 0,
            max_series_batches,
        }
    }

    /// Registers one scored window. `raw` is the estimator's running
    /// raw-score accumulator *after* this window's contribution (its
    /// first `types` entries are read; extra capacity is ignored).
    #[inline(always)]
    pub fn tick(&mut self, raw: &[f64]) {
        self.in_batch += 1;
        if self.in_batch == self.stats.batch_len {
            self.fold(raw);
        }
    }

    #[cold]
    #[inline(never)]
    fn fold(&mut self, raw: &[f64]) {
        let inv = 1.0 / (self.stats.batch_len as f64);
        let mut total = 0.0;
        for ((snap, d), &r) in self.snapshot.iter_mut().zip(&mut self.delta).zip(raw) {
            let x = (r - *snap) * inv;
            *d = x;
            total += x;
            *snap = r;
        }
        let delta = std::mem::take(&mut self.delta);
        self.stats.fold_batch(&delta, total);
        self.delta = delta;
        self.in_batch = 0;
        if self.max_series_batches != 0 && self.stats.batches as usize >= self.max_series_batches {
            self.stats.collapse_pairs();
        }
    }

    /// The statistics folded so far (a trailing partial batch is not
    /// included).
    pub fn stats(&self) -> &BatchStats {
        &self.stats
    }

    /// Consumes the accumulator, returning the folded statistics.
    pub fn into_stats(self) -> BatchStats {
        self.stats
    }

    /// Serializes the accumulator (statistics, snapshot, in-batch
    /// counter, cap) into a checkpoint payload. `delta` is pure
    /// per-fold scratch — fully overwritten before every read — so it
    /// is not carried.
    pub(crate) fn encode_into(&self, buf: &mut Vec<u8>) {
        self.stats.encode_into(buf);
        put_usize(buf, self.max_series_batches);
        put_usize(buf, self.in_batch);
        for &s in &self.snapshot {
            put_f64(buf, s);
        }
    }

    /// Inverse of [`ScoreAccumulator::encode_into`].
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let stats = BatchStats::decode_from(r)?;
        let cap = r.usize("acc.max_series_batches")?;
        if cap != 0 && (cap < 4 || cap % 2 != 0) {
            return Err(CheckpointError::Malformed { what: "acc.max_series_batches" });
        }
        let in_batch = r.usize("acc.in_batch")?;
        if in_batch >= stats.batch_len() {
            // `fold` fires exactly at the batch boundary, so a live
            // accumulator always satisfies `in_batch < batch_len`.
            return Err(CheckpointError::Malformed { what: "acc.in_batch" });
        }
        let types = stats.types();
        let mut snapshot = Vec::new();
        for _ in 0..types {
            snapshot.push(r.f64("acc.snapshot")?);
        }
        Ok(Self { stats, snapshot, delta: vec![0.0; types], in_batch, max_series_batches: cap })
    }
}

/// The default batch-length policy: `B ≈ √n` for an `n`-step budget
/// (floored at 16 so tiny runs still form batches), giving `b ≈ √n`
/// batches — the classic consistent choice for batch means under
/// geometrically mixing chains.
pub fn default_batch_len(steps: usize) -> usize {
    ((steps as f64).sqrt() as usize).max(16)
}

// --- Studentized critical values -------------------------------------------
//
// Batch-means intervals divide by an *estimated* standard error, so the
// pivotal quantity is Student-t with `batches − 1` degrees of freedom,
// not normal. With the default √n batching a short adaptive run easily
// reaches its first convergence check with 10–20 batches, where the
// normal quantile understates the interval by 5–15% — exactly the regime
// where an adaptive stopping rule would otherwise stop too early with an
// overconfident CI. The inverse-t below replaces the z quantile whenever
// the pooled batch count is small (see [`studentized_critical`]).

/// Batch counts below this use the Student-t quantile in place of `z`
/// when sizing confidence intervals (30 is the classic rule-of-thumb
/// boundary where t and normal quantiles differ by under ~2%).
pub const STUDENTIZE_BELOW: u64 = 30;

/// Degrees of freedom at which [`student_t_quantile`] switches to the
/// normal quantile outright. At 200 df the exact t quantile is within
/// ~1.2% of z at the 95% level — far below the batch-means estimator's
/// own resolution — and the clamp makes the df → ∞ limit exact.
pub const T_DF_NORMAL_LIMIT: u64 = 200;

/// `ln Γ(x)` for `x > 0` (Lanczos, g = 5): the only special function the
/// incomplete beta below needs.
fn ln_gamma(x: f64) -> f64 {
    const COF: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_9e-2,
        -0.539_523_938_495_3e-5,
    ];
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    let mut y = x;
    for c in COF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Continued fraction for the regularized incomplete beta (Lentz's
/// method, Numerical Recipes §6.4).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=200 {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 3e-14 {
            break;
        }
    }
    h
}

/// Regularized incomplete beta `I_x(a, b)`.
fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let bt = (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        bt * betacf(a, b, x) / a
    } else {
        1.0 - bt * betacf(b, a, 1.0 - x) / b
    }
}

/// CDF of Student's t with `df` degrees of freedom, via the standard
/// incomplete-beta identity `P(T ≤ t) = 1 − I_{df/(df+t²)}(df/2, 1/2)/2`
/// for `t ≥ 0` (symmetry for `t < 0`). Exact at every df, so the
/// quantile inversion below is monotone by construction.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    debug_assert!(df >= 1.0);
    let x = df / (df + t * t);
    let tail = 0.5 * reg_inc_beta(0.5 * df, 0.5, x);
    if t >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Standard normal CDF `Φ(z)` via the complementary error function
/// (Chebyshev fit, |error| < 1.2 × 10⁻⁷ — far below batch-means noise).
pub fn normal_cdf(z: f64) -> f64 {
    let x = -z / std::f64::consts::SQRT_2;
    // erfc on [0, ∞), reflected for negative arguments.
    let ax = x.abs();
    let t = 1.0 / (1.0 + 0.5 * ax);
    let erfc_ax = t
        * (-ax * ax - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    let erfc_x = if x >= 0.0 { erfc_ax } else { 2.0 - erfc_ax };
    0.5 * erfc_x
}

/// Standard normal quantile `Φ⁻¹(p)` (Acklam's rational approximation,
/// relative error < 1.15 × 10⁻⁹). Panics outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile needs p in (0, 1), got {p}");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Student-t quantile: the `p`-quantile of the t distribution with `df`
/// degrees of freedom — the inverse-t lookup behind studentized batch-
/// means intervals. Computed by bisection on [`student_t_cdf`] (monotone
/// by construction, accurate at every df); at `df ≥`
/// [`T_DF_NORMAL_LIMIT`] it returns the normal quantile outright (the
/// exact difference there is already below the CI's resolution).
///
/// Panics for `df == 0` or `p` outside `(0, 1)`.
pub fn student_t_quantile(p: f64, df: u64) -> f64 {
    assert!(df >= 1, "student_t_quantile needs df >= 1");
    assert!(p > 0.0 && p < 1.0, "student_t_quantile needs p in (0, 1), got {p}");
    if df >= T_DF_NORMAL_LIMIT {
        return normal_quantile(p);
    }
    if p < 0.5 {
        return -student_t_quantile(1.0 - p, df);
    }
    if p == 0.5 {
        return 0.0;
    }
    let dff = df as f64;
    // Bracket: the normal quantile is a lower-ish init; double until the
    // CDF crosses p (heavy df = 1 tails need a few doublings).
    let mut hi = normal_quantile(p).max(1.0);
    while student_t_cdf(hi, dff) < p && hi < 1e300 {
        hi *= 2.0;
    }
    let mut lo = 0.0;
    for _ in 0..120 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, dff) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The critical value for a two-sided CI specified by the normal
/// critical value `z` (e.g. 1.96 for 95%), studentized for `batches`
/// batch means: with fewer than [`STUDENTIZE_BELOW`] batches the
/// matching Student-t quantile at `batches − 1` degrees of freedom
/// replaces `z` (always ≥ `z`, widening the interval to honest small-
/// sample coverage); with `batches < 2` no variance estimate exists and
/// the result is `NaN`.
///
/// The matched coverage level is clamped below 1: `normal_cdf` rounds
/// to exactly 1.0 for `z ≳ 8.3`, which must yield a huge-but-finite
/// critical value, not a domain panic halfway through a paid-for run.
/// (Tail precision already degrades for `z ≳ 5.5` — far beyond any
/// practical confidence level; every sane `z` is unaffected.)
pub fn studentized_critical(z: f64, batches: u64) -> f64 {
    if batches < 2 {
        f64::NAN
    } else if batches >= STUDENTIZE_BELOW {
        z
    } else {
        student_t_quantile(normal_cdf(z).min(1.0 - 1e-12), batches - 1)
    }
}

/// When to stop an adaptive estimation run ([`crate::estimate_until`] /
/// [`crate::estimate_until_parallel`]).
///
/// The run stops at the first convergence check where at least
/// `min_batches` batches have completed and the widest relative
/// CI half-width over types with concentration ≥ `min_concentration`
/// is at most `target_rel_ci` — or unconditionally at `max_steps`.
/// Intervals are studentized: while the pooled batch count is below
/// [`STUDENTIZE_BELOW`], the Student-t quantile matching `z`'s coverage
/// replaces `z` (see [`StoppingRule::critical_value`]).
///
/// With `per_type` set, each type's convergence is *latched* the first
/// time its own half-width meets the target, and the run stops once
/// every qualifying type has latched — reported per type in the
/// [`AdaptiveReport`] the adaptive runners attach to their estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct StoppingRule {
    /// Target relative half-width of the `z`-CI (e.g. 0.05 for ±5%).
    pub target_rel_ci: f64,
    /// Steps between convergence checks. In the parallel coordinator
    /// this is the per-walker round length: pooled checks happen every
    /// `walkers × check_every` total steps.
    pub check_every: usize,
    /// Hard step budget (total across walkers); the run never exceeds
    /// it.
    pub max_steps: usize,
    /// Nominal CI critical value (1.96 ≈ 95% normal coverage).
    /// Studentized at evaluation time — see
    /// [`StoppingRule::critical_value`].
    pub z: f64,
    /// Steps per batch for the batch-means variance. Must exceed the
    /// chain's mixing scale for honest intervals; the default (512)
    /// is generous for the small-world graphs the estimator targets.
    pub batch_len: usize,
    /// Minimum completed batches before stopping is allowed — below
    /// ~20 the batch variance itself is too noisy to trust.
    pub min_batches: u64,
    /// Types with batch-means concentration below this floor are
    /// excluded from the stopping metric (their relative error decays
    /// like `1/√(n·c_i)` and would hold the run hostage).
    pub min_concentration: f64,
    /// Per-type stopping: latch each qualifying type the first time its
    /// own half-width meets the target and stop once all have latched,
    /// instead of requiring the *current* widest width to meet it. Can
    /// stop earlier (a type that converged and later wobbled wider stays
    /// converged) and fills [`AdaptiveReport::steps_used`] with each
    /// type's own convergence step.
    pub per_type: bool,
    /// Bounded-memory cap on the stored batch-mean series (0 =
    /// unbounded, the default). When nonzero, reaching the cap collapses
    /// adjacent batch-mean pairs into double-length batches
    /// (R-batching), keeping memory at O(cap · types) for any run
    /// length with only O(log n) collapses. Must be an even count ≥ 4.
    /// Restricted to single-walker runs: independent per-walker
    /// collapses would desynchronize the pooled batch lengths.
    pub max_series_batches: usize,
}

impl StoppingRule {
    /// A rule with the given target, check cadence, and budget, and
    /// default `z` / batching / floor parameters.
    ///
    /// Panics immediately on an out-of-domain rule (zero/negative
    /// target, zero check cadence, …) — see [`StoppingRule::validate`] —
    /// so a rule that could never fire is rejected at construction, not
    /// after a silent full-budget run.
    pub fn new(target_rel_ci: f64, check_every: usize, max_steps: usize) -> Self {
        match Self::try_new(target_rel_ci, check_every, max_steps) {
            Ok(rule) => rule,
            Err(e) => panic!("{e}"),
        }
    }

    /// The non-panicking form of [`StoppingRule::new`]: a rule with the
    /// given target, check cadence, and budget (default `z` / batching /
    /// floor parameters), or the typed reason it could never fire.
    pub fn try_new(
        target_rel_ci: f64,
        check_every: usize,
        max_steps: usize,
    ) -> Result<Self, RuleError> {
        let rule = Self { target_rel_ci, check_every, max_steps, ..Self::default() };
        rule.try_validate()?;
        Ok(rule)
    }

    /// Checks the rule's domain, returning the offending field as a
    /// typed [`RuleError`] — the non-panicking form every
    /// [`crate::runner::Runner`] path uses.
    pub fn try_validate(&self) -> Result<(), RuleError> {
        if self.target_rel_ci <= 0.0 || self.target_rel_ci.is_nan() {
            return Err(RuleError::TargetNotPositive { target_rel_ci: self.target_rel_ci });
        }
        if self.check_every < 1 {
            return Err(RuleError::ZeroCheckEvery);
        }
        if self.z <= 0.0 || self.z.is_nan() {
            return Err(RuleError::ZNotPositive { z: self.z });
        }
        if self.batch_len < 1 {
            return Err(RuleError::ZeroBatchLen);
        }
        if self.min_batches < 2 {
            return Err(RuleError::MinBatchesTooSmall { min_batches: self.min_batches });
        }
        if !(0.0..=1.0).contains(&self.min_concentration) {
            return Err(RuleError::ConcentrationOutOfRange {
                min_concentration: self.min_concentration,
            });
        }
        if self.max_series_batches != 0
            && (self.max_series_batches < 4 || !self.max_series_batches.is_multiple_of(2))
        {
            return Err(RuleError::BoundedMemoryCap {
                max_series_batches: self.max_series_batches,
            });
        }
        Ok(())
    }

    /// Returns this rule with a bounded-memory series cap: at most
    /// `max_series_batches` batch means retained per type (an even
    /// count ≥ 4), with adjacent pairs collapsing into double-length
    /// batches whenever the cap is reached. Until the first collapse the
    /// statistics are bit-identical to the unbounded rule. Single-walker
    /// runs only — the runner rejects the combination with
    /// [`crate::GxError::BoundedMemoryParallel`].
    pub fn bounded_memory(mut self, max_series_batches: usize) -> Self {
        self.max_series_batches = max_series_batches;
        self
    }

    /// Panics if the rule is out of domain — the legacy form, delegating
    /// to [`StoppingRule::try_validate`].
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// The critical value this rule sizes intervals with once `batches`
    /// batch means are pooled: `z` studentized for small batch counts
    /// (see [`studentized_critical`]).
    pub fn critical_value(&self, batches: u64) -> f64 {
        studentized_critical(self.z, batches)
    }

    /// Whether `stats` satisfies the (non-latching) stopping criterion:
    /// enough batches, and the widest studentized relative half-width
    /// over qualifying types at or below the target.
    pub fn converged(&self, stats: &BatchStats) -> bool {
        if stats.batches() < self.min_batches {
            return false;
        }
        let crit = self.critical_value(stats.batches());
        let w = stats.max_relative_half_width(crit, self.min_concentration);
        w.is_finite() && w <= self.target_rel_ci
    }
}

impl Default for StoppingRule {
    /// ±5% at 95% confidence, checked every 10 000 steps, capped at one
    /// million steps.
    fn default() -> Self {
        Self {
            target_rel_ci: 0.05,
            check_every: 10_000,
            max_steps: 1_000_000,
            z: 1.96,
            batch_len: 512,
            min_batches: 20,
            min_concentration: 0.01,
            per_type: false,
            max_series_batches: 0,
        }
    }
}

/// What an adaptive run ([`crate::estimate_until`] /
/// [`crate::estimate_until_parallel`]) learned about its own
/// convergence, attached to the [`crate::Estimate`] it returns.
///
/// `steps_used[i]` is the pooled step count at the first convergence
/// check where type `i`'s studentized relative half-width met the
/// target (with `converged[i] == true`); for types still pending at the
/// end it is the run's total step count (`converged[i] == false`).
/// Types below the concentration floor typically never latch — they are
/// excluded from the stopping decision, not estimated to target.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveReport {
    /// Walkers that cooperated on the budget (1 for the sequential
    /// runner).
    pub walkers: usize,
    /// Convergence checks (coordinator rounds) performed.
    pub rounds: usize,
    /// Whether the stopping criterion was met (as opposed to exhausting
    /// `max_steps`).
    pub target_met: bool,
    /// The studentized critical value in effect at the final check
    /// (`NaN` if no check gathered two batches).
    pub critical_value: f64,
    /// Per-type pooled steps at first convergence (total steps for
    /// types still pending).
    pub steps_used: Vec<usize>,
    /// Per-type converged/pending status.
    pub converged: Vec<bool>,
    /// Whether any walker was quarantined mid-run (graceful
    /// degradation): the estimate then pools fewer chains than
    /// requested, but every retained batch is sound.
    pub degraded: bool,
    /// Per-walker health, parallel to the requested fan-out. Empty only
    /// for reports predating the run's first round.
    pub walker_status: Vec<WalkerStatus>,
}

/// Health of one walker at the end of a run — the graceful-degradation
/// side of [`AdaptiveReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkerStatus {
    /// The walker contributed every round it was asked to.
    Healthy,
    /// The walker's chain was poisoned and it was removed from the
    /// rotation. Batches it completed *before* quarantine stay pooled —
    /// they are sound samples of the same stationary distribution — and
    /// the run continues on the remaining walkers.
    Quarantined {
        /// Coordinator round (1-based) at which the walker was removed.
        round: usize,
    },
}

impl WalkerStatus {
    /// Serializes one status into a checkpoint payload.
    pub(crate) fn encode_into(&self, buf: &mut Vec<u8>) {
        match *self {
            Self::Healthy => put_u8(buf, 0),
            Self::Quarantined { round } => {
                put_u8(buf, 1);
                put_usize(buf, round);
            }
        }
    }

    /// Inverse of [`WalkerStatus::encode_into`].
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.u8("walker_status.tag")? {
            0 => Ok(Self::Healthy),
            1 => Ok(Self::Quarantined { round: r.usize("walker_status.round")? }),
            _ => Err(CheckpointError::Malformed { what: "walker_status.tag" }),
        }
    }
}

/// The latching convergence bookkeeping shared by the sequential and
/// parallel adaptive runners: one `observe` per convergence check,
/// recording each type's first convergence step and answering whether
/// the rule says stop.
#[derive(Debug, Clone)]
pub(crate) struct AdaptiveTracker {
    latched: Vec<Option<usize>>,
}

impl AdaptiveTracker {
    pub(crate) fn new(types: usize) -> Self {
        Self { latched: vec![None; types] }
    }

    /// Graphlet types tracked (the latch-table length) — lets the
    /// checkpoint decoder cross-validate a snapshot against its config.
    pub(crate) fn types(&self) -> usize {
        self.latched.len()
    }

    /// Evaluates one convergence check against `stats` (the pooled
    /// statistics) at `pooled_steps` total scored windows. Latches
    /// newly converged types, and returns whether the run should stop:
    /// all qualifying types latched (`per_type`), or the current widest
    /// qualifying half-width at target (default) — both studentized.
    pub(crate) fn observe(
        &mut self,
        rule: &StoppingRule,
        stats: &BatchStats,
        pooled_steps: usize,
    ) -> bool {
        if stats.batches() < rule.min_batches {
            return false;
        }
        let crit = rule.critical_value(stats.batches());
        // The capped floor shared with `max_relative_half_width`:
        // pigeonhole guarantees at least one type qualifies once
        // anything scored. One pass serves both stop modes: per-type
        // latching, and the widest-qualifying-width criterion (with the
        // same NaN poisoning as `max_relative_half_width` — a qualifying
        // type with an undefined width keeps the bound undefined).
        let floor = stats.qualifying_floor(rule.min_concentration);
        let (mut any, mut all) = (false, true);
        let mut widest = f64::NAN;
        let mut undefined = false;
        for (i, latch) in self.latched.iter_mut().enumerate() {
            let c = stats.concentration(i);
            if c.is_nan() || c < floor {
                continue; // NaN concentration (nothing scored) is excluded too
            }
            any = true;
            let w = stats.relative_half_width(i, crit);
            if w.is_nan() {
                undefined = true;
            } else if widest.is_nan() || w > widest {
                widest = w;
            }
            if latch.is_none() {
                if w.is_finite() && w <= rule.target_rel_ci {
                    *latch = Some(pooled_steps);
                } else {
                    all = false;
                }
            }
        }
        if rule.per_type {
            any && all
        } else {
            !undefined && widest.is_finite() && widest <= rule.target_rel_ci
        }
    }

    /// Packs the latched state into the user-facing report.
    /// `walker_status` carries per-walker health (all
    /// [`WalkerStatus::Healthy`] for fault-free runs); any quarantined
    /// entry marks the report degraded.
    pub(crate) fn report(
        &self,
        walkers: usize,
        rounds: usize,
        total_steps: usize,
        target_met: bool,
        critical_value: f64,
        walker_status: Vec<WalkerStatus>,
    ) -> AdaptiveReport {
        AdaptiveReport {
            walkers,
            rounds,
            target_met,
            critical_value,
            steps_used: self.latched.iter().map(|l| l.unwrap_or(total_steps)).collect(),
            converged: self.latched.iter().map(|l| l.is_some()).collect(),
            degraded: walker_status.iter().any(|s| !matches!(s, WalkerStatus::Healthy)),
            walker_status,
        }
    }

    /// Serializes the latch table into a checkpoint payload.
    pub(crate) fn encode_into(&self, buf: &mut Vec<u8>) {
        put_usize(buf, self.latched.len());
        for l in &self.latched {
            match l {
                Some(step) => {
                    put_u8(buf, 1);
                    put_usize(buf, *step);
                }
                None => put_u8(buf, 0),
            }
        }
    }

    /// Inverse of [`AdaptiveTracker::encode_into`].
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let n = r.count(1 << 20, "tracker.types")?;
        let mut latched = Vec::new();
        for _ in 0..n {
            latched.push(match r.u8("tracker.latch.tag")? {
                0 => None,
                1 => Some(r.usize("tracker.latch.step")?),
                _ => return Err(CheckpointError::Malformed { what: "tracker.latch.tag" }),
            });
        }
        Ok(Self { latched })
    }
}

/// The verdict of [`crate::measure_burn_in`]: initialization bias
/// measured as the disagreement between early batch means and the
/// chain's steady-state batch-mean distribution (ROADMAP's "compare
/// first-batch mean vs the rest").
///
/// The reference distribution is the trailing half of the pilot batches
/// (mean `μ`, standard deviation `σ`); a leading batch is flagged
/// *biased* when its total-score mean sits more than `3σ` from `μ`.
/// `suggested_burn_in` is the step count covering everything up to and
/// including the *last* flagged leading batch (a start state can pass
/// through an in-band batch before drifting atypical, so the scan must
/// not stop at the first conforming batch) — pass it as
/// [`crate::EstimatorConfig::burn_in`] (zero when the chain shows no
/// measurable initialization bias, the common case on well-connected
/// graphs).
#[derive(Debug, Clone, PartialEq)]
pub struct BurnInReport {
    /// Steps per pilot batch.
    pub batch_len: usize,
    /// Total-score mean of every pilot batch, in chain order.
    pub batch_means: Vec<f64>,
    /// Standardized deviation of the first batch's mean from the
    /// steady-state reference: `(mean₀ − μ) / σ`. Beyond ±3 the start
    /// state's neighborhood is measurably atypical.
    pub first_batch_z: f64,
    /// Steps to discard before sampling (a multiple of `batch_len`).
    pub suggested_burn_in: usize,
}

impl BurnInReport {
    /// Diagnoses initialization bias from a pilot chain's per-batch
    /// total-score means. Needs at least four batches (two of reference
    /// tail).
    pub fn from_batch_means(batch_means: Vec<f64>, batch_len: usize) -> Self {
        assert!(batch_len >= 1, "batch length must be at least 1");
        let n = batch_means.len();
        assert!(n >= 4, "burn-in diagnosis needs at least 4 pilot batches, got {n}");
        let tail = &batch_means[n / 2..];
        let mu = tail.iter().sum::<f64>() / tail.len() as f64;
        let var = tail.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / (tail.len() - 1) as f64;
        // Guard a degenerate (constant-score) tail: fall back to a tiny
        // relative scale so exact agreement still reads as unbiased.
        let sd = var.sqrt().max(1e-12 * mu.abs().max(1.0));
        let first_batch_z = (batch_means[0] - mu) / sd;
        let biased_lead = batch_means[..n / 2]
            .iter()
            .rposition(|m| (m - mu).abs() > 3.0 * sd)
            .map_or(0, |last| last + 1);
        Self { batch_len, batch_means, first_batch_z, suggested_burn_in: biased_lead * batch_len }
    }

    /// Whether any leading batch was flagged.
    pub fn biased(&self) -> bool {
        self.suggested_burn_in > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Drives an accumulator with a known per-step score stream.
    fn accumulate(stream: &[Vec<f64>], batch_len: usize) -> BatchStats {
        let types = stream[0].len();
        let mut acc = ScoreAccumulator::new(types, batch_len);
        let mut raw = vec![0.0; types];
        for step in stream {
            for (r, x) in raw.iter_mut().zip(step) {
                *r += x;
            }
            acc.tick(&raw);
        }
        acc.into_stats()
    }

    #[test]
    fn batch_means_match_direct_computation() {
        // 7 steps, batch_len 2 -> 3 complete batches, 1 step dropped.
        let stream: Vec<Vec<f64>> =
            [1.0, 3.0, 2.0, 2.0, 0.0, 4.0, 9.0].iter().map(|&x| vec![x, 2.0 * x]).collect();
        let stats = accumulate(&stream, 2);
        assert_eq!(stats.batches(), 3);
        // batch means of type 0: [2.0, 2.0, 2.0]; type 1 doubles them.
        assert!((stats.mean_score(0) - 2.0).abs() < 1e-12);
        assert!((stats.mean_score(1) - 4.0).abs() < 1e-12);
        assert!((stats.mean_total() - 6.0).abs() < 1e-12);
        // zero variance across identical batch means
        assert!(stats.var_of_mean(0).abs() < 1e-12);
        assert!((stats.concentration(0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn variance_of_mean_is_sample_variance_over_batches() {
        // batch means of type 0: [1.0, 3.0] -> s² = 2, var(mean) = 1.
        let stream: Vec<Vec<f64>> = [1.0, 1.0, 3.0, 3.0].iter().map(|&x| vec![x]).collect();
        let stats = accumulate(&stream, 2);
        assert_eq!(stats.batches(), 2);
        assert!((stats.var_of_mean(0) - 1.0).abs() < 1e-12);
        assert!((stats.std_error(0) - 1.0).abs() < 1e-12);
        // relative half-width at z = 2: 2 * 1 / 2 = 1.
        assert!((stats.relative_half_width(0, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn insufficient_batches_give_nan() {
        let stats = accumulate(&[vec![1.0], vec![2.0]], 2);
        assert_eq!(stats.batches(), 1);
        assert!(stats.var_of_mean(0).is_nan());
        assert!(stats.std_error(0).is_nan());
        assert!(stats.concentration_std_error(0).is_nan());
        assert!(stats.max_relative_half_width(1.96, 0.0).is_nan());
    }

    #[test]
    fn concentration_delta_method_is_exact_for_constant_total() {
        // Total is constant (4.0) per step; concentration variance then
        // reduces to Var(μ̂_i)/μ_T² exactly, and the cross term vanishes
        // in expectation but not per-sample — check against a direct
        // delta-method computation on the same batch means.
        let stream: Vec<Vec<f64>> =
            [[1.0, 3.0], [3.0, 1.0], [2.0, 2.0], [0.0, 4.0]].iter().map(|x| x.to_vec()).collect();
        let stats = accumulate(&stream, 1);
        let b = 4.0f64;
        // direct: batch means are the steps themselves (batch_len 1)
        let m0 = 1.5;
        let var0 = [1.0f64, 3.0, 2.0, 0.0].iter().map(|x| (x - m0) * (x - m0)).sum::<f64>()
            / (b - 1.0)
            / b;
        let c = m0 / 4.0;
        // total variance and covariance are 0 (total constant at 4).
        let want = (var0 / (4.0 * 4.0)).sqrt();
        assert!((stats.concentration(0) - c).abs() < 1e-12);
        assert!((stats.concentration_std_error(0) - want).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_single_stream_fold() {
        // Folding one stream must equal merging its two halves, up to
        // floating-point association (compare loosely).
        let stream: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 7) as f64, (i % 3) as f64]).collect();
        let whole = accumulate(&stream, 4);
        let mut left = accumulate(&stream[..20], 4);
        let right = accumulate(&stream[20..], 4);
        left.merge(&right);
        assert_eq!(left.batches(), whole.batches());
        for i in 0..2 {
            assert!((left.mean_score(i) - whole.mean_score(i)).abs() < 1e-12);
            assert!((left.var_of_mean(i) - whole.var_of_mean(i)).abs() < 1e-12);
            assert!(
                (left.concentration_std_error(i) - whole.concentration_std_error(i)).abs() < 1e-12
            );
        }
        assert!((left.mean_total() - whole.mean_total()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let stream: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let stats = accumulate(&stream, 2);
        let mut a = stats.clone();
        a.merge(&BatchStats::new(1, 2));
        assert_eq!(a, stats);
        let mut b = BatchStats::new(1, 2);
        b.merge(&stats);
        assert_eq!(b, stats);
    }

    #[test]
    #[should_panic(expected = "equal batch lengths")]
    fn merge_rejects_mismatched_batch_len() {
        let mut a = BatchStats::new(1, 2);
        a.merge(&BatchStats::new(1, 4));
    }

    #[test]
    fn max_relative_half_width_respects_floor() {
        // Type 0 carries ~99% of mass with tight batches; type 1 is rare
        // and noisy. With a 5% floor the rare type is excluded.
        let stream: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![10.0 + ((i % 2) as f64) * 0.1, if i % 16 == 0 { 1.0 } else { 0.0 }])
            .collect();
        let stats = accumulate(&stream, 4);
        let with_floor = stats.max_relative_half_width(1.96, 0.05);
        let without = stats.max_relative_half_width(1.96, 0.0);
        assert!(with_floor < without, "{with_floor} vs {without}");
    }

    #[test]
    fn floor_is_capped_so_some_type_always_qualifies() {
        // 112 types (k = 6) with near-uniform mass: every concentration
        // (~0.009) sits below the default 0.01 floor, but the 1/types
        // cap keeps the bound defined — the stopping rule can still
        // fire on a diffuse distribution.
        let types = 112;
        let stream: Vec<Vec<f64>> = (0..32)
            .map(|i| {
                let mut step = vec![1.0; types];
                step[i % types] += 0.01; // tiny jitter so variance > 0
                step
            })
            .collect();
        let stats = accumulate(&stream, 4);
        let w = stats.max_relative_half_width(1.96, 0.01);
        assert!(w.is_finite(), "capped floor must keep the bound defined, got {w}");
    }

    #[test]
    fn stopping_rule_gates_on_batches_and_width() {
        let rule = StoppingRule { min_batches: 4, target_rel_ci: 0.5, ..Default::default() };
        rule.validate();
        // Identical batches -> zero width, but too few batches.
        let tight: Vec<Vec<f64>> = (0..3 * 512).map(|_| vec![1.0]).collect();
        let stats = accumulate(&tight, 512);
        assert_eq!(stats.batches(), 3);
        assert!(!rule.converged(&stats));
        let tight: Vec<Vec<f64>> = (0..4 * 512).map(|_| vec![1.0]).collect();
        let stats = accumulate(&tight, 512);
        assert!(rule.converged(&stats));
    }

    #[test]
    fn batch_mean_series_is_recorded_and_concatenates_on_merge() {
        let stream: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let stats = accumulate(&stream, 2);
        assert_eq!(stats.batch_means(0), &[0.5, 2.5, 4.5, 6.5]);
        let mut left = accumulate(&stream[..4], 2);
        let right = accumulate(&stream[4..], 2);
        left.merge(&right);
        assert_eq!(left.batch_means(0), stats.batch_means(0), "merge keeps fold order");
    }

    #[test]
    fn fold_series_suffix_replays_the_source_fold_bitwise() {
        // Feeding one accumulator's full series through fold_series_suffix
        // replays the identical Welford updates: every field — moments
        // and series — must match bit for bit. This is the property the
        // adaptive coordinator's incremental pooled-merge rests on.
        let stream: Vec<Vec<f64>> =
            (0..36).map(|i| vec![(i % 7) as f64 * 0.25, (i % 5) as f64]).collect();
        let stats = accumulate(&stream, 3);
        let mut pooled = BatchStats::new(2, 3);
        pooled.fold_series_suffix(&stats, 0);
        assert_eq!(pooled, stats);
        // Growing the stream and folding only the new suffix continues
        // the replay bit-identically.
        let mut incremental = BatchStats::new(2, 3);
        incremental.fold_series_suffix(&stats, 0);
        let more: Vec<Vec<f64>> =
            (36..60).map(|i| vec![(i % 7) as f64 * 0.25, (i % 5) as f64]).collect();
        let grown = accumulate(&[stream.clone(), more].concat(), 3);
        incremental.fold_series_suffix(&grown, stats.batches());
        assert_eq!(incremental, grown, "suffix folds continue the stream bit-identically");
    }

    #[test]
    fn obm_window_one_agrees_with_nobm_and_larger_windows_track_it() {
        // A noisy-but-stationary stream (SplitMix64-style hash, so
        // per-step scores are effectively i.i.d. — OBM and NOBM then
        // estimate the same quantity at every window): window 1 is the
        // NOBM sample variance (same formula, direct summation); larger
        // windows must agree to within estimator noise on 32 batches.
        fn mix(i: u64) -> f64 {
            let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 29;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 32;
            (x % 1_000) as f64 / 1_000.0
        }
        let stream: Vec<Vec<f64>> = (0..1024).map(|i| vec![3.0 + mix(i)]).collect();
        let stats = accumulate(&stream, 8);
        assert_eq!(stats.batches(), 128);
        let nobm = stats.var_of_mean(0);
        let obm1 = stats.obm_var_of_mean(0, 1);
        assert!((obm1 - nobm).abs() <= 1e-12 * nobm, "window 1: {obm1} vs {nobm}");
        for window in [2usize, 4, 8] {
            let obm = stats.obm_var_of_mean(0, window);
            assert!(obm.is_finite() && obm > 0.0);
            let ratio = obm / nobm;
            assert!((0.4..=2.5).contains(&ratio), "window {window}: ratio {ratio}");
        }
        // The default-window accessor is the same computation.
        let w = stats.default_obm_window();
        assert_eq!(w, 12, "⌈√128⌉");
        assert_eq!(stats.obm_std_error(0), stats.obm_var_of_mean(0, w).sqrt());
    }

    #[test]
    fn obm_is_nan_without_enough_batches_for_the_window() {
        let stream: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let stats = accumulate(&stream, 2); // 4 batches
        assert!(stats.obm_var_of_mean(0, 4).is_nan(), "b == m leaves one window");
        assert!(stats.obm_var_of_mean(0, 5).is_nan());
        assert!(stats.obm_var_of_mean(0, 0).is_nan());
        assert!(stats.obm_var_of_mean(0, 3).is_finite());
        let empty = BatchStats::new(1, 2);
        assert!(empty.obm_std_error(0).is_nan());
    }

    #[test]
    fn stopping_rule_try_new_returns_typed_errors() {
        assert_eq!(
            StoppingRule::try_new(0.0, 1_000, 10_000),
            Err(RuleError::TargetNotPositive { target_rel_ci: 0.0 })
        );
        assert_eq!(StoppingRule::try_new(0.05, 0, 10_000), Err(RuleError::ZeroCheckEvery));
        assert!(StoppingRule::try_new(0.05, 1_000, 10_000).is_ok());
        let bad = StoppingRule { z: -1.0, ..Default::default() };
        assert_eq!(bad.try_validate(), Err(RuleError::ZNotPositive { z: -1.0 }));
        let bad = StoppingRule { batch_len: 0, ..Default::default() };
        assert_eq!(bad.try_validate(), Err(RuleError::ZeroBatchLen));
        let bad = StoppingRule { min_batches: 1, ..Default::default() };
        assert_eq!(bad.try_validate(), Err(RuleError::MinBatchesTooSmall { min_batches: 1 }));
        let bad = StoppingRule { min_concentration: 1.5, ..Default::default() };
        assert_eq!(
            bad.try_validate(),
            Err(RuleError::ConcentrationOutOfRange { min_concentration: 1.5 })
        );
        // NaN fields are rejected, not silently accepted by `!(x > 0)`
        // double negation.
        let bad = StoppingRule { target_rel_ci: f64::NAN, ..Default::default() };
        assert!(matches!(bad.try_validate(), Err(RuleError::TargetNotPositive { .. })));
    }

    #[test]
    fn default_batch_len_scales_as_sqrt() {
        assert_eq!(default_batch_len(0), 16);
        assert_eq!(default_batch_len(100), 16);
        assert_eq!(default_batch_len(10_000), 100);
        assert_eq!(default_batch_len(1_000_000), 1000);
    }

    // Regression (constructor validation): a rule with a non-positive
    // target can never fire and used to silently burn the whole
    // max_steps budget on every run; check_every == 0 never reached a
    // convergence check at all. `new` now rejects both up front.
    #[test]
    #[should_panic(expected = "target_rel_ci")]
    fn stopping_rule_rejects_zero_target() {
        let _ = StoppingRule::new(0.0, 1_000, 10_000);
    }

    #[test]
    #[should_panic(expected = "target_rel_ci")]
    fn stopping_rule_rejects_negative_target() {
        let _ = StoppingRule::new(-0.05, 1_000, 10_000);
    }

    #[test]
    #[should_panic(expected = "check_every")]
    fn stopping_rule_rejects_zero_check_cadence() {
        let _ = StoppingRule::new(0.05, 0, 10_000);
    }

    #[test]
    fn studentized_critical_widens_small_batch_intervals() {
        // Below the studentization threshold the critical value must
        // exceed z (t-tails are heavier), approaching z from above.
        let mut prev = f64::INFINITY;
        for batches in 2..STUDENTIZE_BELOW {
            let crit = studentized_critical(1.96, batches);
            assert!(crit > 1.96, "batches={batches}: {crit}");
            assert!(crit <= prev, "critical value must shrink with more batches");
            prev = crit;
        }
        assert_eq!(studentized_critical(1.96, STUDENTIZE_BELOW), 1.96);
        assert_eq!(studentized_critical(1.96, 1_000), 1.96);
        assert!(studentized_critical(1.96, 0).is_nan());
        assert!(studentized_critical(1.96, 1).is_nan());
    }

    #[test]
    fn t_quantile_matches_reference_table() {
        // Classic two-sided 95% (p = 0.975) column of the t table.
        for (df, want) in
            [(1u64, 12.706), (2, 4.303), (5, 2.571), (10, 2.228), (30, 2.042), (100, 1.984)]
        {
            let got = student_t_quantile(0.975, df);
            assert!((got - want).abs() < 1.5e-3, "df={df}: got {got}, want {want}");
        }
        // 99% two-sided (p = 0.995).
        for (df, want) in [(1u64, 63.657), (5, 4.032), (20, 2.845)] {
            let got = student_t_quantile(0.995, df);
            assert!((got - want).abs() < 1.5e-3, "df={df}: got {got}, want {want}");
        }
        // Symmetry and the median.
        assert_eq!(student_t_quantile(0.5, 7), 0.0);
        assert!((student_t_quantile(0.1, 7) + student_t_quantile(0.9, 7)).abs() < 1e-9);
    }

    #[test]
    fn normal_quantile_inverts_normal_cdf() {
        for z in [-3.0, -1.96, -0.5, 0.0, 0.5, 1.0, 1.645, 1.96, 2.576, 3.29] {
            if z == 0.0 {
                assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
                continue;
            }
            let p = normal_cdf(z);
            assert!((normal_quantile(p) - z).abs() < 1e-5, "z={z}: round trip {}", {
                normal_quantile(p)
            });
        }
    }

    #[test]
    fn t_quantile_converges_to_z_by_df_200() {
        // The inverse-t lookup clamps to the normal quantile at
        // T_DF_NORMAL_LIMIT; the property the stopping rule relies on is
        // that by df = 200 the lookup and z agree to well under 1e-3.
        for p in [0.8, 0.9, 0.95, 0.975, 0.995] {
            let t = student_t_quantile(p, 200);
            let z = normal_quantile(p);
            assert!((t - z).abs() < 1e-3, "p={p}: t {t} vs z {z}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Strictly increasing in the confidence level at fixed df.
        #[test]
        fn t_quantile_monotone_in_confidence(
            df in 1u64..60,
            p in 0.55f64..0.98,
            gap in 0.005f64..0.015,
        ) {
            let lo = student_t_quantile(p, df);
            let hi = student_t_quantile(p + gap, df);
            prop_assert!(hi > lo, "df={df}: q({p})={lo} !< q({})={hi}", p + gap);
        }

        /// Decreasing in df at fixed upper-tail level (heavier tails at
        /// fewer degrees of freedom), down to the normal quantile.
        #[test]
        fn t_quantile_decreasing_in_df(df in 1u64..260, p in 0.75f64..0.999) {
            let here = student_t_quantile(p, df);
            let next = student_t_quantile(p, df + 1);
            prop_assert!(here >= next, "df={df}, p={p}: {here} < {next}");
            let z = normal_quantile(p);
            prop_assert!(here >= z - 1e-12, "df={df}, p={p}: t {here} below z {z}");
        }

        /// The studentized interval is wider than the z interval at
        /// small batch counts: same standard error, larger multiplier.
        #[test]
        fn t_interval_wider_than_z_at_small_df(batches in 2u64..30, z in 1.2f64..3.0) {
            let crit = studentized_critical(z, batches);
            let se = 0.37; // arbitrary positive standard error
            prop_assert!(crit * se > z * se, "batches={batches}: t width {} vs z width {}",
                crit * se, z * se);
        }
    }

    #[test]
    fn tracker_latches_types_and_reports_steps_used() {
        // Type 0 tight from the start, type 1 noisy: per-type mode must
        // latch 0 at the first check and 1 only once its width drops.
        let rule = StoppingRule {
            target_rel_ci: 0.2,
            min_batches: 2,
            min_concentration: 0.0,
            per_type: true,
            ..Default::default()
        };
        let mut tracker = AdaptiveTracker::new(2);
        // Check 1 (batch_len 2, so (i/2) % 2 varies *across* batches):
        // type 0 batch means 10 ± 0.0005, type 1 batch means 0 / 1.
        let noisy: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![10.0 + 0.001 * ((i / 2) % 2) as f64, ((i / 2) % 2) as f64])
            .collect();
        let stats = accumulate(&noisy, 2);
        assert!(!tracker.observe(&rule, &stats, 100), "type 1 still wide");
        // Check 2: both tight now.
        let tight: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![10.0 + 0.001 * ((i / 2) % 2) as f64, 1.0 + 0.001 * ((i / 2) % 2) as f64])
            .collect();
        let stats = accumulate(&tight, 2);
        assert!(tracker.observe(&rule, &stats, 200), "all types latched");
        let report = tracker.report(1, 2, 200, true, 2.2, vec![WalkerStatus::Healthy]);
        assert_eq!(report.steps_used, vec![100, 200]);
        assert_eq!(report.converged, vec![true, true]);
        assert!(report.target_met);
        assert_eq!(report.rounds, 2);
        assert_eq!(report.walkers, 1);
        assert!(!report.degraded);
        assert_eq!(report.walker_status, vec![WalkerStatus::Healthy]);
    }

    #[test]
    fn tracker_pending_types_report_total_steps() {
        let rule = StoppingRule {
            target_rel_ci: 1e-6,
            min_batches: 2,
            min_concentration: 0.0,
            per_type: true,
            ..Default::default()
        };
        let mut tracker = AdaptiveTracker::new(1);
        // Batch means 0.5, 2.5, 4.5, 6.5 — far too noisy for the target.
        let stream: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let stats = accumulate(&stream, 2);
        assert!(!tracker.observe(&rule, &stats, 500));
        let report = tracker.report(2, 1, 500, false, f64::NAN, vec![WalkerStatus::Healthy; 2]);
        assert_eq!(report.steps_used, vec![500]);
        assert_eq!(report.converged, vec![false]);
        assert!(!report.target_met);
        // A quarantined walker flips the degradation flag.
        let report = tracker.report(
            2,
            1,
            500,
            false,
            f64::NAN,
            vec![WalkerStatus::Healthy, WalkerStatus::Quarantined { round: 1 }],
        );
        assert!(report.degraded);
    }

    #[test]
    fn tracker_respects_min_batches_gate() {
        let rule = StoppingRule { target_rel_ci: 10.0, min_batches: 5, ..Default::default() };
        let mut tracker = AdaptiveTracker::new(1);
        let stream: Vec<Vec<f64>> = (0..8).map(|i| vec![1.0 + (i % 2) as f64]).collect();
        let stats = accumulate(&stream, 2); // 4 batches < 5
        assert!(!tracker.observe(&rule, &stats, 8));
        assert!(
            !tracker.report(1, 1, 8, false, f64::NAN, vec![WalkerStatus::Healthy]).converged[0]
        );
    }

    #[test]
    fn bounded_accumulator_matches_unbounded_below_the_cap() {
        // 7 complete batches at cap 8: the collapse never fires, so
        // every statistic — moments and series — is bit-identical to the
        // unbounded accumulator.
        let stream: Vec<Vec<f64>> =
            (0..30).map(|i| vec![(i % 7) as f64 * 0.25, (i % 5) as f64]).collect();
        let unbounded = accumulate(&stream, 4);
        let mut acc = ScoreAccumulator::bounded(2, 4, 8);
        let mut raw = vec![0.0; 2];
        for step in &stream {
            for (r, x) in raw.iter_mut().zip(step) {
                *r += x;
            }
            acc.tick(&raw);
        }
        assert_eq!(acc.stats(), &unbounded);
    }

    #[test]
    fn bounded_accumulator_collapses_at_the_cap() {
        // 64 base batches at cap 4: batch_len doubles every time the
        // count hits 4, ending at 64/4 · 4 = len 64 … concretely the
        // series never exceeds the cap and total mass is conserved.
        let stream: Vec<Vec<f64>> = (0..256).map(|i| vec![(i % 11) as f64]).collect();
        let mut acc = ScoreAccumulator::bounded(1, 4, 4);
        let mut raw = vec![0.0; 1];
        for step in &stream {
            raw[0] += step[0];
            acc.tick(&raw);
        }
        let stats = acc.stats();
        assert!(stats.batches() < 4, "series stays under the cap, got {}", stats.batches());
        assert_eq!(stats.batch_len() * stats.batches() as usize, 256, "mass conserved");
        // The overall mean is the mean of all steps regardless of
        // batching (all batches cover equal step counts).
        let want = stream.iter().map(|s| s[0]).sum::<f64>() / 256.0;
        assert!((stats.mean_score(0) - want).abs() < 1e-12);
        // Moments agree with a fresh fold of the collapsed series.
        let mut refold = BatchStats::new(1, stats.batch_len());
        refold.fold_series_suffix(stats, 0);
        assert_eq!(&refold, stats, "collapsed moments are a clean refold of the series");
    }

    #[test]
    fn collapse_pairs_averages_adjacent_means() {
        let stream: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let mut stats = accumulate(&stream, 2); // series [0.5, 2.5, 4.5, 6.5]
        stats.collapse_pairs();
        assert_eq!(stats.batch_len(), 4);
        assert_eq!(stats.batches(), 2);
        assert_eq!(stats.batch_means(0), &[1.5, 5.5]);
    }

    #[test]
    fn stopping_rule_bounded_memory_validation() {
        assert!(StoppingRule::default().bounded_memory(64).try_validate().is_ok());
        assert!(StoppingRule::default().bounded_memory(0).try_validate().is_ok());
        for bad in [1usize, 2, 3, 5, 7] {
            assert_eq!(
                StoppingRule::default().bounded_memory(bad).try_validate(),
                Err(RuleError::BoundedMemoryCap { max_series_batches: bad }),
                "cap {bad}"
            );
        }
    }

    #[test]
    fn accumulator_and_tracker_checkpoint_round_trip_bitwise() {
        let stream: Vec<Vec<f64>> =
            (0..37).map(|i| vec![(i % 7) as f64 * 0.25, (i % 5) as f64 * 0.5]).collect();
        let mut acc = ScoreAccumulator::bounded(2, 4, 8);
        let mut raw = vec![0.0; 2];
        for step in &stream {
            for (r, x) in raw.iter_mut().zip(step) {
                *r += x;
            }
            acc.tick(&raw);
        }
        let mut buf = Vec::new();
        acc.encode_into(&mut buf);
        let mut r = crate::checkpoint::Reader::new(&buf);
        let mut back = ScoreAccumulator::decode_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.stats(), acc.stats());
        // The decoded accumulator continues the stream identically —
        // including the trailing partial batch the snapshot carried.
        let more: Vec<Vec<f64>> =
            (37..60).map(|i| vec![(i % 7) as f64 * 0.25, (i % 5) as f64 * 0.5]).collect();
        for step in &more {
            for (r, x) in raw.iter_mut().zip(step) {
                *r += x;
            }
            acc.tick(&raw);
            back.tick(&raw);
        }
        assert_eq!(back.stats(), acc.stats(), "resumed fold diverged");

        let mut tracker = AdaptiveTracker::new(3);
        tracker.latched = vec![None, Some(123), Some(0)];
        let mut buf = Vec::new();
        tracker.encode_into(&mut buf);
        let mut r = crate::checkpoint::Reader::new(&buf);
        let back = AdaptiveTracker::decode_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.latched, tracker.latched);

        let mut buf = Vec::new();
        WalkerStatus::Quarantined { round: 7 }.encode_into(&mut buf);
        WalkerStatus::Healthy.encode_into(&mut buf);
        let mut r = crate::checkpoint::Reader::new(&buf);
        assert_eq!(
            WalkerStatus::decode_from(&mut r).unwrap(),
            WalkerStatus::Quarantined { round: 7 }
        );
        assert_eq!(WalkerStatus::decode_from(&mut r).unwrap(), WalkerStatus::Healthy);
    }

    #[test]
    fn burn_in_report_flags_biased_lead_batches() {
        // Two hot leading batches, then a stationary tail.
        let mut means = vec![9.0, 7.5];
        means.extend((0..10).map(|i| 1.0 + 0.01 * (i % 3) as f64));
        let report = BurnInReport::from_batch_means(means, 128);
        assert!(report.biased());
        assert_eq!(report.suggested_burn_in, 2 * 128);
        assert!(report.first_batch_z > 3.0, "z = {}", report.first_batch_z);
    }

    #[test]
    fn studentized_critical_survives_extreme_z() {
        // Regression: normal_cdf rounds to exactly 1.0 for z ≳ 8.3, and
        // an unclamped level paniced inside student_t_quantile halfway
        // through a paid-for run. Absurd-but-validated z must produce a
        // huge finite critical value instead.
        for batches in [2u64, 5, 10, 29] {
            let crit = studentized_critical(9.0, batches);
            assert!(crit.is_finite() && crit > 9.0, "batches={batches}: {crit}");
        }
        // Above the studentization threshold z passes through untouched.
        assert_eq!(studentized_critical(9.0, 30), 9.0);
    }

    #[test]
    fn burn_in_scan_does_not_stop_at_a_lucky_in_band_batch() {
        // Regression: the first batch can land in-band by luck before
        // the chain drifts through an atypical region; the scan must
        // cover through the *last* out-of-band leading batch.
        let mut means = vec![1.0, 9.0, 9.0, 9.0, 1.01, 0.99];
        means.extend((0..6).map(|i| 1.0 + 0.01 * (i % 3) as f64));
        let report = BurnInReport::from_batch_means(means, 64);
        assert!(report.biased());
        assert_eq!(report.suggested_burn_in, 4 * 64, "covers through the last hot batch");
        assert!(report.first_batch_z.abs() < 3.0, "first batch itself was in-band");
    }

    #[test]
    fn burn_in_report_accepts_stationary_chain() {
        let means: Vec<f64> = (0..12).map(|i| 5.0 + 0.02 * (i % 4) as f64).collect();
        let report = BurnInReport::from_batch_means(means, 64);
        assert!(!report.biased());
        assert_eq!(report.suggested_burn_in, 0);
        assert!(report.first_batch_z.abs() < 3.0);
    }

    #[test]
    fn burn_in_report_constant_scores_read_as_unbiased() {
        // A degenerate zero-variance tail must not divide by zero.
        let report = BurnInReport::from_batch_means(vec![2.0; 8], 32);
        assert!(!report.biased());
        assert_eq!(report.first_batch_z, 0.0);
    }

    #[test]
    fn burn_in_suggestion_capped_at_half_the_pilot() {
        // Every batch "biased" relative to the tail is impossible by
        // construction (the tail defines the reference), but a first
        // half entirely outside the tail band caps at n/2 batches.
        let mut means = vec![100.0, 90.0, 80.0, 70.0];
        means.extend([1.0, 1.1, 0.9, 1.05]);
        let report = BurnInReport::from_batch_means(means, 16);
        assert_eq!(report.suggested_burn_in, 4 * 16);
    }

    #[test]
    #[should_panic(expected = "at least 4 pilot batches")]
    fn burn_in_report_needs_enough_batches() {
        let _ = BurnInReport::from_batch_means(vec![1.0, 2.0, 3.0], 16);
    }
}
