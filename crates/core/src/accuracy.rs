//! Error bars for running estimates: streaming batch-means variance and
//! the adaptive stopping rule built on it.
//!
//! The paper evaluates estimators by after-the-fact NRMSE over many
//! repeated runs (§6.1). A production service answering "how many
//! triangles?" cannot repeat the run a thousand times — it must ship a
//! confidence interval *with* the point estimate, computed online from
//! the one chain it has. The samples of that chain are serially
//! correlated (consecutive windows share `l − 1` states), so the naive
//! i.i.d. variance `s²/n` is badly optimistic. The standard fix from the
//! MCMC / steady-state-simulation literature is **batch means**: split
//! the step stream into `b` non-overlapping batches of `B` consecutive
//! steps, average each batch, and treat the `b` batch means as
//! approximately independent draws — valid once `B` exceeds the chain's
//! mixing scale. With the classic `B ≈ √n` policy both `b` and `B` grow
//! with the budget, which makes the variance estimator consistent under
//! geometric mixing.
//!
//! The accumulator here ([`ScoreAccumulator`]) threads through the fused
//! estimator loop at near-zero cost: the per-step work is one counter
//! increment and one predictable branch, because a batch mean is
//! recovered at the batch boundary as a *difference of running raw-score
//! snapshots* — the hot loop's own `raw[idx] += weight` store doubles as
//! the accumulation, and nothing else is touched per step. Per-type
//! means, second moments, and the cross-moment with the per-step score
//! total (needed for concentration error bars via the delta method) are
//! maintained with Welford updates per *batch*, not per step.
//!
//! [`BatchStats`] is mergeable: independent walkers produce independent
//! batches, so [`BatchStats::merge`] pools them with the standard
//! parallel Welford combination — in walker order, keeping
//! [`crate::estimate_parallel`] deterministic per `(seed, walkers)`.

/// Streaming batch-means statistics over per-step score vectors.
///
/// For each graphlet type `i` this tracks, across completed batches, the
/// batch-mean average `mean(i)` (an estimate of the per-step expected
/// score `E[Y_i]`), its second central moment, and the cross-moment with
/// the per-step score *total* `T = Σ_i Y_i` — enough to put error bars
/// on both count estimates (linear in `E[Y_i]`) and concentration
/// estimates (`E[Y_i]/E[T]`, via the delta method).
///
/// All quantities are on the *per-step score* scale; callers rescale
/// (counts multiply by `2|R(d)|`, see [`crate::Estimate`]). Only steps
/// inside completed batches contribute; a trailing partial batch is
/// ignored, which is the usual batch-means convention.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStats {
    batch_len: usize,
    /// Completed batches folded so far.
    batches: u64,
    /// Per-type average of batch means.
    mean: Vec<f64>,
    /// Per-type sum of squared deviations of batch means (Welford M2).
    m2: Vec<f64>,
    /// Per-type co-moment of (batch mean, batch total mean).
    cov_total: Vec<f64>,
    /// Average of batch total means.
    mean_total: f64,
    /// M2 of batch total means.
    m2_total: f64,
}

impl BatchStats {
    /// Empty statistics for `types` graphlet types and batches of
    /// `batch_len` steps.
    pub fn new(types: usize, batch_len: usize) -> Self {
        assert!(batch_len >= 1, "batch length must be at least 1");
        Self {
            batch_len,
            batches: 0,
            mean: vec![0.0; types],
            m2: vec![0.0; types],
            cov_total: vec![0.0; types],
            mean_total: 0.0,
            m2_total: 0.0,
        }
    }

    /// Number of graphlet types tracked.
    pub fn types(&self) -> usize {
        self.mean.len()
    }

    /// Steps per batch.
    pub fn batch_len(&self) -> usize {
        self.batch_len
    }

    /// Completed batches folded so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Average per-step score of type `i` over completed batches (the
    /// batch-means estimate of `E[Y_i]`).
    pub fn mean_score(&self, i: usize) -> f64 {
        self.mean[i]
    }

    /// Average per-step score total over completed batches.
    pub fn mean_total(&self) -> f64 {
        self.mean_total
    }

    /// Batch-means concentration of type `i`: `mean(i) / mean_total`.
    /// `NaN` when no score mass has been seen.
    pub fn concentration(&self, i: usize) -> f64 {
        self.mean[i] / self.mean_total
    }

    /// Variance of the *mean-score estimator* for type `i`:
    /// `s²_batch / b` with the sample variance of the `b` batch means.
    /// `NaN` with fewer than two completed batches.
    pub fn var_of_mean(&self, i: usize) -> f64 {
        if self.batches < 2 {
            return f64::NAN;
        }
        let b = self.batches as f64;
        self.m2[i] / (b - 1.0) / b
    }

    /// Standard error of the mean score of type `i` (`NaN` with fewer
    /// than two completed batches).
    pub fn std_error(&self, i: usize) -> f64 {
        self.var_of_mean(i).sqrt()
    }

    /// Standard error of the concentration of type `i` by the delta
    /// method on `c_i = E[Y_i] / E[T]`:
    /// `Var(ĉ_i) ≈ (Var(μ̂_i) + c² Var(μ̂_T) − 2c Cov(μ̂_i, μ̂_T)) / μ_T²`.
    /// `NaN` with fewer than two batches or zero score mass.
    pub fn concentration_std_error(&self, i: usize) -> f64 {
        if self.batches < 2 || self.mean_total <= 0.0 {
            return f64::NAN;
        }
        let b = self.batches as f64;
        let scale = 1.0 / (b - 1.0) / b;
        let c = self.concentration(i);
        let var_i = self.m2[i] * scale;
        let var_t = self.m2_total * scale;
        let cov_it = self.cov_total[i] * scale;
        let var_c =
            (var_i + c * c * var_t - 2.0 * c * cov_it) / (self.mean_total * self.mean_total);
        // The delta-method quadratic form can dip below zero by rounding
        // when the terms nearly cancel; clamp instead of returning NaN.
        var_c.max(0.0).sqrt()
    }

    /// Relative half-width of the `z`-confidence interval of type `i`'s
    /// mean score: `z · SE(i) / mean(i)`. Since count estimates are the
    /// mean score times a constant, this is also the relative half-width
    /// of the count CI. `NaN` when the mean is zero or batches < 2.
    pub fn relative_half_width(&self, i: usize, z: f64) -> f64 {
        z * self.std_error(i) / self.mean[i]
    }

    /// The widest [`BatchStats::relative_half_width`] over the types
    /// whose concentration is at least `min_concentration` — the scalar
    /// the adaptive stopping rule drives to its target. Types rarer than
    /// the floor are excluded (their relative error decays like
    /// `1/√(n·c_i)` and would dominate the maximum forever). The floor
    /// is capped at `1/types`: concentrations sum to 1, so by pigeonhole
    /// at least one type always qualifies — a diffuse distribution over
    /// many types (k = 6 has 112) cannot silently disqualify every type
    /// and leave the stopping rule unable to ever fire. `NaN` when
    /// nothing has been sampled or batches < 2.
    pub fn max_relative_half_width(&self, z: f64, min_concentration: f64) -> f64 {
        if self.batches < 2 {
            return f64::NAN;
        }
        let floor = min_concentration.min(1.0 / self.types() as f64);
        let mut widest = f64::NAN;
        for i in 0..self.types() {
            if self.concentration(i) >= floor {
                let w = self.relative_half_width(i, z);
                if w.is_nan() {
                    // A qualifying type with an undefined width (possible
                    // only at floor 0, for a type never sampled) keeps
                    // the whole bound undefined.
                    return f64::NAN;
                }
                if widest.is_nan() || w > widest {
                    widest = w; // first qualifying type, or a wider one
                }
            }
        }
        widest
    }

    /// Folds one completed batch given the raw-score snapshot difference
    /// already divided down to batch means. `delta[i]` must be the mean
    /// per-step score of type `i` over the batch.
    fn fold_batch(&mut self, delta: &[f64], total: f64) {
        self.batches += 1;
        let n = self.batches as f64;
        let dt_old = total - self.mean_total;
        self.mean_total += dt_old / n;
        let dt_new = total - self.mean_total;
        self.m2_total += dt_old * dt_new;
        for (i, &x) in delta.iter().enumerate() {
            let dx_old = x - self.mean[i];
            self.mean[i] += dx_old / n;
            let dx_new = x - self.mean[i];
            self.m2[i] += dx_old * dx_new;
            self.cov_total[i] += dx_old * dt_new;
        }
    }

    /// Pools another chain's batches into this one (parallel Welford /
    /// Chan combination). Batches from independent walkers are
    /// independent draws of the same batch-mean distribution, so pooling
    /// is exact — provided both sides used the same `batch_len`
    /// (asserted). Merge order matters at the bit level: callers must
    /// fold walkers in a fixed order for deterministic output.
    pub fn merge(&mut self, other: &BatchStats) {
        assert_eq!(self.batch_len, other.batch_len, "pooled batch means need equal batch lengths");
        assert_eq!(self.types(), other.types(), "mismatched type counts");
        if other.batches == 0 {
            return;
        }
        if self.batches == 0 {
            *self = other.clone();
            return;
        }
        let na = self.batches as f64;
        let nb = other.batches as f64;
        let w = na * nb / (na + nb);
        let dt = other.mean_total - self.mean_total;
        self.m2_total += other.m2_total + dt * dt * w;
        for i in 0..self.mean.len() {
            let dx = other.mean[i] - self.mean[i];
            self.m2[i] += other.m2[i] + dx * dx * w;
            self.cov_total[i] += other.cov_total[i] + dx * dt * w;
            self.mean[i] += dx * nb / (na + nb);
        }
        self.mean_total += dt * nb / (na + nb);
        self.batches += other.batches;
    }
}

/// The hot-loop side of the batch-means machinery: ticks once per scored
/// window and recovers batch means as snapshot differences of the
/// estimator's running raw-score array.
///
/// Per-step cost is one increment plus one predictable compare; the
/// `O(types)` fold runs once per `batch_len` steps.
#[derive(Debug, Clone)]
pub struct ScoreAccumulator {
    stats: BatchStats,
    /// Raw-score array as of the last batch boundary.
    snapshot: Vec<f64>,
    /// Scratch for the per-batch mean vector (avoids a per-fold alloc).
    delta: Vec<f64>,
    in_batch: usize,
}

impl ScoreAccumulator {
    /// Accumulator for `types` graphlet types with `batch_len`-step
    /// batches.
    pub fn new(types: usize, batch_len: usize) -> Self {
        Self {
            stats: BatchStats::new(types, batch_len),
            snapshot: vec![0.0; types],
            delta: vec![0.0; types],
            in_batch: 0,
        }
    }

    /// Registers one scored window. `raw` is the estimator's running
    /// raw-score accumulator *after* this window's contribution (its
    /// first `types` entries are read; extra capacity is ignored).
    #[inline(always)]
    pub fn tick(&mut self, raw: &[f64]) {
        self.in_batch += 1;
        if self.in_batch == self.stats.batch_len {
            self.fold(raw);
        }
    }

    #[cold]
    #[inline(never)]
    fn fold(&mut self, raw: &[f64]) {
        let inv = 1.0 / (self.stats.batch_len as f64);
        let mut total = 0.0;
        for ((snap, d), &r) in self.snapshot.iter_mut().zip(&mut self.delta).zip(raw) {
            let x = (r - *snap) * inv;
            *d = x;
            total += x;
            *snap = r;
        }
        let delta = std::mem::take(&mut self.delta);
        self.stats.fold_batch(&delta, total);
        self.delta = delta;
        self.in_batch = 0;
    }

    /// The statistics folded so far (a trailing partial batch is not
    /// included).
    pub fn stats(&self) -> &BatchStats {
        &self.stats
    }

    /// Consumes the accumulator, returning the folded statistics.
    pub fn into_stats(self) -> BatchStats {
        self.stats
    }
}

/// The default batch-length policy: `B ≈ √n` for an `n`-step budget
/// (floored at 16 so tiny runs still form batches), giving `b ≈ √n`
/// batches — the classic consistent choice for batch means under
/// geometrically mixing chains.
pub fn default_batch_len(steps: usize) -> usize {
    ((steps as f64).sqrt() as usize).max(16)
}

/// When to stop an adaptive estimation run ([`crate::estimate_until`]).
///
/// The run stops at the first convergence check where at least
/// `min_batches` batches have completed and the widest relative
/// CI half-width over types with concentration ≥ `min_concentration`
/// is at most `target_rel_ci` — or unconditionally at `max_steps`.
#[derive(Debug, Clone, PartialEq)]
pub struct StoppingRule {
    /// Target relative half-width of the `z`-CI (e.g. 0.05 for ±5%).
    pub target_rel_ci: f64,
    /// Steps between convergence checks.
    pub check_every: usize,
    /// Hard step budget; the run never exceeds it.
    pub max_steps: usize,
    /// CI critical value (1.96 ≈ 95% normal coverage).
    pub z: f64,
    /// Steps per batch for the batch-means variance. Must exceed the
    /// chain's mixing scale for honest intervals; the default (512)
    /// is generous for the small-world graphs the estimator targets.
    pub batch_len: usize,
    /// Minimum completed batches before stopping is allowed — below
    /// ~20 the batch variance itself is too noisy to trust.
    pub min_batches: u64,
    /// Types with batch-means concentration below this floor are
    /// excluded from the stopping metric (their relative error decays
    /// like `1/√(n·c_i)` and would hold the run hostage).
    pub min_concentration: f64,
}

impl StoppingRule {
    /// A rule with the given target, check cadence, and budget, and
    /// default `z` / batching / floor parameters.
    pub fn new(target_rel_ci: f64, check_every: usize, max_steps: usize) -> Self {
        Self { target_rel_ci, check_every, max_steps, ..Self::default() }
    }

    /// Panics if the rule is out of domain.
    pub fn validate(&self) {
        assert!(self.target_rel_ci > 0.0, "target_rel_ci must be positive");
        assert!(self.check_every >= 1, "check_every must be at least 1");
        assert!(self.z > 0.0, "z must be positive");
        assert!(self.batch_len >= 1, "batch_len must be at least 1");
        assert!(self.min_batches >= 2, "min_batches must be at least 2");
        assert!(
            (0.0..=1.0).contains(&self.min_concentration),
            "min_concentration must be a concentration"
        );
    }

    /// Whether `stats` satisfies the stopping criterion.
    pub fn converged(&self, stats: &BatchStats) -> bool {
        if stats.batches() < self.min_batches {
            return false;
        }
        let w = stats.max_relative_half_width(self.z, self.min_concentration);
        w.is_finite() && w <= self.target_rel_ci
    }
}

impl Default for StoppingRule {
    /// ±5% at 95% confidence, checked every 10 000 steps, capped at one
    /// million steps.
    fn default() -> Self {
        Self {
            target_rel_ci: 0.05,
            check_every: 10_000,
            max_steps: 1_000_000,
            z: 1.96,
            batch_len: 512,
            min_batches: 20,
            min_concentration: 0.01,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives an accumulator with a known per-step score stream.
    fn accumulate(stream: &[Vec<f64>], batch_len: usize) -> BatchStats {
        let types = stream[0].len();
        let mut acc = ScoreAccumulator::new(types, batch_len);
        let mut raw = vec![0.0; types];
        for step in stream {
            for (r, x) in raw.iter_mut().zip(step) {
                *r += x;
            }
            acc.tick(&raw);
        }
        acc.into_stats()
    }

    #[test]
    fn batch_means_match_direct_computation() {
        // 7 steps, batch_len 2 -> 3 complete batches, 1 step dropped.
        let stream: Vec<Vec<f64>> =
            [1.0, 3.0, 2.0, 2.0, 0.0, 4.0, 9.0].iter().map(|&x| vec![x, 2.0 * x]).collect();
        let stats = accumulate(&stream, 2);
        assert_eq!(stats.batches(), 3);
        // batch means of type 0: [2.0, 2.0, 2.0]; type 1 doubles them.
        assert!((stats.mean_score(0) - 2.0).abs() < 1e-12);
        assert!((stats.mean_score(1) - 4.0).abs() < 1e-12);
        assert!((stats.mean_total() - 6.0).abs() < 1e-12);
        // zero variance across identical batch means
        assert!(stats.var_of_mean(0).abs() < 1e-12);
        assert!((stats.concentration(0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn variance_of_mean_is_sample_variance_over_batches() {
        // batch means of type 0: [1.0, 3.0] -> s² = 2, var(mean) = 1.
        let stream: Vec<Vec<f64>> = [1.0, 1.0, 3.0, 3.0].iter().map(|&x| vec![x]).collect();
        let stats = accumulate(&stream, 2);
        assert_eq!(stats.batches(), 2);
        assert!((stats.var_of_mean(0) - 1.0).abs() < 1e-12);
        assert!((stats.std_error(0) - 1.0).abs() < 1e-12);
        // relative half-width at z = 2: 2 * 1 / 2 = 1.
        assert!((stats.relative_half_width(0, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn insufficient_batches_give_nan() {
        let stats = accumulate(&[vec![1.0], vec![2.0]], 2);
        assert_eq!(stats.batches(), 1);
        assert!(stats.var_of_mean(0).is_nan());
        assert!(stats.std_error(0).is_nan());
        assert!(stats.concentration_std_error(0).is_nan());
        assert!(stats.max_relative_half_width(1.96, 0.0).is_nan());
    }

    #[test]
    fn concentration_delta_method_is_exact_for_constant_total() {
        // Total is constant (4.0) per step; concentration variance then
        // reduces to Var(μ̂_i)/μ_T² exactly, and the cross term vanishes
        // in expectation but not per-sample — check against a direct
        // delta-method computation on the same batch means.
        let stream: Vec<Vec<f64>> =
            [[1.0, 3.0], [3.0, 1.0], [2.0, 2.0], [0.0, 4.0]].iter().map(|x| x.to_vec()).collect();
        let stats = accumulate(&stream, 1);
        let b = 4.0f64;
        // direct: batch means are the steps themselves (batch_len 1)
        let m0 = 1.5;
        let var0 = [1.0f64, 3.0, 2.0, 0.0].iter().map(|x| (x - m0) * (x - m0)).sum::<f64>()
            / (b - 1.0)
            / b;
        let c = m0 / 4.0;
        // total variance and covariance are 0 (total constant at 4).
        let want = (var0 / (4.0 * 4.0)).sqrt();
        assert!((stats.concentration(0) - c).abs() < 1e-12);
        assert!((stats.concentration_std_error(0) - want).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_single_stream_fold() {
        // Folding one stream must equal merging its two halves, up to
        // floating-point association (compare loosely).
        let stream: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 7) as f64, (i % 3) as f64]).collect();
        let whole = accumulate(&stream, 4);
        let mut left = accumulate(&stream[..20], 4);
        let right = accumulate(&stream[20..], 4);
        left.merge(&right);
        assert_eq!(left.batches(), whole.batches());
        for i in 0..2 {
            assert!((left.mean_score(i) - whole.mean_score(i)).abs() < 1e-12);
            assert!((left.var_of_mean(i) - whole.var_of_mean(i)).abs() < 1e-12);
            assert!(
                (left.concentration_std_error(i) - whole.concentration_std_error(i)).abs() < 1e-12
            );
        }
        assert!((left.mean_total() - whole.mean_total()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let stream: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let stats = accumulate(&stream, 2);
        let mut a = stats.clone();
        a.merge(&BatchStats::new(1, 2));
        assert_eq!(a, stats);
        let mut b = BatchStats::new(1, 2);
        b.merge(&stats);
        assert_eq!(b, stats);
    }

    #[test]
    #[should_panic(expected = "equal batch lengths")]
    fn merge_rejects_mismatched_batch_len() {
        let mut a = BatchStats::new(1, 2);
        a.merge(&BatchStats::new(1, 4));
    }

    #[test]
    fn max_relative_half_width_respects_floor() {
        // Type 0 carries ~99% of mass with tight batches; type 1 is rare
        // and noisy. With a 5% floor the rare type is excluded.
        let stream: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![10.0 + ((i % 2) as f64) * 0.1, if i % 16 == 0 { 1.0 } else { 0.0 }])
            .collect();
        let stats = accumulate(&stream, 4);
        let with_floor = stats.max_relative_half_width(1.96, 0.05);
        let without = stats.max_relative_half_width(1.96, 0.0);
        assert!(with_floor < without, "{with_floor} vs {without}");
    }

    #[test]
    fn floor_is_capped_so_some_type_always_qualifies() {
        // 112 types (k = 6) with near-uniform mass: every concentration
        // (~0.009) sits below the default 0.01 floor, but the 1/types
        // cap keeps the bound defined — the stopping rule can still
        // fire on a diffuse distribution.
        let types = 112;
        let stream: Vec<Vec<f64>> = (0..32)
            .map(|i| {
                let mut step = vec![1.0; types];
                step[i % types] += 0.01; // tiny jitter so variance > 0
                step
            })
            .collect();
        let stats = accumulate(&stream, 4);
        let w = stats.max_relative_half_width(1.96, 0.01);
        assert!(w.is_finite(), "capped floor must keep the bound defined, got {w}");
    }

    #[test]
    fn stopping_rule_gates_on_batches_and_width() {
        let rule = StoppingRule { min_batches: 4, target_rel_ci: 0.5, ..Default::default() };
        rule.validate();
        // Identical batches -> zero width, but too few batches.
        let tight: Vec<Vec<f64>> = (0..3 * 512).map(|_| vec![1.0]).collect();
        let stats = accumulate(&tight, 512);
        assert_eq!(stats.batches(), 3);
        assert!(!rule.converged(&stats));
        let tight: Vec<Vec<f64>> = (0..4 * 512).map(|_| vec![1.0]).collect();
        let stats = accumulate(&tight, 512);
        assert!(rule.converged(&stats));
    }

    #[test]
    fn default_batch_len_scales_as_sqrt() {
        assert_eq!(default_batch_len(0), 16);
        assert_eq!(default_batch_len(100), 16);
        assert_eq!(default_batch_len(10_000), 100);
        assert_eq!(default_batch_len(1_000_000), 1000);
    }

    #[test]
    #[should_panic(expected = "target_rel_ci")]
    fn stopping_rule_rejects_zero_target() {
        StoppingRule::new(0.0, 1_000, 10_000).validate();
    }
}
