//! Crash-resilient snapshots of a live estimation run.
//!
//! A checkpoint is a versioned, checksummed, self-describing binary image
//! of everything a [`crate::runner::RunHandle`] needs to continue a run
//! bit-for-bit: per-walker RNG state, walk position, the scoring window's
//! ring contents, raw graphlet scores, the full batch-means accumulator,
//! and the adaptive tracker's latches. The golden-bit contract is:
//!
//! > checkpoint → drop the process → resume → `finish()` produces the
//! > *same bits* as the uninterrupted run — for fixed and adaptive modes,
//! > any walker count, any checkpoint cadence.
//!
//! This module owns the *transport* layer: a tiny length-checked codec,
//! the envelope (magic, version, payload length, FNV-1a checksum), a
//! graph fingerprint that refuses resume against a different graph, and
//! an atomic write-then-rename file helper. The per-structure field
//! encodings live next to the structures they snapshot
//! (`accuracy.rs`, `window.rs`, `estimator.rs`, `runner.rs`) so a field
//! added to one of those types is added to its encoder in the same diff.
//!
//! # Corruption model
//!
//! The envelope checksum is verified over the *entire payload before a
//! single field is parsed*, so a truncated or bit-flipped snapshot
//! surfaces as a typed [`CheckpointError`] — never a panic, never a
//! silently-wrong resume. FNV-1a's byte step (xor, then multiply by an
//! odd prime) is a bijection of the running 64-bit state, so any
//! single-bit flip in a same-length payload deterministically changes
//! the digest. The declared payload length is honored via a bounded
//! `take`-read, so a corrupted length field yields
//! [`CheckpointError::Truncated`] instead of a pathological allocation.

use crate::error::{CheckpointError, GxError};
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes opening every checkpoint stream.
pub const MAGIC: [u8; 4] = *b"GXCP";

/// Current checkpoint format version. Version 2 added the handle's
/// `batch_width` field; version-1 snapshots are still read (the field
/// defaults to 1, the scalar engine). Writers always emit the current
/// version.
pub const VERSION: u32 = 2;

/// Hard ceiling on the declared payload length (64 MiB). Real snapshots
/// are kilobytes; anything above this is a corrupted header, and the
/// bound keeps a flipped length bit from turning into a giant read loop.
const MAX_PAYLOAD: u64 = 64 << 20;

// ---------------------------------------------------------------------------
// FNV-1a
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit digest. Every byte step is a bijection of the running
/// state, so same-length payloads differing in any single bit hash
/// differently — exactly the guarantee the corruption tests lean on.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Structural graph fingerprint — now defined next to
/// [`gx_graph::GraphAccess`] itself (it is also embedded in on-disk
/// snapshot headers by
/// `gx_graph::disk`); re-exported here so `gx_core::graph_fingerprint`
/// and every resume/cache call site keep compiling unchanged. Bit
/// compatible: same FNV-1a constants, same traversal.
pub use gx_graph::graph_fingerprint;

// ---------------------------------------------------------------------------
// Codec: little-endian primitives into a Vec<u8> / out of a slice
// ---------------------------------------------------------------------------

/// Appends primitives to a payload buffer. Free functions (not a trait)
/// so each structure's `encode_into` reads as a flat field list.
pub(crate) fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u128(buf: &mut Vec<u8>, v: u128) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// `f64` is stored as its IEEE-754 bit pattern — the checkpoint round
/// trip must be bit-exact, including negative zero and any NaN payload.
pub(crate) fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// `usize` travels as `u64` so snapshots are portable across pointer
/// widths.
pub(crate) fn put_usize(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}

/// Bounds-checked cursor over a decoded (checksum-verified) payload.
///
/// Running past the end is [`CheckpointError::Malformed`], not
/// `Truncated`: the envelope already proved the payload arrived intact,
/// so a short read here means the *format* disagrees, which is a
/// different bug than bit rot.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Consumes the next `N` bytes as an owned fixed-size array — the
    /// infallible bridge to `from_le_bytes`, so no width conversion
    /// ever panics.
    fn take_arr<const N: usize>(&mut self, what: &'static str) -> Result<[u8; N], CheckpointError> {
        let (chunk, _) = self
            .buf
            .get(self.pos..)
            .and_then(|rest| rest.split_first_chunk::<N>())
            .ok_or(CheckpointError::Malformed { what })?;
        self.pos += N;
        Ok(*chunk)
    }

    pub(crate) fn u8(&mut self, what: &'static str) -> Result<u8, CheckpointError> {
        let [b] = self.take_arr(what)?;
        Ok(b)
    }

    pub(crate) fn u32(&mut self, what: &'static str) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take_arr(what)?))
    }

    pub(crate) fn u64(&mut self, what: &'static str) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take_arr(what)?))
    }

    pub(crate) fn u128(&mut self, what: &'static str) -> Result<u128, CheckpointError> {
        Ok(u128::from_le_bytes(self.take_arr(what)?))
    }

    pub(crate) fn f64(&mut self, what: &'static str) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    pub(crate) fn usize(&mut self, what: &'static str) -> Result<usize, CheckpointError> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| CheckpointError::Malformed { what })
    }

    /// A `usize` that must also fit a sane in-memory bound — used for
    /// element counts before allocating, so a malformed count is a typed
    /// error instead of a capacity panic.
    pub(crate) fn count(
        &mut self,
        max: usize,
        what: &'static str,
    ) -> Result<usize, CheckpointError> {
        let v = self.usize(what)?;
        if v > max {
            return Err(CheckpointError::Malformed { what });
        }
        Ok(v)
    }

    /// Asserts the payload was consumed exactly — leftover bytes mean a
    /// format mismatch.
    pub(crate) fn finish(self) -> Result<(), CheckpointError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CheckpointError::Malformed { what: "trailing bytes after payload" })
        }
    }
}

// ---------------------------------------------------------------------------
// Envelope
// ---------------------------------------------------------------------------

/// Wraps a payload in the checkpoint envelope and writes it:
/// `MAGIC ∥ version ∥ payload_len ∥ fnv1a(payload) ∥ payload`.
pub(crate) fn write_envelope<W: Write>(payload: &[u8], w: &mut W) -> Result<(), GxError> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(&fnv1a(payload).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads and verifies an envelope, returning the header's format version
/// alongside the checksum-verified payload. Every version in
/// `1..=`[`VERSION`] is accepted — the payload decoder uses the version
/// to default fields the older format lacks — and no payload byte is
/// interpreted before the digest matches.
pub(crate) fn read_envelope<R: Read>(r: &mut R) -> Result<(u32, Vec<u8>), GxError> {
    // Header fields are read as owned fixed-size words: no slicing, no
    // fallible width conversion, so a short header is always the typed
    // `Truncated` and never a panic.
    let mut magic = [0u8; 4];
    read_exact_or_truncated(r, &mut magic)?;
    if magic != MAGIC {
        return Err(CheckpointError::BadMagic.into());
    }
    let mut word4 = [0u8; 4];
    read_exact_or_truncated(r, &mut word4)?;
    let version = u32::from_le_bytes(word4);
    if version == 0 || version > VERSION {
        return Err(CheckpointError::UnsupportedVersion { found: version }.into());
    }
    let mut word8 = [0u8; 8];
    read_exact_or_truncated(r, &mut word8)?;
    let len = u64::from_le_bytes(word8);
    if len > MAX_PAYLOAD {
        // A flipped length bit must not become a multi-gigabyte read
        // attempt; past the ceiling it is indistinguishable from rot.
        return Err(CheckpointError::Truncated.into());
    }
    read_exact_or_truncated(r, &mut word8)?;
    let expected = u64::from_le_bytes(word8);
    let mut payload = Vec::new();
    r.take(len).read_to_end(&mut payload).map_err(GxError::from)?;
    if payload.len() as u64 != len {
        return Err(CheckpointError::Truncated.into());
    }
    if fnv1a(&payload) != expected {
        return Err(CheckpointError::ChecksumMismatch.into());
    }
    Ok((version, payload))
}

fn read_exact_or_truncated<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), GxError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            Err(CheckpointError::Truncated.into())
        }
        Err(e) => Err(e.into()),
    }
}

// ---------------------------------------------------------------------------
// Atomic file write
// ---------------------------------------------------------------------------

/// Writes `bytes` to `path` atomically: the data lands in a temporary
/// sibling first, is fsynced, then renamed over the destination. A crash
/// at any point leaves either the old checkpoint or the new one — never
/// a torn half-write — which is the property that makes checkpoint files
/// safe to take on a live cadence.
pub fn write_atomic<P: AsRef<Path>>(path: P, bytes: &[u8]) -> Result<(), GxError> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        // Rename durability needs the directory entry flushed too; on
        // platforms where opening a directory for sync is unsupported,
        // the rename alone is the best available ordering.
        if let Some(dir) = dir {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use gx_graph::generators::classic;

    #[test]
    fn fnv1a_distinguishes_single_bit_flips() {
        let base = vec![0xA5u8; 257];
        let h0 = fnv1a(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(fnv1a(&flipped), h0, "flip at byte {byte} bit {bit} collided");
            }
        }
    }

    #[test]
    fn envelope_round_trip() {
        let payload: Vec<u8> = (0..=255).collect();
        let mut out = Vec::new();
        write_envelope(&payload, &mut out).unwrap();
        let (version, got) = read_envelope(&mut out.as_slice()).unwrap();
        assert_eq!(version, VERSION);
        assert_eq!(got, payload);
    }

    #[test]
    fn envelope_accepts_every_supported_version() {
        // Older-format snapshots must still open: the envelope hands the
        // version to the payload decoder instead of rejecting it.
        let mut out = Vec::new();
        write_envelope(b"legacy payload", &mut out).unwrap();
        for v in 1..=VERSION {
            let mut stamped = out.clone();
            stamped[4..8].copy_from_slice(&v.to_le_bytes());
            let (version, got) = read_envelope(&mut stamped.as_slice()).unwrap();
            assert_eq!(version, v);
            assert_eq!(got, b"legacy payload");
        }
        // Version 0 never existed; a future version is unreadable.
        for v in [0u32, VERSION + 1] {
            let mut stamped = out.clone();
            stamped[4..8].copy_from_slice(&v.to_le_bytes());
            assert_eq!(
                read_envelope(&mut stamped.as_slice()),
                Err(GxError::Checkpoint(CheckpointError::UnsupportedVersion { found: v }))
            );
        }
    }

    #[test]
    fn envelope_rejects_bad_magic_version_truncation_and_flips() {
        let mut out = Vec::new();
        write_envelope(b"hello checkpoint", &mut out).unwrap();

        let mut bad = out.clone();
        bad[0] = b'X';
        assert_eq!(
            read_envelope(&mut bad.as_slice()),
            Err(GxError::Checkpoint(CheckpointError::BadMagic))
        );

        let mut bad = out.clone();
        bad[4] = 99;
        assert_eq!(
            read_envelope(&mut bad.as_slice()),
            Err(GxError::Checkpoint(CheckpointError::UnsupportedVersion { found: 99 }))
        );

        for cut in 0..out.len() {
            let err = read_envelope(&mut &out[..cut]).unwrap_err();
            assert_eq!(err, GxError::Checkpoint(CheckpointError::Truncated), "cut at {cut}");
        }

        // Any single-bit flip in the payload region is caught by the digest.
        for byte in 24..out.len() {
            let mut bad = out.clone();
            bad[byte] ^= 1;
            assert_eq!(
                read_envelope(&mut bad.as_slice()),
                Err(GxError::Checkpoint(CheckpointError::ChecksumMismatch)),
                "payload flip at byte {byte}"
            );
        }
    }

    #[test]
    fn envelope_huge_declared_length_is_bounded() {
        let mut out = Vec::new();
        write_envelope(b"tiny", &mut out).unwrap();
        out[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            read_envelope(&mut out.as_slice()),
            Err(GxError::Checkpoint(CheckpointError::Truncated))
        );
    }

    #[test]
    fn reader_round_trips_all_primitives_bit_exactly() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_u128(&mut buf, u128::MAX / 3);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        put_usize(&mut buf, 123_456);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.u128("d").unwrap(), u128::MAX / 3);
        assert_eq!(r.f64("e").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64("f").unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.usize("g").unwrap(), 123_456);
        r.finish().unwrap();
    }

    #[test]
    fn reader_overrun_and_trailing_bytes_are_malformed() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u64("field"), Err(CheckpointError::Malformed { what: "field" }));
        let mut r = Reader::new(&buf);
        r.u8("x").unwrap();
        assert!(r.finish().is_err());
        let mut r = Reader::new(&buf);
        assert_eq!(r.count(10, "n"), Err(CheckpointError::Malformed { what: "n" }));
    }

    #[test]
    fn graph_fingerprint_is_structural() {
        let a = classic::petersen();
        let b = classic::petersen();
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&b));
        let c = classic::lollipop(4, 3);
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&c));
        // Same node count, different wiring.
        let p = classic::path(5);
        let cyc = classic::cycle(5);
        assert_ne!(graph_fingerprint(&p), graph_fingerprint(&cyc));
    }

    #[test]
    fn write_atomic_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("gxcp_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.gxcp");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!dir.join("snap.gxcp.tmp").exists(), "tmp sibling must not survive");
        // Unwritable destination surfaces as a typed I/O error.
        let bad = dir.join("no_such_subdir").join("x.gxcp");
        assert!(matches!(write_atomic(&bad, b"x"), Err(GxError::Io(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
