//! Estimator configuration.

/// Configuration of one estimator instance, following the paper's method
/// naming: `SRW{d}[CSS][NB]` for graphlet size k.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EstimatorConfig {
    /// Graphlet size to estimate (3..=6).
    pub k: usize,
    /// Walk on `G(d)`; `1 ≤ d ≤ k`. `d = k − 1` is PSRW; `d = k` is the
    /// plain subgraph random walk of [36] (l = 1).
    pub d: usize,
    /// Corresponding state sampling (§4.1). A no-op when `l ≤ 2` (the
    /// inclusion probabilities coincide, paper footnote 4).
    pub css: bool,
    /// Non-backtracking walk (§4.2).
    pub non_backtracking: bool,
    /// Walk steps discarded before sampling starts (the paper's burn-in
    /// discussion in §6.2.2). Zero by default: the estimator is
    /// asymptotically unbiased regardless.
    pub burn_in: usize,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        Self { k: 3, d: 1, css: false, non_backtracking: false, burn_in: 0 }
    }
}

impl EstimatorConfig {
    /// Window length `l = k − d + 1`.
    pub fn l(&self) -> usize {
        self.k - self.d + 1
    }

    /// Panics if the configuration is out of the supported domain.
    pub fn validate(&self) {
        assert!((3..=6).contains(&self.k), "k={} unsupported (3..=6)", self.k);
        assert!(self.d >= 1 && self.d <= self.k, "d={} must be in 1..=k (k={})", self.d, self.k);
    }

    /// The paper's method name, e.g. `SRW2CSS`, `SRW1CSSNB`.
    pub fn name(&self) -> String {
        let mut s = format!("SRW{}", self.d);
        if self.css {
            s.push_str("CSS");
        }
        if self.non_backtracking {
            s.push_str("NB");
        }
        s
    }

    /// The PSRW configuration for graphlet size `k` (d = k − 1), the
    /// state-of-the-art baseline the paper compares against.
    pub fn psrw(k: usize) -> Self {
        Self { k, d: k - 1, ..Default::default() }
    }

    /// The paper's recommended configuration per k (§6.2.1 findings):
    /// SRW1CSSNB for k = 3, SRW2CSS for k = 4, 5.
    pub fn recommended(k: usize) -> Self {
        if k == 3 {
            Self { k, d: 1, css: true, non_backtracking: true, burn_in: 0 }
        } else {
            Self { k, d: 2, css: true, non_backtracking: false, burn_in: 0 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_follow_paper_convention() {
        let cfg = EstimatorConfig { k: 3, d: 1, css: true, non_backtracking: true, burn_in: 0 };
        assert_eq!(cfg.name(), "SRW1CSSNB");
        assert_eq!(EstimatorConfig::psrw(4).name(), "SRW3");
        assert_eq!(EstimatorConfig::psrw(5).name(), "SRW4");
        assert_eq!(EstimatorConfig::recommended(4).name(), "SRW2CSS");
        assert_eq!(EstimatorConfig::recommended(3).name(), "SRW1CSSNB");
    }

    #[test]
    fn window_length() {
        assert_eq!(EstimatorConfig { k: 4, d: 2, ..Default::default() }.l(), 3);
        assert_eq!(EstimatorConfig::psrw(5).l(), 2);
        assert_eq!(EstimatorConfig { k: 3, d: 3, ..Default::default() }.l(), 1);
    }

    #[test]
    #[should_panic(expected = "must be in 1..=k")]
    fn validate_rejects_d_above_k() {
        EstimatorConfig { k: 3, d: 4, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn validate_rejects_k7() {
        EstimatorConfig { k: 7, d: 1, ..Default::default() }.validate();
    }
}
