//! Estimator configuration.

use crate::error::ConfigError;

/// Configuration of one estimator instance, following the paper's method
/// naming: `SRW{d}[CSS][NB]` for graphlet size k.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EstimatorConfig {
    /// Graphlet size to estimate (3..=6).
    pub k: usize,
    /// Walk on `G(d)`; `1 ≤ d ≤ k`. `d = k − 1` is PSRW; `d = k` is the
    /// plain subgraph random walk of \[36\] (l = 1).
    pub d: usize,
    /// Corresponding state sampling (§4.1). A no-op when `l ≤ 2` (the
    /// inclusion probabilities coincide, paper footnote 4).
    pub css: bool,
    /// Non-backtracking walk (§4.2).
    pub non_backtracking: bool,
    /// Walk steps discarded before sampling starts (the paper's burn-in
    /// discussion in §6.2.2). Zero by default: the estimator is
    /// asymptotically unbiased regardless.
    pub burn_in: usize,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        Self { k: 3, d: 1, css: false, non_backtracking: false, burn_in: 0 }
    }
}

impl EstimatorConfig {
    /// Upper bound accepted for [`EstimatorConfig::burn_in`]: beyond
    /// ~4 × 10⁹ discarded steps the configuration is a typo, not a
    /// burn-in (the estimator would walk for hours before its first
    /// sample — and `usize::MAX` would spin effectively forever).
    /// `u64` so the constant exists on 32-bit targets, where every
    /// representable `burn_in` is below it anyway.
    pub const MAX_BURN_IN: u64 = 1 << 32;

    /// Window length `l = k − d + 1`.
    ///
    /// Defined only for validated configurations (`1 ≤ d ≤ k`). Calling
    /// it with `d > k + 1` is a domain error: debug builds panic with
    /// the domain message (not the bare subtraction-overflow panic the
    /// unguarded `k − d + 1` produced), and release builds saturate to 0
    /// — an impossible window length every consumer rejects immediately
    /// — instead of silently wrapping to a huge length.
    pub fn l(&self) -> usize {
        debug_assert!(
            self.d >= 1 && self.d <= self.k,
            "d={} must be in 1..=k (k={}) — validate() the config before use",
            self.d,
            self.k
        );
        (self.k + 1).saturating_sub(self.d)
    }

    /// Checks the configuration against the supported domain, returning
    /// the offending dimension as a typed [`ConfigError`]. This is the
    /// non-panicking form every [`crate::runner::Runner`] path uses.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if !(3..=6).contains(&self.k) {
            return Err(ConfigError::UnsupportedK { k: self.k });
        }
        if self.d < 1 || self.d > self.k {
            return Err(ConfigError::DOutOfRange { k: self.k, d: self.d });
        }
        if self.burn_in as u64 > Self::MAX_BURN_IN {
            return Err(ConfigError::BurnInTooLarge { burn_in: self.burn_in as u64 });
        }
        Ok(())
    }

    /// Panics if the configuration is out of the supported domain — the
    /// legacy form, delegating to [`EstimatorConfig::try_validate`] (the
    /// panic message is the error's `Display`).
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// The paper's method name, e.g. `SRW2CSS`, `SRW1CSSNB`.
    pub fn name(&self) -> String {
        let mut s = format!("SRW{}", self.d);
        if self.css {
            s.push_str("CSS");
        }
        if self.non_backtracking {
            s.push_str("NB");
        }
        s
    }

    /// The PSRW configuration for graphlet size `k` (d = k − 1), the
    /// state-of-the-art baseline the paper compares against.
    pub fn psrw(k: usize) -> Self {
        Self { k, d: k - 1, ..Default::default() }
    }

    /// The paper's recommended configuration per k (§6.2.1 findings):
    /// SRW1CSSNB for k = 3, SRW2CSS for k = 4, 5.
    pub fn recommended(k: usize) -> Self {
        if k == 3 {
            Self { k, d: 1, css: true, non_backtracking: true, burn_in: 0 }
        } else {
            Self { k, d: 2, css: true, non_backtracking: false, burn_in: 0 }
        }
    }

    /// This configuration with `burn_in` discarded steps — the natural
    /// receiver for [`crate::measure_burn_in`]'s `suggested_burn_in`:
    ///
    /// ```
    /// use gx_core::{measure_burn_in, EstimatorConfig};
    /// let g = gx_graph::generators::classic::petersen();
    /// let cfg = EstimatorConfig::recommended(3);
    /// let pilot = measure_burn_in(&g, &cfg, 7, 4_096, 256);
    /// let cfg = cfg.with_burn_in(pilot.suggested_burn_in);
    /// # assert_eq!(cfg.burn_in % 256, 0);
    /// ```
    pub fn with_burn_in(self, burn_in: usize) -> Self {
        Self { burn_in, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_follow_paper_convention() {
        let cfg = EstimatorConfig { k: 3, d: 1, css: true, non_backtracking: true, burn_in: 0 };
        assert_eq!(cfg.name(), "SRW1CSSNB");
        assert_eq!(EstimatorConfig::psrw(4).name(), "SRW3");
        assert_eq!(EstimatorConfig::psrw(5).name(), "SRW4");
        assert_eq!(EstimatorConfig::recommended(4).name(), "SRW2CSS");
        assert_eq!(EstimatorConfig::recommended(3).name(), "SRW1CSSNB");
    }

    #[test]
    fn window_length() {
        assert_eq!(EstimatorConfig { k: 4, d: 2, ..Default::default() }.l(), 3);
        assert_eq!(EstimatorConfig::psrw(5).l(), 2);
        assert_eq!(EstimatorConfig { k: 3, d: 3, ..Default::default() }.l(), 1);
    }

    #[test]
    #[should_panic(expected = "must be in 1..=k")]
    fn validate_rejects_d_above_k() {
        EstimatorConfig { k: 3, d: 4, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn validate_rejects_k7() {
        EstimatorConfig { k: 7, d: 1, ..Default::default() }.validate();
    }

    // Regression: `l()` on an unvalidated config with d > k + 1 used to
    // wrap (`k - d + 1` on usize) in release builds and panic with the
    // bare overflow message in debug builds. Now debug builds panic
    // with the domain message, and release builds saturate to 0, which
    // no window consumer accepts.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "must be in 1..=k")]
    fn l_debug_panics_with_domain_message_on_unvalidated_d() {
        let _ = EstimatorConfig { k: 3, d: 6, ..Default::default() }.l();
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn l_saturates_instead_of_wrapping_in_release() {
        assert_eq!(EstimatorConfig { k: 3, d: 6, ..Default::default() }.l(), 0);
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    #[should_panic(expected = "pathological")]
    fn validate_rejects_pathological_burn_in() {
        let burn_in = (EstimatorConfig::MAX_BURN_IN + 1) as usize;
        EstimatorConfig { burn_in, ..Default::default() }.validate();
    }

    #[test]
    fn try_validate_returns_typed_errors() {
        use crate::error::ConfigError;
        assert_eq!(
            EstimatorConfig { k: 7, d: 1, ..Default::default() }.try_validate(),
            Err(ConfigError::UnsupportedK { k: 7 })
        );
        assert_eq!(
            EstimatorConfig { k: 2, d: 1, ..Default::default() }.try_validate(),
            Err(ConfigError::UnsupportedK { k: 2 })
        );
        assert_eq!(
            EstimatorConfig { k: 3, d: 4, ..Default::default() }.try_validate(),
            Err(ConfigError::DOutOfRange { k: 3, d: 4 })
        );
        assert_eq!(
            EstimatorConfig { k: 3, d: 0, ..Default::default() }.try_validate(),
            Err(ConfigError::DOutOfRange { k: 3, d: 0 })
        );
        #[cfg(target_pointer_width = "64")]
        {
            let burn_in = (EstimatorConfig::MAX_BURN_IN + 1) as usize;
            assert_eq!(
                EstimatorConfig { burn_in, ..Default::default() }.try_validate(),
                Err(ConfigError::BurnInTooLarge { burn_in: burn_in as u64 })
            );
        }
        assert_eq!(EstimatorConfig::recommended(4).try_validate(), Ok(()));
    }

    #[test]
    fn validate_accepts_large_but_sane_burn_in() {
        #[cfg(target_pointer_width = "64")]
        EstimatorConfig { burn_in: EstimatorConfig::MAX_BURN_IN as usize, ..Default::default() }
            .validate();
        EstimatorConfig { burn_in: 1_000_000, ..Default::default() }.validate();
    }
}
