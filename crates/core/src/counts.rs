//! Reconstructing absolute counts (paper Eq. 4 and §3.3 Remarks).
//!
//! Concentrations need no global knowledge, but counts need `2|R(d)|`,
//! the (doubled) edge count of the relationship graph:
//! * `|R(1)| = |E|`;
//! * `|R(2)| = ½ Σ_{(u,v)∈E} (d_u + d_v − 2)` — "a single pass of graph
//!   data is enough" (§3.3);
//! * `|R(d ≥ 3)|` has no closed form; we materialize `G(d)` (only viable
//!   for small graphs, which is exactly the paper's position: counts for
//!   restricted-access graphs are estimated with d ≤ 2).

use gx_graph::stats::g2_edge_count;
use gx_graph::subrel::subgraph_relationship_graph;
use gx_graph::Graph;

/// `|R(d)|` — the number of edges of `G(d)`.
pub fn relationship_edge_count(g: &Graph, d: usize) -> u64 {
    match d {
        1 => g.num_edges() as u64,
        2 => g2_edge_count(g),
        _ => subgraph_relationship_graph(g, d).graph.num_edges() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{estimate, EstimatorConfig};
    use gx_exact::exact_counts;
    use gx_graph::generators::classic;

    #[test]
    fn r_d_on_figure1() {
        let g = classic::paper_figure1();
        assert_eq!(relationship_edge_count(&g, 1), 5);
        assert_eq!(relationship_edge_count(&g, 2), 8);
        assert_eq!(relationship_edge_count(&g, 3), 6);
    }

    #[test]
    fn count_estimates_converge_srw1() {
        let g = classic::lollipop(5, 4);
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let est = estimate(&g, &cfg, 150_000, 3);
        let two_r = 2.0 * relationship_edge_count(&g, 1) as f64;
        let counts = est.counts(two_r);
        let exact = exact_counts(&g, 3);
        for (i, (c, x)) in counts.iter().zip(&exact.counts).enumerate() {
            let rel = (c - *x as f64).abs() / *x as f64;
            assert!(rel < 0.08, "type {i}: estimated {c:.2}, exact {x} (rel {rel:.3})");
        }
    }

    #[test]
    fn count_estimates_converge_srw2_css() {
        let g = classic::lollipop(6, 4);
        let cfg = EstimatorConfig { k: 4, d: 2, css: true, ..Default::default() };
        let est = estimate(&g, &cfg, 150_000, 7);
        let two_r = 2.0 * relationship_edge_count(&g, 2) as f64;
        let counts = est.counts(two_r);
        let exact = exact_counts(&g, 4);
        for (i, (c, x)) in counts.iter().zip(&exact.counts).enumerate() {
            if *x == 0 {
                assert_eq!(*c, 0.0, "type {i} does not occur");
                continue;
            }
            let rel = (c - *x as f64).abs() / *x as f64;
            assert!(rel < 0.1, "type {i}: estimated {c:.2}, exact {x} (rel {rel:.3})");
        }
    }
}
