//! Corresponding state sampling (paper §4.1, Algorithm 3).
//!
//! The basic estimator de-biases a sample by `α^k_i · π_e(X^{(l)})`, which
//! only uses the degrees of the states the walk *actually* visited. CSS
//! instead divides by the full sampling probability
//! `p(X^{(l)}) = Σ_{X' ∈ C(s)} π_e(X')` — the probability that the
//! subgraph `s` is generated in *any* visiting order — which uses the
//! degree information of every node in the subgraph (the paper's Table 4
//! examples) and provably never increases the estimator's variance
//! (Lemma 5).
//!
//! # Dense-table layout
//!
//! The covering sequences of a sampled subgraph depend only on its edge
//! mask, so the per-(k, d) structure is precomputed *once per process*
//! into a dense, direct-indexed table (`DenseCss`, shared via
//! `OnceLock` across estimators and walker threads) instead of a lazily
//! filled `HashMap<(k, mask), _>`:
//!
//! * `entries[mask]` — one fixed-width record per edge mask (`2^C(k,2)`
//!   entries; masks fit `u32` for k ≤ 6), holding offsets into two flat
//!   arenas. Disconnected masks keep the all-zero record and are never
//!   queried (a valid window always induces a connected subgraph).
//! * `subset_bits` / `subset_pos` — the connected d-subsets of every
//!   mask, concatenated; `subset_pos` pre-extracts each subset's two
//!   lowest node positions so the d ≤ 2 degree formulas are pure array
//!   loads at sample time.
//! * `interiors` — the interior subset-indices of every covering
//!   sequence, flattened with constant stride `l − 2` (see
//!   [`gx_graphlets::alpha::CoveringSequences::flat_interiors`]).
//!
//! # Why the hot loop is allocation- and hash-free
//!
//! Per sample, [`CssWeights::sampling_probability_windowed`] performs: one
//! array index into `entries` (no hashing), one pass over the mask's
//! subsets computing `1/d_eff` into a fixed stack array (`recip`), and one
//! streaming pass over the mask's `interiors` slice accumulating the sum
//! of products. Subset degrees come from the [`NodeWindow`]'s cached slot
//! degrees (d ≤ 2) or the window's own recorded state degrees (d ≥ 3,
//! falling back to scratch-reusing neighbor enumeration only for subsets
//! the walk did not visit) — the graph is not touched at all for d ≤ 2.
//! Nothing is heap-allocated and nothing is recomputed that the walk
//! already paid for, which is exactly the paper's Lemma-5 pitch: CSS
//! reuses observed degree information, it does not buy new information.
//!
//! Summation order is identical to the seed `HashMap` implementation
//! (same subset enumeration, same covering-sequence order, same fold
//! direction), so results are bit-for-bit identical — enforced by the
//! exhaustive oracle test at the bottom of this file.

use crate::window::NodeWindow;
use gx_graph::{GraphAccess, NodeId};
use gx_graphlets::alpha::covering_sequences;
use gx_graphlets::mask::num_pairs;
use gx_graphlets::SmallGraph;
use gx_walks::{effective_degree, effective_degree_recip, gd_state_degree_with, GdDegreeScratch};
use std::sync::OnceLock;

/// Entries in the shared reciprocal table (covers effective degrees up to
/// 4095; larger degrees fall back to one division).
const RECIP_TABLE: usize = 4096;

/// `recip_table()[d] = 1.0 / d as f64` — IEEE division is deterministic,
/// so the lookup is bit-identical to dividing on the spot, and it turns
/// the per-subset division (the dominant cost of a CSS sample: ~6 `divsd`
/// at 13+ cycles each) into one L1/L2 load. Index 0 holds `inf`, which no
/// caller reads: effective degrees are ≥ 1 by construction for any state
/// the walk can occupy.
fn recip_table() -> &'static [f64; RECIP_TABLE] {
    static TABLE: OnceLock<Box<[f64; RECIP_TABLE]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = Box::new([0.0f64; RECIP_TABLE]);
        for (d, slot) in t.iter_mut().enumerate() {
            *slot = 1.0 / d as f64;
        }
        t
    })
}

/// Maximum connected d-subsets of a k ≤ 6 graphlet (C(6,3) = 20).
const MAX_SUBSETS: usize = 32;

/// One mask's slice descriptors into the [`DenseCss`] arenas. All-zero
/// (the `Default`) for disconnected masks.
#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    /// Offset of the mask's subsets in `subset_bits` / `subset_pos`.
    subs_off: u32,
    /// Offset of the mask's flattened interiors in `interiors`.
    seq_off: u32,
    /// Number of covering sequences (α of the mask).
    seq_cnt: u32,
    /// Bit `i` set iff subset `i` appears as some sequence's interior —
    /// only those subsets need a degree/reciprocal at sample time.
    used: u32,
    /// Number of connected d-subsets.
    subs_len: u8,
}

/// The precomputed CSS structure for one (k, d): a direct-indexed entry
/// per edge mask plus flat subset/interior arenas (see the module doc).
#[derive(Debug)]
struct DenseCss {
    entries: Vec<Entry>,
    subset_bits: Vec<u8>,
    /// The two lowest node positions of each subset (`pos[1]` is 0 and
    /// unused for d = 1); positions index the sample's slot labeling.
    subset_pos: Vec<[u8; 2]>,
    interiors: Vec<u8>,
}

impl DenseCss {
    fn build(k: usize, d: usize) -> Self {
        let l = k - d + 1;
        let n_masks = 1usize << num_pairs(k);
        let mut t = DenseCss {
            entries: vec![Entry::default(); n_masks],
            subset_bits: Vec::new(),
            subset_pos: Vec::new(),
            interiors: Vec::new(),
        };
        for mask in 0..n_masks {
            let small = SmallGraph::from_mask(k, mask as u32);
            if !small.is_connected() {
                continue;
            }
            let cover = covering_sequences(&small, d);
            assert!(cover.subsets.len() <= MAX_SUBSETS, "subset scratch overflow");
            let flat = cover.flat_interiors(l);
            t.entries[mask] = Entry {
                subs_off: t.subset_bits.len() as u32,
                seq_off: t.interiors.len() as u32,
                seq_cnt: cover.sequences.len() as u32,
                used: interior_used_bits(&flat),
                subs_len: cover.subsets.len() as u8,
            };
            for &bits in &cover.subsets {
                t.subset_bits.push(bits);
                t.subset_pos.push(lowest_two_positions(bits));
            }
            t.interiors.extend_from_slice(&flat);
        }
        t
    }
}

/// Bitmask over subset indices of the subsets referenced by any interior.
fn interior_used_bits(flat_interiors: &[u8]) -> u32 {
    flat_interiors.iter().fold(0u32, |acc, &i| acc | (1 << i))
}

/// The two lowest set-bit positions of a subset bitmask (second is 0 for
/// singletons) — the order in which the seed implementation gathered
/// subset nodes, so the d ≤ 2 degree formulas read the same slots.
#[inline]
fn lowest_two_positions(bits: u8) -> [u8; 2] {
    let p0 = bits.trailing_zeros() as u8;
    let rest = bits & bits.wrapping_sub(1);
    let p1 = if rest != 0 { rest.trailing_zeros() as u8 } else { 0 };
    [p0, p1]
}

/// The process-wide dense table for `(k, d)`, built on first use and
/// shared by every estimator and walker thread (k ≤ 5; the k = 6 tables
/// are 32768 entries and stay per-instance + lazy, see [`Table::Lazy`]).
fn dense_css(k: usize, d: usize) -> &'static DenseCss {
    static TABLES: OnceLock<[[OnceLock<DenseCss>; 7]; 7]> = OnceLock::new();
    debug_assert!((3..=5).contains(&k) && (1..=k).contains(&d));
    let tables = TABLES.get_or_init(Default::default);
    tables[k][d].get_or_init(|| DenseCss::build(k, d))
}

/// One lazily built k = 6 entry, in the same flat shape as the dense
/// arenas so both paths share the scoring code.
#[derive(Debug)]
struct LazyEntry {
    subset_bits: Vec<u8>,
    subset_pos: Vec<[u8; 2]>,
    interiors: Vec<u8>,
    seq_cnt: u32,
    used: u32,
}

/// Where a [`CssWeights`] instance looks masks up.
#[derive(Debug)]
enum Table {
    /// k ≤ 5: shared, fully precomputed — the hot loop has no lazy-init
    /// branch at all.
    Dense(&'static DenseCss),
    /// k = 6: per-instance dense `Vec` filled on first visit of each mask
    /// (still direct-indexed, still hash-free; eager precomputation of
    /// all 26k+ connected 6-node masks is not worth the startup cost for
    /// a configuration the paper never runs).
    Lazy(Vec<Option<Box<LazyEntry>>>),
}

/// Borrowed view of one mask's CSS structure, uniform over both tables.
#[derive(Clone, Copy)]
struct EntryView<'a> {
    subset_bits: &'a [u8],
    subset_pos: &'a [[u8; 2]],
    interiors: &'a [u8],
    seq_cnt: u32,
    /// See [`Entry::used`].
    used: u32,
}

/// The mask's entry view. A free function over the table field (not a
/// `&self` method) so callers can keep the view alive while mutating the
/// disjoint scratch fields of [`CssWeights`]. The entry must exist —
/// guaranteed after [`CssWeights::ensure_entry`] for connected masks.
#[inline]
fn view_entry(table: &Table, stride: usize, mask: u32) -> EntryView<'_> {
    match table {
        Table::Dense(t) => {
            let e = t.entries[mask as usize];
            let (s0, s1) = (e.subs_off as usize, e.subs_off as usize + e.subs_len as usize);
            let (i0, i1) = (e.seq_off as usize, e.seq_off as usize + e.seq_cnt as usize * stride);
            EntryView {
                subset_bits: &t.subset_bits[s0..s1],
                subset_pos: &t.subset_pos[s0..s1],
                interiors: &t.interiors[i0..i1],
                seq_cnt: e.seq_cnt,
                used: e.used,
            }
        }
        Table::Lazy(entries) => {
            let e = entries[mask as usize].as_deref().expect("entry built by ensure_entry");
            EntryView {
                subset_bits: &e.subset_bits,
                subset_pos: &e.subset_pos,
                interiors: &e.interiors,
                seq_cnt: e.seq_cnt,
                used: e.used,
            }
        }
    }
}

/// Computes CSS sampling probabilities for one estimator run.
///
/// Constructed with the estimator's `(k, d)` so every per-(k, mask)
/// structure is resolved before the first step — the steady-state query
/// paths perform zero heap allocation and zero hashing.
pub struct CssWeights {
    k: usize,
    d: usize,
    l: usize,
    /// Interiors per covering sequence, `l − 2` (0 for l ≤ 2).
    stride: usize,
    table: Table,
    /// Scratch: `1/d_eff` per subset for the current sample (stack array,
    /// never reallocated).
    recip: [f64; MAX_SUBSETS],
    /// Scratch: concrete nodes of a subset (d ≥ 3 fallback).
    subset_nodes: [NodeId; 8],
    /// Scratch for d ≥ 3 `G(d)`-degree enumeration.
    deg_scratch: GdDegreeScratch,
    /// Shared `1/d` lookup (see [`recip_table`]).
    recip_of: &'static [f64; RECIP_TABLE],
}

impl CssWeights {
    /// CSS helper for estimating k-node graphlets with a walk on `G(d)`.
    ///
    /// Taking `k` here (every call site knows it at construction) lets the
    /// whole dense table be ready before the first sample, removing the
    /// per-step lazy-init/hash path of the seed implementation.
    pub fn new(k: usize, d: usize) -> Self {
        assert!((3..=6).contains(&k), "CssWeights: k={k} unsupported (3..=6)");
        assert!((1..=k).contains(&d), "CssWeights: d={d} must be in 1..=k={k}");
        let l = k - d + 1;
        let table = if k <= 5 {
            Table::Dense(dense_css(k, d))
        } else {
            Table::Lazy((0..1usize << num_pairs(k)).map(|_| None).collect())
        };
        Self {
            k,
            d,
            l,
            stride: l.saturating_sub(2),
            table,
            recip: [0.0; MAX_SUBSETS],
            subset_nodes: [0; 8],
            deg_scratch: GdDegreeScratch::default(),
            recip_of: recip_table(),
        }
    }

    /// Builds the k = 6 entry for `mask` if it is not present yet. No-op
    /// for the precomputed k ≤ 5 tables.
    fn ensure_entry(&mut self, mask: u32) {
        let Table::Lazy(entries) = &mut self.table else { return };
        if entries[mask as usize].is_some() {
            return;
        }
        let small = SmallGraph::from_mask(self.k, mask);
        let cover = covering_sequences(&small, self.d);
        assert!(cover.subsets.len() <= MAX_SUBSETS, "subset scratch overflow");
        let flat = cover.flat_interiors(self.l);
        entries[mask as usize] = Some(Box::new(LazyEntry {
            used: interior_used_bits(&flat),
            interiors: flat,
            subset_pos: cover.subsets.iter().map(|&b| lowest_two_positions(b)).collect(),
            seq_cnt: cover.sequences.len() as u32,
            subset_bits: cover.subsets,
        }));
    }

    /// `p̃(X^{(l)}) = 2|R(d)| · p(X^{(l)})` for the sample with induced
    /// edge `mask` over `nodes` (slot labeling), with degrees derived from
    /// `g` — the general-purpose path (tests, ad-hoc queries). The
    /// estimator's hot loop uses
    /// [`CssWeights::sampling_probability_windowed`], which reads the same
    /// degrees from the window instead of the graph.
    pub fn sampling_probability<G: GraphAccess>(
        &mut self,
        g: &G,
        mask: u32,
        nodes: &[NodeId],
        non_backtracking: bool,
    ) -> f64 {
        assert_eq!(nodes.len(), self.k, "sample size must match the configured k");
        self.ensure_entry(mask);
        let view = view_entry(&self.table, self.stride, mask);
        match self.l {
            1 => {
                // p̃ = the single full-subgraph state's own degree.
                debug_assert_eq!(view.subset_bits.len(), 1);
                debug_assert_eq!(view.subset_bits[0].count_ones() as usize, self.k);
                let deg = gd_state_degree_with(g, nodes, &mut self.deg_scratch);
                effective_degree(deg, non_backtracking) as f64
            }
            2 => l2_probability(view.seq_cnt),
            _ => {
                let mut used = view.used;
                while used != 0 {
                    let si = used.trailing_zeros() as usize;
                    used &= used - 1;
                    let (bits, [p0, p1]) = (view.subset_bits[si], view.subset_pos[si]);
                    let deg = match self.d {
                        1 => g.degree(nodes[p0 as usize]),
                        2 => g.degree(nodes[p0 as usize]) + g.degree(nodes[p1 as usize]) - 2,
                        _ => {
                            let n = gather_subset_nodes(bits, nodes, &mut self.subset_nodes);
                            gd_state_degree_with(g, n, &mut self.deg_scratch)
                        }
                    };
                    self.recip[si] = lookup_recip(self.recip_of, deg, non_backtracking);
                }
                accumulate(view.interiors, self.stride, &self.recip)
            }
        }
    }

    /// The estimator's hot path: same value as
    /// [`CssWeights::sampling_probability`] (bit-for-bit), but every
    /// degree comes from bookkeeping the walk already paid for — the
    /// window's cached slot degrees for d ≤ 2, the window's recorded
    /// state degrees for the d ≥ 3 subsets the walk itself visited.
    pub fn sampling_probability_windowed<G: GraphAccess>(
        &mut self,
        g: &G,
        mask: u32,
        window: &NodeWindow,
        non_backtracking: bool,
    ) -> f64 {
        debug_assert_eq!(window.distinct_count(), self.k);
        self.ensure_entry(mask);
        let view = view_entry(&self.table, self.stride, mask);
        let slot_deg = window.slot_degrees();
        match self.l {
            1 => {
                // The full-subgraph state is the walk's current (and
                // only) state — its degree was recorded at push time.
                debug_assert_eq!(view.subset_bits.len(), 1);
                let deg = window.states().next().expect("l = 1 window").degree as usize;
                effective_degree(deg, non_backtracking) as f64
            }
            2 => l2_probability(view.seq_cnt),
            _ => {
                if self.d <= 2 {
                    // Only the subsets some sequence actually uses as an
                    // interior need a reciprocal; the rest of `recip`
                    // stays stale and unread.
                    let mut used = view.used;
                    while used != 0 {
                        let si = used.trailing_zeros() as usize;
                        used &= used - 1;
                        let [p0, p1] = view.subset_pos[si];
                        let deg = if self.d == 1 {
                            slot_deg[p0 as usize] as usize
                        } else {
                            slot_deg[p0 as usize] as usize + slot_deg[p1 as usize] as usize - 2
                        };
                        self.recip[si] = lookup_recip(self.recip_of, deg, non_backtracking);
                    }
                } else {
                    // d ≥ 3: reuse the degrees of the l states the walk
                    // visited (matched by slot bitmask); enumerate G(d)
                    // neighbors only for the remaining subsets.
                    //
                    // Audited for the duplicate-node / revisit case: the
                    // bitmask match cannot alias. This path only runs for
                    // a *valid* sample (`distinct_count == k`, asserted
                    // above), where the l states' union has exactly
                    // k = d + l − 1 nodes — each transition must have
                    // introduced a union-new node, so the l states are
                    // pairwise-distinct node sets. A node re-entering the
                    // window shares its original slot (`acquire` keys
                    // slots by node, bumping a refcount, never minting a
                    // second slot), so distinct node sets always have
                    // distinct slot bitmasks, every state mask has
                    // popcount d, and a bitmask equal to a subset's mask
                    // identifies exactly that subset's node set — whose
                    // recorded degree is `gd_state_degree` of those
                    // nodes, the same value the fallback would compute.
                    // Revisit-heavy walks (windows with refcount > 1
                    // slots) are pinned bitwise against the graph-derived
                    // path by `windowed_matches_general_on_revisit_heavy_walks`.
                    let mut state_bits = [0u8; 8];
                    let mut state_degs = [0u32; 8];
                    let mut n_states = 0usize;
                    for (bits, deg) in window.state_slot_masks() {
                        state_bits[n_states] = bits;
                        state_degs[n_states] = deg;
                        n_states += 1;
                    }
                    let nodes = window.distinct_nodes();
                    let mut used = view.used;
                    while used != 0 {
                        let si = used.trailing_zeros() as usize;
                        used &= used - 1;
                        let bits = view.subset_bits[si];
                        let visited = state_bits[..n_states]
                            .iter()
                            .position(|&b| b == bits)
                            .map(|i| state_degs[i] as usize);
                        let deg = visited.unwrap_or_else(|| {
                            let n = gather_subset_nodes(bits, nodes, &mut self.subset_nodes);
                            gd_state_degree_with(g, n, &mut self.deg_scratch)
                        });
                        self.recip[si] = lookup_recip(self.recip_of, deg, non_backtracking);
                    }
                }
                accumulate(view.interiors, self.stride, &self.recip)
            }
        }
    }
}

/// `1/d_eff` via the shared table (one load), falling back to the
/// division it is bit-identical to for out-of-table degrees.
#[inline]
fn lookup_recip(table: &[f64; RECIP_TABLE], degree: usize, non_backtracking: bool) -> f64 {
    let eff = effective_degree(degree, non_backtracking);
    if eff < RECIP_TABLE {
        table[eff]
    } else {
        effective_degree_recip(degree, non_backtracking)
    }
}

/// The l = 2 (PSRW) probability: every covering sequence contributes an
/// empty interior product of 1.0, so p̃ is just the sequence count — with
/// the seed's `-0.0` for the empty sum, preserving bit-identity.
#[inline]
fn l2_probability(seq_cnt: u32) -> f64 {
    if seq_cnt == 0 {
        -0.0
    } else {
        seq_cnt as f64
    }
}

/// Gathers the concrete nodes of a subset bitmask (ascending position
/// order, matching the seed implementation) into `out`.
#[inline]
fn gather_subset_nodes<'a>(bits: u8, nodes: &[NodeId], out: &'a mut [NodeId; 8]) -> &'a [NodeId] {
    let mut n = 0usize;
    for (pos, &node) in nodes.iter().enumerate() {
        if bits & (1 << pos) != 0 {
            out[n] = node;
            n += 1;
        }
    }
    &out[..n]
}

/// `Σ over covering sequences of Π over interiors of 1/d_eff`, streaming
/// the flat interior arena in the same order and fold direction as the
/// seed implementation (bit-for-bit identical results; the sum starts at
/// `-0.0` and the product at `1.0` exactly like `Iterator::sum` /
/// `Iterator::product` for `f64`, so even the α = 0 empty sum keeps the
/// seed's sign bit).
#[inline]
fn accumulate(interiors: &[u8], stride: usize, recip: &[f64; MAX_SUBSETS]) -> f64 {
    debug_assert!(stride >= 1);
    let mut sum = -0.0f64;
    if stride == 1 {
        // l = 3, the recommended SRW2CSS shape for k = 4: one interior
        // per sequence, so the product collapses to a gather-sum
        // (1.0 * x = x exactly; same bits as the general fold).
        for &i in interiors {
            sum += recip[i as usize];
        }
        return sum;
    }
    for chunk in interiors.chunks_exact(stride) {
        let mut prod = 1.0f64;
        for &i in chunk {
            prod *= recip[i as usize];
        }
        sum += prod;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use gx_graph::generators::classic;
    use gx_graph::Graph;
    use gx_graphlets::induced_mask;

    /// Table 4, row g3_2 (triangle, SRW1): 2|R|·p/2 = 1/d₁ + 1/d₂ + 1/d₃.
    #[test]
    fn table4_triangle_srw1() {
        let g = classic::paper_figure1();
        // triangle {0, 1, 2}: degrees 3, 2, 3.
        let nodes = [0u32, 1, 2];
        let mask = induced_mask(&g, &nodes);
        let mut css = CssWeights::new(3, 1);
        let p = css.sampling_probability(&g, mask, &nodes, false);
        let want = 2.0 * (1.0 / 3.0 + 1.0 / 2.0 + 1.0 / 3.0);
        assert!((p - want).abs() < 1e-12, "{p} vs {want}");
    }

    /// Table 4, row g3_1 (wedge, SRW1): 2|R|·p/2 = 1/d₂ (center only) —
    /// CSS is a no-op relative to α·π̃_e for the wedge? No: the wedge has
    /// exactly two corresponding states (both traversal directions share
    /// the same center), so p̃ = 2/d_center.
    #[test]
    fn table4_wedge_srw1() {
        let g = classic::paper_figure1();
        // wedge 1-2-3 (0-based: 0-1-2 is a triangle; use {3,0,1}: path
        // 3-0-1 with center 0, non-edge (1,3)).
        let nodes = [3u32, 0, 1];
        let mask = induced_mask(&g, &nodes);
        let mut css = CssWeights::new(3, 1);
        let p = css.sampling_probability(&g, mask, &nodes, false);
        let want = 2.0 / 3.0; // center 0 has degree 3
        assert!((p - want).abs() < 1e-12, "{p} vs {want}");
    }

    /// Table 4, row g4_6 (4-clique, SRW2): 2|R|·p/2 = 4·Σ_{j=1..6} 1/d_ej.
    #[test]
    fn table4_clique_srw2() {
        // K5: every edge has degree 4+4-2 = 6 in G(2); the 4-clique on
        // nodes {0,1,2,3} has 6 inner edges: p̃ = 2·4·6·(1/6) = 8.
        let g = classic::complete(5);
        let nodes = [0u32, 1, 2, 3];
        let mask = induced_mask(&g, &nodes);
        let mut css = CssWeights::new(4, 2);
        let p = css.sampling_probability(&g, mask, &nodes, false);
        assert!((p - 8.0).abs() < 1e-12, "{p}");
    }

    /// Table 4, row g4_4 (tailed-triangle, SRW2):
    /// 2|R|·p/2 = 2/d_e2 + 2/d_e3 + 1/d_e4 with the paper's Figure-2 edge
    /// labels (e1 = tail, e2, e3 = triangle edges at the tail vertex,
    /// e4 = opposite triangle edge).
    #[test]
    fn table4_tailed_triangle_srw2() {
        // Build an isolated tailed triangle: triangle {0,1,2}, tail 2-3.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let nodes = [0u32, 1, 2, 3];
        let mask = induced_mask(&g, &nodes);
        let mut css = CssWeights::new(4, 2);
        let p = css.sampling_probability(&g, mask, &nodes, false);
        // Edge degrees in G(2): (0,1): 2+2-2=2... degrees: d0=2, d1=2,
        // d2=3, d3=1. e(0,1)=2, e(1,2)=3, e(0,2)=3, e(2,3)=2.
        // Walk sequences of 3 distinct edges covering all 4 nodes with
        // consecutive sharing: computed by hand in the alpha worked
        // example: {(0,1),(1,2),(2,3)} path orders ×2, {(0,1),(0,2),(2,3)}
        // ×2, {(1,2),(0,2),(2,3)} all-pairs-adjacent ×6. Interior states:
        // (1,2):3, (0,2):3, and for the 6 orderings of the triple, each of
        // the three edges is interior twice: p̃ = 2·(1/3) + 2·(1/3) +
        // 2·(1/3 + 1/3 + 1/2).
        let want = 2.0 / 3.0 + 2.0 / 3.0 + 2.0 * (1.0 / 3.0 + 1.0 / 3.0 + 1.0 / 2.0);
        assert!((p - want).abs() < 1e-12, "{p} vs {want}");
    }

    /// For l = 2 (PSRW), CSS must reduce to 1/α-weighting: p̃ = α·π̃ = α.
    #[test]
    fn l2_css_equals_alpha() {
        let g = classic::paper_figure1();
        let nodes = [0u32, 1, 2];
        let mask = induced_mask(&g, &nodes);
        let mut css = CssWeights::new(3, 2);
        let p = css.sampling_probability(&g, mask, &nodes, false);
        // triangle under SRW2: α = 6.
        assert!((p - 6.0).abs() < 1e-12);
    }

    /// l = 1 (d = k): p̃ is the state's own degree in G(k).
    #[test]
    fn l1_css_is_state_degree() {
        let g = classic::paper_figure1();
        let nodes = [0u32, 1, 2];
        let mask = induced_mask(&g, &nodes);
        let mut css = CssWeights::new(3, 3);
        let p = css.sampling_probability(&g, mask, &nodes, false);
        use gx_walks::gd::gd_state_degree;
        let want = gd_state_degree(&g, &[0, 1, 2]) as f64;
        assert!((p - want).abs() < 1e-12, "{p} vs {want}");
    }

    /// Lemma 4's underlying identity: E[1/(α π_e)] = E[1/p] holds because
    /// p(s) = Σ_{X ∈ C(s)} π_e(X). Check the sum directly for a triangle
    /// under SRW1: Σ over the 6 orderings of 1/d_center equals p̃.
    #[test]
    fn p_is_sum_over_corresponding_states() {
        let g = classic::paper_figure1();
        let nodes = [0u32, 2, 3]; // triangle with degrees 3, 3, 2
        let mask = induced_mask(&g, &nodes);
        let mut css = CssWeights::new(3, 1);
        let p = css.sampling_probability(&g, mask, &nodes, false);
        // each node is the interior of exactly 2 of the 6 orderings
        let manual: f64 = [3.0, 3.0, 2.0].iter().map(|d| 2.0 / d).sum();
        assert!((p - manual).abs() < 1e-12);
    }

    /// Non-backtracking CSS uses nominal degrees.
    #[test]
    fn nb_uses_nominal_degrees() {
        let g = classic::paper_figure1();
        let nodes = [0u32, 1, 2];
        let mask = induced_mask(&g, &nodes);
        let mut css = CssWeights::new(3, 1);
        let plain = css.sampling_probability(&g, mask, &nodes, false);
        let nb = css.sampling_probability(&g, mask, &nodes, true);
        // degrees 3,2,3 → nominal 2,1,2: p̃ grows.
        let want_nb = 2.0 * (1.0 / 2.0 + 1.0 / 1.0 + 1.0 / 2.0);
        assert!((nb - want_nb).abs() < 1e-12);
        assert!(nb > plain);
    }

    /// Table reuse must not change results.
    #[test]
    fn table_is_transparent() {
        let g = classic::complete(5);
        let nodes = [0u32, 1, 2, 3];
        let mask = induced_mask(&g, &nodes);
        let mut css = CssWeights::new(4, 2);
        let p1 = css.sampling_probability(&g, mask, &nodes, false);
        let p2 = css.sampling_probability(&g, mask, &nodes, false);
        assert_eq!(p1, p2);
        // same mask, different concrete nodes
        let nodes2 = [1u32, 2, 3, 4];
        let p3 = css.sampling_probability(&g, mask, &nodes2, false);
        assert!((p1 - p3).abs() < 1e-12, "K5 symmetry");
    }

    /// The k = 6 lazy-dense path agrees with a hand-computable case: the
    /// 6-path under SRW2 (l = 5).
    #[test]
    fn k6_lazy_path_works() {
        let g = classic::path(6);
        let nodes = [0u32, 1, 2, 3, 4, 5];
        let mask = induced_mask(&g, &nodes);
        let mut css = CssWeights::new(6, 2);
        let p = css.sampling_probability(&g, mask, &nodes, false);
        // 5 path edges; the only covering sequences are the two
        // end-to-end traversals; interiors are the 3 middle edges with
        // G(2)-degrees 2, 2, 2: p̃ = 2 · (1/2)³.
        assert!((p - 0.25).abs() < 1e-12, "{p}");
    }

    /// The windowed hot path must be bit-identical to the general path
    /// (which the oracle test below ties to the seed implementation).
    #[test]
    fn windowed_path_matches_general_path() {
        use crate::window::NodeWindow;
        use gx_walks::{rng_from_seed, G2Walk, GdWalk, SrwWalk, StateWalk};
        let g = classic::petersen();

        // d = 1, k = 4
        {
            let mut rng = rng_from_seed(3);
            let mut walk = SrwWalk::new(&g, 0, false);
            let mut w = NodeWindow::new(4, 1);
            let mut css = CssWeights::new(4, 1);
            for _ in 0..2000 {
                let deg = walk.state_degree();
                w.push(&g, walk.state(), deg);
                if w.is_valid_sample() {
                    let (mask, nodes) = w.sample();
                    let a = css.sampling_probability_windowed(&g, mask, &w, false);
                    let b = css.sampling_probability(&g, mask, nodes, false);
                    assert_eq!(a.to_bits(), b.to_bits(), "d=1 mask {mask:#x}");
                }
                walk.step(&mut rng);
            }
        }
        // d = 2, k = 5 (incl. non-backtracking weighting)
        {
            let mut rng = rng_from_seed(5);
            let mut walk = G2Walk::new(&g, 0, 4, false);
            let mut w = NodeWindow::new(4, 2);
            let mut css = CssWeights::new(5, 2);
            for _ in 0..2000 {
                let deg = walk.state_degree();
                w.push(&g, walk.state(), deg);
                if w.is_valid_sample() {
                    let (mask, nodes) = w.sample();
                    for nb in [false, true] {
                        let a = css.sampling_probability_windowed(&g, mask, &w, nb);
                        let b = css.sampling_probability(&g, mask, nodes, nb);
                        assert_eq!(a.to_bits(), b.to_bits(), "d=2 mask {mask:#x} nb={nb}");
                    }
                }
                walk.step(&mut rng);
            }
        }
        // d = 3, k = 5 (state-degree reuse + enumeration fallback)
        {
            let mut rng = rng_from_seed(7);
            let mut walk = GdWalk::new(&g, &[0, 1, 2], false);
            let mut w = NodeWindow::new(3, 3);
            let mut css = CssWeights::new(5, 3);
            for _ in 0..300 {
                let deg = walk.state_degree();
                w.push(&g, walk.state(), deg);
                if w.is_valid_sample() {
                    let (mask, nodes) = w.sample();
                    let a = css.sampling_probability_windowed(&g, mask, &w, false);
                    let b = css.sampling_probability(&g, mask, nodes, false);
                    assert_eq!(a.to_bits(), b.to_bits(), "d=3 mask {mask:#x}");
                }
                walk.step(&mut rng);
            }
        }
    }

    /// Regression for the d ≥ 3 slot-bitmask degree-reuse audit (see the
    /// comment in `sampling_probability_windowed`): on a revisit-heavy
    /// graph — a lollipop's pendant path traps the walk into sliding the
    /// same nodes in and out of the window — the windowed path must stay
    /// bit-identical to the graph-derived path for every scored window,
    /// plain and non-backtracking. A bitmask aliasing bug between two
    /// states sharing nodes would surface here as a wrong reused degree.
    #[test]
    fn windowed_matches_general_on_revisit_heavy_walks() {
        use crate::window::NodeWindow;
        use gx_walks::{rng_from_seed, GdWalk, StateWalk};
        // Small clique head + pendant path: states at the joint revisit
        // clique nodes constantly, and the path forces backtracking.
        let g = classic::lollipop(5, 4);
        for nb in [false, true] {
            let mut rng = rng_from_seed(29);
            let mut walk = GdWalk::new(&g, &[0, 1, 2], nb);
            let mut w = NodeWindow::new(3, 3); // k = 5, d = 3, l = 3
            let mut css = CssWeights::new(5, 3);
            let mut scored = 0usize;
            for _ in 0..4_000 {
                let deg = walk.state_degree();
                w.push(&g, walk.state(), deg);
                if w.is_valid_sample() {
                    let (mask, nodes) = w.sample();
                    let a = css.sampling_probability_windowed(&g, mask, &w, nb);
                    let b = css.sampling_probability(&g, mask, nodes, nb);
                    assert_eq!(a.to_bits(), b.to_bits(), "nb={nb} mask {mask:#x}");
                    scored += 1;
                    // The invariants the degree-reuse match rests on:
                    // every state's slot bitmask has popcount d, and the
                    // l states' bitmasks are pairwise distinct — even
                    // though here 3 states × 3 nodes share only 5 slots,
                    // so every window has refcount-shared slots.
                    let masks: Vec<u8> = w.state_slot_masks().map(|(b, _)| b).collect();
                    for (i, &bi) in masks.iter().enumerate() {
                        assert_eq!(bi.count_ones(), 3, "state mask popcount");
                        for &bj in &masks[i + 1..] {
                            assert_ne!(bi, bj, "valid-sample states must have distinct masks");
                        }
                    }
                }
                walk.step(&mut rng);
            }
            assert!(scored > 50, "walk must score enough windows to exercise reuse ({scored})");
        }
    }
}

/// The seed `HashMap` implementation, kept verbatim as the bit-for-bit
/// oracle for the dense-table rewrite (satellite: "keep the old path
/// behind `#[cfg(test)]`").
#[cfg(test)]
mod seed_oracle {
    use gx_graph::{GraphAccess, NodeId};
    use gx_graphlets::alpha::covering_sequences;
    use gx_graphlets::SmallGraph;
    use gx_walks::effective_degree;
    use gx_walks::gd::gd_state_degree;
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    struct CssEntry {
        subsets: Vec<u8>,
        interiors: Vec<Vec<u8>>,
        l_is_one: bool,
    }

    pub struct SeedCssWeights {
        d: usize,
        cache: HashMap<(usize, u32), CssEntry>,
        degrees: Vec<f64>,
        subset_nodes: Vec<NodeId>,
    }

    impl SeedCssWeights {
        pub fn new(d: usize) -> Self {
            Self { d, cache: HashMap::new(), degrees: Vec::new(), subset_nodes: Vec::new() }
        }

        pub fn sampling_probability<G: GraphAccess>(
            &mut self,
            g: &G,
            mask: u32,
            nodes: &[NodeId],
            non_backtracking: bool,
        ) -> f64 {
            let k = nodes.len();
            let d = self.d;
            let entry = self.cache.entry((k, mask)).or_insert_with(|| {
                let small = SmallGraph::from_mask(k, mask);
                let cover = covering_sequences(&small, d);
                let l = k - d + 1;
                CssEntry {
                    subsets: cover.subsets,
                    interiors: cover
                        .sequences
                        .iter()
                        .map(|seq| {
                            if seq.len() <= 2 {
                                Vec::new()
                            } else {
                                seq[1..seq.len() - 1].to_vec()
                            }
                        })
                        .collect(),
                    l_is_one: l == 1,
                }
            });
            self.degrees.clear();
            for &bits in &entry.subsets {
                self.subset_nodes.clear();
                for (pos, &node) in nodes.iter().enumerate() {
                    if bits & (1 << pos) != 0 {
                        self.subset_nodes.push(node);
                    }
                }
                let deg = match d {
                    1 => g.degree(self.subset_nodes[0]),
                    2 => g.degree(self.subset_nodes[0]) + g.degree(self.subset_nodes[1]) - 2,
                    _ => gd_state_degree(g, &self.subset_nodes),
                };
                self.degrees.push(effective_degree(deg, non_backtracking) as f64);
            }
            if entry.l_is_one {
                debug_assert_eq!(entry.interiors.len(), 1);
                let full_idx = entry
                    .subsets
                    .iter()
                    .position(|&b| b.count_ones() as usize == k)
                    .expect("l = 1 sequence is the full subgraph");
                return self.degrees[full_idx];
            }
            entry
                .interiors
                .iter()
                .map(|interior| {
                    interior.iter().map(|&i| 1.0 / self.degrees[i as usize]).product::<f64>()
                })
                .sum()
        }
    }
}

#[cfg(test)]
mod oracle_tests {
    use super::seed_oracle::SeedCssWeights;
    use super::*;
    use gx_graph::Graph;
    use gx_graphlets::mask::num_pairs;

    /// A host graph realizing `mask` on nodes `0..k` exactly (no other
    /// edges among them), with pendant leaves attached to diversify node
    /// degrees so degree-formula mistakes cannot cancel out.
    fn realize(k: usize, mask: u32) -> Graph {
        let small = SmallGraph::from_mask(k, mask);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for i in 0..k {
            for j in (i + 1)..k {
                if small.has_edge(i, j) {
                    edges.push((i as u32, j as u32));
                }
            }
        }
        // node i gets i + 1 pendant leaves: degrees become distinct-ish
        let mut next = k as u32;
        for i in 0..k {
            for _ in 0..=i {
                edges.push((i as u32, next));
                next += 1;
            }
        }
        Graph::from_edges(next as usize, edges).unwrap()
    }

    /// Satellite: for every connected mask at k ∈ {3, 4, 5} and every
    /// walk dimension d (including the l = 1 and l = 2 degenerate
    /// shapes), the dense-table `sampling_probability` equals the seed
    /// `HashMap` implementation bit-for-bit, plain and non-backtracking.
    #[test]
    fn dense_table_matches_seed_oracle_exhaustively() {
        for k in 3..=5usize {
            let nodes: Vec<u32> = (0..k as u32).collect();
            for mask in 0u32..(1 << num_pairs(k)) {
                if !SmallGraph::from_mask(k, mask).is_connected() {
                    continue;
                }
                let g = realize(k, mask);
                for d in 1..=k {
                    let mut dense = CssWeights::new(k, d);
                    let mut seed = SeedCssWeights::new(d);
                    for nb in [false, true] {
                        let a = dense.sampling_probability(&g, mask, &nodes, nb);
                        let b = seed.sampling_probability(&g, mask, &nodes, nb);
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "k={k} d={d} nb={nb} mask={mask:#x}: dense {a} vs seed {b}"
                        );
                    }
                }
            }
        }
    }

    /// Same oracle comparison on a scale-free host graph with realistic
    /// degree skew, driven by the masks an actual walk produces.
    #[test]
    fn dense_table_matches_seed_oracle_on_walk_samples() {
        use crate::window::NodeWindow;
        use gx_walks::{rng_from_seed, G2Walk, StateWalk};
        let g = gx_graph::generators::holme_kim(60, 4, 0.4, &mut rng_from_seed(2));
        let mut rng = rng_from_seed(17);
        let mut walk = G2Walk::new(&g, 0, g.neighbors(0)[0], false);
        let mut w = NodeWindow::new(4, 2);
        let mut dense = CssWeights::new(5, 2);
        let mut seed = SeedCssWeights::new(2);
        let mut seen = 0usize;
        for _ in 0..4000 {
            let deg = walk.state_degree();
            w.push(&g, walk.state(), deg);
            if w.is_valid_sample() {
                let (mask, nodes) = w.sample();
                let a = dense.sampling_probability_windowed(&g, mask, &w, false);
                let b = seed.sampling_probability(&g, mask, nodes, false);
                assert_eq!(a.to_bits(), b.to_bits(), "mask {mask:#x} nodes {nodes:?}");
                seen += 1;
            }
            walk.step(&mut rng);
        }
        assert!(seen > 500, "walk produced too few valid samples ({seen})");
    }
}
