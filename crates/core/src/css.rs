//! Corresponding state sampling (paper §4.1, Algorithm 3).
//!
//! The basic estimator de-biases a sample by `α^k_i · π_e(X^{(l)})`, which
//! only uses the degrees of the states the walk *actually* visited. CSS
//! instead divides by the full sampling probability
//! `p(X^{(l)}) = Σ_{X' ∈ C(s)} π_e(X')` — the probability that the
//! subgraph `s` is generated in *any* visiting order — which uses the
//! degree information of every node in the subgraph (the paper's Table 4
//! examples) and provably never increases the estimator's variance
//! (Lemma 5).
//!
//! The covering sequences of the sampled subgraph depend only on its edge
//! mask, so they are enumerated once per (k, mask) and cached; per sample
//! only the degree products are recomputed.

use gx_graph::{GraphAccess, NodeId};
use gx_graphlets::alpha::covering_sequences;
use gx_graphlets::SmallGraph;
use gx_walks::effective_degree;
use gx_walks::gd::gd_state_degree;
use std::collections::HashMap;

/// One cached (k, mask) entry: the connected d-subsets of the subgraph and
/// the interior subset-indices of each covering sequence.
#[derive(Debug, Clone)]
struct CssEntry {
    /// Connected d-subsets as node-position bitmasks.
    subsets: Vec<u8>,
    /// For each covering sequence, the subset indices of its interior
    /// states X₂ … X_{l−1} (may be empty when l ≤ 2).
    interiors: Vec<Vec<u8>>,
    /// For each covering sequence of length 1 (l = 1), p̃ sums the state
    /// degree itself instead of an interior product.
    l_is_one: bool,
}

/// Computes CSS sampling probabilities for one estimator run.
pub struct CssWeights {
    d: usize,
    cache: HashMap<(usize, u32), CssEntry>,
    /// Scratch: effective degree per subset for the current sample.
    degrees: Vec<f64>,
    /// Scratch: concrete nodes of a subset.
    subset_nodes: Vec<NodeId>,
}

impl CssWeights {
    /// CSS helper for walks on `G(d)`.
    pub fn new(d: usize) -> Self {
        Self { d, cache: HashMap::new(), degrees: Vec::new(), subset_nodes: Vec::new() }
    }

    /// `p̃(X^{(l)}) = 2|R(d)| · p(X^{(l)})` for the sample with induced
    /// edge `mask` over `nodes` (slot labeling). Degrees of d-states are
    /// taken from `g` (O(1) for d ≤ 2; neighbor enumeration for d ≥ 3 —
    /// the cost that made the paper skip SRW3CSS).
    pub fn sampling_probability<G: GraphAccess>(
        &mut self,
        g: &G,
        mask: u32,
        nodes: &[NodeId],
        non_backtracking: bool,
    ) -> f64 {
        let k = nodes.len();
        let d = self.d;
        let entry =
            self.cache.entry((k, mask)).or_insert_with(|| {
                let small = SmallGraph::from_mask(k, mask);
                let cover = covering_sequences(&small, d);
                let l = k - d + 1;
                CssEntry {
                    subsets: cover.subsets,
                    interiors: cover
                        .sequences
                        .iter()
                        .map(|seq| {
                            if seq.len() <= 2 {
                                Vec::new()
                            } else {
                                seq[1..seq.len() - 1].to_vec()
                            }
                        })
                        .collect(),
                    l_is_one: l == 1,
                }
            });
        // Effective degree of every subset, once per sample.
        self.degrees.clear();
        for &bits in &entry.subsets {
            self.subset_nodes.clear();
            for (pos, &node) in nodes.iter().enumerate() {
                if bits & (1 << pos) != 0 {
                    self.subset_nodes.push(node);
                }
            }
            let deg = match d {
                1 => g.degree(self.subset_nodes[0]),
                2 => g.degree(self.subset_nodes[0]) + g.degree(self.subset_nodes[1]) - 2,
                _ => gd_state_degree(g, &self.subset_nodes),
            };
            self.degrees.push(effective_degree(deg, non_backtracking) as f64);
        }
        if entry.l_is_one {
            // p̃ = Σ over the single full-subgraph state of its degree.
            debug_assert_eq!(entry.interiors.len(), 1);
            let full_idx = entry
                .subsets
                .iter()
                .position(|&b| b.count_ones() as usize == k)
                .expect("l = 1 sequence is the full subgraph");
            return self.degrees[full_idx];
        }
        entry
            .interiors
            .iter()
            .map(|interior| {
                interior.iter().map(|&i| 1.0 / self.degrees[i as usize]).product::<f64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gx_graph::generators::classic;
    use gx_graph::Graph;
    use gx_graphlets::induced_mask;

    /// Table 4, row g3_2 (triangle, SRW1): 2|R|·p/2 = 1/d₁ + 1/d₂ + 1/d₃.
    #[test]
    fn table4_triangle_srw1() {
        let g = classic::paper_figure1();
        // triangle {0, 1, 2}: degrees 3, 2, 3.
        let nodes = [0u32, 1, 2];
        let mask = induced_mask(&g, &nodes);
        let mut css = CssWeights::new(1);
        let p = css.sampling_probability(&g, mask, &nodes, false);
        let want = 2.0 * (1.0 / 3.0 + 1.0 / 2.0 + 1.0 / 3.0);
        assert!((p - want).abs() < 1e-12, "{p} vs {want}");
    }

    /// Table 4, row g3_1 (wedge, SRW1): 2|R|·p/2 = 1/d₂ (center only) —
    /// CSS is a no-op relative to α·π̃_e for the wedge? No: the wedge has
    /// exactly two corresponding states (both traversal directions share
    /// the same center), so p̃ = 2/d_center.
    #[test]
    fn table4_wedge_srw1() {
        let g = classic::paper_figure1();
        // wedge 1-2-3 (0-based: 0-1-2 is a triangle; use {3,0,1}: path
        // 3-0-1 with center 0, non-edge (1,3)).
        let nodes = [3u32, 0, 1];
        let mask = induced_mask(&g, &nodes);
        let mut css = CssWeights::new(1);
        let p = css.sampling_probability(&g, mask, &nodes, false);
        let want = 2.0 / 3.0; // center 0 has degree 3
        assert!((p - want).abs() < 1e-12, "{p} vs {want}");
    }

    /// Table 4, row g4_6 (4-clique, SRW2): 2|R|·p/2 = 4·Σ_{j=1..6} 1/d_ej.
    #[test]
    fn table4_clique_srw2() {
        // K5: every edge has degree 4+4-2 = 6 in G(2); the 4-clique on
        // nodes {0,1,2,3} has 6 inner edges: p̃ = 2·4·6·(1/6) = 8.
        let g = classic::complete(5);
        let nodes = [0u32, 1, 2, 3];
        let mask = induced_mask(&g, &nodes);
        let mut css = CssWeights::new(2);
        let p = css.sampling_probability(&g, mask, &nodes, false);
        assert!((p - 8.0).abs() < 1e-12, "{p}");
    }

    /// Table 4, row g4_4 (tailed-triangle, SRW2):
    /// 2|R|·p/2 = 2/d_e2 + 2/d_e3 + 1/d_e4 with the paper's Figure-2 edge
    /// labels (e1 = tail, e2, e3 = triangle edges at the tail vertex,
    /// e4 = opposite triangle edge).
    #[test]
    fn table4_tailed_triangle_srw2() {
        // Build an isolated tailed triangle: triangle {0,1,2}, tail 2-3.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let nodes = [0u32, 1, 2, 3];
        let mask = induced_mask(&g, &nodes);
        let mut css = CssWeights::new(2);
        let p = css.sampling_probability(&g, mask, &nodes, false);
        // Edge degrees in G(2): (0,1): 2+2-2=2... degrees: d0=2, d1=2,
        // d2=3, d3=1. e(0,1)=2, e(1,2)=3, e(0,2)=3, e(2,3)=2.
        // Walk sequences of 3 distinct edges covering all 4 nodes with
        // consecutive sharing: computed by hand in the alpha worked
        // example: {(0,1),(1,2),(2,3)} path orders ×2, {(0,1),(0,2),(2,3)}
        // ×2, {(1,2),(0,2),(2,3)} all-pairs-adjacent ×6. Interior states:
        // (1,2):3, (0,2):3, and for the 6 orderings of the triple, each of
        // the three edges is interior twice: p̃ = 2·(1/3) + 2·(1/3) +
        // 2·(1/3 + 1/3 + 1/2).
        let want = 2.0 / 3.0 + 2.0 / 3.0 + 2.0 * (1.0 / 3.0 + 1.0 / 3.0 + 1.0 / 2.0);
        assert!((p - want).abs() < 1e-12, "{p} vs {want}");
    }

    /// For l = 2 (PSRW), CSS must reduce to 1/α-weighting: p̃ = α·π̃ = α.
    #[test]
    fn l2_css_equals_alpha() {
        let g = classic::paper_figure1();
        let nodes = [0u32, 1, 2];
        let mask = induced_mask(&g, &nodes);
        let mut css = CssWeights::new(2);
        let p = css.sampling_probability(&g, mask, &nodes, false);
        // triangle under SRW2: α = 6.
        assert!((p - 6.0).abs() < 1e-12);
    }

    /// l = 1 (d = k): p̃ is the state's own degree in G(k).
    #[test]
    fn l1_css_is_state_degree() {
        let g = classic::paper_figure1();
        let nodes = [0u32, 1, 2];
        let mask = induced_mask(&g, &nodes);
        let mut css = CssWeights::new(3);
        let p = css.sampling_probability(&g, mask, &nodes, false);
        use gx_walks::gd::gd_state_degree;
        let want = gd_state_degree(&g, &[0, 1, 2]) as f64;
        assert!((p - want).abs() < 1e-12, "{p} vs {want}");
    }

    /// Lemma 4's underlying identity: E[1/(α π_e)] = E[1/p] holds because
    /// p(s) = Σ_{X ∈ C(s)} π_e(X). Check the sum directly for a triangle
    /// under SRW1: Σ over the 6 orderings of 1/d_center equals p̃.
    #[test]
    fn p_is_sum_over_corresponding_states() {
        let g = classic::paper_figure1();
        let nodes = [0u32, 2, 3]; // triangle with degrees 3, 3, 2
        let mask = induced_mask(&g, &nodes);
        let mut css = CssWeights::new(1);
        let p = css.sampling_probability(&g, mask, &nodes, false);
        // each node is the interior of exactly 2 of the 6 orderings
        let manual: f64 = [3.0, 3.0, 2.0].iter().map(|d| 2.0 / d).sum();
        assert!((p - manual).abs() < 1e-12);
    }

    /// Non-backtracking CSS uses nominal degrees.
    #[test]
    fn nb_uses_nominal_degrees() {
        let g = classic::paper_figure1();
        let nodes = [0u32, 1, 2];
        let mask = induced_mask(&g, &nodes);
        let mut css = CssWeights::new(1);
        let plain = css.sampling_probability(&g, mask, &nodes, false);
        let nb = css.sampling_probability(&g, mask, &nodes, true);
        // degrees 3,2,3 → nominal 2,1,2: p̃ grows.
        let want_nb = 2.0 * (1.0 / 2.0 + 1.0 / 1.0 + 1.0 / 2.0);
        assert!((nb - want_nb).abs() < 1e-12);
        assert!(nb > plain);
    }

    /// Cache reuse must not change results.
    #[test]
    fn cache_is_transparent() {
        let g = classic::complete(5);
        let nodes = [0u32, 1, 2, 3];
        let mask = induced_mask(&g, &nodes);
        let mut css = CssWeights::new(2);
        let p1 = css.sampling_probability(&g, mask, &nodes, false);
        let p2 = css.sampling_probability(&g, mask, &nodes, false);
        assert_eq!(p1, p2);
        // same mask, different concrete nodes
        let nodes2 = [1u32, 2, 3, 4];
        let p3 = css.sampling_probability(&g, mask, &nodes2, false);
        assert!((p1 - p3).abs() < 1e-12, "K5 symmetry");
    }
}
