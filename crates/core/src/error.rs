//! Typed errors for the estimation front-end.
//!
//! Historically every entry point policed its domain with `assert!`, so a
//! bad configuration took the whole process down — acceptable in a
//! research harness, not in a serving layer. The [`crate::runner::Runner`]
//! paths return these enums instead; the old panicking `validate()`
//! methods delegate to the fallible `try_validate()` forms and panic with
//! the same messages, so existing callers (and their tests) see no
//! behavioral change.

use std::fmt;

/// Why an [`crate::EstimatorConfig`] is outside the supported domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `k` outside `3..=6`.
    UnsupportedK {
        /// The rejected graphlet size.
        k: usize,
    },
    /// `d` outside `1..=k`.
    DOutOfRange {
        /// The configuration's graphlet size.
        k: usize,
        /// The rejected walk dimension.
        d: usize,
    },
    /// `burn_in` beyond [`crate::EstimatorConfig::MAX_BURN_IN`].
    BurnInTooLarge {
        /// The rejected burn-in step count.
        burn_in: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::UnsupportedK { k } => write!(f, "k={k} unsupported (3..=6)"),
            Self::DOutOfRange { k, d } => write!(f, "d={d} must be in 1..=k (k={k})"),
            Self::BurnInTooLarge { burn_in } => write!(
                f,
                "burn_in={burn_in} is pathological (max {}) — the walk would never reach sampling",
                crate::EstimatorConfig::MAX_BURN_IN
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Why a [`crate::StoppingRule`] could never fire (or never checks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RuleError {
    /// `target_rel_ci ≤ 0` (or NaN): no width ever satisfies it.
    TargetNotPositive {
        /// The rejected target.
        target_rel_ci: f64,
    },
    /// `check_every == 0`: the run would never reach a convergence check.
    ZeroCheckEvery,
    /// `z ≤ 0` (or NaN): not a critical value.
    ZNotPositive {
        /// The rejected critical value.
        z: f64,
    },
    /// `batch_len == 0`: batch means need at least one step per batch.
    ZeroBatchLen,
    /// `min_batches < 2`: no variance estimate exists below two batches.
    MinBatchesTooSmall {
        /// The rejected minimum.
        min_batches: u64,
    },
    /// `min_concentration` outside `0..=1`.
    ConcentrationOutOfRange {
        /// The rejected floor.
        min_concentration: f64,
    },
    /// `max_series_batches` is nonzero but not an even count ≥ 4: the
    /// bounded-memory series collapses *pairs* of batch means, so the
    /// cap must be even, and below 4 no variance estimate would survive
    /// a collapse.
    BoundedMemoryCap {
        /// The rejected cap.
        max_series_batches: usize,
    },
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::TargetNotPositive { target_rel_ci } => {
                write!(f, "target_rel_ci must be positive (got {target_rel_ci})")
            }
            Self::ZeroCheckEvery => write!(f, "check_every must be at least 1"),
            Self::ZNotPositive { z } => write!(f, "z must be positive (got {z})"),
            Self::ZeroBatchLen => write!(f, "batch_len must be at least 1"),
            Self::MinBatchesTooSmall { min_batches } => {
                write!(f, "min_batches must be at least 2 (got {min_batches})")
            }
            Self::ConcentrationOutOfRange { min_concentration } => {
                write!(
                    f,
                    "min_concentration must be a concentration in 0..=1 (got {min_concentration})"
                )
            }
            Self::BoundedMemoryCap { max_series_batches } => {
                write!(
                    f,
                    "max_series_batches must be an even count >= 4 (got {max_series_batches}) — \
                     the bounded-memory series collapses pairs of batch means"
                )
            }
        }
    }
}

impl std::error::Error for RuleError {}

/// Why a checkpoint payload was refused at resume time.
///
/// Every variant is a *typed* rejection: a truncated, bit-flipped, or
/// mismatched snapshot must never panic or silently resume wrong. The
/// reader verifies the envelope (magic, version, length, checksum) before
/// trusting a single payload field, so a corrupted payload surfaces as
/// [`CheckpointError::Truncated`] / [`CheckpointError::ChecksumMismatch`]
/// rather than as garbage state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// The stream does not start with the checkpoint magic bytes.
    BadMagic,
    /// The format version is not one this build can decode.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The stream ended before the declared payload was read.
    Truncated,
    /// The payload checksum does not match the header's.
    ChecksumMismatch,
    /// The snapshot was taken against a different graph (or the graph
    /// changed since): resuming would silently produce wrong estimates.
    GraphMismatch {
        /// Fingerprint recorded in the snapshot.
        expected: u64,
        /// Fingerprint of the graph offered for resume.
        found: u64,
    },
    /// A checksum-valid payload decoded to an out-of-domain value — a
    /// format/version confusion, not bit rot.
    Malformed {
        /// Which field or invariant failed.
        what: &'static str,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::BadMagic => write!(f, "not a checkpoint: bad magic bytes"),
            Self::UnsupportedVersion { found } => {
                write!(f, "unsupported checkpoint version {found}")
            }
            Self::Truncated => write!(f, "checkpoint truncated before the declared payload end"),
            Self::ChecksumMismatch => write!(f, "checkpoint payload checksum mismatch"),
            Self::GraphMismatch { expected, found } => write!(
                f,
                "checkpoint was taken against a different graph \
                 (fingerprint {expected:#018x}, offered graph {found:#018x})"
            ),
            Self::Malformed { what } => write!(f, "malformed checkpoint payload: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Why the estimation *service* terminated (or refused) a job.
///
/// These are the typed terminal outcomes of the multi-job serving layer
/// (`gx-service`): every job submitted to a service ends in exactly one
/// of `Ok(Estimate)` or one of these — never a hang, never an untyped
/// panic escaping the worker pool. The variants that end a job in
/// flight ([`ServiceError::DeadlineExceeded`],
/// [`ServiceError::Cancelled`]) travel with a best-effort partial
/// estimate at the service layer; the error itself stays `Copy` so
/// [`GxError`] remains cheap to pass around and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// Admission control shed the job: the service's bounded queue was
    /// full at submit time. Queuing it anyway would trade an honest
    /// rejection now for unbounded latency later.
    Rejected {
        /// The service's estimate of when capacity frees up — resubmit
        /// after roughly this long. A hint, not a reservation.
        retry_after_hint: std::time::Duration,
    },
    /// The job's deadline passed before its budget (or stopping rule)
    /// completed. The partial estimate accumulated so far is attached
    /// at the service layer.
    DeadlineExceeded,
    /// The submitter cancelled the job. Cooperative: the worker observes
    /// the flag between scheduler rounds, so cancellation is prompt but
    /// never tears a round. The partial estimate is attached at the
    /// service layer.
    Cancelled,
    /// The service shut down before the job completed. Waiters are
    /// released with this instead of hanging on a dead pool.
    Shutdown,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::Rejected { retry_after_hint } => write!(
                f,
                "job rejected: admission queue full (retry after ~{} ms)",
                retry_after_hint.as_millis()
            ),
            Self::DeadlineExceeded => {
                write!(f, "job deadline exceeded before the estimate completed")
            }
            Self::Cancelled => write!(f, "job cancelled by its submitter"),
            Self::Shutdown => write!(f, "service shut down before the job completed"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Everything a [`crate::runner::Runner`] run can reject up front.
///
/// Runner paths are panic-free on bad input: every invalid configuration,
/// stopping rule, fan-out, or walk pairing comes back as one of these.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GxError {
    /// The estimator configuration is out of domain.
    Config(ConfigError),
    /// The stopping rule is out of domain.
    Rule(RuleError),
    /// A fan-out of zero walkers was requested.
    NoWalkers,
    /// [`crate::runner::Runner::run`] was called before a budget was
    /// chosen with `.steps(n)` or `.until(rule)`.
    NoBudget,
    /// A batch width of zero walkers was requested — the lock-step
    /// engine needs at least one lane (width 1 is the scalar engine).
    ZeroBatchWidth,
    /// A caller-supplied walk's dimension does not match the
    /// configuration's `d`.
    WalkDimensionMismatch {
        /// The supplied walk's `d`.
        walk_d: usize,
        /// The configuration's `d`.
        cfg_d: usize,
    },
    /// A caller-supplied walk is a single chain: it cannot be fanned out
    /// over more than one walker.
    ParallelCustomWalk {
        /// The requested fan-out.
        walkers: usize,
    },
    /// A bounded-memory stopping rule (`max_series_batches > 0`) was
    /// combined with a multi-walker fan-out. Pooled batch means require
    /// equal batch lengths across walkers, and independent pair-collapses
    /// would desynchronize them — run bounded-memory rules with one
    /// walker.
    BoundedMemoryParallel {
        /// The requested fan-out.
        walkers: usize,
    },
    /// A checkpoint payload was refused (truncated, corrupted, wrong
    /// version, or taken against a different graph).
    Checkpoint(CheckpointError),
    /// An on-disk graph snapshot (GXSN/GXSC) was refused — corrupted
    /// header, truncated file, malformed index, or unreadable path.
    Snapshot(gx_graph::SnapshotError),
    /// The estimation service refused or terminated the job (shed load,
    /// deadline passed, cancelled, or shut down).
    Service(ServiceError),
    /// An I/O error while writing or reading a checkpoint. Only the
    /// [`std::io::ErrorKind`] is kept so the error stays `Copy` and
    /// comparable; the OS-level message is reported at the call site.
    Io(std::io::ErrorKind),
}

impl fmt::Display for GxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::Config(e) => write!(f, "invalid estimator configuration: {e}"),
            Self::Rule(e) => write!(f, "invalid stopping rule: {e}"),
            Self::NoWalkers => write!(f, "estimation needs at least one walker"),
            Self::NoBudget => {
                write!(f, "runner has no budget: call .steps(n) or .until(rule) before running")
            }
            Self::ZeroBatchWidth => {
                write!(f, "batch width must be at least 1 (1 selects the scalar engine)")
            }
            Self::WalkDimensionMismatch { walk_d, cfg_d } => write!(
                f,
                "walk dimension must match configuration (walk d={walk_d}, config d={cfg_d})"
            ),
            Self::ParallelCustomWalk { walkers } => write!(
                f,
                "a caller-supplied walk is one chain; it cannot fan out over {walkers} walkers"
            ),
            Self::BoundedMemoryParallel { walkers } => write!(
                f,
                "bounded-memory stopping rule requires a single walker \
                 (requested {walkers}): pair-collapses would desynchronize pooled batch lengths"
            ),
            Self::Checkpoint(e) => write!(f, "checkpoint refused: {e}"),
            Self::Snapshot(e) => write!(f, "graph snapshot refused: {e}"),
            Self::Service(e) => write!(f, "estimation service: {e}"),
            Self::Io(kind) => write!(f, "checkpoint I/O error: {kind}"),
        }
    }
}

impl std::error::Error for GxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            Self::Rule(e) => Some(e),
            Self::Checkpoint(e) => Some(e),
            Self::Snapshot(e) => Some(e),
            Self::Service(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for GxError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

impl From<RuleError> for GxError {
    fn from(e: RuleError) -> Self {
        Self::Rule(e)
    }
}

impl From<CheckpointError> for GxError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

impl From<ServiceError> for GxError {
    fn from(e: ServiceError) -> Self {
        Self::Service(e)
    }
}

impl From<gx_graph::SnapshotError> for GxError {
    fn from(e: gx_graph::SnapshotError) -> Self {
        Self::Snapshot(e)
    }
}

impl From<std::io::Error> for GxError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_keep_the_legacy_panic_substrings() {
        // The panicking validate() paths now delegate to try_validate()
        // and panic with `Display` — these substrings are load-bearing
        // for every pre-existing #[should_panic(expected = …)] test.
        assert!(ConfigError::UnsupportedK { k: 7 }.to_string().contains("unsupported"));
        assert!(ConfigError::DOutOfRange { k: 3, d: 4 }.to_string().contains("must be in 1..=k"));
        assert!(ConfigError::BurnInTooLarge { burn_in: 1 << 33 }
            .to_string()
            .contains("pathological"));
        assert!(RuleError::TargetNotPositive { target_rel_ci: 0.0 }
            .to_string()
            .contains("target_rel_ci"));
        assert!(RuleError::ZeroCheckEvery.to_string().contains("check_every"));
        assert!(RuleError::ConcentrationOutOfRange { min_concentration: 2.0 }
            .to_string()
            .contains("min_concentration must be a concentration"));
        assert!(GxError::NoWalkers.to_string().contains("at least one walker"));
        assert!(GxError::WalkDimensionMismatch { walk_d: 1, cfg_d: 2 }
            .to_string()
            .contains("walk dimension"));
    }

    #[test]
    fn error_trait_chains_sources() {
        use std::error::Error;
        let e = GxError::from(ConfigError::UnsupportedK { k: 9 });
        assert!(e.source().is_some());
        assert_eq!(e.source().unwrap().to_string(), "k=9 unsupported (3..=6)");
        let e = GxError::from(RuleError::ZeroBatchLen);
        assert!(e.source().unwrap().to_string().contains("batch_len"));
        assert!(GxError::NoBudget.source().is_none());
        let e = GxError::from(CheckpointError::ChecksumMismatch);
        assert!(e.source().unwrap().to_string().contains("checksum"));
    }

    #[test]
    fn service_errors_display_every_variant() {
        use std::time::Duration;
        // Exhaustive: one substring assertion per variant, so a renamed
        // or reworded terminal outcome fails here before it confuses a
        // service client matching on messages.
        let rejected = ServiceError::Rejected { retry_after_hint: Duration::from_millis(250) };
        assert!(rejected.to_string().contains("admission queue full"));
        assert!(rejected.to_string().contains("250 ms"));
        assert!(ServiceError::DeadlineExceeded.to_string().contains("deadline exceeded"));
        assert!(ServiceError::Cancelled.to_string().contains("cancelled by its submitter"));
        assert!(ServiceError::Shutdown.to_string().contains("shut down before"));
    }

    #[test]
    fn service_errors_wire_into_gx_error() {
        use std::error::Error;
        // From + Display prefix + source chaining, matching the
        // ConfigError/RuleError/CheckpointError pattern exactly.
        let e = GxError::from(ServiceError::Cancelled);
        assert_eq!(e, GxError::Service(ServiceError::Cancelled));
        assert!(e.to_string().contains("estimation service:"));
        assert!(e.source().unwrap().to_string().contains("cancelled"));
        let hint = std::time::Duration::from_millis(5);
        let e = GxError::from(ServiceError::Rejected { retry_after_hint: hint });
        assert!(e.to_string().contains("retry after"));
        assert_eq!(
            e.source().unwrap().to_string(),
            ServiceError::Rejected { retry_after_hint: hint }.to_string()
        );
    }

    #[test]
    fn snapshot_errors_wire_into_gx_error() {
        use gx_graph::SnapshotError;
        use std::error::Error;
        // From + Display prefix + source chaining, matching the
        // CheckpointError pattern exactly.
        let e = GxError::from(SnapshotError::HeaderChecksumMismatch);
        assert_eq!(e, GxError::Snapshot(SnapshotError::HeaderChecksumMismatch));
        assert!(e.to_string().contains("graph snapshot refused:"));
        assert!(e.source().unwrap().to_string().contains("checksum"));
        let e = GxError::from(SnapshotError::Truncated { expected: 64, found: 7 });
        assert!(e.to_string().contains("need 64 bytes, found 7"));
        let e = GxError::from(SnapshotError::Io(std::io::ErrorKind::NotFound));
        assert_eq!(e, GxError::Snapshot(SnapshotError::Io(std::io::ErrorKind::NotFound)));
    }

    #[test]
    fn checkpoint_errors_are_typed_and_comparable() {
        assert_eq!(
            GxError::from(CheckpointError::BadMagic),
            GxError::Checkpoint(CheckpointError::BadMagic)
        );
        assert!(CheckpointError::UnsupportedVersion { found: 9 }.to_string().contains("version 9"));
        assert!(CheckpointError::GraphMismatch { expected: 1, found: 2 }
            .to_string()
            .contains("different graph"));
        assert!(CheckpointError::Malformed { what: "window.count" }
            .to_string()
            .contains("window.count"));
        let io = GxError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert_eq!(io, GxError::Io(std::io::ErrorKind::NotFound));
        assert!(GxError::BoundedMemoryParallel { walkers: 4 }
            .to_string()
            .contains("single walker"));
        assert!(RuleError::BoundedMemoryCap { max_series_batches: 3 }
            .to_string()
            .contains("max_series_batches"));
    }
}
