//! Typed errors for the estimation front-end.
//!
//! Historically every entry point policed its domain with `assert!`, so a
//! bad configuration took the whole process down — acceptable in a
//! research harness, not in a serving layer. The [`crate::runner::Runner`]
//! paths return these enums instead; the old panicking `validate()`
//! methods delegate to the fallible `try_validate()` forms and panic with
//! the same messages, so existing callers (and their tests) see no
//! behavioral change.

use std::fmt;

/// Why an [`crate::EstimatorConfig`] is outside the supported domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `k` outside `3..=6`.
    UnsupportedK {
        /// The rejected graphlet size.
        k: usize,
    },
    /// `d` outside `1..=k`.
    DOutOfRange {
        /// The configuration's graphlet size.
        k: usize,
        /// The rejected walk dimension.
        d: usize,
    },
    /// `burn_in` beyond [`crate::EstimatorConfig::MAX_BURN_IN`].
    BurnInTooLarge {
        /// The rejected burn-in step count.
        burn_in: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::UnsupportedK { k } => write!(f, "k={k} unsupported (3..=6)"),
            Self::DOutOfRange { k, d } => write!(f, "d={d} must be in 1..=k (k={k})"),
            Self::BurnInTooLarge { burn_in } => write!(
                f,
                "burn_in={burn_in} is pathological (max {}) — the walk would never reach sampling",
                crate::EstimatorConfig::MAX_BURN_IN
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Why a [`crate::StoppingRule`] could never fire (or never checks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RuleError {
    /// `target_rel_ci ≤ 0` (or NaN): no width ever satisfies it.
    TargetNotPositive {
        /// The rejected target.
        target_rel_ci: f64,
    },
    /// `check_every == 0`: the run would never reach a convergence check.
    ZeroCheckEvery,
    /// `z ≤ 0` (or NaN): not a critical value.
    ZNotPositive {
        /// The rejected critical value.
        z: f64,
    },
    /// `batch_len == 0`: batch means need at least one step per batch.
    ZeroBatchLen,
    /// `min_batches < 2`: no variance estimate exists below two batches.
    MinBatchesTooSmall {
        /// The rejected minimum.
        min_batches: u64,
    },
    /// `min_concentration` outside `0..=1`.
    ConcentrationOutOfRange {
        /// The rejected floor.
        min_concentration: f64,
    },
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::TargetNotPositive { target_rel_ci } => {
                write!(f, "target_rel_ci must be positive (got {target_rel_ci})")
            }
            Self::ZeroCheckEvery => write!(f, "check_every must be at least 1"),
            Self::ZNotPositive { z } => write!(f, "z must be positive (got {z})"),
            Self::ZeroBatchLen => write!(f, "batch_len must be at least 1"),
            Self::MinBatchesTooSmall { min_batches } => {
                write!(f, "min_batches must be at least 2 (got {min_batches})")
            }
            Self::ConcentrationOutOfRange { min_concentration } => {
                write!(
                    f,
                    "min_concentration must be a concentration in 0..=1 (got {min_concentration})"
                )
            }
        }
    }
}

impl std::error::Error for RuleError {}

/// Everything a [`crate::runner::Runner`] run can reject up front.
///
/// Runner paths are panic-free on bad input: every invalid configuration,
/// stopping rule, fan-out, or walk pairing comes back as one of these.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GxError {
    /// The estimator configuration is out of domain.
    Config(ConfigError),
    /// The stopping rule is out of domain.
    Rule(RuleError),
    /// A fan-out of zero walkers was requested.
    NoWalkers,
    /// [`crate::runner::Runner::run`] was called before a budget was
    /// chosen with `.steps(n)` or `.until(rule)`.
    NoBudget,
    /// A caller-supplied walk's dimension does not match the
    /// configuration's `d`.
    WalkDimensionMismatch {
        /// The supplied walk's `d`.
        walk_d: usize,
        /// The configuration's `d`.
        cfg_d: usize,
    },
    /// A caller-supplied walk is a single chain: it cannot be fanned out
    /// over more than one walker.
    ParallelCustomWalk {
        /// The requested fan-out.
        walkers: usize,
    },
}

impl fmt::Display for GxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::Config(e) => write!(f, "invalid estimator configuration: {e}"),
            Self::Rule(e) => write!(f, "invalid stopping rule: {e}"),
            Self::NoWalkers => write!(f, "estimation needs at least one walker"),
            Self::NoBudget => {
                write!(f, "runner has no budget: call .steps(n) or .until(rule) before running")
            }
            Self::WalkDimensionMismatch { walk_d, cfg_d } => write!(
                f,
                "walk dimension must match configuration (walk d={walk_d}, config d={cfg_d})"
            ),
            Self::ParallelCustomWalk { walkers } => write!(
                f,
                "a caller-supplied walk is one chain; it cannot fan out over {walkers} walkers"
            ),
        }
    }
}

impl std::error::Error for GxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            Self::Rule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for GxError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

impl From<RuleError> for GxError {
    fn from(e: RuleError) -> Self {
        Self::Rule(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_keep_the_legacy_panic_substrings() {
        // The panicking validate() paths now delegate to try_validate()
        // and panic with `Display` — these substrings are load-bearing
        // for every pre-existing #[should_panic(expected = …)] test.
        assert!(ConfigError::UnsupportedK { k: 7 }.to_string().contains("unsupported"));
        assert!(ConfigError::DOutOfRange { k: 3, d: 4 }.to_string().contains("must be in 1..=k"));
        assert!(ConfigError::BurnInTooLarge { burn_in: 1 << 33 }
            .to_string()
            .contains("pathological"));
        assert!(RuleError::TargetNotPositive { target_rel_ci: 0.0 }
            .to_string()
            .contains("target_rel_ci"));
        assert!(RuleError::ZeroCheckEvery.to_string().contains("check_every"));
        assert!(RuleError::ConcentrationOutOfRange { min_concentration: 2.0 }
            .to_string()
            .contains("min_concentration must be a concentration"));
        assert!(GxError::NoWalkers.to_string().contains("at least one walker"));
        assert!(GxError::WalkDimensionMismatch { walk_d: 1, cfg_d: 2 }
            .to_string()
            .contains("walk dimension"));
    }

    #[test]
    fn error_trait_chains_sources() {
        use std::error::Error;
        let e = GxError::from(ConfigError::UnsupportedK { k: 9 });
        assert!(e.source().is_some());
        assert_eq!(e.source().unwrap().to_string(), "k=9 unsupported (3..=6)");
        let e = GxError::from(RuleError::ZeroBatchLen);
        assert!(e.source().unwrap().to_string().contains("batch_len"));
        assert!(GxError::NoBudget.source().is_none());
    }
}
