//! Algorithm 1: unbiased estimation of graphlet statistics.

use crate::config::EstimatorConfig;
use crate::css::CssWeights;
use crate::pie::pie_tilde;
use crate::result::Estimate;
use crate::window::NodeWindow;
use gx_graph::GraphAccess;
use gx_graphlets::{alpha::alpha_table, classify_mask, num_graphlets};
use gx_walks::{
    effective_degree, random_start_edge, random_start_node, random_start_state, rng_from_seed,
    G2Walk, GdWalk, SrwWalk, StateWalk, WalkRng,
};

/// Runs the estimator with a walk chosen by `cfg.d` (SRW on `G`, the O(1)
/// edge walk on `G(2)`, or the enumerating walk on `G(d ≥ 3)`), starting
/// from a random state drawn with `seed`.
///
/// `steps` is the sample budget n of Algorithm 1: the number of windows
/// scored, matching the paper's "random walk steps" (e.g. 20K in §6).
pub fn estimate<G: GraphAccess>(g: &G, cfg: &EstimatorConfig, steps: usize, seed: u64) -> Estimate {
    cfg.validate();
    let mut rng = rng_from_seed(seed);
    match cfg.d {
        1 => {
            let start = random_start_node(g, &mut rng);
            let walk = SrwWalk::new(g, start, cfg.non_backtracking);
            estimate_with_walk(g, cfg, walk, steps, rng)
        }
        2 => {
            let (u, v) = random_start_edge(g, &mut rng);
            let walk = G2Walk::new(g, u, v, cfg.non_backtracking);
            estimate_with_walk(g, cfg, walk, steps, rng)
        }
        _ => {
            let start = random_start_state(g, cfg.d, &mut rng);
            let walk = GdWalk::new(g, &start, cfg.non_backtracking);
            estimate_with_walk(g, cfg, walk, steps, rng)
        }
    }
}

/// Runs Algorithm 1 with a caller-supplied walk (any [`StateWalk`] whose
/// `d` matches `cfg.d`).
pub fn estimate_with_walk<G: GraphAccess, W: StateWalk>(
    g: &G,
    cfg: &EstimatorConfig,
    mut walk: W,
    steps: usize,
    mut rng: WalkRng,
) -> Estimate {
    cfg.validate();
    assert_eq!(walk.d(), cfg.d, "walk dimension must match configuration");
    let k = cfg.k;
    let l = cfg.l();
    let alphas = alpha_table(k, cfg.d);
    let m = num_graphlets(k);
    let mut raw = vec![0.0f64; m];
    let mut css = if cfg.css { Some(CssWeights::new(cfg.d)) } else { None };

    for _ in 0..cfg.burn_in {
        walk.step(&mut rng);
    }
    // Prime the window with the first l states (Algorithm 1 line 3).
    let mut window = NodeWindow::new(l, cfg.d);
    let deg = walk.state_degree();
    window.push(g, walk.state(), deg);
    for _ in 1..l {
        walk.step(&mut rng);
        let deg = walk.state_degree();
        window.push(g, walk.state(), deg);
    }

    let mut valid = 0usize;
    for t in 0..steps {
        if window.is_valid_sample() {
            let (mask, nodes) = window.sample();
            let id = classify_mask(k, mask)
                .expect("a window covering k distinct nodes induces a connected subgraph");
            let idx = id.index as usize;
            valid += 1;
            let weight = if l == 1 {
                // π̃_e = d_X (Theorem 2, l = 1); CSS coincides.
                let deg = window.states().next().expect("l = 1").degree as usize;
                let deg = effective_degree(deg, cfg.non_backtracking) as f64;
                1.0 / (alphas[idx] as f64 * deg)
            } else if let Some(css) = css.as_mut() {
                1.0 / css.sampling_probability(g, mask, nodes, cfg.non_backtracking)
            } else {
                debug_assert!(alphas[idx] > 0, "sampled a type with α = 0");
                1.0 / (alphas[idx] as f64 * pie_tilde(&window, cfg.non_backtracking))
            };
            raw[idx] += weight;
        }
        // Step and slide (Algorithm 1 lines 8–10) — except after the last
        // scored window, where stepping would waste an API call.
        if t + 1 < steps {
            walk.step(&mut rng);
            let deg = walk.state_degree();
            window.push(g, walk.state(), deg);
        }
    }
    Estimate { config: cfg.clone(), steps, valid_samples: valid, raw_scores: raw }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gx_exact::exact_counts;
    use gx_graph::generators::{classic, erdos_renyi_gnm, holme_kim};
    use gx_graph::Graph;

    /// Asserts that the estimator converges to the exact concentrations
    /// on `g` within `tol` (absolute), for the given configuration.
    fn assert_converges(g: &Graph, cfg: &EstimatorConfig, steps: usize, seed: u64, tol: f64) {
        let exact = exact_counts(g, cfg.k).concentrations();
        let est = estimate(g, cfg, steps, seed).concentrations();
        for (i, (e, x)) in est.iter().zip(&exact).enumerate() {
            assert!(
                (e - x).abs() < tol,
                "{} type {}: estimated {e:.4}, exact {x:.4} (tol {tol})",
                cfg.name(),
                i + 1,
            );
        }
    }

    #[test]
    fn srw1_converges_on_figure1_graph() {
        let g = classic::paper_figure1();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        assert_converges(&g, &cfg, 60_000, 1, 0.02);
    }

    #[test]
    fn srw1_variants_converge_k3() {
        let g = classic::lollipop(5, 4);
        for (css, nb) in [(false, false), (true, false), (false, true), (true, true)] {
            let cfg = EstimatorConfig { k: 3, d: 1, css, non_backtracking: nb, burn_in: 0 };
            assert_converges(&g, &cfg, 80_000, 11, 0.02);
        }
    }

    #[test]
    fn srw2_is_psrw_for_k3() {
        let g = classic::lollipop(5, 4);
        let cfg = EstimatorConfig::psrw(3);
        assert_converges(&g, &cfg, 80_000, 5, 0.02);
    }

    #[test]
    fn k4_configurations_converge_on_er() {
        use rand::SeedableRng;
        let mut rng = rand_pcg::Pcg64::seed_from_u64(42);
        let g = erdos_renyi_gnm(60, 180, &mut rng);
        let g = gx_graph::connectivity::largest_connected_component(&g).0;
        for cfg in [
            EstimatorConfig { k: 4, d: 2, ..Default::default() },
            EstimatorConfig { k: 4, d: 2, css: true, ..Default::default() },
            EstimatorConfig { k: 4, d: 2, non_backtracking: true, ..Default::default() },
            EstimatorConfig::psrw(4),
        ] {
            assert_converges(&g, &cfg, 150_000, 19, 0.03);
        }
    }

    #[test]
    fn k5_srw2css_converges_on_small_dense_graph() {
        use rand::SeedableRng;
        let mut rng = rand_pcg::Pcg64::seed_from_u64(9);
        let g = holme_kim(40, 4, 0.5, &mut rng);
        let cfg = EstimatorConfig { k: 5, d: 2, css: true, ..Default::default() };
        assert_converges(&g, &cfg, 200_000, 23, 0.04);
    }

    #[test]
    fn d_equals_k_subgraph_walk_converges() {
        // The SRW-on-G(k) special case of [36] (l = 1).
        let g = classic::lollipop(5, 3);
        let cfg = EstimatorConfig { k: 3, d: 3, ..Default::default() };
        assert_converges(&g, &cfg, 60_000, 31, 0.03);
    }

    #[test]
    fn estimator_is_deterministic_given_seed() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 4, d: 2, css: true, ..Default::default() };
        let a = estimate(&g, &cfg, 5_000, 77);
        let b = estimate(&g, &cfg, 5_000, 77);
        assert_eq!(a.raw_scores, b.raw_scores);
        assert_eq!(a.valid_samples, b.valid_samples);
        let c = estimate(&g, &cfg, 5_000, 78);
        assert_ne!(a.raw_scores, c.raw_scores);
    }

    #[test]
    fn star_has_zero_alpha_types_unsampled() {
        // On a star graph, SRW2 for k = 4 sees only 3-stars; the estimator
        // must put the whole mass there.
        let g = classic::star(12);
        let cfg = EstimatorConfig { k: 4, d: 2, ..Default::default() };
        let est = estimate(&g, &cfg, 20_000, 3);
        let c = est.concentrations();
        assert!((c[1] - 1.0).abs() < 1e-12, "3-star concentration {c:?}");
    }

    #[test]
    fn valid_fraction_is_sane() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let est = estimate(&g, &cfg, 10_000, 5);
        assert!(est.valid_fraction() > 0.5);
        assert!(est.valid_fraction() <= 1.0);
        // NB improves the valid fraction (§4.2's whole point).
        let cfg_nb = EstimatorConfig { k: 3, d: 1, non_backtracking: true, ..Default::default() };
        let est_nb = estimate(&g, &cfg_nb, 10_000, 5);
        assert!(est_nb.valid_fraction() > est.valid_fraction());
    }

    #[test]
    fn burn_in_only_shifts_the_stream() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, burn_in: 100, ..Default::default() };
        let est = estimate(&g, &cfg, 10_000, 5);
        assert_eq!(est.steps, 10_000);
        assert!(est.valid_samples > 0);
    }

    #[test]
    #[should_panic(expected = "walk dimension")]
    fn walk_dimension_must_match() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 2, ..Default::default() };
        let walk = SrwWalk::new(&g, 0, false);
        let _ = estimate_with_walk(&g, &cfg, walk, 10, rng_from_seed(1));
    }
}
