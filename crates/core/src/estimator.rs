//! Algorithm 1: unbiased estimation of graphlet statistics.

use crate::accuracy::{BatchStats, BurnInReport, ScoreAccumulator, StoppingRule};
use crate::checkpoint::{put_f64, put_u128, put_u32, put_u8, put_usize, Reader};
use crate::config::EstimatorConfig;
use crate::css::CssWeights;
use crate::error::CheckpointError;
use crate::pie::pie_tilde;
use crate::result::Estimate;
use crate::runner::Runner;
use crate::window::NodeWindow;
use gx_graph::{GraphAccess, NodeId};
use gx_graphlets::{
    alpha::alpha_table, classify_mask, classify_table, num_graphlets, NOT_A_GRAPHLET,
};
use gx_walks::{
    effective_degree, export_rng_state, import_rng_state, random_start_edge, random_start_node,
    random_start_state, rng_from_seed, BatchWalk, G2Walk, GdWalk, SrwWalk, StateWalk, WalkRng,
};

/// Runs the estimator with a walk chosen by `cfg.d` (SRW on `G`, the O(1)
/// edge walk on `G(2)`, or the enumerating walk on `G(d ≥ 3)`), starting
/// from a random state drawn with `seed`.
///
/// `steps` is the sample budget n of Algorithm 1: the number of windows
/// scored, matching the paper's "random walk steps" (e.g. 20K in §6).
///
/// This is the stable shorthand for
/// [`Runner::new(cfg).steps(n).seed(s)`](crate::runner::Runner) — it
/// delegates to the runner (golden-bit tests pin zero estimate drift)
/// and panics on invalid input where the runner returns
/// [`crate::GxError`].
pub fn estimate<G: GraphAccess>(g: &G, cfg: &EstimatorConfig, steps: usize, seed: u64) -> Estimate {
    match Runner::new(cfg.clone()).steps(steps).seed(seed).run_local(g) {
        Ok(est) => est,
        Err(e) => panic!("{e}"),
    }
}

/// Runs the estimator until [`StoppingRule::converged`] holds at a
/// convergence check (every `rule.check_every` scored windows) or the
/// `rule.max_steps` budget is exhausted — adaptive stopping on the
/// batch-means confidence intervals of [`crate::accuracy`].
///
/// The scored-window stream is identical to [`estimate`]'s for the same
/// `(g, cfg, seed)` — scoring consumes no randomness — so a run that
/// exhausts `max_steps` returns bit-identical `raw_scores` to
/// `estimate(g, cfg, max_steps, seed)`.
///
/// Stable shorthand for
/// [`Runner::new(cfg).until(rule).seed(s)`](crate::runner::Runner);
/// panics on invalid input where the runner returns [`crate::GxError`].
pub fn estimate_until<G: GraphAccess>(
    g: &G,
    cfg: &EstimatorConfig,
    seed: u64,
    rule: &StoppingRule,
) -> Estimate {
    match Runner::new(cfg.clone()).until(rule.clone()).seed(seed).run_local(g) {
        Ok(est) => est,
        Err(e) => panic!("{e}"),
    }
}

/// Builds every process-wide table the configuration will touch (α,
/// classification, dense CSS), so parallel walkers never serialize on a
/// cold `OnceLock` and the hot loop starts warm from step one.
pub(crate) fn prewarm(cfg: &EstimatorConfig) {
    let _ = alpha_table(cfg.k, cfg.d);
    let _ = classify_table(cfg.k);
    if cfg.css && cfg.k <= 5 {
        let _ = CssWeights::new(cfg.k, cfg.d);
    }
}

/// The per-step scoring state of Algorithm 1, hoisted out of the loop:
/// the α row, the resolved dense classification table, the CSS helper and
/// the raw accumulators. [`Scorer::score`] is the fused
/// mask-extract → classify → weight → accumulate path — no intermediate
/// structs, no per-step table resolution, no allocation.
struct Scorer {
    k: usize,
    l: usize,
    non_backtracking: bool,
    alphas: &'static [u64],
    /// Dense `mask → paper index` byte table (k ≤ 5); `None` falls back
    /// to the two-step canonical classification (k = 6).
    dense_classify: Option<&'static [u8]>,
    css: Option<CssWeights>,
    /// Raw scores in a fixed stack array (112 covers every k ≤ 6), so the
    /// per-sample accumulate is an array store with no heap indirection.
    raw: [f64; MAX_TYPES],
    valid: usize,
    /// Batch-means error-bar accumulator: one tick per scored window
    /// (valid or not), reading batch means off `raw` snapshots — see
    /// [`crate::accuracy`]. Adds one increment and one predictable
    /// branch to the per-step path.
    acc: ScoreAccumulator,
}

/// Upper bound on `num_graphlets(k)` for supported k (112 at k = 6).
const MAX_TYPES: usize = 112;

impl Scorer {
    fn new(cfg: &EstimatorConfig, batch_len: usize, max_series_batches: usize) -> Self {
        debug_assert!(num_graphlets(cfg.k) <= MAX_TYPES);
        Self {
            k: cfg.k,
            l: cfg.l(),
            non_backtracking: cfg.non_backtracking,
            alphas: alpha_table(cfg.k, cfg.d),
            dense_classify: classify_table(cfg.k),
            css: if cfg.css { Some(CssWeights::new(cfg.k, cfg.d)) } else { None },
            raw: [0.0f64; MAX_TYPES],
            valid: 0,
            acc: ScoreAccumulator::bounded(num_graphlets(cfg.k), batch_len, max_series_batches),
        }
    }

    /// Serializes the mutable scoring state (raw scores, valid count,
    /// error-bar accumulator); the tables are rebuilt from the config at
    /// decode time.
    fn encode_into(&self, buf: &mut Vec<u8>) {
        let types = num_graphlets(self.k);
        put_usize(buf, self.valid);
        for &x in &self.raw[..types] {
            put_f64(buf, x);
        }
        self.acc.encode_into(buf);
    }

    /// Inverse of [`Scorer::encode_into`].
    fn decode_from(r: &mut Reader<'_>, cfg: &EstimatorConfig) -> Result<Self, CheckpointError> {
        let types = num_graphlets(cfg.k);
        let valid = r.usize("scorer.valid")?;
        let mut raw = [0.0f64; MAX_TYPES];
        for slot in raw.iter_mut().take(types) {
            *slot = r.f64("scorer.raw")?;
        }
        let acc = ScoreAccumulator::decode_from(r)?;
        if acc.stats().types() != types {
            return Err(CheckpointError::Malformed { what: "scorer.acc.types" });
        }
        Ok(Self {
            k: cfg.k,
            l: cfg.l(),
            non_backtracking: cfg.non_backtracking,
            alphas: alpha_table(cfg.k, cfg.d),
            dense_classify: classify_table(cfg.k),
            css: if cfg.css { Some(CssWeights::new(cfg.k, cfg.d)) } else { None },
            raw,
            valid,
            acc,
        })
    }

    /// Packs the accumulated state into an [`Estimate`] for a run that
    /// scored `steps` windows.
    fn finish(self, cfg: &EstimatorConfig, steps: usize) -> Estimate {
        Estimate {
            config: cfg.clone(),
            steps,
            valid_samples: self.valid,
            raw_scores: self.raw[..num_graphlets(cfg.k)].to_vec(),
            accuracy: Some(self.acc.into_stats()),
            adaptive: None,
        }
    }

    /// Scores the current window if it is a valid sample (Algorithm 1
    /// lines 4–7). Every call — valid window or not — is one step of the
    /// error-bar accumulator's batch stream.
    #[inline(always)]
    fn score<G: GraphAccess>(&mut self, g: &G, window: &NodeWindow) {
        if !window.is_valid_sample() {
            self.acc.tick(&self.raw);
            return;
        }
        let (mask, _nodes) = window.sample();
        let idx = match self.dense_classify {
            Some(table) => {
                let id = table[mask as usize];
                assert_ne!(
                    id, NOT_A_GRAPHLET,
                    "a window covering k distinct nodes induces a connected subgraph"
                );
                id as usize
            }
            None => {
                classify_mask(self.k, mask)
                    .expect("a window covering k distinct nodes induces a connected subgraph")
                    .index as usize
            }
        };
        self.valid += 1;
        let weight = if self.l == 1 {
            // π̃_e = d_X (Theorem 2, l = 1); CSS coincides.
            let deg = window.states().next().expect("l = 1").degree as usize;
            let deg = effective_degree(deg, self.non_backtracking) as f64;
            1.0 / (self.alphas[idx] as f64 * deg)
        } else if let Some(css) = self.css.as_mut() {
            1.0 / css.sampling_probability_windowed(g, mask, window, self.non_backtracking)
        } else {
            debug_assert!(self.alphas[idx] > 0, "sampled a type with α = 0");
            1.0 / (self.alphas[idx] as f64 * pie_tilde(window, self.non_backtracking))
        };
        self.raw[idx] += weight;
        self.acc.tick(&self.raw);
    }
}

/// One fused iteration of Algorithm 1's main loop: advance the walk,
/// score the current window, then slide the window over the new state
/// (lines 4–10). The advance is skipped after the last scored window,
/// where stepping would waste an API call.
///
/// The walk steps *before* the window is scored — legal because scoring
/// consumes no randomness and never touches the walk, so the reordering
/// is observationally identical to score-then-step — which puts the
/// whole scoring computation between choosing the next node and probing
/// its adjacency in `push`, giving the out-of-order core independent
/// work to overlap that (cold, data-dependent) adjacency fetch with.
// gx-lint: no_alloc
#[inline(always)]
fn step_and_accumulate<G: GraphAccess, W: StateWalk>(
    g: &G,
    walk: &mut W,
    rng: &mut WalkRng,
    window: &mut NodeWindow,
    scorer: &mut Scorer,
    advance: bool,
) {
    if advance {
        walk.step(rng);
    }
    scorer.score(g, window);
    if advance {
        let deg = walk.state_degree();
        window.push(g, walk.state(), deg);
    }
}

/// Runs Algorithm 1 with a caller-supplied walk (any [`StateWalk`] whose
/// `d` matches `cfg.d`).
///
/// Stable shorthand for
/// [`Runner::new(cfg).steps(n).run_with_walk`](crate::runner::Runner::run_with_walk);
/// panics on invalid input (including a walk/config dimension mismatch)
/// where the runner returns [`crate::GxError`].
pub fn estimate_with_walk<G: GraphAccess, W: StateWalk>(
    g: &G,
    cfg: &EstimatorConfig,
    walk: W,
    steps: usize,
    rng: WalkRng,
) -> Estimate {
    match Runner::new(cfg.clone()).steps(steps).run_with_walk(g, walk, rng) {
        Ok(est) => est,
        Err(e) => panic!("{e}"),
    }
}

/// Burn-in plus the first `l` states (Algorithm 1 line 3): the shared
/// preamble of the fixed-budget and adaptive runners.
fn prime_window<G: GraphAccess, W: StateWalk>(
    g: &G,
    cfg: &EstimatorConfig,
    walk: &mut W,
    rng: &mut WalkRng,
) -> NodeWindow {
    for _ in 0..cfg.burn_in {
        walk.step(rng);
    }
    let l = cfg.l();
    let mut window = NodeWindow::new(l, cfg.d);
    let deg = walk.state_degree();
    window.push(g, walk.state(), deg);
    for _ in 1..l {
        walk.step(rng);
        let deg = walk.state_degree();
        window.push(g, walk.state(), deg);
    }
    window
}

/// A walker's persistent chain state: walk + RNG + window + scorer,
/// resumable in increments. This is the unit the adaptive runners are
/// built on — a chain scores `n` more windows per [`WalkSession::run`]
/// call with *no* re-burn-in between rounds, so the round-based parallel
/// coordinator ([`crate::estimate_until_parallel`]) pays priming once
/// per walker, not once per round.
///
/// The scored-window stream is identical to [`estimate_with_walk`]'s
/// for the same `(g, cfg, walk, rng)`: the walk only advances *between*
/// scored windows (lazily, before the next score), so a session is
/// never stepped past its last scored window — splitting a budget
/// across `run` calls cannot change a single sampled window.
pub(crate) struct WalkSession<'g, G: GraphAccess, W: StateWalk> {
    g: &'g G,
    walk: W,
    rng: WalkRng,
    window: NodeWindow,
    scorer: Scorer,
    scored: usize,
}

impl<'g, G: GraphAccess, W: StateWalk> WalkSession<'g, G, W> {
    /// Primes the window (burn-in + first `l` states) and readies the
    /// session to score its first window.
    pub(crate) fn from_parts(
        g: &'g G,
        cfg: &EstimatorConfig,
        mut walk: W,
        mut rng: WalkRng,
        batch_len: usize,
        max_series_batches: usize,
    ) -> Self {
        assert_eq!(walk.d(), cfg.d, "walk dimension must match configuration");
        let scorer = Scorer::new(cfg, batch_len, max_series_batches);
        let window = prime_window(g, cfg, &mut walk, &mut rng);
        Self { g, walk, rng, window, scorer, scored: 0 }
    }

    /// Serializes everything of the session except the walk position
    /// (the flavor-specific part [`AnySession::encode_into`] owns): RNG
    /// raw state, scored count, scorer, window.
    fn encode_common(&self, buf: &mut Vec<u8>) {
        let (state, increment) = export_rng_state(&self.rng);
        put_u128(buf, state);
        put_u128(buf, increment);
        put_usize(buf, self.scored);
        self.scorer.encode_into(buf);
        self.window.encode_into(buf);
    }

    /// Rebuilds a session around an already-validated resumed walk.
    fn from_decoded(
        g: &'g G,
        cfg: &EstimatorConfig,
        walk: W,
        r: &mut Reader<'_>,
    ) -> Result<Self, CheckpointError> {
        let state = r.u128("session.rng.state")?;
        let increment = r.u128("session.rng.increment")?;
        if increment & 1 == 0 {
            // A PCG increment is always odd; an even one is a format
            // confusion (and from_raw_state would debug-panic on it).
            return Err(CheckpointError::Malformed { what: "session.rng.increment" });
        }
        let rng = import_rng_state(state, increment);
        let scored = r.usize("session.scored")?;
        let scorer = Scorer::decode_from(r, cfg)?;
        let window = NodeWindow::decode_from(r)?;
        if window.dims() != (cfg.l(), cfg.d) {
            return Err(CheckpointError::Malformed { what: "session.window.dims" });
        }
        Ok(Self { g, walk, rng, window, scorer, scored })
    }

    /// Scores `n` more windows, advancing the walk between them — the
    /// peeled [`step_and_accumulate`] loop of Algorithm 1, resumable:
    /// the body carries no `last step?` branch, and the session is left
    /// un-advanced past its last scored window, so a finished run wastes
    /// no API call and a resumed one advances lazily (the one unfused
    /// boundary per `run` call) before re-entering the fused loop.
    pub(crate) fn run(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        if self.scored > 0 {
            // Resume: slide over the state the previous call stopped at.
            self.walk.step(&mut self.rng);
            let deg = self.walk.state_degree();
            self.window.push(self.g, self.walk.state(), deg);
        }
        for _ in 1..n {
            step_and_accumulate(
                self.g,
                &mut self.walk,
                &mut self.rng,
                &mut self.window,
                &mut self.scorer,
                true,
            );
        }
        step_and_accumulate(
            self.g,
            &mut self.walk,
            &mut self.rng,
            &mut self.window,
            &mut self.scorer,
            false,
        );
        self.scored += n;
    }

    pub(crate) fn stats(&self) -> &BatchStats {
        self.scorer.acc.stats()
    }

    pub(crate) fn into_estimate(self, cfg: &EstimatorConfig) -> Estimate {
        let scored = self.scored;
        self.scorer.finish(cfg, scored)
    }
}

/// Per-walker bookkeeping for [`run_walk_batch`]'s lock-step loop: the
/// remaining tick budget, whether the first tick's score is skipped
/// (resume semantics — the scalar path's resume block pushes without
/// scoring), and the staged-but-uncommitted choice whose target the
/// previous tick prefetched.
struct BatchLane<C> {
    steps_left: usize,
    skip_score: bool,
    pending: Option<C>,
    /// Scratch carried between the push sub-passes of one tick: the
    /// state degree read at admission, and the first acquired node's
    /// window slot (feeds the G(2) degree-reuse in the last sub-pass).
    push_deg: usize,
    push_slot: usize,
}

/// Advances a group of sessions in lock step, one walk step per lane per
/// iteration, with software prefetches staged one step ahead.
///
/// Produces *bit-identical* per-walker streams to calling
/// [`WalkSession::run`] on each lane in isolation: per lane the RNG draw
/// order, score/push interleaving, and resume semantics are exactly the
/// scalar schedule's —
///
/// * fresh lane (`scored == 0`, budget n): `n − 1` commits, each scoring
///   the pre-push window, plus the trailing lone score;
/// * resumed lane (`scored > 0`): `n` commits with the *first* tick's
///   score skipped (the scalar resume block slides without scoring);
///
/// and the only reordering vs the scalar loop — drawing tick *j+1*'s
/// choice before tick *j*'s window push — is observationally invisible
/// because `choose` touches only walk + RNG while `push`/`score` touch
/// only window + scorer. What the lock-step form buys is memory-level
/// parallelism: while lane *i* runs its window/classify/CSS work, the
/// other lanes' next CSR offset and adjacency lines are already in
/// flight from their `prefetch_next`/`prefetch_entering` hints.
pub(crate) fn run_walk_batch<'g, G: GraphAccess, W: BatchWalk>(
    lanes: &mut [(&mut WalkSession<'g, G, W>, usize)],
) {
    let mut states: Vec<BatchLane<W::Choice>> = Vec::with_capacity(lanes.len());
    for (s, n) in lanes.iter_mut() {
        let n = *n;
        // A fresh lane scores its primed window before the first step, so
        // n windows need only n − 1 steps; a resumed lane must first
        // slide over the state the previous call stopped at.
        let steps_left = if n == 0 {
            0
        } else if s.scored > 0 {
            n
        } else {
            n - 1
        };
        let mut lane = BatchLane {
            steps_left,
            skip_score: s.scored > 0,
            pending: None,
            push_deg: 0,
            push_slot: 0,
        };
        if steps_left > 0 {
            let c = s.walk.choose(&mut s.rng);
            s.walk.prefetch_next(&c);
            lane.pending = Some(c);
        }
        states.push(lane);
    }
    batched_ticks(lanes, &mut states);
    for (s, n) in lanes.iter_mut() {
        if *n > 0 {
            // Trailing lone score (the scalar loop's advance-less tail).
            s.scorer.score(s.g, &s.window);
            s.scored += *n;
        }
    }
}

/// The hot tick loop of [`run_walk_batch`]. One tick advances every live
/// lane one step, in three lock-step phases over the lane array:
///
/// 1. **commit** — apply last tick's staged choice and hint the lines
///    the lane's upcoming `push` will probe. The commit's own loads were
///    prefetched a full tick ago, so this pass retires without stalling.
/// 2. **choose** — draw next tick's transition for every lane, back to
///    back, and prefetch what its commit will load. Each draw's
///    data-dependent neighbor read is independent of every other
///    lane's, so up to B cache misses are in flight at once; this
///    cross-lane overlap (the phase split keeps the draws within one
///    out-of-order window) is most of the batched win on DRAM-resident
///    graphs — a single interleaved loop puts a full lane-segment of
///    window/CSS work between consecutive draws and overlaps almost
///    nothing.
/// 3. **score + push** — classification and CSS, then window
///    maintenance as three further sub-passes (ring admission, first
///    acquire, remaining acquires), all against lines phases 1 and 2
///    already requested.
///
/// Per lane the phases preserve the scalar op order on every piece of
/// shared state: `choose` touches only walk + RNG, `score`/`push` only
/// window + scorer, so hoisting a lane's next draw above its score is
/// unobservable (bit-identity is pinned by the `batched_identity`
/// suite). Lanes with unequal budgets simply drop out of the rotation
/// as they finish.
// gx-lint: no_alloc
#[inline(always)]
fn batched_ticks<'g, G: GraphAccess, W: BatchWalk>(
    lanes: &mut [(&mut WalkSession<'g, G, W>, usize)],
    states: &mut [BatchLane<W::Choice>],
) {
    loop {
        let mut live = false;
        for ((s, _), lane) in lanes.iter_mut().zip(states.iter_mut()) {
            if lane.steps_left == 0 {
                continue;
            }
            live = true;
            let Some(c) = lane.pending.take() else {
                // Unreachable by construction — a live lane always has a
                // staged choice; retire the lane rather than panic.
                lane.steps_left = 0;
                continue;
            };
            s.walk.commit(c);
            s.walk.prefetch_entering(&c);
        }
        if !live {
            break;
        }
        for ((s, _), lane) in lanes.iter_mut().zip(states.iter_mut()) {
            if lane.steps_left > 1 {
                let next = s.walk.choose(&mut s.rng);
                s.walk.prefetch_next(&next);
                lane.pending = Some(next);
            }
        }
        for ((s, _), lane) in lanes.iter_mut().zip(states.iter_mut()) {
            if lane.steps_left == 0 {
                continue;
            }
            if lane.skip_score {
                lane.skip_score = false;
            } else {
                s.scorer.score(s.g, &s.window);
            }
        }
        // Push as three sub-passes mirroring the pieces `NodeWindow::push`
        // is composed of. A whole push is hundreds of µops per lane —
        // monolithic, it fills the out-of-order window with one or two
        // lanes' work and serializes their probe chains; split, each
        // sub-pass body is small enough that the cold acquire probes of
        // many lanes (each a serial binary-search chain into an adjacency
        // list) are in flight together. Per lane the operation sequence
        // is exactly `push`'s, so bit-identity is untouched. The budget
        // decrement lives in the last sub-pass, at the end of the tick,
        // so every phase above sees the pre-step value.
        for ((s, _), lane) in lanes.iter_mut().zip(states.iter_mut()) {
            if lane.steps_left == 0 {
                continue;
            }
            lane.push_deg = s.walk.state_degree();
            s.window.push_admit(s.walk.state(), lane.push_deg);
        }
        for ((s, _), lane) in lanes.iter_mut().zip(states.iter_mut()) {
            if lane.steps_left == 0 {
                continue;
            }
            lane.push_slot = s.window.push_acquire_first(s.g, s.walk.state(), lane.push_deg);
        }
        for ((s, _), lane) in lanes.iter_mut().zip(states.iter_mut()) {
            if lane.steps_left == 0 {
                continue;
            }
            s.window.push_acquire_rest(s.g, s.walk.state(), lane.push_deg, lane.push_slot);
            lane.steps_left -= 1;
        }
    }
}

/// [`WalkSession`] with the walk flavor resolved at runtime from
/// `cfg.d`, replaying [`estimate`]'s exact start-state and RNG protocol
/// — the persistent-chain form of the dispatch in [`estimate_batch`].
pub(crate) enum AnySession<'g, G: GraphAccess> {
    D1(WalkSession<'g, G, SrwWalk<'g, G>>),
    D2(WalkSession<'g, G, G2Walk<'g, G>>),
    Dn(WalkSession<'g, G, GdWalk<'g, G>>),
}

impl<'g, G: GraphAccess> AnySession<'g, G> {
    pub(crate) fn new(
        g: &'g G,
        cfg: &EstimatorConfig,
        seed: u64,
        batch_len: usize,
        max_series_batches: usize,
    ) -> Self {
        let cap = max_series_batches;
        let mut rng = rng_from_seed(seed);
        match cfg.d {
            1 => {
                let start = random_start_node(g, &mut rng);
                let walk = SrwWalk::new(g, start, cfg.non_backtracking);
                Self::D1(WalkSession::from_parts(g, cfg, walk, rng, batch_len, cap))
            }
            2 => {
                let (u, v) = random_start_edge(g, &mut rng);
                let walk = G2Walk::new(g, u, v, cfg.non_backtracking);
                Self::D2(WalkSession::from_parts(g, cfg, walk, rng, batch_len, cap))
            }
            _ => {
                let start = random_start_state(g, cfg.d, &mut rng);
                let walk = GdWalk::new(g, &start, cfg.non_backtracking);
                Self::Dn(WalkSession::from_parts(g, cfg, walk, rng, batch_len, cap))
            }
        }
    }

    /// Serializes the walker's full chain state: walk position (with the
    /// non-backtracking memory), RNG raw state, scored count, scorer and
    /// window — the per-walker payload of a
    /// [`crate::runner::RunHandle::checkpoint`].
    pub(crate) fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Self::D1(s) => {
                put_u8(buf, 1);
                put_u32(buf, s.walk.current());
                match s.walk.prev_node() {
                    Some(p) => {
                        put_u8(buf, 1);
                        put_u32(buf, p);
                    }
                    None => put_u8(buf, 0),
                }
                s.encode_common(buf);
            }
            Self::D2(s) => {
                put_u8(buf, 2);
                let (u, v) = s.walk.current();
                put_u32(buf, u);
                put_u32(buf, v);
                match s.walk.prev_edge() {
                    Some((pu, pv)) => {
                        put_u8(buf, 1);
                        put_u32(buf, pu);
                        put_u32(buf, pv);
                    }
                    None => put_u8(buf, 0),
                }
                s.encode_common(buf);
            }
            Self::Dn(s) => {
                put_u8(buf, 3);
                let st = s.walk.state().to_vec();
                put_usize(buf, st.len());
                for &v in &st {
                    put_u32(buf, v);
                }
                match s.walk.prev_state() {
                    Some(p) => {
                        put_u8(buf, 1);
                        for &v in p {
                            put_u32(buf, v);
                        }
                    }
                    None => put_u8(buf, 0),
                }
                s.encode_common(buf);
            }
        }
    }

    /// Inverse of [`AnySession::encode_into`]: validates the walk
    /// position against the offered graph (node ranges, edge existence,
    /// connectivity — every invariant the walk constructors would
    /// otherwise *assert*) so a checksum-valid but inconsistent payload
    /// is a typed [`CheckpointError`], never a panic.
    pub(crate) fn decode_from(
        r: &mut Reader<'_>,
        g: &'g G,
        cfg: &EstimatorConfig,
    ) -> Result<Self, CheckpointError> {
        let tag = r.u8("session.tag")?;
        let expected = match cfg.d {
            1 => 1,
            2 => 2,
            _ => 3,
        };
        if tag != expected {
            return Err(CheckpointError::Malformed { what: "session.tag" });
        }
        match tag {
            1 => {
                let cur = decode_node(r, g, "walk.current")?;
                if g.degree(cur) == 0 {
                    return Err(CheckpointError::Malformed { what: "walk.current" });
                }
                let prev = match r.u8("walk.prev.tag")? {
                    0 => None,
                    1 => Some(decode_node(r, g, "walk.prev")?),
                    _ => return Err(CheckpointError::Malformed { what: "walk.prev.tag" }),
                };
                let walk = SrwWalk::resume(g, cur, prev, cfg.non_backtracking);
                Ok(Self::D1(WalkSession::from_decoded(g, cfg, walk, r)?))
            }
            2 => {
                let u = decode_node(r, g, "walk.current")?;
                let v = decode_node(r, g, "walk.current")?;
                if !g.has_edge(u, v) {
                    return Err(CheckpointError::Malformed { what: "walk.current" });
                }
                let prev = match r.u8("walk.prev.tag")? {
                    0 => None,
                    1 => {
                        let pu = decode_node(r, g, "walk.prev")?;
                        let pv = decode_node(r, g, "walk.prev")?;
                        if !g.has_edge(pu, pv) {
                            return Err(CheckpointError::Malformed { what: "walk.prev" });
                        }
                        Some((pu, pv))
                    }
                    _ => return Err(CheckpointError::Malformed { what: "walk.prev.tag" }),
                };
                let walk = G2Walk::resume(g, (u, v), prev, cfg.non_backtracking);
                Ok(Self::D2(WalkSession::from_decoded(g, cfg, walk, r)?))
            }
            _ => {
                let d = r.count(8, "walk.state.len")?;
                if d != cfg.d {
                    return Err(CheckpointError::Malformed { what: "walk.state.len" });
                }
                let cur = decode_state(r, g, d, "walk.current")?;
                if !subset_connected(g, &cur) {
                    return Err(CheckpointError::Malformed { what: "walk.current" });
                }
                let prev = match r.u8("walk.prev.tag")? {
                    0 => None,
                    1 => Some(decode_state(r, g, d, "walk.prev")?),
                    _ => return Err(CheckpointError::Malformed { what: "walk.prev.tag" }),
                };
                let walk = GdWalk::resume(g, &cur, prev.as_deref(), cfg.non_backtracking);
                Ok(Self::Dn(WalkSession::from_decoded(g, cfg, walk, r)?))
            }
        }
    }

    pub(crate) fn run(&mut self, n: usize) {
        match self {
            Self::D1(s) => s.run(n),
            Self::D2(s) => s.run(n),
            Self::Dn(s) => s.run(n),
        }
    }

    /// Runs a group of sessions in lock step via [`run_walk_batch`],
    /// dispatching once on the leading session's walk flavor (a runner's
    /// sessions all share `cfg.d`, so a group is always homogeneous).
    /// Any session of a different flavor — never produced in-tree — is
    /// defensively run on the scalar path instead.
    pub(crate) fn run_batch(group: &mut [(&mut Self, usize)]) {
        let Some((first, _)) = group.first() else {
            return;
        };
        match first {
            Self::D1(_) => {
                let mut lanes = Vec::with_capacity(group.len());
                for (s, n) in group.iter_mut() {
                    match &mut **s {
                        Self::D1(inner) => lanes.push((inner, *n)),
                        other => other.run(*n),
                    }
                }
                run_walk_batch(&mut lanes);
            }
            Self::D2(_) => {
                let mut lanes = Vec::with_capacity(group.len());
                for (s, n) in group.iter_mut() {
                    match &mut **s {
                        Self::D2(inner) => lanes.push((inner, *n)),
                        other => other.run(*n),
                    }
                }
                run_walk_batch(&mut lanes);
            }
            Self::Dn(_) => {
                let mut lanes = Vec::with_capacity(group.len());
                for (s, n) in group.iter_mut() {
                    match &mut **s {
                        Self::Dn(inner) => lanes.push((inner, *n)),
                        other => other.run(*n),
                    }
                }
                run_walk_batch(&mut lanes);
            }
        }
    }

    pub(crate) fn stats(&self) -> &BatchStats {
        match self {
            Self::D1(s) => s.stats(),
            Self::D2(s) => s.stats(),
            Self::Dn(s) => s.stats(),
        }
    }

    /// Raw-score accumulator (all tracked types).
    pub(crate) fn raw(&self) -> &[f64] {
        let (scorer, types) = match self {
            Self::D1(s) => (&s.scorer, num_graphlets(s.scorer.k)),
            Self::D2(s) => (&s.scorer, num_graphlets(s.scorer.k)),
            Self::Dn(s) => (&s.scorer, num_graphlets(s.scorer.k)),
        };
        &scorer.raw[..types]
    }

    pub(crate) fn valid(&self) -> usize {
        match self {
            Self::D1(s) => s.scorer.valid,
            Self::D2(s) => s.scorer.valid,
            Self::Dn(s) => s.scorer.valid,
        }
    }

    /// Windows scored so far (the chain's own step bookkeeping).
    pub(crate) fn scored(&self) -> usize {
        match self {
            Self::D1(s) => s.scored,
            Self::D2(s) => s.scored,
            Self::Dn(s) => s.scored,
        }
    }
}

/// Reads one node id and bounds-checks it against the graph, so no
/// downstream degree/neighbor lookup can index out of range.
fn decode_node<G: GraphAccess>(
    r: &mut Reader<'_>,
    g: &G,
    what: &'static str,
) -> Result<NodeId, CheckpointError> {
    let v = r.u32(what)?;
    if (v as usize) < g.num_nodes() {
        Ok(v)
    } else {
        Err(CheckpointError::Malformed { what })
    }
}

/// Reads a sorted, duplicate-free `d`-node state with every node in
/// range — the preconditions [`GdWalk::resume`] would otherwise assert.
fn decode_state<G: GraphAccess>(
    r: &mut Reader<'_>,
    g: &G,
    d: usize,
    what: &'static str,
) -> Result<Vec<NodeId>, CheckpointError> {
    let mut nodes = Vec::with_capacity(d);
    for _ in 0..d {
        nodes.push(decode_node(r, g, what)?);
    }
    if nodes.windows(2).all(|w| w[0] < w[1]) {
        Ok(nodes)
    } else {
        Err(CheckpointError::Malformed { what })
    }
}

/// Whether `nodes` (≤ 8 of them) induce a connected subgraph — a tiny
/// bitmask DFS over `has_edge` probes.
fn subset_connected<G: GraphAccess>(g: &G, nodes: &[NodeId]) -> bool {
    let d = nodes.len();
    debug_assert!((1..=8).contains(&d));
    let mut seen = 1u8;
    let mut stack = [0usize; 8];
    let mut top = 1;
    while top > 0 {
        top -= 1;
        let i = stack[top];
        for j in 0..d {
            if seen & (1 << j) == 0 && g.has_edge(nodes[i], nodes[j]) {
                seen |= 1 << j;
                stack[top] = j;
                top += 1;
            }
        }
    }
    seen.count_ones() as usize == d
}

/// [`estimate_until`] with a caller-supplied walk.
///
/// Scores windows in the same order as [`estimate_with_walk`] (the walk
/// only ever advances between scored windows), checking the stopping
/// rule every `rule.check_every` scored windows. Like the fixed-budget
/// runner, the walk is never advanced past the last scored window.
///
/// Stable shorthand for
/// [`Runner::new(cfg).until(rule).run_with_walk`](crate::runner::Runner::run_with_walk);
/// panics on invalid input where the runner returns [`crate::GxError`].
pub fn estimate_until_with_walk<G: GraphAccess, W: StateWalk>(
    g: &G,
    cfg: &EstimatorConfig,
    walk: W,
    rule: &StoppingRule,
    rng: WalkRng,
) -> Estimate {
    match Runner::new(cfg.clone()).until(rule.clone()).run_with_walk(g, walk, rng) {
        Ok(est) => est,
        Err(e) => panic!("{e}"),
    }
}

/// Measures initialization bias of the chain `(g, cfg, seed)` and
/// suggests a burn-in, per the batch-mean comparison documented on
/// [`BurnInReport`]: run a `pilot_steps` pilot (same start-state and
/// RNG protocol as [`estimate`]), split it into `batch_len`-step
/// batches, and flag leading batches whose total-score mean disagrees
/// with the trailing half's distribution.
///
/// Run it with `cfg.burn_in == 0` (measuring the raw chain) and feed
/// `suggested_burn_in` back into the config an `estimate_until*` run
/// uses; the pilot is wasted work only if the suggestion is zero — on
/// the graphs the paper targets it usually is, which is itself the
/// useful answer ("burn-in is not your problem").
pub fn measure_burn_in<G: GraphAccess>(
    g: &G,
    cfg: &EstimatorConfig,
    seed: u64,
    pilot_steps: usize,
    batch_len: usize,
) -> BurnInReport {
    cfg.validate();
    assert!(batch_len >= 1, "batch length must be at least 1");
    let batches = pilot_steps / batch_len;
    assert!(batches >= 4, "burn-in pilot needs at least 4 complete batches, got {batches}");
    let mut session = AnySession::new(g, cfg, seed, batch_len, 0);
    let mut means = Vec::with_capacity(batches);
    let mut prev = 0.0;
    for _ in 0..batches {
        session.run(batch_len);
        let sum: f64 = session.raw().iter().sum();
        means.push((sum - prev) / batch_len as f64);
        prev = sum;
    }
    BurnInReport::from_batch_means(means, batch_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gx_exact::exact_counts;
    use gx_graph::generators::{classic, erdos_renyi_gnm, holme_kim};
    use gx_graph::Graph;

    /// Asserts that the estimator converges to the exact concentrations
    /// on `g` within `tol` (absolute), for the given configuration.
    fn assert_converges(g: &Graph, cfg: &EstimatorConfig, steps: usize, seed: u64, tol: f64) {
        let exact = exact_counts(g, cfg.k).concentrations();
        let est = estimate(g, cfg, steps, seed).concentrations();
        for (i, (e, x)) in est.iter().zip(&exact).enumerate() {
            assert!(
                (e - x).abs() < tol,
                "{} type {}: estimated {e:.4}, exact {x:.4} (tol {tol})",
                cfg.name(),
                i + 1,
            );
        }
    }

    #[test]
    fn srw1_converges_on_figure1_graph() {
        let g = classic::paper_figure1();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        assert_converges(&g, &cfg, 60_000, 1, 0.02);
    }

    #[test]
    fn srw1_variants_converge_k3() {
        let g = classic::lollipop(5, 4);
        for (css, nb) in [(false, false), (true, false), (false, true), (true, true)] {
            let cfg = EstimatorConfig { k: 3, d: 1, css, non_backtracking: nb, burn_in: 0 };
            assert_converges(&g, &cfg, 80_000, 11, 0.02);
        }
    }

    #[test]
    fn srw2_is_psrw_for_k3() {
        let g = classic::lollipop(5, 4);
        let cfg = EstimatorConfig::psrw(3);
        assert_converges(&g, &cfg, 80_000, 5, 0.02);
    }

    #[test]
    fn k4_configurations_converge_on_er() {
        use rand::SeedableRng;
        let mut rng = rand_pcg::Pcg64::seed_from_u64(42);
        let g = erdos_renyi_gnm(60, 180, &mut rng);
        let g = gx_graph::connectivity::largest_connected_component(&g).0;
        for cfg in [
            EstimatorConfig { k: 4, d: 2, ..Default::default() },
            EstimatorConfig { k: 4, d: 2, css: true, ..Default::default() },
            EstimatorConfig { k: 4, d: 2, non_backtracking: true, ..Default::default() },
            EstimatorConfig::psrw(4),
        ] {
            assert_converges(&g, &cfg, 150_000, 19, 0.03);
        }
    }

    #[test]
    fn k5_srw2css_converges_on_small_dense_graph() {
        use rand::SeedableRng;
        let mut rng = rand_pcg::Pcg64::seed_from_u64(9);
        let g = holme_kim(40, 4, 0.5, &mut rng);
        let cfg = EstimatorConfig { k: 5, d: 2, css: true, ..Default::default() };
        assert_converges(&g, &cfg, 200_000, 23, 0.04);
    }

    #[test]
    fn d_equals_k_subgraph_walk_converges() {
        // The SRW-on-G(k) special case of [36] (l = 1).
        let g = classic::lollipop(5, 3);
        let cfg = EstimatorConfig { k: 3, d: 3, ..Default::default() };
        assert_converges(&g, &cfg, 60_000, 31, 0.03);
    }

    /// The dense-table / windowed-CSS rewrite must not move a single bit
    /// of any estimate: raw-score bit patterns for fixed (graph, config,
    /// seed) captured from the seed `HashMap` implementation.
    #[test]
    fn css_raw_scores_bit_identical_to_seed() {
        fn bits(est: &crate::Estimate) -> Vec<u64> {
            est.raw_scores.iter().map(|x| x.to_bits()).collect()
        }

        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 4, d: 2, css: true, ..Default::default() };
        let est = estimate(&g, &cfg, 5_000, 77);
        assert_eq!(est.valid_samples, 3709);
        assert_eq!(bits(&est), vec![0x40b3180000000000, 0x408a5aaaaaaaaa38, 0, 0, 0, 0]);

        let g = holme_kim(40, 4, 0.5, &mut rng_from_seed(9));
        let cfg = EstimatorConfig { k: 5, d: 2, css: true, ..Default::default() };
        let est = estimate(&g, &cfg, 20_000, 23);
        assert_eq!(est.valid_samples, 16494);
        assert_eq!(
            bits(&est),
            vec![
                0x40e67e7000000000,
                0x40fc1212924b98ef,
                0x40e4d14a26d74fc1,
                0x40e7d287b0fdc97c,
                0x40d93f27471d50ab,
                0x40ed684fcbec857b,
                0x4099248a95a014f5,
                0x40cae0b8bf6029d2,
                0x40e2877cc7cec35a,
                0x40b84ad8a9b49cfc,
                0x40ceb82059f75574,
                0x4072e70164677852,
                0x40b4b5fe77a44ae1,
                0x40b2b69ae35e4427,
                0x40b8a58278ff0ede,
                0x40c246e348190317,
                0x408b10f457935da4,
                0x40b090459d459fc9,
                0x40748b888fddf216,
                0x409021fd28a7582d,
                0x40568ee095b0470f,
            ]
        );

        let g = classic::lollipop(5, 4);
        let cfg = EstimatorConfig { k: 3, d: 1, css: true, non_backtracking: true, burn_in: 0 };
        let est = estimate(&g, &cfg, 10_000, 11);
        assert_eq!(est.valid_samples, 9621);
        assert_eq!(bits(&est), vec![0x40a4ba0000000000, 0x40ab1c2e8ba2e798]);

        // d = 3 exercises the G(d)-degree fallback + state-degree reuse.
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 5, d: 3, css: true, ..Default::default() };
        let est = estimate(&g, &cfg, 3_000, 5);
        assert_eq!(est.valid_samples, 2372);
        assert_eq!(
            bits(&est),
            vec![
                0x408e900000000000,
                0x408ff800000000f0,
                0,
                0,
                0,
                0,
                0x4069933333333308,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0
            ]
        );
    }

    #[test]
    fn estimator_is_deterministic_given_seed() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 4, d: 2, css: true, ..Default::default() };
        let a = estimate(&g, &cfg, 5_000, 77);
        let b = estimate(&g, &cfg, 5_000, 77);
        assert_eq!(a.raw_scores, b.raw_scores);
        assert_eq!(a.valid_samples, b.valid_samples);
        let c = estimate(&g, &cfg, 5_000, 78);
        assert_ne!(a.raw_scores, c.raw_scores);
    }

    #[test]
    fn star_has_zero_alpha_types_unsampled() {
        // On a star graph, SRW2 for k = 4 sees only 3-stars; the estimator
        // must put the whole mass there.
        let g = classic::star(12);
        let cfg = EstimatorConfig { k: 4, d: 2, ..Default::default() };
        let est = estimate(&g, &cfg, 20_000, 3);
        let c = est.concentrations();
        assert!((c[1] - 1.0).abs() < 1e-12, "3-star concentration {c:?}");
    }

    #[test]
    fn valid_fraction_is_sane() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let est = estimate(&g, &cfg, 10_000, 5);
        assert!(est.valid_fraction() > 0.5);
        assert!(est.valid_fraction() <= 1.0);
        // NB improves the valid fraction (§4.2's whole point).
        let cfg_nb = EstimatorConfig { k: 3, d: 1, non_backtracking: true, ..Default::default() };
        let est_nb = estimate(&g, &cfg_nb, 10_000, 5);
        assert!(est_nb.valid_fraction() > est.valid_fraction());
    }

    #[test]
    fn burn_in_only_shifts_the_stream() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, burn_in: 100, ..Default::default() };
        let est = estimate(&g, &cfg, 10_000, 5);
        assert_eq!(est.steps, 10_000);
        assert!(est.valid_samples > 0);
    }

    #[test]
    fn estimates_carry_accuracy_stats() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let est = estimate(&g, &cfg, 10_000, 5);
        let stats = est.accuracy().expect("estimator runs collect accuracy");
        assert_eq!(stats.batch_len(), crate::accuracy::default_batch_len(10_000));
        assert_eq!(stats.batches() as usize, 10_000 / stats.batch_len());
        // The batch-means mean-score estimate tracks raw/steps (they
        // differ only by the dropped partial batch).
        for i in 0..est.raw_scores.len() {
            let per_step = est.raw_scores[i] / est.steps as f64;
            assert!(
                (stats.mean_score(i) - per_step).abs() <= 0.1 * per_step.max(1e-9),
                "type {i}: batch mean {} vs per-step {per_step}",
                stats.mean_score(i)
            );
        }
        // The frequent type (wedges — the triangle-free Petersen graph
        // has no type 1 mass) carries a finite, nonzero error bar.
        assert!(est.std_error(0).is_finite());
        assert!(est.relative_half_width(0, 1.96) > 0.0);
    }

    #[test]
    fn estimate_until_stops_on_tight_intervals() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let rule = StoppingRule {
            target_rel_ci: 0.2,
            check_every: 2_000,
            max_steps: 2_000_000,
            batch_len: 128,
            ..Default::default()
        };
        let est = estimate_until(&g, &cfg, 7, &rule);
        assert!(est.steps < rule.max_steps, "converged before the cap (took {})", est.steps);
        assert_eq!(est.steps % rule.check_every, 0, "stopped at a check point");
        let w = est.max_relative_half_width(rule.z, rule.min_concentration);
        assert!(w <= rule.target_rel_ci, "measured width {w} above target");
    }

    #[test]
    fn estimate_until_at_the_cap_matches_fixed_budget_bitwise() {
        // Scoring consumes no randomness, so a run that exhausts
        // max_steps scores exactly the windows estimate() scores.
        let g = classic::lollipop(5, 4);
        let cfg = EstimatorConfig { k: 4, d: 2, css: true, ..Default::default() };
        let rule = StoppingRule {
            target_rel_ci: 1e-9, // unreachable: always runs to the cap
            check_every: 1_000,
            max_steps: 5_000,
            ..Default::default()
        };
        let until = estimate_until(&g, &cfg, 77, &rule);
        let fixed = estimate(&g, &cfg, 5_000, 77);
        assert_eq!(until.steps, 5_000);
        assert_eq!(until.raw_scores, fixed.raw_scores);
        assert_eq!(until.valid_samples, fixed.valid_samples);
    }

    #[test]
    fn estimate_until_zero_cap_scores_nothing() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let rule = StoppingRule { max_steps: 0, ..Default::default() };
        let est = estimate_until(&g, &cfg, 3, &rule);
        assert_eq!(est.steps, 0);
        assert_eq!(est.valid_samples, 0);
        assert!(est.raw_scores.iter().all(|&x| x == 0.0));
        assert_eq!(est.counts(10.0), vec![0.0; est.raw_scores.len()]);
    }

    #[test]
    fn measure_burn_in_reports_pilot_batches() {
        let g = classic::lollipop(6, 5);
        let cfg = EstimatorConfig::recommended(3);
        let report = measure_burn_in(&g, &cfg, 7, 4_096, 256);
        assert_eq!(report.batch_len, 256);
        assert_eq!(report.batch_means.len(), 16);
        assert_eq!(report.suggested_burn_in % 256, 0);
        assert!(report.first_batch_z.is_finite());
        // The pilot replays estimate()'s chain: batch means must be the
        // per-batch raw-score deltas of the fixed-budget run.
        let est = estimate(&g, &cfg, 4_096, 7);
        let total: f64 = report.batch_means.iter().sum::<f64>() * 256.0;
        let raw: f64 = est.raw_scores.iter().sum();
        assert!((total - raw).abs() < 1e-9 * raw.max(1.0), "pilot total {total} vs raw {raw}");
    }

    #[test]
    fn measure_burn_in_is_deterministic() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let a = measure_burn_in(&g, &cfg, 3, 2_048, 128);
        let b = measure_burn_in(&g, &cfg, 3, 2_048, 128);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least 4 complete batches")]
    fn measure_burn_in_rejects_tiny_pilots() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let _ = measure_burn_in(&g, &cfg, 3, 300, 128);
    }

    #[test]
    #[should_panic(expected = "walk dimension")]
    fn walk_dimension_must_match() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 2, ..Default::default() };
        let walk = SrwWalk::new(&g, 0, false);
        let _ = estimate_with_walk(&g, &cfg, walk, 10, rng_from_seed(1));
    }
}
