//! Accuracy metrics: the NRMSE of §6.1 and its ingredients.

/// Normalized root mean square error of repeated estimates of a scalar:
/// `NRMSE(ĉ) = sqrt(E[(ĉ − c)²]) / c` — a combination of variance and
/// bias (paper §6.1). Returns `f64::INFINITY` when `truth` is 0 but
/// estimates are not, and `NaN` for empty input.
pub fn nrmse(estimates: &[f64], truth: f64) -> f64 {
    if estimates.is_empty() {
        return f64::NAN;
    }
    let mse: f64 =
        estimates.iter().map(|e| (e - truth) * (e - truth)).sum::<f64>() / estimates.len() as f64;
    if truth == 0.0 {
        return if mse == 0.0 { 0.0 } else { f64::INFINITY };
    }
    mse.sqrt() / truth
}

/// Per-type NRMSE across runs: `estimates[r][i]` is run r's estimate of
/// type i. Every run must carry exactly `truth.len()` types — ragged
/// input is rejected up front with the offending run's index (instead of
/// an opaque out-of-bounds panic mid-computation).
pub fn nrmse_per_type(estimates: &[Vec<f64>], truth: &[f64]) -> Vec<f64> {
    let m = truth.len();
    for (r, run) in estimates.iter().enumerate() {
        assert_eq!(
            run.len(),
            m,
            "nrmse_per_type: run {r} has {} types but truth has {m}",
            run.len()
        );
    }
    (0..m)
        .map(|i| {
            let series: Vec<f64> = estimates.iter().map(|run| run[i]).collect();
            nrmse(&series, truth[i])
        })
        .collect()
}

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divide by n).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Cosine similarity of two concentration vectors — the graphlet-kernel
/// similarity of §6.4 / Table 7 (after \[33\], restricted to one k).
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nrmse_zero_for_perfect_estimates() {
        assert_eq!(nrmse(&[0.5, 0.5, 0.5], 0.5), 0.0);
    }

    #[test]
    fn nrmse_combines_bias_and_variance() {
        // constant bias b: NRMSE = b / c
        let est = vec![0.6, 0.6];
        assert!((nrmse(&est, 0.5) - 0.2).abs() < 1e-12);
        // pure variance: estimates ±e around truth
        let est = vec![0.4, 0.6];
        assert!((nrmse(&est, 0.5) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn nrmse_edge_cases() {
        assert!(nrmse(&[], 0.5).is_nan());
        assert_eq!(nrmse(&[0.0, 0.0], 0.0), 0.0);
        assert_eq!(nrmse(&[0.1], 0.0), f64::INFINITY);
    }

    #[test]
    fn per_type_indexes_correctly() {
        let runs = vec![vec![0.5, 0.5], vec![0.3, 0.7]];
        let out = nrmse_per_type(&runs, &[0.4, 0.6]);
        assert!((out[0] - 0.25).abs() < 1e-12);
        assert!((out[1] - (0.1f64 * 0.1 / 2.0 + 0.1 * 0.1 / 2.0).sqrt() / 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "run 1 has 1 types but truth has 2")]
    fn per_type_rejects_ragged_runs() {
        // Regression: a run vector shorter than `truth` used to panic
        // with an opaque index-out-of-bounds inside the per-type loop.
        let runs = vec![vec![0.5, 0.5], vec![0.3]];
        let _ = nrmse_per_type(&runs, &[0.4, 0.6]);
    }

    #[test]
    fn moments() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
        assert!(variance(&[]).is_nan());
    }

    #[test]
    fn cosine() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        let s = cosine_similarity(&[0.2, 0.8], &[0.4, 0.6]);
        assert!(s > 0.9 && s < 1.0);
    }
}
