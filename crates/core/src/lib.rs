//! The general random-walk framework for estimating graphlet statistics —
//! the primary contribution of Chen, Li, Wang, Lui:
//! *"A General Framework for Estimating Graphlet Statistics via Random
//! Walk"*, PVLDB 10(3), 2016.
//!
//! The estimator collects k-node graphlet samples from `l = k − d + 1`
//! consecutive steps of a random walk on the subgraph relationship graph
//! `G(d)` (built on the fly; `d` is a tunable parameter, with `d = k − 1`
//! recovering PSRW \[36\] and `d = 1` on 3-node graphlets recovering
//! Hardiman–Katzir \[11\]). Samples are de-biased by their inclusion
//! probability `α^k_i · π_e(X^{(l)})` (Theorem 2 + Definition 3), or — with
//! the corresponding state sampling (CSS) optimization of §4.1 — by the
//! full sampling probability `p(X^{(l)})` (Definition 4). Both plain and
//! non-backtracking walks (§4.2) are supported.
//!
//! ```
//! use gx_graph::generators::classic;
//! use gx_core::{estimate, EstimatorConfig};
//!
//! // triangle concentration of the Figure-1 graph with SRW1 + CSS
//! let g = classic::paper_figure1();
//! let cfg = EstimatorConfig { k: 3, d: 1, css: true, ..Default::default() };
//! let est = estimate(&g, &cfg, 20_000, 7);
//! let c = est.concentrations();
//! assert!((c[1] - 0.5).abs() < 0.1); // exact value is 0.5
//! ```

pub mod accuracy;
pub mod checkpoint;
pub mod config;
pub mod counts;
pub mod css;
pub mod error;
pub mod estimator;
pub mod eval;
pub mod parallel;
pub mod pie;
pub mod result;
pub mod runner;
pub mod theory;
pub mod window;

pub use accuracy::{
    normal_quantile, student_t_quantile, studentized_critical, AdaptiveReport, BatchStats,
    BurnInReport, StoppingRule, WalkerStatus,
};
pub use checkpoint::{graph_fingerprint, write_atomic};
pub use config::EstimatorConfig;
pub use counts::relationship_edge_count;
pub use error::{CheckpointError, ConfigError, GxError, RuleError, ServiceError};
pub use estimator::{
    estimate, estimate_until, estimate_until_with_walk, estimate_with_walk, measure_burn_in,
};
pub use parallel::{estimate_parallel, estimate_until_parallel, EstimatorPool, ParallelConfig};
pub use result::Estimate;
pub use runner::{Corruption, FailingWriter, FaultPlan, Progress, RunHandle, Runner};
pub use window::NodeWindow;

// The α coefficients (Algorithm 2) live next to the atlas so the
// graphlet tables stay self-validating; re-export them as part of the
// framework's public surface.
pub use gx_graphlets::alpha::{alpha, alpha_of, alpha_table};
