//! Parallel multi-walker estimation.
//!
//! The estimator's samples come from a single Markov chain, but the
//! framework is an average over *any* collection of stationary samples
//! (Theorem 1 holds per walker), so independent walkers with disjoint
//! RNG streams can each contribute a share of the step budget and their
//! raw scores merge by addition — the same estimator, computed with
//! near-linear hardware parallelism. This mirrors the standard practice
//! for graphlet estimators (Rossi–Zhou–Ahmed run independent samplers
//! per core) and is the paper's own §6 protocol, which repeats
//! independent runs anyway.
//!
//! Determinism: walker `i` runs the exact sequential pipeline with seed
//! `seed` for `i = 0` and [`derive_seed`]`(seed, i)` otherwise, and the
//! merge folds walker results in index order — so a fixed
//! `(seed, walkers)` pair gives bit-identical results on every run and
//! machine, and `walkers == 1` is *bit-identical* to [`estimate`].

use crate::accuracy::{default_batch_len, BatchStats};
use crate::config::EstimatorConfig;
use crate::estimator::{estimate, estimate_batch};
use crate::result::Estimate;
use gx_graph::GraphAccess;
use gx_graphlets::num_graphlets;
use gx_walks::derive_seed;

/// How to fan an estimation run across walkers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of independent walkers (≥ 1). Each gets its own RNG
    /// stream and a near-equal share of the step budget.
    pub walkers: usize,
}

/// Usable cores on this host (`available_parallelism`, 1 on failure) —
/// the single source of the core-count policy for walkers and threads.
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

impl ParallelConfig {
    /// One walker per available CPU.
    pub fn auto() -> Self {
        Self { walkers: available_cores() }
    }

    /// Exactly `walkers` walkers.
    pub fn with_walkers(walkers: usize) -> Self {
        assert!(walkers >= 1, "ParallelConfig needs at least one walker");
        Self { walkers }
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self::auto()
    }
}

/// A reusable handle for parallel estimation runs with a fixed fan-out.
///
/// This is the surface a serving layer sits on: construct once with the
/// deployment's parallelism, then issue estimation requests against any
/// `Sync` graph.
#[derive(Debug, Clone)]
pub struct EstimatorPool {
    config: ParallelConfig,
}

impl EstimatorPool {
    /// Creates a pool with the given fan-out.
    pub fn new(config: ParallelConfig) -> Self {
        Self { config }
    }

    /// The pool's walker count.
    pub fn walkers(&self) -> usize {
        self.config.walkers
    }

    /// Runs [`estimate_parallel`] with this pool's fan-out.
    pub fn estimate<G: GraphAccess + Sync>(
        &self,
        g: &G,
        cfg: &EstimatorConfig,
        steps: usize,
        seed: u64,
    ) -> Estimate {
        estimate_parallel(g, cfg, steps, seed, self.config.walkers)
    }
}

/// Seed of walker `i`: walker 0 keeps the caller's seed so a one-walker
/// run replays the sequential estimator exactly; the rest get
/// SplitMix64-derived independent streams.
#[inline]
pub fn walker_seed(seed: u64, walker: usize) -> u64 {
    if walker == 0 {
        seed
    } else {
        derive_seed(seed, walker as u64)
    }
}

/// Step budget of walker `i` when `steps` is spread over `walkers`
/// (difference of at most one step between walkers).
#[inline]
pub fn walker_steps(steps: usize, walkers: usize, walker: usize) -> usize {
    steps / walkers + usize::from(walker < steps % walkers)
}

/// Algorithm 1 fanned across `walkers` independent walkers.
///
/// `steps` is the *total* sample budget: walker `i` scores
/// [`walker_steps`]`(steps, walkers, i)` windows from its own walk
/// (own random start, own RNG stream — see [`walker_seed`]), and the
/// per-walker `raw_scores` / `valid_samples` are summed in walker
/// order. The result is deterministic for a fixed `(seed, walkers)`;
/// with `walkers == 1` it is bit-identical to [`estimate`].
///
/// Requires `G: Sync` — the metered `ApiGraph` is deliberately not
/// `Sync` (its counters are unsynchronized), so crawling simulations
/// stay sequential while in-memory graphs parallelize.
pub fn estimate_parallel<G: GraphAccess + Sync>(
    g: &G,
    cfg: &EstimatorConfig,
    steps: usize,
    seed: u64,
    walkers: usize,
) -> Estimate {
    assert!(walkers >= 1, "estimate_parallel needs at least one walker");
    cfg.validate();
    if walkers == 1 {
        return estimate(g, cfg, steps, seed);
    }
    // Build the process-wide tables (α, dense classification, dense CSS)
    // once, up front: otherwise every walker thread races to the same
    // cold `OnceLock` and the whole fan-out serializes behind one build.
    crate::estimator::prewarm(cfg);
    // Every walker uses the batch length derived from the *total*
    // budget, not its own share: pooled batch means (the merge below)
    // are only comparable across walkers when all batches have equal
    // length, and the total-budget policy makes walkers == 1 land on
    // exactly the sequential estimator's batching.
    let batch_len = default_batch_len(steps);
    // One OS thread per *core*, not per walker: each thread runs a
    // contiguous chunk of walkers sequentially, so pathological fan-outs
    // (walkers ≫ cores) cannot exhaust thread limits. Results are
    // slotted by walker index and merged in walker order, so the output
    // is identical for every thread count.
    let threads = available_cores().min(walkers);
    let chunk = walkers.div_ceil(threads);
    let mut results: Vec<Option<Estimate>> = Vec::new();
    results.resize_with(walkers, || None);
    std::thread::scope(|scope| {
        for (c, slots) in results.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                for (off, slot) in slots.iter_mut().enumerate() {
                    let i = c * chunk + off;
                    let share = walker_steps(steps, walkers, i);
                    *slot = Some(estimate_batch(g, cfg, share, walker_seed(seed, i), batch_len));
                }
            });
        }
    });
    merge(cfg, steps, batch_len, results.into_iter().map(|r| r.expect("walker thread completed")))
}

/// Folds per-walker estimates (in iteration order) into one: raw scores
/// and valid-sample counts add, batch-means statistics pool via
/// [`BatchStats::merge`] (each walker's batches are independent draws of
/// the same batch-mean distribution — equal batch length is enforced by
/// construction above). Walker order fixes the floating-point fold
/// order, keeping the result deterministic per `(seed, walkers)`.
fn merge(
    cfg: &EstimatorConfig,
    steps: usize,
    batch_len: usize,
    parts: impl Iterator<Item = Estimate>,
) -> Estimate {
    let mut raw = vec![0.0f64; num_graphlets(cfg.k)];
    let mut valid = 0usize;
    let mut seen_steps = 0usize;
    let mut stats = BatchStats::new(num_graphlets(cfg.k), batch_len);
    for part in parts {
        debug_assert_eq!(part.config, *cfg);
        for (acc, x) in raw.iter_mut().zip(&part.raw_scores) {
            *acc += x;
        }
        valid += part.valid_samples;
        seen_steps += part.steps;
        stats.merge(part.accuracy.as_ref().expect("walker estimates carry accuracy stats"));
    }
    debug_assert_eq!(seen_steps, steps, "walker shares must cover the budget");
    Estimate {
        config: cfg.clone(),
        steps,
        valid_samples: valid,
        raw_scores: raw,
        accuracy: Some(stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::estimate;
    use gx_exact::exact_counts;
    use gx_graph::generators::classic;

    #[test]
    fn one_walker_is_bit_identical_to_sequential() {
        let g = classic::petersen();
        for cfg in [
            EstimatorConfig { k: 3, d: 1, ..Default::default() },
            EstimatorConfig { k: 4, d: 2, css: true, ..Default::default() },
            EstimatorConfig::psrw(4),
        ] {
            let seq = estimate(&g, &cfg, 5_000, 77);
            let par = estimate_parallel(&g, &cfg, 5_000, 77, 1);
            assert_eq!(seq.raw_scores, par.raw_scores, "{}", cfg.name());
            assert_eq!(seq.valid_samples, par.valid_samples);
            assert_eq!(seq.steps, par.steps);
            // ... including the error-bar statistics.
            assert_eq!(seq.accuracy, par.accuracy, "{}", cfg.name());
        }
    }

    #[test]
    fn fixed_seed_and_walkers_is_deterministic() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 4, d: 2, css: true, ..Default::default() };
        let a = estimate_parallel(&g, &cfg, 8_000, 42, 4);
        let b = estimate_parallel(&g, &cfg, 8_000, 42, 4);
        assert_eq!(a.raw_scores, b.raw_scores);
        assert_eq!(a.valid_samples, b.valid_samples);
        // CI output is part of the determinism contract: the pooled
        // batch-means statistics must match bit-for-bit too.
        assert_eq!(a.accuracy, b.accuracy);
        // Different fan-out is a different (deterministic) estimate.
        let c = estimate_parallel(&g, &cfg, 8_000, 42, 3);
        assert_ne!(a.raw_scores, c.raw_scores);
    }

    #[test]
    fn pooled_batches_cover_every_walker() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let (steps, walkers, seed) = (9_000, 4, 11);
        let par = estimate_parallel(&g, &cfg, steps, seed, walkers);
        let stats = par.accuracy().expect("parallel runs pool accuracy");
        let batch_len = crate::accuracy::default_batch_len(steps);
        assert_eq!(stats.batch_len(), batch_len, "batch length follows the total budget");
        let expected: u64 =
            (0..walkers).map(|i| (walker_steps(steps, walkers, i) / batch_len) as u64).sum();
        assert_eq!(stats.batches(), expected, "pooled batches are the per-walker sum");
        // The pooled error bar is usable: finite SE on a frequent type.
        assert!(par.std_error(0).is_finite() || par.std_error(1).is_finite());
    }

    #[test]
    fn merge_equals_sum_over_walkers() {
        let g = classic::lollipop(5, 4);
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let (steps, walkers, seed) = (10_001, 4, 9);
        let par = estimate_parallel(&g, &cfg, steps, seed, walkers);
        let mut valid = 0usize;
        let mut raw = vec![0.0; par.raw_scores.len()];
        let mut budget = 0usize;
        for i in 0..walkers {
            let share = walker_steps(steps, walkers, i);
            budget += share;
            let w = estimate(&g, &cfg, share, walker_seed(seed, i));
            valid += w.valid_samples;
            for (acc, x) in raw.iter_mut().zip(&w.raw_scores) {
                *acc += x;
            }
        }
        assert_eq!(budget, steps, "shares cover the budget exactly");
        assert_eq!(par.valid_samples, valid);
        assert_eq!(par.raw_scores, raw, "merge is the walker-order sum");
        assert_eq!(par.steps, steps);
    }

    #[test]
    fn walker_budget_split_is_near_equal() {
        for (steps, walkers) in [(10, 3), (7, 7), (5, 8), (0, 4), (1_000_003, 16)] {
            let shares: Vec<usize> =
                (0..walkers).map(|i| walker_steps(steps, walkers, i)).collect();
            assert_eq!(shares.iter().sum::<usize>(), steps);
            let (min, max) = (shares.iter().min().unwrap(), shares.iter().max().unwrap());
            assert!(max - min <= 1, "{steps}/{walkers}: {shares:?}");
        }
    }

    #[test]
    fn parallel_k3_converges_on_figure1() {
        let g = classic::paper_figure1();
        let cfg = EstimatorConfig { k: 3, d: 1, css: true, non_backtracking: true, burn_in: 0 };
        let exact = exact_counts(&g, 3).concentrations();
        let est = estimate_parallel(&g, &cfg, 60_000, 1, 4).concentrations();
        for (i, (e, x)) in est.iter().zip(&exact).enumerate() {
            assert!((e - x).abs() < 0.02, "type {}: {e:.4} vs {x:.4}", i + 1);
        }
    }

    #[test]
    fn parallel_k4_converges_on_lollipop() {
        let g = classic::lollipop(5, 4);
        let cfg = EstimatorConfig { k: 4, d: 2, css: true, ..Default::default() };
        let exact = exact_counts(&g, 4).concentrations();
        let est = estimate_parallel(&g, &cfg, 120_000, 3, 8).concentrations();
        for (i, (e, x)) in est.iter().zip(&exact).enumerate() {
            assert!((e - x).abs() < 0.02, "type {}: {e:.4} vs {x:.4}", i + 1);
        }
    }

    #[test]
    fn pool_surface_forwards() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let pool = EstimatorPool::new(ParallelConfig::with_walkers(2));
        assert_eq!(pool.walkers(), 2);
        let a = pool.estimate(&g, &cfg, 4_000, 5);
        let b = estimate_parallel(&g, &cfg, 4_000, 5, 2);
        assert_eq!(a.raw_scores, b.raw_scores);
        assert!(ParallelConfig::auto().walkers >= 1);
        assert!(ParallelConfig::default().walkers >= 1);
    }

    #[test]
    fn more_walkers_than_steps_still_works() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let est = estimate_parallel(&g, &cfg, 3, 11, 8);
        assert_eq!(est.steps, 3);
        assert!(est.valid_samples <= 3);
    }

    #[test]
    fn huge_fanouts_are_core_bounded_and_deterministic() {
        // 512 walkers must not spawn 512 threads (chunked over cores),
        // and the walker-order merge keeps the result independent of the
        // machine's thread count.
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let a = estimate_parallel(&g, &cfg, 2_048, 13, 512);
        let b = estimate_parallel(&g, &cfg, 2_048, 13, 512);
        assert_eq!(a.raw_scores, b.raw_scores);
        assert_eq!(a.steps, 2_048);
        let mut raw = vec![0.0; a.raw_scores.len()];
        for i in 0..512 {
            let w = estimate(&g, &cfg, walker_steps(2_048, 512, i), walker_seed(13, i));
            for (acc, x) in raw.iter_mut().zip(&w.raw_scores) {
                *acc += x;
            }
        }
        assert_eq!(a.raw_scores, raw, "chunked execution preserves walker-order merge");
    }

    #[test]
    #[should_panic(expected = "at least one walker")]
    fn zero_walkers_rejected() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let _ = estimate_parallel(&g, &cfg, 100, 1, 0);
    }
}
