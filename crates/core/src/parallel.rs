//! Parallel multi-walker estimation.
//!
//! The estimator's samples come from a single Markov chain, but the
//! framework is an average over *any* collection of stationary samples
//! (Theorem 1 holds per walker), so independent walkers with disjoint
//! RNG streams can each contribute a share of the step budget and their
//! raw scores merge by addition — the same estimator, computed with
//! near-linear hardware parallelism. This mirrors the standard practice
//! for graphlet estimators (Rossi–Zhou–Ahmed run independent samplers
//! per core) and is the paper's own §6 protocol, which repeats
//! independent runs anyway.
//!
//! Determinism: walker `i` runs the exact sequential pipeline with seed
//! `seed` for `i = 0` and [`derive_seed`]`(seed, i)` otherwise, and the
//! merge folds walker results in index order — so a fixed
//! `(seed, walkers)` pair gives bit-identical results on every run and
//! machine, and `walkers == 1` is *bit-identical* to [`crate::estimate`].

use crate::accuracy::StoppingRule;
use crate::config::EstimatorConfig;
use crate::error::GxError;
use crate::result::Estimate;
use crate::runner::Runner;
use gx_graph::GraphAccess;
use gx_walks::derive_seed;

/// How to fan an estimation run across walkers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of independent walkers (≥ 1). Each gets its own RNG
    /// stream and a near-equal share of the step budget.
    pub walkers: usize,
}

/// Usable cores on this host (`available_parallelism`, 1 on failure) —
/// the single source of the core-count policy for walkers and threads.
pub fn available_cores() -> usize {
    // gx-lint: allow(determinism) -- host probe only sizes the walker pool; estimates are walker-count-independent given a seed (covered by parallel determinism tests)
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

impl ParallelConfig {
    /// One walker per available CPU.
    pub fn auto() -> Self {
        Self { walkers: available_cores() }
    }

    /// Exactly `walkers` walkers. Panics on zero; see
    /// [`ParallelConfig::try_with_walkers`] for the fallible form.
    pub fn with_walkers(walkers: usize) -> Self {
        assert!(walkers >= 1, "ParallelConfig needs at least one walker");
        Self { walkers }
    }

    /// Exactly `walkers` walkers, rejecting a zero fan-out as
    /// [`GxError::NoWalkers`] instead of panicking — the form for
    /// service layers assembling configurations from untrusted input.
    pub fn try_with_walkers(walkers: usize) -> Result<Self, GxError> {
        if walkers == 0 {
            return Err(GxError::NoWalkers);
        }
        Ok(Self { walkers })
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self::auto()
    }
}

/// A reusable handle for parallel estimation runs with a fixed fan-out.
///
/// This is the surface a serving layer sits on: construct once with the
/// deployment's parallelism, then issue estimation requests against any
/// `Sync` graph.
#[derive(Debug, Clone)]
pub struct EstimatorPool {
    config: ParallelConfig,
}

impl EstimatorPool {
    /// Creates a pool with the given fan-out.
    pub fn new(config: ParallelConfig) -> Self {
        Self { config }
    }

    /// The pool's walker count.
    pub fn walkers(&self) -> usize {
        self.config.walkers
    }

    /// Runs [`estimate_parallel`] with this pool's fan-out.
    pub fn estimate<G: GraphAccess + Sync>(
        &self,
        g: &G,
        cfg: &EstimatorConfig,
        steps: usize,
        seed: u64,
    ) -> Estimate {
        estimate_parallel(g, cfg, steps, seed, self.config.walkers)
    }
}

/// Seed of walker `i`: walker 0 keeps the caller's seed so a one-walker
/// run replays the sequential estimator exactly; the rest get
/// SplitMix64-derived independent streams.
#[inline]
pub fn walker_seed(seed: u64, walker: usize) -> u64 {
    if walker == 0 {
        seed
    } else {
        derive_seed(seed, walker as u64)
    }
}

/// Step budget of walker `i` when `steps` is spread over `walkers`
/// (difference of at most one step between walkers).
#[inline]
pub fn walker_steps(steps: usize, walkers: usize, walker: usize) -> usize {
    steps / walkers + usize::from(walker < steps % walkers)
}

/// Algorithm 1 fanned across `walkers` independent walkers.
///
/// `steps` is the *total* sample budget: walker `i` scores
/// [`walker_steps`]`(steps, walkers, i)` windows from its own walk
/// (own random start, own RNG stream — see [`walker_seed`]), and the
/// per-walker `raw_scores` / `valid_samples` are summed in walker
/// order. The result is deterministic for a fixed `(seed, walkers)`;
/// with `walkers == 1` it is bit-identical to [`crate::estimate`].
///
/// Requires `G: Sync` — the metered `ApiGraph` is deliberately not
/// `Sync` (its counters are unsynchronized), so crawling simulations
/// stay sequential while in-memory graphs parallelize.
///
/// Stable shorthand for
/// [`Runner::new(cfg).steps(n).walkers(w)`](crate::runner::Runner):
/// every walker uses the batch length derived from the *total* budget
/// (pooled batch means need equal-length batches), runs chunked over
/// the machine's cores, and merges in walker order. Panics on invalid
/// input where the runner returns [`GxError`]; golden-bit tests pin
/// zero estimate drift through the delegation.
pub fn estimate_parallel<G: GraphAccess + Sync>(
    g: &G,
    cfg: &EstimatorConfig,
    steps: usize,
    seed: u64,
    walkers: usize,
) -> Estimate {
    match Runner::new(cfg.clone()).steps(steps).seed(seed).walkers(walkers).run(g) {
        Ok(est) => est,
        Err(e) => panic!("{e}"),
    }
}

/// Adaptive stopping fanned across independent walkers: the round-based
/// coordinator marrying [`estimate_parallel`]'s engine with
/// [`crate::estimate_until`]'s stopping rule, so "give me these counts
/// to ±x% at 95% confidence" is answered by every core cooperating on
/// one budget.
///
/// Each walker is a *persistent* chain (own random start, own RNG
/// stream per [`walker_seed`], burn-in paid exactly once — the chain
/// resumes across rounds, never re-primed). A round advances every
/// still-budgeted walker by `rule.check_every` scored windows; between
/// rounds the coordinator folds each walker's *new* batch means into
/// the pooled statistics in walker order (the incremental replay of
/// [`crate::BatchStats::fold_series_suffix`] — every walker uses
/// `rule.batch_len`, so pooling is exact) and evaluates the stopping
/// rule on the *pooled* confidence intervals, studentized while the
/// pooled batch count is small. Further rounds are dispatched only
/// while something is still wide: all qualifying types under
/// `rule.per_type`, the widest qualifying type otherwise.
///
/// `rule.max_steps` is the total budget, split near-equally
/// ([`walker_steps`]); the returned [`Estimate`] carries the pooled
/// statistics plus an [`crate::AdaptiveReport`] with per-type
/// `steps_used` / converged status.
///
/// Determinism: the coordinator consumes no randomness of its own and
/// folds walkers in index order, so a fixed `(seed, walkers)` is
/// bit-identical on every run and machine — and `walkers == 1` *is*
/// the sequential [`crate::estimate_until`] round-for-round: same
/// chain, same check schedule, bit-identical estimate and report at
/// the same stop step (tested).
///
/// Stable shorthand for
/// [`Runner::new(cfg).until(rule).parallel(par)`](crate::runner::Runner):
/// each walker is a persistent chain (burn-in paid once, resumed across
/// rounds), a round advances every still-budgeted walker by
/// `rule.check_every` scored windows, and the pooled statistics grow by
/// an *incremental* walker-order fold of each round's new batch means
/// (see [`crate::runner::RunHandle`]). Panics on invalid input where
/// the runner returns [`GxError`].
pub fn estimate_until_parallel<G: GraphAccess + Sync>(
    g: &G,
    cfg: &EstimatorConfig,
    seed: u64,
    rule: &StoppingRule,
    par: &ParallelConfig,
) -> Estimate {
    match Runner::new(cfg.clone()).until(rule.clone()).seed(seed).parallel(*par).run(g) {
        Ok(est) => est,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::estimate;
    use gx_exact::exact_counts;
    use gx_graph::generators::classic;

    #[test]
    fn one_walker_is_bit_identical_to_sequential() {
        let g = classic::petersen();
        for cfg in [
            EstimatorConfig { k: 3, d: 1, ..Default::default() },
            EstimatorConfig { k: 4, d: 2, css: true, ..Default::default() },
            EstimatorConfig::psrw(4),
        ] {
            let seq = estimate(&g, &cfg, 5_000, 77);
            let par = estimate_parallel(&g, &cfg, 5_000, 77, 1);
            assert_eq!(seq.raw_scores, par.raw_scores, "{}", cfg.name());
            assert_eq!(seq.valid_samples, par.valid_samples);
            assert_eq!(seq.steps, par.steps);
            // ... including the error-bar statistics.
            assert_eq!(seq.accuracy, par.accuracy, "{}", cfg.name());
        }
    }

    #[test]
    fn fixed_seed_and_walkers_is_deterministic() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 4, d: 2, css: true, ..Default::default() };
        let a = estimate_parallel(&g, &cfg, 8_000, 42, 4);
        let b = estimate_parallel(&g, &cfg, 8_000, 42, 4);
        assert_eq!(a.raw_scores, b.raw_scores);
        assert_eq!(a.valid_samples, b.valid_samples);
        // CI output is part of the determinism contract: the pooled
        // batch-means statistics must match bit-for-bit too.
        assert_eq!(a.accuracy, b.accuracy);
        // Different fan-out is a different (deterministic) estimate.
        let c = estimate_parallel(&g, &cfg, 8_000, 42, 3);
        assert_ne!(a.raw_scores, c.raw_scores);
    }

    #[test]
    fn pooled_batches_cover_every_walker() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let (steps, walkers, seed) = (9_000, 4, 11);
        let par = estimate_parallel(&g, &cfg, steps, seed, walkers);
        let stats = par.accuracy().expect("parallel runs pool accuracy");
        let batch_len = crate::accuracy::default_batch_len(steps);
        assert_eq!(stats.batch_len(), batch_len, "batch length follows the total budget");
        let expected: u64 =
            (0..walkers).map(|i| (walker_steps(steps, walkers, i) / batch_len) as u64).sum();
        assert_eq!(stats.batches(), expected, "pooled batches are the per-walker sum");
        // The pooled error bar is usable: finite SE on a frequent type.
        assert!(par.std_error(0).is_finite() || par.std_error(1).is_finite());
    }

    #[test]
    fn merge_equals_sum_over_walkers() {
        let g = classic::lollipop(5, 4);
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let (steps, walkers, seed) = (10_001, 4, 9);
        let par = estimate_parallel(&g, &cfg, steps, seed, walkers);
        let mut valid = 0usize;
        let mut raw = vec![0.0; par.raw_scores.len()];
        let mut budget = 0usize;
        for i in 0..walkers {
            let share = walker_steps(steps, walkers, i);
            budget += share;
            let w = estimate(&g, &cfg, share, walker_seed(seed, i));
            valid += w.valid_samples;
            for (acc, x) in raw.iter_mut().zip(&w.raw_scores) {
                *acc += x;
            }
        }
        assert_eq!(budget, steps, "shares cover the budget exactly");
        assert_eq!(par.valid_samples, valid);
        assert_eq!(par.raw_scores, raw, "merge is the walker-order sum");
        assert_eq!(par.steps, steps);
    }

    #[test]
    fn walker_budget_split_is_near_equal() {
        for (steps, walkers) in [(10, 3), (7, 7), (5, 8), (0, 4), (1_000_003, 16)] {
            let shares: Vec<usize> =
                (0..walkers).map(|i| walker_steps(steps, walkers, i)).collect();
            assert_eq!(shares.iter().sum::<usize>(), steps);
            let (min, max) = (shares.iter().min().unwrap(), shares.iter().max().unwrap());
            assert!(max - min <= 1, "{steps}/{walkers}: {shares:?}");
        }
    }

    #[test]
    fn parallel_k3_converges_on_figure1() {
        let g = classic::paper_figure1();
        let cfg = EstimatorConfig { k: 3, d: 1, css: true, non_backtracking: true, burn_in: 0 };
        let exact = exact_counts(&g, 3).concentrations();
        let est = estimate_parallel(&g, &cfg, 60_000, 1, 4).concentrations();
        for (i, (e, x)) in est.iter().zip(&exact).enumerate() {
            assert!((e - x).abs() < 0.02, "type {}: {e:.4} vs {x:.4}", i + 1);
        }
    }

    #[test]
    fn parallel_k4_converges_on_lollipop() {
        let g = classic::lollipop(5, 4);
        let cfg = EstimatorConfig { k: 4, d: 2, css: true, ..Default::default() };
        let exact = exact_counts(&g, 4).concentrations();
        let est = estimate_parallel(&g, &cfg, 120_000, 3, 8).concentrations();
        for (i, (e, x)) in est.iter().zip(&exact).enumerate() {
            assert!((e - x).abs() < 0.02, "type {}: {e:.4} vs {x:.4}", i + 1);
        }
    }

    #[test]
    fn pool_surface_forwards() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let pool = EstimatorPool::new(ParallelConfig::with_walkers(2));
        assert_eq!(pool.walkers(), 2);
        let a = pool.estimate(&g, &cfg, 4_000, 5);
        let b = estimate_parallel(&g, &cfg, 4_000, 5, 2);
        assert_eq!(a.raw_scores, b.raw_scores);
        assert!(ParallelConfig::auto().walkers >= 1);
        assert!(ParallelConfig::default().walkers >= 1);
    }

    #[test]
    fn more_walkers_than_steps_still_works() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let est = estimate_parallel(&g, &cfg, 3, 11, 8);
        assert_eq!(est.steps, 3);
        assert!(est.valid_samples <= 3);
    }

    #[test]
    fn huge_fanouts_are_core_bounded_and_deterministic() {
        // 512 walkers must not spawn 512 threads (chunked over cores),
        // and the walker-order merge keeps the result independent of the
        // machine's thread count.
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let a = estimate_parallel(&g, &cfg, 2_048, 13, 512);
        let b = estimate_parallel(&g, &cfg, 2_048, 13, 512);
        assert_eq!(a.raw_scores, b.raw_scores);
        assert_eq!(a.steps, 2_048);
        let mut raw = vec![0.0; a.raw_scores.len()];
        for i in 0..512 {
            let w = estimate(&g, &cfg, walker_steps(2_048, 512, i), walker_seed(13, i));
            for (acc, x) in raw.iter_mut().zip(&w.raw_scores) {
                *acc += x;
            }
        }
        assert_eq!(a.raw_scores, raw, "chunked execution preserves walker-order merge");
    }

    #[test]
    #[should_panic(expected = "at least one walker")]
    fn zero_walkers_rejected() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let _ = estimate_parallel(&g, &cfg, 100, 1, 0);
    }

    #[test]
    fn adaptive_one_walker_is_bit_identical_to_sequential() {
        // The coordinator with one walker replays sequential
        // estimate_until round-for-round: same chain, same check
        // schedule, bit-identical everything — report included.
        let g = classic::lollipop(5, 4);
        let rule = StoppingRule {
            target_rel_ci: 0.25,
            check_every: 2_000,
            max_steps: 40_000,
            batch_len: 128,
            min_batches: 8,
            ..Default::default()
        };
        for cfg in [
            EstimatorConfig::recommended(3),
            EstimatorConfig { k: 4, d: 2, css: true, ..Default::default() },
        ] {
            let seq = crate::estimate_until(&g, &cfg, 23, &rule);
            let par =
                estimate_until_parallel(&g, &cfg, 23, &rule, &ParallelConfig::with_walkers(1));
            assert_eq!(seq.raw_scores, par.raw_scores, "{}", cfg.name());
            assert_eq!(seq.steps, par.steps);
            assert_eq!(seq.valid_samples, par.valid_samples);
            assert_eq!(seq.accuracy, par.accuracy);
            assert_eq!(seq.adaptive, par.adaptive, "{}", cfg.name());
        }
    }

    #[test]
    fn adaptive_coordinator_is_deterministic_and_pools_walkers() {
        let g = classic::lollipop(5, 4);
        let cfg = EstimatorConfig::recommended(3);
        let rule = StoppingRule {
            target_rel_ci: 0.15,
            check_every: 1_500,
            max_steps: 60_000,
            batch_len: 128,
            min_batches: 6,
            ..Default::default()
        };
        let a = estimate_until_parallel(&g, &cfg, 5, &rule, &ParallelConfig::with_walkers(4));
        let b = estimate_until_parallel(&g, &cfg, 5, &rule, &ParallelConfig::with_walkers(4));
        assert_eq!(a.raw_scores, b.raw_scores);
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.adaptive, b.adaptive);
        let report = a.adaptive().expect("adaptive runs carry a report");
        assert_eq!(report.walkers, 4);
        assert!(report.rounds >= 1);
        // A full-cadence round pools walkers × check_every steps.
        if report.target_met {
            assert!(a.steps < rule.max_steps);
            assert_eq!(a.steps % (4 * rule.check_every), 0, "stopped at a round boundary");
            let w = a.max_relative_half_width(report.critical_value, rule.min_concentration);
            assert!(w <= rule.target_rel_ci, "pooled width {w} above target");
        } else {
            assert_eq!(a.steps, rule.max_steps);
        }
    }

    #[test]
    fn adaptive_at_the_cap_matches_fixed_budget_scores() {
        // An unreachable target makes the coordinator spend the whole
        // budget; the scored windows are then exactly the fixed-budget
        // parallel run's (same walker shares, same chains) — only the
        // batch length differs, so compare the raw scores.
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let rule = StoppingRule {
            target_rel_ci: 1e-9,
            check_every: 1_000,
            max_steps: 12_000,
            batch_len: 64,
            ..Default::default()
        };
        let until = estimate_until_parallel(&g, &cfg, 9, &rule, &ParallelConfig::with_walkers(3));
        assert_eq!(until.steps, rule.max_steps);
        assert!(!until.adaptive().unwrap().target_met);
        let mut raw = vec![0.0; until.raw_scores.len()];
        let mut valid = 0;
        for i in 0..3 {
            let w = estimate(&g, &cfg, walker_steps(rule.max_steps, 3, i), walker_seed(9, i));
            valid += w.valid_samples;
            for (acc, x) in raw.iter_mut().zip(&w.raw_scores) {
                *acc += x;
            }
        }
        assert_eq!(until.raw_scores, raw, "cap run scores the fixed-budget windows");
        assert_eq!(until.valid_samples, valid);
    }

    #[test]
    fn adaptive_zero_budget_scores_nothing() {
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let rule = StoppingRule { max_steps: 0, ..Default::default() };
        let est = estimate_until_parallel(&g, &cfg, 3, &rule, &ParallelConfig::with_walkers(4));
        assert_eq!(est.steps, 0);
        assert_eq!(est.valid_samples, 0);
        assert!(est.raw_scores.iter().all(|&x| x == 0.0));
        let report = est.adaptive().unwrap();
        assert_eq!(report.rounds, 0);
        assert!(!report.target_met);
        assert!(report.converged.iter().all(|&c| !c));
    }

    #[test]
    fn per_type_mode_latches_types_at_their_own_pace() {
        // On the lollipop, the frequent type's CI tightens well before
        // the rare one's: per-type mode must record distinct
        // convergence steps, orderable per type.
        let g = classic::lollipop(6, 5);
        let cfg = EstimatorConfig::recommended(3);
        let rule = StoppingRule {
            target_rel_ci: 0.10,
            check_every: 1_000,
            max_steps: 400_000,
            batch_len: 128,
            min_batches: 6,
            per_type: true,
            ..Default::default()
        };
        let est = estimate_until_parallel(&g, &cfg, 11, &rule, &ParallelConfig::with_walkers(2));
        let report = est.adaptive().expect("report");
        assert!(report.target_met, "both k=3 types should converge well inside the cap");
        assert!(report.converged.iter().all(|&c| c));
        let (fast, slow) =
            (*report.steps_used.iter().min().unwrap(), *report.steps_used.iter().max().unwrap());
        assert!(
            fast < slow,
            "types must converge at distinct checks (steps_used {:?})",
            report.steps_used
        );
        assert!(slow <= est.steps);
    }

    #[test]
    fn walker_budget_shares_bound_each_chain() {
        // max_steps not divisible by walkers: shares differ by one and
        // the pooled total is exact.
        let g = classic::petersen();
        let cfg = EstimatorConfig { k: 3, d: 1, ..Default::default() };
        let rule = StoppingRule {
            target_rel_ci: 1e-9,
            check_every: 100,
            max_steps: 1_003,
            batch_len: 32,
            ..Default::default()
        };
        let est = estimate_until_parallel(&g, &cfg, 1, &rule, &ParallelConfig::with_walkers(4));
        assert_eq!(est.steps, 1_003);
    }
}
