//! The expanded chain's stationary distribution π_e (Theorem 2), up to the
//! common factor 2|R(d)| that cancels in concentration estimates.

use crate::window::NodeWindow;
use gx_walks::effective_degree;

/// `π̃_e(X^{(l)}) = 2|R(d)| · π_e(X^{(l)})`, computed from the window's
/// remembered state degrees (Theorem 2):
///
/// * l = 1: `d_{X_1}`;
/// * l = 2: `1`;
/// * l > 2: `Π_{i=2}^{l−1} 1 / d_{X_i}` (interior states only).
///
/// With `non_backtracking`, degrees are replaced by nominal degrees
/// `d' = max(d − 1, 1)` (§4.2) — the NB chain's π'_e has the same shape.
pub fn pie_tilde(window: &NodeWindow, non_backtracking: bool) -> f64 {
    match window.len() {
        0 => panic!("π_e of an empty window"),
        1 => {
            let deg = window.states().next().expect("len 1").degree as usize;
            effective_degree(deg, non_backtracking) as f64
        }
        2 => 1.0,
        _ => window
            .interior_degrees()
            .map(|d| 1.0 / effective_degree(d as usize, non_backtracking) as f64)
            .product(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gx_graph::generators::classic;

    #[test]
    fn paper_worked_example_g2_l3() {
        // §3.2 example: walk on G(2) of the Figure-1 graph visiting
        // X₁=(1,2), X₂=(1,3), X₃=(3,4); |R(2)| = 8, deg(X₂) = 4:
        // π_e = (1/16)·(1/4) = 1/64, so π̃_e = 2·8·(1/64) = 1/4.
        let g = classic::paper_figure1();
        let mut w = NodeWindow::new(3, 2);
        w.push(&g, &[0, 1], 3);
        w.push(&g, &[0, 2], 4);
        w.push(&g, &[2, 3], 3);
        assert!((pie_tilde(&w, false) - 0.25).abs() < 1e-12);
        // NB: nominal degree 3 → 1/3.
        assert!((pie_tilde(&w, true) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn l2_is_uniform() {
        let g = classic::paper_figure1();
        let mut w = NodeWindow::new(2, 2);
        w.push(&g, &[0, 1], 3);
        w.push(&g, &[1, 2], 3);
        assert_eq!(pie_tilde(&w, false), 1.0);
        assert_eq!(pie_tilde(&w, true), 1.0);
    }

    #[test]
    fn l1_is_state_degree() {
        let g = classic::paper_figure1();
        let mut w = NodeWindow::new(1, 3);
        w.push(&g, &[0, 1, 2], 5);
        assert_eq!(pie_tilde(&w, false), 5.0);
        assert_eq!(pie_tilde(&w, true), 4.0);
    }

    #[test]
    fn l4_multiplies_both_interiors() {
        let g = classic::paper_figure1();
        let mut w = NodeWindow::new(4, 1);
        w.push(&g, &[1], 2);
        w.push(&g, &[0], 3);
        w.push(&g, &[2], 3);
        w.push(&g, &[3], 2);
        // interiors: nodes 0 and 2, degrees 3 and 3.
        assert!((pie_tilde(&w, false) - 1.0 / 9.0).abs() < 1e-12);
        assert!((pie_tilde(&w, true) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn empty_window_panics() {
        let w = NodeWindow::new(3, 1);
        let _ = pie_tilde(&w, false);
    }
}
