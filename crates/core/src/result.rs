//! Estimation results.

use crate::config::EstimatorConfig;
use gx_graphlets::GraphletId;

/// The outcome of one estimator run.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// The configuration that produced this estimate.
    pub config: EstimatorConfig,
    /// Number of windows scored (the paper's "random walk steps" budget).
    pub steps: usize,
    /// Windows that were valid samples (k distinct nodes).
    pub valid_samples: usize,
    /// Per-type accumulated scores `Σ_s h_i(X_s) / (α_i π̃_e(X_s))` (or
    /// `Σ_s h_i(X_s)/p̃(X_s)` under CSS). Divide by `steps` and multiply
    /// by `2|R(d)|` for unbiased counts (Eq. 4 / Eq. 7).
    pub raw_scores: Vec<f64>,
}

impl Estimate {
    /// Concentration estimates ĉ^k_i (paper Eq. 5 / Eq. 8). Returns zeros
    /// when no valid sample was seen.
    pub fn concentrations(&self) -> Vec<f64> {
        let total: f64 = self.raw_scores.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.raw_scores.len()];
        }
        self.raw_scores.iter().map(|&x| x / total).collect()
    }

    /// Concentration of one type.
    pub fn concentration(&self, id: GraphletId) -> f64 {
        assert_eq!(id.k as usize, self.config.k);
        self.concentrations()[id.index as usize]
    }

    /// Count estimates Ĉ^k_i given `2|R(d)|` (paper Eq. 4): requires the
    /// relationship-graph edge count, see
    /// [`crate::counts::relationship_edge_count`].
    pub fn counts(&self, two_r: f64) -> Vec<f64> {
        self.raw_scores.iter().map(|&x| x / self.steps as f64 * two_r).collect()
    }

    /// Fraction of windows that yielded a valid sample (the paper's
    /// "invalid samples" discussion in §4.2).
    pub fn valid_fraction(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.valid_samples as f64 / self.steps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(raw: Vec<f64>) -> Estimate {
        Estimate {
            config: EstimatorConfig { k: 3, d: 1, ..Default::default() },
            steps: 100,
            valid_samples: 80,
            raw_scores: raw,
        }
    }

    #[test]
    fn concentrations_normalize() {
        let e = mk(vec![1.0, 3.0]);
        assert_eq!(e.concentrations(), vec![0.25, 0.75]);
        assert!((e.concentration(GraphletId::new(3, 1)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_scores_give_zero_concentrations() {
        let e = mk(vec![0.0, 0.0]);
        assert_eq!(e.concentrations(), vec![0.0, 0.0]);
    }

    #[test]
    fn counts_scale_by_two_r_over_n() {
        let e = mk(vec![10.0, 40.0]);
        let c = e.counts(200.0);
        assert_eq!(c, vec![20.0, 80.0]);
    }

    #[test]
    fn valid_fraction() {
        assert!((mk(vec![]).valid_fraction() - 0.8).abs() < 1e-12);
    }
}
