//! Estimation results.

use crate::accuracy::{studentized_critical, AdaptiveReport, BatchStats};
use crate::config::EstimatorConfig;
use gx_graphlets::GraphletId;

/// The outcome of one estimator run.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// The configuration that produced this estimate.
    pub config: EstimatorConfig,
    /// Number of windows scored (the paper's "random walk steps" budget).
    pub steps: usize,
    /// Windows that were valid samples (k distinct nodes).
    pub valid_samples: usize,
    /// Per-type accumulated scores `Σ_s h_i(X_s) / (α_i π̃_e(X_s))` (or
    /// `Σ_s h_i(X_s)/p̃(X_s)` under CSS). Divide by `steps` and multiply
    /// by `2|R(d)|` for unbiased counts (Eq. 4 / Eq. 7).
    pub raw_scores: Vec<f64>,
    /// Streaming batch-means statistics collected alongside the raw
    /// scores, powering the error-bar accessors below. `None` for
    /// estimates assembled without the accumulator (hand-built results);
    /// every estimator entry point populates it.
    pub accuracy: Option<BatchStats>,
    /// Per-type convergence report from an adaptive run. Populated by
    /// [`crate::estimate_until`] / [`crate::estimate_until_parallel`]
    /// (and the `_with_walk` variant); `None` for fixed-budget runs.
    pub adaptive: Option<AdaptiveReport>,
}

impl Estimate {
    /// Concentration estimates ĉ^k_i (paper Eq. 5 / Eq. 8). Returns zeros
    /// when no valid sample was seen.
    pub fn concentrations(&self) -> Vec<f64> {
        let total: f64 = self.raw_scores.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.raw_scores.len()];
        }
        self.raw_scores.iter().map(|&x| x / total).collect()
    }

    /// Concentration of one type.
    pub fn concentration(&self, id: GraphletId) -> f64 {
        assert_eq!(id.k as usize, self.config.k);
        self.concentrations()[id.index as usize]
    }

    /// Count estimates Ĉ^k_i given `2|R(d)|` (paper Eq. 4): requires the
    /// relationship-graph edge count, see
    /// [`crate::counts::relationship_edge_count`]. A zero-step run has
    /// estimated nothing: all-zero counts (not `NaN` from the 0/0).
    pub fn counts(&self, two_r: f64) -> Vec<f64> {
        if self.steps == 0 {
            return vec![0.0; self.raw_scores.len()];
        }
        self.raw_scores.iter().map(|&x| x / self.steps as f64 * two_r).collect()
    }

    /// Fraction of windows that yielded a valid sample (the paper's
    /// "invalid samples" discussion in §4.2).
    pub fn valid_fraction(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.valid_samples as f64 / self.steps as f64
        }
    }

    /// The batch-means statistics behind the error-bar accessors, when
    /// collected.
    pub fn accuracy(&self) -> Option<&BatchStats> {
        self.accuracy.as_ref()
    }

    /// The adaptive-run convergence report, when this estimate came
    /// from `estimate_until*`.
    pub fn adaptive(&self) -> Option<&AdaptiveReport> {
        self.adaptive.as_ref()
    }

    /// The studentized critical value for this estimate's intervals:
    /// `z` while the batch count is comfortable, the matching Student-t
    /// quantile when it is small (see
    /// [`crate::accuracy::studentized_critical`]). Pass the result as
    /// the `z` argument of the interval accessors for honest
    /// small-sample coverage. `NaN` without accuracy data or under two
    /// batches.
    pub fn studentized_critical(&self, z: f64) -> f64 {
        self.accuracy().map_or(f64::NAN, |a| studentized_critical(z, a.batches()))
    }

    /// Standard error of the *per-step mean score* of type `i` — the
    /// native scale of the batch-means accumulator. Count standard
    /// errors are this times `2|R(d)|`. `NaN` without accuracy data or
    /// with fewer than two completed batches.
    pub fn std_error(&self, i: usize) -> f64 {
        self.accuracy().map_or(f64::NAN, |a| a.std_error(i))
    }

    /// Standard error of the count estimate of type `i` given `2|R(d)|`.
    pub fn count_std_error(&self, i: usize, two_r: f64) -> f64 {
        two_r * self.std_error(i)
    }

    /// Standard error of the per-step mean score of type `i` by the
    /// *overlapping*-batch-means estimator (default window) — the
    /// independent cross-check on [`Estimate::std_error`]. The two agree
    /// within estimator noise when the batch length exceeded the chain's
    /// mixing scale; a large discrepancy means both intervals are
    /// suspect. See [`BatchStats::obm_var_of_mean`]. `NaN` without
    /// accuracy data or with too few batches for the window.
    pub fn obm_std_error(&self, i: usize) -> f64 {
        self.accuracy().map_or(f64::NAN, |a| a.obm_std_error(i))
    }

    /// `z`-confidence interval for the count of type `i` (e.g. `z = 1.96`
    /// for 95%), centered on the point estimate of [`Estimate::counts`]
    /// (computed directly for type `i` — no per-type vector is built).
    /// The lower bound may be negative for noisy rare types; counts are
    /// non-negative, so callers may clamp. `(NaN, NaN)` without accuracy
    /// data.
    pub fn count_confidence_interval(&self, i: usize, two_r: f64, z: f64) -> (f64, f64) {
        let center =
            if self.steps == 0 { 0.0 } else { self.raw_scores[i] / self.steps as f64 * two_r };
        let half = z * self.count_std_error(i, two_r);
        (center - half, center + half)
    }

    /// Standard error of the concentration of type `i` (delta method on
    /// the batch means, see
    /// [`BatchStats::concentration_std_error`]).
    pub fn concentration_std_error(&self, i: usize) -> f64 {
        self.accuracy().map_or(f64::NAN, |a| a.concentration_std_error(i))
    }

    /// `z`-confidence interval for the concentration of type `i`,
    /// centered on the point estimate of [`Estimate::concentrations`]
    /// (computed directly for type `i` — no per-type vector is built).
    pub fn confidence_interval(&self, i: usize, z: f64) -> (f64, f64) {
        let total: f64 = self.raw_scores.iter().sum();
        let center = if total <= 0.0 { 0.0 } else { self.raw_scores[i] / total };
        let half = z * self.concentration_std_error(i);
        (center - half, center + half)
    }

    /// Relative half-width of the `z`-CI of type `i`'s mean score (and
    /// therefore of its count estimate — the `2|R(d)|` scale cancels).
    pub fn relative_half_width(&self, i: usize, z: f64) -> f64 {
        self.accuracy().map_or(f64::NAN, |a| a.relative_half_width(i, z))
    }

    /// Widest relative CI half-width over types with concentration at
    /// least `min_concentration` — the quantity adaptive stopping drives
    /// below its target (see
    /// [`BatchStats::max_relative_half_width`]).
    pub fn max_relative_half_width(&self, z: f64, min_concentration: f64) -> f64 {
        self.accuracy().map_or(f64::NAN, |a| a.max_relative_half_width(z, min_concentration))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(raw: Vec<f64>) -> Estimate {
        Estimate {
            config: EstimatorConfig { k: 3, d: 1, ..Default::default() },
            steps: 100,
            valid_samples: 80,
            raw_scores: raw,
            accuracy: None,
            adaptive: None,
        }
    }

    #[test]
    fn concentrations_normalize() {
        let e = mk(vec![1.0, 3.0]);
        assert_eq!(e.concentrations(), vec![0.25, 0.75]);
        assert!((e.concentration(GraphletId::new(3, 1)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_scores_give_zero_concentrations() {
        let e = mk(vec![0.0, 0.0]);
        assert_eq!(e.concentrations(), vec![0.0, 0.0]);
    }

    #[test]
    fn counts_scale_by_two_r_over_n() {
        let e = mk(vec![10.0, 40.0]);
        let c = e.counts(200.0);
        assert_eq!(c, vec![20.0, 80.0]);
    }

    #[test]
    fn zero_step_counts_are_zero_not_nan() {
        // Regression: `counts` divided by `steps` unguarded and returned
        // NaN for an empty run, unlike `valid_fraction`.
        let mut e = mk(vec![0.0, 0.0]);
        e.steps = 0;
        e.valid_samples = 0;
        let c = e.counts(200.0);
        assert_eq!(c, vec![0.0, 0.0]);
        assert!(c.iter().all(|x| !x.is_nan()));
        assert_eq!(e.valid_fraction(), 0.0);
    }

    #[test]
    fn valid_fraction() {
        assert!((mk(vec![]).valid_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn error_bar_accessors_are_nan_without_accuracy() {
        let e = mk(vec![1.0, 3.0]);
        assert!(e.std_error(0).is_nan());
        assert!(e.count_std_error(0, 10.0).is_nan());
        assert!(e.concentration_std_error(1).is_nan());
        assert!(e.relative_half_width(0, 1.96).is_nan());
        assert!(e.max_relative_half_width(1.96, 0.01).is_nan());
        let (lo, hi) = e.confidence_interval(0, 1.96);
        assert!(lo.is_nan() && hi.is_nan());
        let (lo, hi) = e.count_confidence_interval(0, 10.0, 1.96);
        assert!(lo.is_nan() && hi.is_nan());
    }

    #[test]
    fn count_ci_centers_on_point_estimate() {
        let mut e = mk(vec![10.0, 40.0]);
        // Hand-built batch stats: two batches with type-0 means 0.05 and
        // 0.15 -> mean 0.1, var of mean 0.0025, SE 0.05.
        let mut acc = crate::accuracy::ScoreAccumulator::new(2, 10);
        let mut raw = [0.0f64; 2];
        for step in 0..20 {
            // type 0 scores 0.05/step in batch 1, 0.15/step in batch 2.
            raw[0] += if step < 10 { 0.05 } else { 0.15 };
            raw[1] += 0.4;
            acc.tick(&raw);
        }
        e.accuracy = Some(acc.into_stats());
        assert!((e.std_error(0) - 0.05).abs() < 1e-12);
        assert!((e.count_std_error(0, 200.0) - 10.0).abs() < 1e-12);
        let (lo, hi) = e.count_confidence_interval(0, 200.0, 2.0);
        // point estimate: 10/100 * 200 = 20; half-width 2 * 10 = 20.
        assert!((lo - 0.0).abs() < 1e-9 && (hi - 40.0).abs() < 1e-9, "({lo}, {hi})");
        // relative half-width: 2 * 0.05 / 0.1 = 1.0
        assert!((e.relative_half_width(0, 2.0) - 1.0).abs() < 1e-9);
    }
}
