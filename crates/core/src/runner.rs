//! The unified estimation front-end: one composable entry point for
//! fixed/adaptive × sequential/parallel runs.
//!
//! Four PRs of growth left the framework fronted by six free functions
//! (`estimate`, `estimate_with_walk`, `estimate_until`,
//! `estimate_until_with_walk`, `estimate_parallel`,
//! `estimate_until_parallel`), each with its own argument order. They
//! all parameterize the *same* estimator — the paper's single framework
//! is one algorithm over `(k, d, css, nb)` — so the [`Runner`] builder
//! composes the four orthogonal axes explicitly:
//!
//! * **config** — the [`EstimatorConfig`] passed to [`Runner::new`];
//! * **budget** — [`Runner::steps`] (fixed) or [`Runner::until`]
//!   (adaptive, with a [`StoppingRule`]);
//! * **execution** — [`Runner::walkers`] / [`Runner::parallel`]
//!   (independent chains cooperating on the budget) and
//!   [`Runner::seed`];
//! * **observability** — [`Runner::on_progress`] callbacks and the
//!   resumable [`RunHandle`] from [`Runner::start`];
//! * **resilience** — [`RunHandle::checkpoint`] snapshots a live run
//!   into any writer (atomically onto disk via
//!   [`RunHandle::checkpoint_to_file`]), [`Runner::resume`] rebuilds it
//!   in a fresh process with golden-bit fidelity, and [`FaultPlan`] /
//!   [`FailingWriter`] / [`Corruption`] inject deterministic faults for
//!   robustness testing (see the [`crate::checkpoint`] module docs for
//!   the corruption model).
//!
//! Every runner path is **panic-free on bad input**: [`Runner::run`]
//! returns [`GxError`] where the legacy free functions panic (they are
//! kept as stable shorthands delegating here, so their behavior — and
//! their golden-bit outputs — are unchanged).
//!
//! ```
//! use gx_core::{EstimatorConfig, runner::Runner};
//! let g = gx_graph::generators::classic::paper_figure1();
//! let est = Runner::new(EstimatorConfig::recommended(3))
//!     .steps(20_000)
//!     .seed(7)
//!     .run(&g)
//!     .expect("valid configuration");
//! assert_eq!(est.steps, 20_000);
//! ```
//!
//! # Determinism contract
//!
//! A runner's output is a pure function of
//! `(graph, config, budget, seed, walkers)`: the same chains, scored
//! windows, and walker-order merges as the legacy entry points, bit for
//! bit — regardless of thread count ([`Runner::run`] vs
//! [`Runner::run_local`]) and regardless of how a [`RunHandle`] is
//! advanced (the persistent [`crate::estimator`] chains only ever step
//! *between* scored windows, so splitting a budget over
//! [`RunHandle::advance`] calls cannot move a sample).

use crate::accuracy::{
    default_batch_len, studentized_critical, AdaptiveTracker, BatchStats, StoppingRule,
    WalkerStatus,
};
use crate::checkpoint::{
    graph_fingerprint, put_f64, put_u64, put_u8, put_usize, read_envelope, write_atomic,
    write_envelope, Reader,
};
use crate::config::EstimatorConfig;
use crate::error::{CheckpointError, GxError};
use crate::estimator::{prewarm, AnySession, WalkSession};
use crate::parallel::{available_cores, walker_seed, walker_steps, ParallelConfig};
use crate::result::Estimate;
use gx_graph::GraphAccess;
use gx_graphlets::num_graphlets;
use gx_walks::{StateWalk, WalkRng};
use std::io::{Read, Write};
use std::path::Path;
use std::rc::Rc;

/// The run's step budget: a fixed window count, or adaptive stopping.
#[derive(Debug, Clone)]
enum Budget {
    /// No budget chosen yet — running is a [`GxError::NoBudget`].
    Unset,
    /// Score exactly `n` windows (split near-equally over walkers).
    Fixed(usize),
    /// Walk until the rule's confidence target is met (or its cap).
    Until(StoppingRule),
}

/// A progress snapshot, delivered to [`Runner::on_progress`] callbacks
/// after every increment and returned by [`RunHandle::advance`] /
/// [`RunHandle::progress`].
#[derive(Debug, Clone, Copy)]
pub struct Progress {
    /// Scored windows so far, pooled over walkers.
    pub steps: usize,
    /// Walkers cooperating on the budget.
    pub walkers: usize,
    /// Increments (adaptive: convergence checks) completed so far.
    pub rounds: usize,
    /// Pooled completed error-bar batches.
    pub batches: u64,
    /// Current widest relative CI half-width over qualifying types,
    /// studentized (the adaptive rule's `z`/floor, or 95%/1% for fixed
    /// budgets). `NaN` until two batches complete.
    pub width: f64,
    /// Whether an adaptive run has met its stopping rule (always `false`
    /// for fixed budgets).
    pub converged: bool,
    /// Whether the run is over: converged, or every walker's budget
    /// share is exhausted.
    pub finished: bool,
}

type ProgressFn = Rc<dyn Fn(&Progress)>;

/// A deterministic fault-injection plan for robustness testing —
/// attached with [`Runner::faults`], carried by the [`RunHandle`], and
/// *never* serialized into a checkpoint (a resumed run starts fault-free
/// unless the test re-attaches a plan).
///
/// Three fault families cover the crash-resilience surface:
///
/// * **checkpoint-write failures** — [`FaultPlan::fail_write_after`]
///   makes [`RunHandle::checkpoint`] return a typed I/O error after a
///   budgeted number of successful snapshots (byte-granular write
///   failures are [`FailingWriter`]'s job);
/// * **restore corruption** — [`Corruption`] damages a serialized
///   snapshot before it is offered to [`Runner::resume`];
/// * **walker-chain poisoning** — [`FaultPlan::poison`] kills a walker's
///   chain at a chosen round, exercising the quarantine path: the
///   poisoned walker is frozen, its completed batches stay pooled, and
///   the run finishes degraded on the remaining walkers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Number of [`RunHandle::checkpoint`] calls allowed to succeed;
    /// every later call fails with [`GxError::Io`] *before writing a
    /// byte*, leaving the run unperturbed. `None` never fails.
    pub fail_write_after: Option<usize>,
    /// `(walker, round)` pairs: quarantine `walker` at the start of the
    /// run's `round`-th advance (1-based), before it contributes that
    /// round's share. Entries for already-quarantined or out-of-range
    /// walkers are ignored.
    pub poison: Vec<(usize, usize)>,
}

impl FaultPlan {
    /// The empty plan: no faults (what [`Runner::new`] carries).
    pub fn none() -> Self {
        Self::default()
    }

    /// A deterministic pseudo-random plan derived from `seed` (SplitMix64):
    /// poisons one walker in `0..walkers` at a round in `1..=max_round`.
    /// Same seed, same plan — the property-test form of hand-picking a
    /// poisoning.
    pub fn from_seed(seed: u64, walkers: usize, max_round: usize) -> Self {
        assert!(walkers >= 1, "a poison plan needs at least one walker");
        assert!(max_round >= 1, "a poison plan needs at least one round");
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let walker = (next() % walkers as u64) as usize;
        let round = 1 + (next() % max_round as u64) as usize;
        Self { fail_write_after: None, poison: vec![(walker, round)] }
    }
}

/// One deterministic way to damage a serialized snapshot before handing
/// it to [`Runner::resume`] — the restore half of [`FaultPlan`]'s fault
/// model. Every corrupted image must surface as a typed
/// [`CheckpointError`], never a panic or a silently-wrong resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Keep only the first `len` bytes of the image.
    Truncate {
        /// Bytes retained (clamped to the image length).
        len: usize,
    },
    /// Flip the single bit at global bit index `bit` (byte `bit / 8`,
    /// mask `1 << (bit % 8)`).
    FlipBit {
        /// Global bit index; must be inside the image.
        bit: usize,
    },
}

impl Corruption {
    /// Applies the corruption to a snapshot image, returning the damaged
    /// copy (the original is untouched).
    pub fn apply(self, snapshot: &[u8]) -> Vec<u8> {
        match self {
            Self::Truncate { len } => snapshot[..len.min(snapshot.len())].to_vec(),
            Self::FlipBit { bit } => {
                assert!(bit / 8 < snapshot.len(), "bit index outside the snapshot");
                let mut out = snapshot.to_vec();
                out[bit / 8] ^= 1 << (bit % 8);
                out
            }
        }
    }
}

/// An [`std::io::Write`] adapter that forwards up to `byte_budget` bytes
/// and then fails every further write with
/// [`std::io::ErrorKind::WriteZero`] — the byte-granular
/// checkpoint-write fault of the robustness test suite. A failed
/// [`RunHandle::checkpoint`] through this writer must leave the handle
/// able to finish bit-identically.
#[derive(Debug)]
pub struct FailingWriter<W> {
    inner: W,
    remaining: usize,
}

impl<W> FailingWriter<W> {
    /// Wraps `inner`, allowing `byte_budget` bytes through before
    /// injecting failures.
    pub fn new(inner: W, byte_budget: usize) -> Self {
        Self { inner, remaining: byte_budget }
    }

    /// Unwraps the adapter, returning whatever was successfully written.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.remaining == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "injected checkpoint write fault",
            ));
        }
        let n = buf.len().min(self.remaining);
        let written = self.inner.write(&buf[..n])?;
        self.remaining -= written;
        Ok(written)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Builder-style front door to the whole estimation framework: config ×
/// budget × execution × observability, composed with method chaining and
/// executed with [`Runner::run`] (or driven incrementally via
/// [`Runner::start`]). See the [module docs](crate::runner) for the axes
/// and the determinism contract.
#[derive(Clone)]
pub struct Runner {
    cfg: EstimatorConfig,
    budget: Budget,
    walkers: usize,
    batch_width: usize,
    seed: u64,
    progress: Option<ProgressFn>,
    plan: FaultPlan,
}

impl std::fmt::Debug for Runner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("cfg", &self.cfg)
            .field("budget", &self.budget)
            .field("walkers", &self.walkers)
            .field("batch_width", &self.batch_width)
            .field("seed", &self.seed)
            .field("progress", &self.progress.as_ref().map(|_| "Fn(&Progress)"))
            .field("plan", &self.plan)
            .finish()
    }
}

impl Runner {
    /// A runner for `cfg` with no budget yet, one walker, seed 0, and no
    /// fault plan. Nothing is validated until a run entry point is
    /// called — builders never panic.
    pub fn new(cfg: EstimatorConfig) -> Self {
        Self {
            cfg,
            budget: Budget::Unset,
            walkers: 1,
            batch_width: 1,
            seed: 0,
            progress: None,
            plan: FaultPlan::none(),
        }
    }

    /// Attaches a deterministic [`FaultPlan`] (robustness testing only):
    /// injected checkpoint-write failures and walker-chain poisonings.
    /// The default is [`FaultPlan::none`].
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Fixed budget: score exactly `steps` windows (Algorithm 1's sample
    /// budget n, split near-equally over walkers). Replaces any budget
    /// chosen earlier.
    pub fn steps(mut self, steps: usize) -> Self {
        self.budget = Budget::Fixed(steps);
        self
    }

    /// Adaptive budget: walk until `rule` declares convergence or its
    /// `max_steps` cap is exhausted. Replaces any budget chosen earlier.
    pub fn until(mut self, rule: StoppingRule) -> Self {
        self.budget = Budget::Until(rule);
        self
    }

    /// Fan the budget over `walkers` independent chains (walker `i` uses
    /// the RNG stream of [`crate::parallel::walker_seed`]). `0` is
    /// reported as [`GxError::NoWalkers`] at run time.
    pub fn walkers(mut self, walkers: usize) -> Self {
        self.walkers = walkers;
        self
    }

    /// [`Runner::walkers`] from a [`ParallelConfig`] (e.g.
    /// `ParallelConfig::auto()` for one walker per core).
    pub fn parallel(self, par: ParallelConfig) -> Self {
        self.walkers(par.walkers)
    }

    /// Advances walkers through the lock-step batched engine, `b` lanes
    /// per group (clamped to the walker count at start). Width 1 — the
    /// default — is the scalar engine; wider groups interleave one walk
    /// step per lane per iteration, with each lane's next CSR lines
    /// software-prefetched while the other lanes compute, which is pure
    /// memory-level parallelism: every walker's sample stream is
    /// **bit-identical** to the scalar engine's for every width. `0` is
    /// reported as [`GxError::ZeroBatchWidth`] at run time.
    pub fn batch_width(mut self, b: usize) -> Self {
        self.batch_width = b;
        self
    }

    /// Seed of the run (walker 0 replays the sequential estimator's
    /// chain for this seed). Defaults to 0.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Registers a progress callback, invoked after every increment of
    /// the run (each adaptive convergence check; ~16 ticks over a fixed
    /// budget; every [`RunHandle::advance`] call). Observability only:
    /// the callback cannot alter the run, and output is bit-identical
    /// with or without it.
    pub fn on_progress(mut self, f: impl Fn(&Progress) + 'static) -> Self {
        self.progress = Some(Rc::new(f));
        self
    }

    /// Validates everything the run needs up front.
    fn check(&self) -> Result<(), GxError> {
        self.cfg.try_validate()?;
        if self.walkers == 0 {
            return Err(GxError::NoWalkers);
        }
        if self.batch_width == 0 {
            return Err(GxError::ZeroBatchWidth);
        }
        match &self.budget {
            Budget::Unset => Err(GxError::NoBudget),
            Budget::Fixed(_) => Ok(()),
            Budget::Until(rule) => {
                rule.try_validate()?;
                if rule.max_series_batches != 0 && self.walkers > 1 {
                    // Independent per-walker R-batching collapses would
                    // desynchronize the pooled batch lengths.
                    return Err(GxError::BoundedMemoryParallel { walkers: self.walkers });
                }
                Ok(())
            }
        }
    }

    /// Runs to completion, fanning walkers over the machine's cores when
    /// `walkers > 1` (requires `G: Sync`; the metered
    /// `ApiGraph` is deliberately not `Sync` — use [`Runner::run_local`]
    /// for crawling simulations). Output is bit-identical to
    /// [`Runner::run_local`] for every fan-out: walker order, not thread
    /// schedule, fixes every merge.
    pub fn run<G: GraphAccess + Sync>(&self, g: &G) -> Result<Estimate, GxError> {
        self.check()?;
        if self.walkers > 1 {
            // Build the shared tables once, up front: walker threads
            // must not serialize behind one cold `OnceLock` build.
            prewarm(&self.cfg);
            self.drive(g, |handle, windows| handle.advance_par(windows))
        } else {
            self.drive(g, |handle, windows| handle.advance(windows))
        }
    }

    /// [`Runner::run`] confined to the calling thread: walkers advance
    /// one after another in walker order instead of across cores.
    /// Bit-identical output; this is the path for graphs that are not
    /// `Sync` (restricted-access crawling) and what the sequential
    /// legacy shorthands delegate to.
    pub fn run_local<G: GraphAccess>(&self, g: &G) -> Result<Estimate, GxError> {
        self.drive(g, |handle, windows| handle.advance(windows))
    }

    /// The one drive loop behind [`Runner::run`] and
    /// [`Runner::run_local`] — only the advance flavor differs, so the
    /// two entry points cannot drift apart. (`start` re-validates, so
    /// callers need no separate `check`.)
    fn drive<'g, G: GraphAccess>(
        &self,
        g: &'g G,
        mut advance: impl FnMut(&mut RunHandle<'g, G>, usize) -> Progress,
    ) -> Result<Estimate, GxError> {
        let mut handle = self.start(g)?;
        let windows = self.increment(&handle);
        while !handle.is_finished() {
            advance(&mut handle, windows);
        }
        Ok(handle.finish())
    }

    /// The per-walker advance size [`Runner::run`] drives the handle
    /// with: the rule's check cadence for adaptive budgets; the whole
    /// share for fixed budgets (split into ~16 increments when a
    /// progress callback wants ticks — the chains' resumability makes
    /// the split invisible in the output).
    fn increment<G: GraphAccess>(&self, handle: &RunHandle<'_, G>) -> usize {
        match &self.budget {
            Budget::Until(rule) => rule.check_every,
            Budget::Fixed(_) if self.progress.is_some() => {
                (handle.caps.iter().copied().max().unwrap_or(0) / 16).max(1)
            }
            _ => usize::MAX,
        }
    }

    /// Starts a resumable run: primes nothing yet (each walker's chain
    /// is created lazily on its first advance), returns the
    /// [`RunHandle`] that owns the persistent chains. Requires only
    /// `GraphAccess`; the handle advances walkers on the calling thread
    /// unless [`RunHandle::advance_par`] is used.
    pub fn start<'g, G: GraphAccess>(&self, g: &'g G) -> Result<RunHandle<'g, G>, GxError> {
        self.check()?;
        let (rule, batch_len, max_steps) = match &self.budget {
            Budget::Fixed(steps) => (None, default_batch_len(*steps), *steps),
            Budget::Until(rule) => (Some(rule.clone()), rule.batch_len, rule.max_steps),
            Budget::Unset => unreachable!("check() rejects unset budgets"),
        };
        let max_series_batches = rule.as_ref().map_or(0, |r| r.max_series_batches);
        let types = num_graphlets(self.cfg.k);
        let mut sessions = Vec::new();
        sessions.resize_with(self.walkers, || None);
        Ok(RunHandle {
            g,
            cfg: self.cfg.clone(),
            rule,
            batch_len,
            max_series_batches,
            // Clamped here so a width wider than the fan-out (harmless —
            // a group can never exceed the walker count) normalizes to
            // the value checkpoints carry and `resume` validates.
            batch_width: self.batch_width.min(self.walkers),
            seed: self.seed,
            caps: (0..self.walkers).map(|i| walker_steps(max_steps, self.walkers, i)).collect(),
            sessions,
            done: vec![0; self.walkers],
            status: vec![WalkerStatus::Healthy; self.walkers],
            pooled: BatchStats::new(types, batch_len),
            pooled_batches: vec![0; self.walkers],
            tracker: AdaptiveTracker::new(types),
            rounds: 0,
            met: false,
            progress: self.progress.clone(),
            plan: self.plan.clone(),
            fingerprint: None,
            checkpoints: 0,
        })
    }

    /// Rebuilds a live [`RunHandle`] from a checkpoint stream written by
    /// [`RunHandle::checkpoint`], resuming the run against `g`.
    ///
    /// The envelope (magic, version, length, checksum) is verified
    /// before a single payload field is parsed, and the snapshot's graph
    /// fingerprint must match `g`
    /// ([`CheckpointError::GraphMismatch`] otherwise) — resuming against
    /// a different graph would silently estimate statistics of the wrong
    /// graph. Any truncated, bit-flipped, or internally inconsistent
    /// snapshot is a typed [`GxError::Checkpoint`]; no corrupt input
    /// panics.
    ///
    /// **Golden-bit contract:** checkpoint → drop the handle (or the
    /// process) → `resume` → drive to completion produces bit-identical
    /// output to the uninterrupted run — fixed and adaptive budgets, any
    /// walker count, any checkpoint cadence. Progress callbacks and
    /// fault plans do not travel in snapshots; re-attach them with
    /// [`RunHandle::on_progress`] if wanted.
    pub fn resume<'g, G: GraphAccess, R: Read>(
        g: &'g G,
        r: &mut R,
    ) -> Result<RunHandle<'g, G>, GxError> {
        let (version, payload) = read_envelope(r)?;
        let mut rd = Reader::new(&payload);
        let handle = RunHandle::decode_from(&mut rd, g, None, version)?;
        rd.finish()?;
        Ok(handle)
    }

    /// [`Runner::resume`] with a caller-supplied fingerprint of `g`,
    /// skipping the O(edges) [`graph_fingerprint`] rescan — the
    /// re-adoption path for serving layers that hold many jobs against
    /// one cached snapshot and re-resume them every scheduler round.
    ///
    /// `fingerprint` **must** be the value `graph_fingerprint(g)` would
    /// return (computed once when the snapshot was cached); passing a
    /// stale or foreign fingerprint forfeits the wrong-graph protection
    /// [`CheckpointError::GraphMismatch`] exists to provide. Debug
    /// builds verify the claim against the graph.
    pub fn resume_trusted<'g, G: GraphAccess, R: Read>(
        g: &'g G,
        fingerprint: u64,
        r: &mut R,
    ) -> Result<RunHandle<'g, G>, GxError> {
        debug_assert_eq!(
            fingerprint,
            graph_fingerprint(g),
            "resume_trusted fingerprint must match the offered graph"
        );
        let (version, payload) = read_envelope(r)?;
        let mut rd = Reader::new(&payload);
        let handle = RunHandle::decode_from(&mut rd, g, Some(fingerprint), version)?;
        rd.finish()?;
        Ok(handle)
    }

    /// [`Runner::resume`] from a checkpoint file (the counterpart of
    /// [`RunHandle::checkpoint_to_file`]).
    pub fn resume_from_file<'g, G: GraphAccess, P: AsRef<Path>>(
        g: &'g G,
        path: P,
    ) -> Result<RunHandle<'g, G>, GxError> {
        let bytes = std::fs::read(path)?;
        Self::resume(g, &mut bytes.as_slice())
    }

    /// Runs the configured budget over a caller-supplied walk — the
    /// runner form of the `_with_walk` shorthands. A supplied walk is
    /// one concrete chain, so the fan-out must be 1
    /// ([`GxError::ParallelCustomWalk`] otherwise) and the walk's
    /// dimension must match the configuration's `d`
    /// ([`GxError::WalkDimensionMismatch`]).
    ///
    /// [`Runner::seed`] has no effect here — the caller supplies both
    /// the walk's start state and the RNG, which together *are* the
    /// seed. [`Runner::on_progress`] works as on session runs: ticks at
    /// every convergence check (adaptive) or ~16 increments (fixed).
    pub fn run_with_walk<G: GraphAccess, W: StateWalk>(
        &self,
        g: &G,
        walk: W,
        rng: WalkRng,
    ) -> Result<Estimate, GxError> {
        self.cfg.try_validate()?;
        if self.walkers == 0 {
            return Err(GxError::NoWalkers);
        }
        if self.walkers > 1 {
            return Err(GxError::ParallelCustomWalk { walkers: self.walkers });
        }
        if walk.d() != self.cfg.d {
            return Err(GxError::WalkDimensionMismatch { walk_d: walk.d(), cfg_d: self.cfg.d });
        }
        match &self.budget {
            Budget::Unset => Err(GxError::NoBudget),
            Budget::Fixed(steps) => {
                let batch_len = default_batch_len(*steps);
                let mut session = WalkSession::from_parts(g, &self.cfg, walk, rng, batch_len, 0);
                match &self.progress {
                    // Splitting the budget over `run` calls cannot move
                    // a sample, so ticking is observability-only.
                    None => session.run(*steps),
                    Some(cb) => {
                        let chunk = (*steps / 16).max(1);
                        let (mut done, mut rounds) = (0usize, 0usize);
                        while done < *steps {
                            let n = chunk.min(*steps - done);
                            session.run(n);
                            done += n;
                            rounds += 1;
                            let stats = session.stats();
                            let crit = studentized_critical(1.96, stats.batches());
                            cb(&Progress {
                                steps: done,
                                walkers: 1,
                                rounds,
                                batches: stats.batches(),
                                width: stats.max_relative_half_width(crit, 0.01),
                                converged: false,
                                finished: done >= *steps,
                            });
                        }
                    }
                }
                Ok(session.into_estimate(&self.cfg))
            }
            Budget::Until(rule) => {
                rule.try_validate()?;
                let session = WalkSession::from_parts(
                    g,
                    &self.cfg,
                    walk,
                    rng,
                    rule.batch_len,
                    rule.max_series_batches,
                );
                Ok(run_adaptive_walk(session, &self.cfg, rule, self.progress.as_ref()))
            }
        }
    }
}

/// The single-chain adaptive driver for a caller-supplied walk: rounds
/// of `check_every` scored windows with a convergence check (and a
/// progress tick) after each, capped at `max_steps`, packing the result
/// and its [`crate::AdaptiveReport`]. The session-based runner paths
/// follow the identical schedule through [`RunHandle`]; this driver
/// serves the generic [`WalkSession`], which cannot live inside the
/// runtime-dispatched handle.
fn run_adaptive_walk<G: GraphAccess, W: StateWalk>(
    mut session: WalkSession<'_, G, W>,
    cfg: &EstimatorConfig,
    rule: &StoppingRule,
    progress: Option<&ProgressFn>,
) -> Estimate {
    let mut tracker = AdaptiveTracker::new(session.stats().types());
    let (mut done, mut rounds, mut met) = (0usize, 0usize, false);
    while done < rule.max_steps {
        let round = rule.check_every.min(rule.max_steps - done);
        session.run(round);
        done += round;
        rounds += 1;
        met = tracker.observe(rule, session.stats(), done);
        if let Some(cb) = progress {
            let stats = session.stats();
            let crit = rule.critical_value(stats.batches());
            cb(&Progress {
                steps: done,
                walkers: 1,
                rounds,
                batches: stats.batches(),
                width: stats.max_relative_half_width(crit, rule.min_concentration),
                converged: met,
                finished: met || done >= rule.max_steps,
            });
        }
        if met {
            break;
        }
    }
    let crit = rule.critical_value(session.stats().batches());
    let mut est = session.into_estimate(cfg);
    debug_assert_eq!(est.steps, done);
    est.adaptive = Some(tracker.report(1, rounds, done, met, crit, vec![WalkerStatus::Healthy]));
    est
}

/// A live, resumable estimation run: the persistent per-walker chains
/// ([`crate::estimator`]'s `WalkSession`/`AnySession`), advanced in
/// increments with [`RunHandle::advance`], observable between increments
/// ([`RunHandle::estimate`] / [`RunHandle::progress`]), and finished
/// with [`RunHandle::finish`].
///
/// **Determinism:** chains only ever step between scored windows, so
/// *any* sequence of `advance` calls covering the budget yields the same
/// scored-window stream; a finished handle is bit-identical to the
/// corresponding one-shot [`Runner::run`] — including walker fan-out —
/// when advanced on the run's natural schedule (any increments for fixed
/// budgets; the rule's `check_every` for adaptive ones, since the check
/// schedule decides where an adaptive run stops).
///
/// Adaptive pooling is **incremental**: each advance folds only the new
/// batch means of each walker's series into the pooled statistics
/// (chronological, walker-order — [`BatchStats::fold_series_suffix`]),
/// instead of re-pooling every walker from scratch each round. With one
/// walker the pool replays the walker's own accumulator bit for bit.
///
/// **Crash resilience:** [`RunHandle::checkpoint`] serializes the whole
/// live state between advances, and [`Runner::resume`] rebuilds it with
/// golden-bit fidelity. **Degradation:** a poisoned walker (see
/// [`FaultPlan`]) is quarantined — frozen in place, its completed
/// batches kept pooled — and the run finishes on the remaining walkers,
/// reported via [`RunHandle::walker_status`] and
/// [`crate::AdaptiveReport::degraded`].
pub struct RunHandle<'g, G: GraphAccess> {
    g: &'g G,
    cfg: EstimatorConfig,
    /// `None` for fixed budgets.
    rule: Option<StoppingRule>,
    batch_len: usize,
    /// The adaptive rule's bounded-memory cap (0 = unbounded), threaded
    /// into every walker accumulator.
    max_series_batches: usize,
    /// Lock-step engine group width (1 = scalar engine), clamped to the
    /// walker count. Travels in checkpoints (format v2) so a resumed run
    /// keeps its engine mode — though either engine resumes the other's
    /// snapshots bit-identically.
    batch_width: usize,
    seed: u64,
    /// Per-walker step budget (near-equal split of the total).
    caps: Vec<usize>,
    /// Lazily-created persistent chains, index = walker.
    sessions: Vec<Option<AnySession<'g, G>>>,
    /// Per-walker scored windows so far.
    done: Vec<usize>,
    /// Per-walker health: quarantined walkers are out of the rotation.
    status: Vec<WalkerStatus>,
    /// Pooled batch-means statistics (chronological incremental fold).
    pooled: BatchStats,
    /// Per-walker batches already folded into `pooled`.
    pooled_batches: Vec<u64>,
    tracker: AdaptiveTracker,
    rounds: usize,
    met: bool,
    progress: Option<ProgressFn>,
    /// Fault-injection plan (empty outside robustness tests).
    plan: FaultPlan,
    /// Cached [`graph_fingerprint`] — computed on the first checkpoint,
    /// so fault-free runs never pay the O(edges) scan.
    fingerprint: Option<u64>,
    /// Checkpoints successfully taken (drives
    /// [`FaultPlan::fail_write_after`]).
    checkpoints: usize,
}

impl<G: GraphAccess> std::fmt::Debug for RunHandle<'_, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunHandle")
            .field("cfg", &self.cfg)
            .field("rule", &self.rule)
            .field("walkers", &self.caps.len())
            .field("seed", &self.seed)
            .field("steps", &self.steps())
            .field("rounds", &self.rounds)
            .field("finished", &self.is_finished())
            .finish_non_exhaustive()
    }
}

impl<'g, G: GraphAccess> RunHandle<'g, G> {
    /// Per-walker share of an advance by `windows` scored windows:
    /// remaining budget capped, zero for quarantined walkers, zero for
    /// everyone once the run has converged. Precomputed before any chain
    /// moves, so [`RunHandle::advance`] and [`RunHandle::advance_par`]
    /// distribute identically — quarantines included.
    fn shares(&self, windows: usize) -> Vec<usize> {
        if self.met {
            return vec![0; self.caps.len()];
        }
        self.caps
            .iter()
            .zip(&self.done)
            .zip(&self.status)
            .map(|((&c, &d), s)| match s {
                WalkerStatus::Healthy => windows.min(c - d),
                WalkerStatus::Quarantined { .. } => 0,
            })
            .collect()
    }

    /// Fires any [`FaultPlan::poison`] entries due at the upcoming round
    /// (1-based), quarantining their walkers before shares are computed.
    /// Already-quarantined and out-of-range walkers are ignored.
    fn apply_poison(&mut self) {
        let next_round = self.rounds + 1;
        for &(w, at) in &self.plan.poison {
            if at <= next_round && w < self.status.len() {
                if let s @ WalkerStatus::Healthy = &mut self.status[w] {
                    *s = WalkerStatus::Quarantined { round: next_round };
                }
            }
        }
    }

    /// Advances every still-budgeted walker by up to `windows` more
    /// scored windows on the calling thread (walker order), then pools
    /// the new batches, evaluates the stopping rule (adaptive budgets),
    /// and fires the progress callback.
    ///
    /// `advance(0)` is a **documented no-op**: no chain moves, no round
    /// is counted, no callback fires — it just returns the current
    /// [`Progress`] (the same snapshot [`RunHandle::progress`] reads),
    /// which makes it a safe poll. A finished run behaves the same for
    /// any `windows`.
    pub fn advance(&mut self, windows: usize) -> Progress {
        if windows == 0 {
            return self.snapshot();
        }
        self.apply_poison();
        let shares = self.shares(windows);
        if shares.iter().all(|&s| s == 0) {
            return self.snapshot();
        }
        let (g, cfg, seed, batch_len, cap) =
            (self.g, &self.cfg, self.seed, self.batch_len, self.max_series_batches);
        if self.batch_width <= 1 {
            for (i, &share) in shares.iter().enumerate() {
                if share == 0 {
                    continue;
                }
                self.sessions[i]
                    .get_or_insert_with(|| {
                        AnySession::new(g, cfg, walker_seed(seed, i), batch_len, cap)
                    })
                    .run(share);
            }
        } else {
            // Lock-step engine: walkers advance in groups of
            // `batch_width` lanes. Grouping is pure scheduling — each
            // lane's stream is bit-identical to its scalar run — so the
            // group boundaries need no relation to thread chunks or
            // checkpoint cadence.
            let mut base = 0usize;
            for chunk in self.sessions.chunks_mut(self.batch_width) {
                let mut group = Vec::with_capacity(chunk.len());
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let i = base + off;
                    if shares[i] == 0 {
                        continue;
                    }
                    let s = slot.get_or_insert_with(|| {
                        AnySession::new(g, cfg, walker_seed(seed, i), batch_len, cap)
                    });
                    group.push((s, shares[i]));
                }
                AnySession::run_batch(&mut group);
                base += chunk.len();
            }
        }
        self.after_round(&shares)
    }

    /// Bookkeeping shared by the sequential and threaded advances.
    fn after_round(&mut self, shares: &[usize]) -> Progress {
        for (d, &s) in self.done.iter_mut().zip(shares) {
            *d += s;
        }
        self.rounds += 1;
        // Incremental pooled-merge, adaptive budgets only: fold each
        // walker's new batches (walker order) into the chronological
        // pooled stream. Fixed budgets never consult the pool — their
        // final (and progress) statistics are the legacy walker-order
        // Chan merge of the sessions' own streams, so maintaining a
        // second copy here would be pure waste.
        if let Some(rule) = &self.rule {
            if rule.max_series_batches != 0 {
                // Bounded memory (single walker by construction): the
                // R-batching collapse rewrites the walker's series in
                // place, so suffix counters cannot describe it — the
                // pool mirrors the walker's own (possibly collapsed)
                // statistics wholesale. Below the cap this clone equals
                // the suffix fold bit for bit (one walker's fold is a
                // replay), so bit-identity with the unbounded rule holds
                // until the first collapse.
                if let Some(session) = self.sessions[0].as_ref() {
                    self.pooled = session.stats().clone();
                    self.pooled_batches[0] = self.pooled.batches();
                }
            } else {
                for (session, folded) in self.sessions.iter().zip(&mut self.pooled_batches) {
                    if let Some(session) = session.as_ref() {
                        let stats = session.stats();
                        if stats.batches() > *folded {
                            self.pooled.fold_series_suffix(stats, *folded);
                            *folded = stats.batches();
                        }
                    }
                }
            }
            self.met = self.tracker.observe(rule, &self.pooled, self.steps());
        }
        let p = self.snapshot();
        if let Some(cb) = &self.progress {
            cb(&p);
        }
        p
    }

    /// Scored windows so far, pooled over walkers.
    pub fn steps(&self) -> usize {
        self.done.iter().sum()
    }

    /// Whether the run is over: adaptive target met, or every walker
    /// either exhausted its budget share or sits in quarantine (a
    /// quarantined walker's remaining share is forfeit — the run
    /// *completes*, degraded, instead of spinning on a dead chain).
    pub fn is_finished(&self) -> bool {
        self.met
            || self
                .done
                .iter()
                .zip(&self.caps)
                .zip(&self.status)
                .all(|((d, c), s)| d >= c || !matches!(s, WalkerStatus::Healthy))
    }

    /// Per-walker health, index = walker. All [`WalkerStatus::Healthy`]
    /// unless a [`FaultPlan`] poisoned a chain.
    pub fn walker_status(&self) -> &[WalkerStatus] {
        &self.status
    }

    /// Whether any walker has been quarantined — the handle-level twin
    /// of [`crate::AdaptiveReport::degraded`] (which fixed-budget runs
    /// do not carry).
    pub fn degraded(&self) -> bool {
        self.status.iter().any(|s| !matches!(s, WalkerStatus::Healthy))
    }

    /// (Re-)attaches a progress callback — e.g. after [`Runner::resume`],
    /// since callbacks cannot travel in a snapshot.
    pub fn on_progress(&mut self, f: impl Fn(&Progress) + 'static) {
        self.progress = Some(Rc::new(f));
    }

    /// (Re-)attaches a [`FaultPlan`] — the fault-injection half of
    /// re-adoption. Plans never travel in snapshots (a resumed run
    /// starts fault-free), so a robustness harness that resumes a job
    /// re-arms its remaining faults here. Entries for already-quarantined
    /// walkers are ignored, making it safe to re-attach a plan whose
    /// earlier poisonings the snapshot already absorbed.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// The engine's lock-step group width (1 = scalar engine).
    pub fn batch_width(&self) -> usize {
        self.batch_width
    }

    /// Switches the engine mode for subsequent advances, clamped to
    /// `1..=walkers`. Safe at any point — including on a handle resumed
    /// from a snapshot taken under the other engine — because every
    /// width's sample streams are bit-identical; checkpoints taken after
    /// the switch carry the new width.
    pub fn set_batch_width(&mut self, b: usize) {
        self.batch_width = b.clamp(1, self.caps.len());
    }

    /// Pre-seeds the handle's cached [`graph_fingerprint`] so the first
    /// [`RunHandle::checkpoint`] skips the O(edges) scan — the fresh-start
    /// counterpart of [`Runner::resume_trusted`] for serving layers that
    /// fingerprint each snapshot once at cache-intern time.
    ///
    /// `fingerprint` **must** be `graph_fingerprint` of this handle's
    /// graph; a wrong value would stamp every checkpoint with a foreign
    /// identity and poison later resumes. Debug builds verify the claim.
    pub fn adopt_fingerprint(&mut self, fingerprint: u64) {
        debug_assert_eq!(
            fingerprint,
            graph_fingerprint(self.g),
            "adopted fingerprint must match the handle's graph"
        );
        self.fingerprint = Some(fingerprint);
    }

    /// The current progress snapshot (also what [`RunHandle::advance`]
    /// returns).
    pub fn progress(&self) -> Progress {
        self.snapshot()
    }

    /// The fixed-budget statistics: the legacy walker-order Chan merge
    /// of the sessions' own streams (one walker: that chain's stream,
    /// untouched) — the same fold [`RunHandle::finish`] packs, so
    /// progress widths and the final estimate's widths agree bitwise.
    fn fixed_stats(&self) -> BatchStats {
        let mut stats = BatchStats::new(num_graphlets(self.cfg.k), self.batch_len);
        for session in self.sessions.iter().flatten() {
            stats.merge(session.stats());
        }
        stats
    }

    fn snapshot(&self) -> Progress {
        let (batches, width) = match &self.rule {
            Some(rule) => {
                let crit = rule.critical_value(self.pooled.batches());
                (
                    self.pooled.batches(),
                    self.pooled.max_relative_half_width(crit, rule.min_concentration),
                )
            }
            None => {
                let stats = self.fixed_stats();
                let crit = studentized_critical(1.96, stats.batches());
                (stats.batches(), stats.max_relative_half_width(crit, 0.01))
            }
        };
        Progress {
            steps: self.steps(),
            walkers: self.caps.len(),
            rounds: self.rounds,
            batches,
            width,
            converged: self.met,
            finished: self.is_finished(),
        }
    }

    /// An interim [`Estimate`] of the run so far — raw scores, error
    /// bars, and (for adaptive budgets) the convergence report, exactly
    /// as [`RunHandle::finish`] would pack them at this point.
    pub fn estimate(&self) -> Estimate {
        let accuracy = match &self.rule {
            Some(_) => self.pooled.clone(),
            None => self.fixed_stats(),
        };
        self.assemble(accuracy)
    }

    /// Consumes the handle, returning the final [`Estimate`]. See the
    /// type docs for the bit-identity contract with one-shot runs.
    pub fn finish(mut self) -> Estimate {
        // Same packing as `estimate`, but the pooled statistics (which
        // carry the full batch-mean series) are moved, not cloned.
        let accuracy = match &self.rule {
            Some(_) => std::mem::replace(&mut self.pooled, BatchStats::new(0, 1)),
            None => self.fixed_stats(),
        };
        self.assemble(accuracy)
    }

    /// Packs the handle's current state around the chosen accuracy
    /// statistics (the pool for adaptive budgets, the walker-order Chan
    /// merge for fixed ones).
    fn assemble(&self, accuracy: BatchStats) -> Estimate {
        debug_assert_eq!(
            self.steps(),
            self.sessions.iter().flatten().map(|s| s.scored()).sum::<usize>(),
            "round bookkeeping must match the sessions' scored windows"
        );
        let types = num_graphlets(self.cfg.k);
        let mut raw = vec![0.0f64; types];
        let mut valid = 0usize;
        for session in self.sessions.iter().flatten() {
            for (acc, x) in raw.iter_mut().zip(session.raw()) {
                *acc += x;
            }
            valid += session.valid();
        }
        let adaptive = self.rule.as_ref().map(|rule| {
            let crit = rule.critical_value(accuracy.batches());
            self.tracker.report(
                self.caps.len(),
                self.rounds,
                self.steps(),
                self.met,
                crit,
                self.status.clone(),
            )
        });
        Estimate {
            config: self.cfg.clone(),
            steps: self.steps(),
            valid_samples: valid,
            raw_scores: raw,
            accuracy: Some(accuracy),
            adaptive,
        }
    }

    /// Serializes the run's complete live state into `w` as a versioned,
    /// checksummed snapshot: configuration, budget, per-walker RNG raw
    /// state, walk positions, scoring windows, raw scores, batch-means
    /// accumulators, pooled statistics, and the adaptive tracker's
    /// latches. Call it between advances, at any cadence — resuming via
    /// [`Runner::resume`] and driving to completion reproduces the
    /// uninterrupted run bit for bit.
    ///
    /// Fails with [`GxError::Io`] on writer errors (and, under a
    /// [`FaultPlan::fail_write_after`] budget, by injection — before a
    /// byte is written). A failed checkpoint never perturbs the run: the
    /// handle advances and finishes exactly as if the call had not
    /// happened.
    pub fn checkpoint<W: Write>(&mut self, w: &mut W) -> Result<(), GxError> {
        if let Some(allowed) = self.plan.fail_write_after {
            if self.checkpoints >= allowed {
                return Err(GxError::Io(std::io::ErrorKind::WriteZero));
            }
        }
        let fingerprint = match self.fingerprint {
            Some(fp) => fp,
            None => {
                let fp = graph_fingerprint(self.g);
                self.fingerprint = Some(fp);
                fp
            }
        };
        let payload = self.encode_payload(fingerprint);
        write_envelope(&payload, w)?;
        self.checkpoints += 1;
        Ok(())
    }

    /// [`RunHandle::checkpoint`] onto disk via
    /// [`crate::checkpoint::write_atomic`] (temporary sibling → fsync →
    /// rename): a crash mid-write leaves the previous checkpoint file
    /// intact, never a torn half-write — the property that makes a live
    /// checkpoint cadence safe.
    pub fn checkpoint_to_file<P: AsRef<Path>>(&mut self, path: P) -> Result<(), GxError> {
        let mut bytes = Vec::new();
        self.checkpoint(&mut bytes)?;
        write_atomic(path, &bytes)
    }

    /// The flat field encoding behind [`RunHandle::checkpoint`] (the
    /// envelope is layered on top by the caller).
    fn encode_payload(&self, fingerprint: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u64(&mut buf, fingerprint);
        put_usize(&mut buf, self.cfg.k);
        put_usize(&mut buf, self.cfg.d);
        put_u8(&mut buf, self.cfg.css as u8);
        put_u8(&mut buf, self.cfg.non_backtracking as u8);
        put_usize(&mut buf, self.cfg.burn_in);
        match &self.rule {
            None => put_u8(&mut buf, 0),
            Some(rule) => {
                put_u8(&mut buf, 1);
                put_f64(&mut buf, rule.target_rel_ci);
                put_usize(&mut buf, rule.check_every);
                put_usize(&mut buf, rule.max_steps);
                put_f64(&mut buf, rule.z);
                put_usize(&mut buf, rule.batch_len);
                put_u64(&mut buf, rule.min_batches);
                put_f64(&mut buf, rule.min_concentration);
                put_u8(&mut buf, rule.per_type as u8);
                put_usize(&mut buf, rule.max_series_batches);
            }
        }
        put_usize(&mut buf, self.batch_len);
        put_u64(&mut buf, self.seed);
        put_usize(&mut buf, self.caps.len());
        put_usize(&mut buf, self.batch_width);
        for &c in &self.caps {
            put_usize(&mut buf, c);
        }
        for &d in &self.done {
            put_usize(&mut buf, d);
        }
        for s in &self.status {
            s.encode_into(&mut buf);
        }
        put_usize(&mut buf, self.rounds);
        put_u8(&mut buf, self.met as u8);
        self.tracker.encode_into(&mut buf);
        self.pooled.encode_into(&mut buf);
        for &b in &self.pooled_batches {
            put_u64(&mut buf, b);
        }
        for s in &self.sessions {
            match s {
                None => put_u8(&mut buf, 0),
                Some(s) => {
                    put_u8(&mut buf, 1);
                    s.encode_into(&mut buf);
                }
            }
        }
        buf
    }

    /// Inverse of [`RunHandle::encode_payload`], validating every field
    /// against its domain, the graph, and the other fields — a
    /// checksum-valid but internally inconsistent payload is a typed
    /// [`CheckpointError`], never a panic.
    fn decode_from(
        r: &mut Reader<'_>,
        g: &'g G,
        trusted: Option<u64>,
        version: u32,
    ) -> Result<Self, GxError> {
        let expected = r.u64("handle.fingerprint")?;
        // A trusted fingerprint (see `Runner::resume_trusted`) replaces
        // the O(edges) rescan with the caller's cached value.
        let found = trusted.unwrap_or_else(|| graph_fingerprint(g));
        if expected != found {
            return Err(CheckpointError::GraphMismatch { expected, found }.into());
        }
        let cfg = EstimatorConfig {
            k: r.usize("cfg.k")?,
            d: r.usize("cfg.d")?,
            css: decode_bool(r, "cfg.css")?,
            non_backtracking: decode_bool(r, "cfg.non_backtracking")?,
            burn_in: r.usize("cfg.burn_in")?,
        };
        if cfg.try_validate().is_err() {
            return Err(CheckpointError::Malformed { what: "cfg" }.into());
        }
        let rule = match r.u8("rule.tag")? {
            0 => None,
            1 => {
                let rule = StoppingRule {
                    target_rel_ci: r.f64("rule.target_rel_ci")?,
                    check_every: r.usize("rule.check_every")?,
                    max_steps: r.usize("rule.max_steps")?,
                    z: r.f64("rule.z")?,
                    batch_len: r.usize("rule.batch_len")?,
                    min_batches: r.u64("rule.min_batches")?,
                    min_concentration: r.f64("rule.min_concentration")?,
                    per_type: decode_bool(r, "rule.per_type")?,
                    max_series_batches: r.usize("rule.max_series_batches")?,
                };
                if rule.try_validate().is_err() {
                    return Err(CheckpointError::Malformed { what: "rule" }.into());
                }
                Some(rule)
            }
            _ => return Err(CheckpointError::Malformed { what: "rule.tag" }.into()),
        };
        let batch_len = r.usize("handle.batch_len")?;
        if batch_len == 0 || rule.as_ref().is_some_and(|r| r.batch_len != batch_len) {
            return Err(CheckpointError::Malformed { what: "handle.batch_len" }.into());
        }
        let seed = r.u64("handle.seed")?;
        let walkers = r.count(1 << 16, "handle.walkers")?;
        if walkers == 0 {
            return Err(CheckpointError::Malformed { what: "handle.walkers" }.into());
        }
        let max_series_batches = rule.as_ref().map_or(0, |r| r.max_series_batches);
        if max_series_batches != 0 && walkers > 1 {
            // check() never lets this combination start a run.
            return Err(CheckpointError::Malformed { what: "rule.max_series_batches" }.into());
        }
        // Format v2 added the engine's group width; v1 snapshots are the
        // scalar engine (width 1). `start()` clamps the width to the
        // walker count, so anything wider — or zero — is corruption.
        let batch_width = if version >= 2 {
            let bw = r.usize("handle.batch_width")?;
            if bw == 0 || bw > walkers {
                return Err(CheckpointError::Malformed { what: "handle.batch_width" }.into());
            }
            bw
        } else {
            1
        };
        let mut caps = Vec::with_capacity(walkers);
        for _ in 0..walkers {
            caps.push(r.usize("handle.caps")?);
        }
        let mut done = Vec::with_capacity(walkers);
        for &cap in &caps {
            let d = r.usize("handle.done")?;
            if d > cap {
                return Err(CheckpointError::Malformed { what: "handle.done" }.into());
            }
            done.push(d);
        }
        let mut status = Vec::with_capacity(walkers);
        for _ in 0..walkers {
            status.push(WalkerStatus::decode_from(r)?);
        }
        let rounds = r.usize("handle.rounds")?;
        let met = decode_bool(r, "handle.met")?;
        let tracker = AdaptiveTracker::decode_from(r)?;
        let types = num_graphlets(cfg.k);
        if tracker.types() != types {
            return Err(CheckpointError::Malformed { what: "handle.tracker" }.into());
        }
        let pooled = BatchStats::decode_from(r)?;
        let pool_ok = pooled.types() == types
            && match (&rule, max_series_batches) {
                // Fixed budgets never fold the pool.
                (None, _) => pooled.batches() == 0 && pooled.batch_len() == batch_len,
                (Some(_), 0) => pooled.batch_len() == batch_len,
                // R-batching collapses double the pooled batch length.
                (Some(_), _) => pooled.batch_len() % batch_len == 0,
            };
        if !pool_ok {
            return Err(CheckpointError::Malformed { what: "handle.pooled" }.into());
        }
        let mut pooled_batches = Vec::with_capacity(walkers);
        for _ in 0..walkers {
            pooled_batches.push(r.u64("handle.pooled_batches")?);
        }
        let mut sessions = Vec::with_capacity(walkers);
        for &scored in &done {
            match r.u8("handle.session.tag")? {
                0 if scored == 0 => sessions.push(None),
                0 => return Err(CheckpointError::Malformed { what: "handle.session" }.into()),
                1 => {
                    let session = AnySession::decode_from(r, g, &cfg)?;
                    if session.scored() != scored {
                        return Err(
                            CheckpointError::Malformed { what: "handle.session.scored" }.into()
                        );
                    }
                    sessions.push(Some(session));
                }
                _ => return Err(CheckpointError::Malformed { what: "handle.session.tag" }.into()),
            }
        }
        Ok(Self {
            g,
            cfg,
            rule,
            batch_len,
            max_series_batches,
            batch_width,
            seed,
            caps,
            sessions,
            done,
            status,
            pooled,
            pooled_batches,
            tracker,
            rounds,
            met,
            progress: None,
            plan: FaultPlan::none(),
            fingerprint: Some(expected),
            checkpoints: 0,
        })
    }
}

/// Reads a `bool` stored as a strict `0`/`1` byte.
fn decode_bool(r: &mut Reader<'_>, what: &'static str) -> Result<bool, CheckpointError> {
    match r.u8(what)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(CheckpointError::Malformed { what }),
    }
}

impl<'g, G: GraphAccess + Sync> RunHandle<'g, G> {
    /// [`RunHandle::advance`] with the walkers fanned across the
    /// machine's cores (one OS thread per core, each running a
    /// contiguous chunk of walkers). State evolution — and therefore
    /// every subsequent output — is bit-identical to [`RunHandle::advance`]:
    /// shares (quarantines included) are precomputed before any thread
    /// spawns, and pooling and merging happen on the calling thread in
    /// walker order.
    ///
    /// `advance_par(0)` is the same documented no-op as
    /// [`RunHandle::advance`]`(0)`: no threads spawn, nothing moves, the
    /// current [`Progress`] is returned.
    pub fn advance_par(&mut self, windows: usize) -> Progress {
        if windows == 0 {
            return self.snapshot();
        }
        self.apply_poison();
        let shares = self.shares(windows);
        if shares.iter().all(|&s| s == 0) {
            return self.snapshot();
        }
        let threads = available_cores().min(self.sessions.len());
        let chunk = self.sessions.len().div_ceil(threads);
        let (g, cfg, seed, batch_len, cap) =
            (self.g, &self.cfg, self.seed, self.batch_len, self.max_series_batches);
        let bw = self.batch_width;
        std::thread::scope(|scope| {
            for (c, slots) in self.sessions.chunks_mut(chunk).enumerate() {
                let shares = &shares;
                scope.spawn(move || {
                    if bw <= 1 {
                        for (off, slot) in slots.iter_mut().enumerate() {
                            let i = c * chunk + off;
                            if shares[i] == 0 {
                                continue;
                            }
                            slot.get_or_insert_with(|| {
                                AnySession::new(g, cfg, walker_seed(seed, i), batch_len, cap)
                            })
                            .run(shares[i]);
                        }
                    } else {
                        // Lock-step groups within this thread's walkers.
                        // Group boundaries are scheduling-only (each
                        // lane's stream is bit-identical regardless), so
                        // sub-chunking the thread chunk is fine even when
                        // the two chunk sizes do not divide evenly.
                        let mut base = 0usize;
                        for sub in slots.chunks_mut(bw) {
                            let mut group = Vec::with_capacity(sub.len());
                            for (off, slot) in sub.iter_mut().enumerate() {
                                let i = c * chunk + base + off;
                                if shares[i] == 0 {
                                    continue;
                                }
                                let s = slot.get_or_insert_with(|| {
                                    AnySession::new(g, cfg, walker_seed(seed, i), batch_len, cap)
                                });
                                group.push((s, shares[i]));
                            }
                            AnySession::run_batch(&mut group);
                            base += sub.len();
                        }
                    }
                });
            }
        });
        self.after_round(&shares)
    }
}
