//! The unified estimation front-end: one composable entry point for
//! fixed/adaptive × sequential/parallel runs.
//!
//! Four PRs of growth left the framework fronted by six free functions
//! (`estimate`, `estimate_with_walk`, `estimate_until`,
//! `estimate_until_with_walk`, `estimate_parallel`,
//! `estimate_until_parallel`), each with its own argument order. They
//! all parameterize the *same* estimator — the paper's single framework
//! is one algorithm over `(k, d, css, nb)` — so the [`Runner`] builder
//! composes the four orthogonal axes explicitly:
//!
//! * **config** — the [`EstimatorConfig`] passed to [`Runner::new`];
//! * **budget** — [`Runner::steps`] (fixed) or [`Runner::until`]
//!   (adaptive, with a [`StoppingRule`]);
//! * **execution** — [`Runner::walkers`] / [`Runner::parallel`]
//!   (independent chains cooperating on the budget) and
//!   [`Runner::seed`];
//! * **observability** — [`Runner::on_progress`] callbacks and the
//!   resumable [`RunHandle`] from [`Runner::start`].
//!
//! Every runner path is **panic-free on bad input**: [`Runner::run`]
//! returns [`GxError`] where the legacy free functions panic (they are
//! kept as stable shorthands delegating here, so their behavior — and
//! their golden-bit outputs — are unchanged).
//!
//! ```
//! use gx_core::{EstimatorConfig, runner::Runner};
//! let g = gx_graph::generators::classic::paper_figure1();
//! let est = Runner::new(EstimatorConfig::recommended(3))
//!     .steps(20_000)
//!     .seed(7)
//!     .run(&g)
//!     .expect("valid configuration");
//! assert_eq!(est.steps, 20_000);
//! ```
//!
//! # Determinism contract
//!
//! A runner's output is a pure function of
//! `(graph, config, budget, seed, walkers)`: the same chains, scored
//! windows, and walker-order merges as the legacy entry points, bit for
//! bit — regardless of thread count ([`Runner::run`] vs
//! [`Runner::run_local`]) and regardless of how a [`RunHandle`] is
//! advanced (the persistent [`crate::estimator`] chains only ever step
//! *between* scored windows, so splitting a budget over
//! [`RunHandle::advance`] calls cannot move a sample).

use crate::accuracy::{
    default_batch_len, studentized_critical, AdaptiveTracker, BatchStats, StoppingRule,
};
use crate::config::EstimatorConfig;
use crate::error::GxError;
use crate::estimator::{prewarm, AnySession, WalkSession};
use crate::parallel::{available_cores, walker_seed, walker_steps, ParallelConfig};
use crate::result::Estimate;
use gx_graph::GraphAccess;
use gx_graphlets::num_graphlets;
use gx_walks::{StateWalk, WalkRng};
use std::rc::Rc;

/// The run's step budget: a fixed window count, or adaptive stopping.
#[derive(Debug, Clone)]
enum Budget {
    /// No budget chosen yet — running is a [`GxError::NoBudget`].
    Unset,
    /// Score exactly `n` windows (split near-equally over walkers).
    Fixed(usize),
    /// Walk until the rule's confidence target is met (or its cap).
    Until(StoppingRule),
}

/// A progress snapshot, delivered to [`Runner::on_progress`] callbacks
/// after every increment and returned by [`RunHandle::advance`] /
/// [`RunHandle::progress`].
#[derive(Debug, Clone, Copy)]
pub struct Progress {
    /// Scored windows so far, pooled over walkers.
    pub steps: usize,
    /// Walkers cooperating on the budget.
    pub walkers: usize,
    /// Increments (adaptive: convergence checks) completed so far.
    pub rounds: usize,
    /// Pooled completed error-bar batches.
    pub batches: u64,
    /// Current widest relative CI half-width over qualifying types,
    /// studentized (the adaptive rule's `z`/floor, or 95%/1% for fixed
    /// budgets). `NaN` until two batches complete.
    pub width: f64,
    /// Whether an adaptive run has met its stopping rule (always `false`
    /// for fixed budgets).
    pub converged: bool,
    /// Whether the run is over: converged, or every walker's budget
    /// share is exhausted.
    pub finished: bool,
}

type ProgressFn = Rc<dyn Fn(&Progress)>;

/// Builder-style front door to the whole estimation framework: config ×
/// budget × execution × observability, composed with method chaining and
/// executed with [`Runner::run`] (or driven incrementally via
/// [`Runner::start`]). See the [module docs](crate::runner) for the axes
/// and the determinism contract.
#[derive(Clone)]
pub struct Runner {
    cfg: EstimatorConfig,
    budget: Budget,
    walkers: usize,
    seed: u64,
    progress: Option<ProgressFn>,
}

impl std::fmt::Debug for Runner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("cfg", &self.cfg)
            .field("budget", &self.budget)
            .field("walkers", &self.walkers)
            .field("seed", &self.seed)
            .field("progress", &self.progress.as_ref().map(|_| "Fn(&Progress)"))
            .finish()
    }
}

impl Runner {
    /// A runner for `cfg` with no budget yet, one walker, and seed 0.
    /// Nothing is validated until a run entry point is called — builders
    /// never panic.
    pub fn new(cfg: EstimatorConfig) -> Self {
        Self { cfg, budget: Budget::Unset, walkers: 1, seed: 0, progress: None }
    }

    /// Fixed budget: score exactly `steps` windows (Algorithm 1's sample
    /// budget n, split near-equally over walkers). Replaces any budget
    /// chosen earlier.
    pub fn steps(mut self, steps: usize) -> Self {
        self.budget = Budget::Fixed(steps);
        self
    }

    /// Adaptive budget: walk until `rule` declares convergence or its
    /// `max_steps` cap is exhausted. Replaces any budget chosen earlier.
    pub fn until(mut self, rule: StoppingRule) -> Self {
        self.budget = Budget::Until(rule);
        self
    }

    /// Fan the budget over `walkers` independent chains (walker `i` uses
    /// the RNG stream of [`crate::parallel::walker_seed`]). `0` is
    /// reported as [`GxError::NoWalkers`] at run time.
    pub fn walkers(mut self, walkers: usize) -> Self {
        self.walkers = walkers;
        self
    }

    /// [`Runner::walkers`] from a [`ParallelConfig`] (e.g.
    /// `ParallelConfig::auto()` for one walker per core).
    pub fn parallel(self, par: ParallelConfig) -> Self {
        self.walkers(par.walkers)
    }

    /// Seed of the run (walker 0 replays the sequential estimator's
    /// chain for this seed). Defaults to 0.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Registers a progress callback, invoked after every increment of
    /// the run (each adaptive convergence check; ~16 ticks over a fixed
    /// budget; every [`RunHandle::advance`] call). Observability only:
    /// the callback cannot alter the run, and output is bit-identical
    /// with or without it.
    pub fn on_progress(mut self, f: impl Fn(&Progress) + 'static) -> Self {
        self.progress = Some(Rc::new(f));
        self
    }

    /// Validates everything the run needs up front.
    fn check(&self) -> Result<(), GxError> {
        self.cfg.try_validate()?;
        if self.walkers == 0 {
            return Err(GxError::NoWalkers);
        }
        match &self.budget {
            Budget::Unset => Err(GxError::NoBudget),
            Budget::Fixed(_) => Ok(()),
            Budget::Until(rule) => {
                rule.try_validate()?;
                Ok(())
            }
        }
    }

    /// Runs to completion, fanning walkers over the machine's cores when
    /// `walkers > 1` (requires `G: Sync`; the metered
    /// `ApiGraph` is deliberately not `Sync` — use [`Runner::run_local`]
    /// for crawling simulations). Output is bit-identical to
    /// [`Runner::run_local`] for every fan-out: walker order, not thread
    /// schedule, fixes every merge.
    pub fn run<G: GraphAccess + Sync>(&self, g: &G) -> Result<Estimate, GxError> {
        self.check()?;
        if self.walkers > 1 {
            // Build the shared tables once, up front: walker threads
            // must not serialize behind one cold `OnceLock` build.
            prewarm(&self.cfg);
            self.drive(g, |handle, windows| handle.advance_par(windows))
        } else {
            self.drive(g, |handle, windows| handle.advance(windows))
        }
    }

    /// [`Runner::run`] confined to the calling thread: walkers advance
    /// one after another in walker order instead of across cores.
    /// Bit-identical output; this is the path for graphs that are not
    /// `Sync` (restricted-access crawling) and what the sequential
    /// legacy shorthands delegate to.
    pub fn run_local<G: GraphAccess>(&self, g: &G) -> Result<Estimate, GxError> {
        self.drive(g, |handle, windows| handle.advance(windows))
    }

    /// The one drive loop behind [`Runner::run`] and
    /// [`Runner::run_local`] — only the advance flavor differs, so the
    /// two entry points cannot drift apart. (`start` re-validates, so
    /// callers need no separate `check`.)
    fn drive<'g, G: GraphAccess>(
        &self,
        g: &'g G,
        mut advance: impl FnMut(&mut RunHandle<'g, G>, usize) -> Progress,
    ) -> Result<Estimate, GxError> {
        let mut handle = self.start(g)?;
        let windows = self.increment(&handle);
        while !handle.is_finished() {
            advance(&mut handle, windows);
        }
        Ok(handle.finish())
    }

    /// The per-walker advance size [`Runner::run`] drives the handle
    /// with: the rule's check cadence for adaptive budgets; the whole
    /// share for fixed budgets (split into ~16 increments when a
    /// progress callback wants ticks — the chains' resumability makes
    /// the split invisible in the output).
    fn increment<G: GraphAccess>(&self, handle: &RunHandle<'_, G>) -> usize {
        match &self.budget {
            Budget::Until(rule) => rule.check_every,
            Budget::Fixed(_) if self.progress.is_some() => {
                (handle.caps.iter().copied().max().unwrap_or(0) / 16).max(1)
            }
            _ => usize::MAX,
        }
    }

    /// Starts a resumable run: primes nothing yet (each walker's chain
    /// is created lazily on its first advance), returns the
    /// [`RunHandle`] that owns the persistent chains. Requires only
    /// `GraphAccess`; the handle advances walkers on the calling thread
    /// unless [`RunHandle::advance_par`] is used.
    pub fn start<'g, G: GraphAccess>(&self, g: &'g G) -> Result<RunHandle<'g, G>, GxError> {
        self.check()?;
        let (rule, batch_len, max_steps) = match &self.budget {
            Budget::Fixed(steps) => (None, default_batch_len(*steps), *steps),
            Budget::Until(rule) => (Some(rule.clone()), rule.batch_len, rule.max_steps),
            Budget::Unset => unreachable!("check() rejects unset budgets"),
        };
        let types = num_graphlets(self.cfg.k);
        let mut sessions = Vec::new();
        sessions.resize_with(self.walkers, || None);
        Ok(RunHandle {
            g,
            cfg: self.cfg.clone(),
            rule,
            batch_len,
            seed: self.seed,
            caps: (0..self.walkers).map(|i| walker_steps(max_steps, self.walkers, i)).collect(),
            sessions,
            done: vec![0; self.walkers],
            pooled: BatchStats::new(types, batch_len),
            pooled_batches: vec![0; self.walkers],
            tracker: AdaptiveTracker::new(types),
            rounds: 0,
            met: false,
            progress: self.progress.clone(),
        })
    }

    /// Runs the configured budget over a caller-supplied walk — the
    /// runner form of the `_with_walk` shorthands. A supplied walk is
    /// one concrete chain, so the fan-out must be 1
    /// ([`GxError::ParallelCustomWalk`] otherwise) and the walk's
    /// dimension must match the configuration's `d`
    /// ([`GxError::WalkDimensionMismatch`]).
    ///
    /// [`Runner::seed`] has no effect here — the caller supplies both
    /// the walk's start state and the RNG, which together *are* the
    /// seed. [`Runner::on_progress`] works as on session runs: ticks at
    /// every convergence check (adaptive) or ~16 increments (fixed).
    pub fn run_with_walk<G: GraphAccess, W: StateWalk>(
        &self,
        g: &G,
        walk: W,
        rng: WalkRng,
    ) -> Result<Estimate, GxError> {
        self.cfg.try_validate()?;
        if self.walkers == 0 {
            return Err(GxError::NoWalkers);
        }
        if self.walkers > 1 {
            return Err(GxError::ParallelCustomWalk { walkers: self.walkers });
        }
        if walk.d() != self.cfg.d {
            return Err(GxError::WalkDimensionMismatch { walk_d: walk.d(), cfg_d: self.cfg.d });
        }
        match &self.budget {
            Budget::Unset => Err(GxError::NoBudget),
            Budget::Fixed(steps) => {
                let batch_len = default_batch_len(*steps);
                let mut session = WalkSession::from_parts(g, &self.cfg, walk, rng, batch_len);
                match &self.progress {
                    // Splitting the budget over `run` calls cannot move
                    // a sample, so ticking is observability-only.
                    None => session.run(*steps),
                    Some(cb) => {
                        let chunk = (*steps / 16).max(1);
                        let (mut done, mut rounds) = (0usize, 0usize);
                        while done < *steps {
                            let n = chunk.min(*steps - done);
                            session.run(n);
                            done += n;
                            rounds += 1;
                            let stats = session.stats();
                            let crit = studentized_critical(1.96, stats.batches());
                            cb(&Progress {
                                steps: done,
                                walkers: 1,
                                rounds,
                                batches: stats.batches(),
                                width: stats.max_relative_half_width(crit, 0.01),
                                converged: false,
                                finished: done >= *steps,
                            });
                        }
                    }
                }
                Ok(session.into_estimate(&self.cfg))
            }
            Budget::Until(rule) => {
                rule.try_validate()?;
                let session = WalkSession::from_parts(g, &self.cfg, walk, rng, rule.batch_len);
                Ok(run_adaptive_walk(session, &self.cfg, rule, self.progress.as_ref()))
            }
        }
    }
}

/// The single-chain adaptive driver for a caller-supplied walk: rounds
/// of `check_every` scored windows with a convergence check (and a
/// progress tick) after each, capped at `max_steps`, packing the result
/// and its [`crate::AdaptiveReport`]. The session-based runner paths
/// follow the identical schedule through [`RunHandle`]; this driver
/// serves the generic [`WalkSession`], which cannot live inside the
/// runtime-dispatched handle.
fn run_adaptive_walk<G: GraphAccess, W: StateWalk>(
    mut session: WalkSession<'_, G, W>,
    cfg: &EstimatorConfig,
    rule: &StoppingRule,
    progress: Option<&ProgressFn>,
) -> Estimate {
    let mut tracker = AdaptiveTracker::new(session.stats().types());
    let (mut done, mut rounds, mut met) = (0usize, 0usize, false);
    while done < rule.max_steps {
        let round = rule.check_every.min(rule.max_steps - done);
        session.run(round);
        done += round;
        rounds += 1;
        met = tracker.observe(rule, session.stats(), done);
        if let Some(cb) = progress {
            let stats = session.stats();
            let crit = rule.critical_value(stats.batches());
            cb(&Progress {
                steps: done,
                walkers: 1,
                rounds,
                batches: stats.batches(),
                width: stats.max_relative_half_width(crit, rule.min_concentration),
                converged: met,
                finished: met || done >= rule.max_steps,
            });
        }
        if met {
            break;
        }
    }
    let crit = rule.critical_value(session.stats().batches());
    let mut est = session.into_estimate(cfg);
    debug_assert_eq!(est.steps, done);
    est.adaptive = Some(tracker.report(1, rounds, done, met, crit));
    est
}

/// A live, resumable estimation run: the persistent per-walker chains
/// ([`crate::estimator`]'s `WalkSession`/`AnySession`), advanced in
/// increments with [`RunHandle::advance`], observable between increments
/// ([`RunHandle::estimate`] / [`RunHandle::progress`]), and finished
/// with [`RunHandle::finish`].
///
/// **Determinism:** chains only ever step between scored windows, so
/// *any* sequence of `advance` calls covering the budget yields the same
/// scored-window stream; a finished handle is bit-identical to the
/// corresponding one-shot [`Runner::run`] — including walker fan-out —
/// when advanced on the run's natural schedule (any increments for fixed
/// budgets; the rule's `check_every` for adaptive ones, since the check
/// schedule decides where an adaptive run stops).
///
/// Adaptive pooling is **incremental**: each advance folds only the new
/// batch means of each walker's series into the pooled statistics
/// (chronological, walker-order — [`BatchStats::fold_series_suffix`]),
/// instead of re-pooling every walker from scratch each round. With one
/// walker the pool replays the walker's own accumulator bit for bit.
pub struct RunHandle<'g, G: GraphAccess> {
    g: &'g G,
    cfg: EstimatorConfig,
    /// `None` for fixed budgets.
    rule: Option<StoppingRule>,
    batch_len: usize,
    seed: u64,
    /// Per-walker step budget (near-equal split of the total).
    caps: Vec<usize>,
    /// Lazily-created persistent chains, index = walker.
    sessions: Vec<Option<AnySession<'g, G>>>,
    /// Per-walker scored windows so far.
    done: Vec<usize>,
    /// Pooled batch-means statistics (chronological incremental fold).
    pooled: BatchStats,
    /// Per-walker batches already folded into `pooled`.
    pooled_batches: Vec<u64>,
    tracker: AdaptiveTracker,
    rounds: usize,
    met: bool,
    progress: Option<ProgressFn>,
}

impl<G: GraphAccess> std::fmt::Debug for RunHandle<'_, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunHandle")
            .field("cfg", &self.cfg)
            .field("rule", &self.rule)
            .field("walkers", &self.caps.len())
            .field("seed", &self.seed)
            .field("steps", &self.steps())
            .field("rounds", &self.rounds)
            .field("finished", &self.is_finished())
            .finish_non_exhaustive()
    }
}

impl<'g, G: GraphAccess> RunHandle<'g, G> {
    /// Per-walker share of an advance by `windows` scored windows:
    /// remaining budget capped, zero once the run has converged.
    fn shares(&self, windows: usize) -> Vec<usize> {
        if self.met {
            return vec![0; self.caps.len()];
        }
        self.caps.iter().zip(&self.done).map(|(&c, &d)| windows.min(c - d)).collect()
    }

    /// Advances every still-budgeted walker by up to `windows` more
    /// scored windows on the calling thread (walker order), then pools
    /// the new batches, evaluates the stopping rule (adaptive budgets),
    /// and fires the progress callback. A no-op returning the current
    /// snapshot once the run is finished.
    pub fn advance(&mut self, windows: usize) -> Progress {
        let shares = self.shares(windows);
        if shares.iter().all(|&s| s == 0) {
            return self.snapshot();
        }
        for (i, &share) in shares.iter().enumerate() {
            if share == 0 {
                continue;
            }
            let (g, cfg, seed, batch_len) = (self.g, &self.cfg, self.seed, self.batch_len);
            self.sessions[i]
                .get_or_insert_with(|| AnySession::new(g, cfg, walker_seed(seed, i), batch_len))
                .run(share);
        }
        self.after_round(&shares)
    }

    /// Bookkeeping shared by the sequential and threaded advances.
    fn after_round(&mut self, shares: &[usize]) -> Progress {
        for (d, &s) in self.done.iter_mut().zip(shares) {
            *d += s;
        }
        self.rounds += 1;
        // Incremental pooled-merge, adaptive budgets only: fold each
        // walker's new batches (walker order) into the chronological
        // pooled stream. Fixed budgets never consult the pool — their
        // final (and progress) statistics are the legacy walker-order
        // Chan merge of the sessions' own streams, so maintaining a
        // second copy here would be pure waste.
        if let Some(rule) = &self.rule {
            for (session, folded) in self.sessions.iter().zip(&mut self.pooled_batches) {
                if let Some(session) = session.as_ref() {
                    let stats = session.stats();
                    if stats.batches() > *folded {
                        self.pooled.fold_series_suffix(stats, *folded);
                        *folded = stats.batches();
                    }
                }
            }
            self.met = self.tracker.observe(rule, &self.pooled, self.steps());
        }
        let p = self.snapshot();
        if let Some(cb) = &self.progress {
            cb(&p);
        }
        p
    }

    /// Scored windows so far, pooled over walkers.
    pub fn steps(&self) -> usize {
        self.done.iter().sum()
    }

    /// Whether the run is over: adaptive target met, or every walker's
    /// budget share exhausted.
    pub fn is_finished(&self) -> bool {
        self.met || self.done.iter().zip(&self.caps).all(|(d, c)| d >= c)
    }

    /// The current progress snapshot (also what [`RunHandle::advance`]
    /// returns).
    pub fn progress(&self) -> Progress {
        self.snapshot()
    }

    /// The fixed-budget statistics: the legacy walker-order Chan merge
    /// of the sessions' own streams (one walker: that chain's stream,
    /// untouched) — the same fold [`RunHandle::finish`] packs, so
    /// progress widths and the final estimate's widths agree bitwise.
    fn fixed_stats(&self) -> BatchStats {
        let mut stats = BatchStats::new(num_graphlets(self.cfg.k), self.batch_len);
        for session in self.sessions.iter().flatten() {
            stats.merge(session.stats());
        }
        stats
    }

    fn snapshot(&self) -> Progress {
        let (batches, width) = match &self.rule {
            Some(rule) => {
                let crit = rule.critical_value(self.pooled.batches());
                (
                    self.pooled.batches(),
                    self.pooled.max_relative_half_width(crit, rule.min_concentration),
                )
            }
            None => {
                let stats = self.fixed_stats();
                let crit = studentized_critical(1.96, stats.batches());
                (stats.batches(), stats.max_relative_half_width(crit, 0.01))
            }
        };
        Progress {
            steps: self.steps(),
            walkers: self.caps.len(),
            rounds: self.rounds,
            batches,
            width,
            converged: self.met,
            finished: self.is_finished(),
        }
    }

    /// An interim [`Estimate`] of the run so far — raw scores, error
    /// bars, and (for adaptive budgets) the convergence report, exactly
    /// as [`RunHandle::finish`] would pack them at this point.
    pub fn estimate(&self) -> Estimate {
        let accuracy = match &self.rule {
            Some(_) => self.pooled.clone(),
            None => self.fixed_stats(),
        };
        self.assemble(accuracy)
    }

    /// Consumes the handle, returning the final [`Estimate`]. See the
    /// type docs for the bit-identity contract with one-shot runs.
    pub fn finish(mut self) -> Estimate {
        // Same packing as `estimate`, but the pooled statistics (which
        // carry the full batch-mean series) are moved, not cloned.
        let accuracy = match &self.rule {
            Some(_) => std::mem::replace(&mut self.pooled, BatchStats::new(0, 1)),
            None => self.fixed_stats(),
        };
        self.assemble(accuracy)
    }

    /// Packs the handle's current state around the chosen accuracy
    /// statistics (the pool for adaptive budgets, the walker-order Chan
    /// merge for fixed ones).
    fn assemble(&self, accuracy: BatchStats) -> Estimate {
        debug_assert_eq!(
            self.steps(),
            self.sessions.iter().flatten().map(|s| s.scored()).sum::<usize>(),
            "round bookkeeping must match the sessions' scored windows"
        );
        let types = num_graphlets(self.cfg.k);
        let mut raw = vec![0.0f64; types];
        let mut valid = 0usize;
        for session in self.sessions.iter().flatten() {
            for (acc, x) in raw.iter_mut().zip(session.raw()) {
                *acc += x;
            }
            valid += session.valid();
        }
        let adaptive = self.rule.as_ref().map(|rule| {
            let crit = rule.critical_value(accuracy.batches());
            self.tracker.report(self.caps.len(), self.rounds, self.steps(), self.met, crit)
        });
        Estimate {
            config: self.cfg.clone(),
            steps: self.steps(),
            valid_samples: valid,
            raw_scores: raw,
            accuracy: Some(accuracy),
            adaptive,
        }
    }
}

impl<'g, G: GraphAccess + Sync> RunHandle<'g, G> {
    /// [`RunHandle::advance`] with the walkers fanned across the
    /// machine's cores (one OS thread per core, each running a
    /// contiguous chunk of walkers). State evolution — and therefore
    /// every subsequent output — is bit-identical to [`RunHandle::advance`]:
    /// pooling and merging happen on the calling thread in walker order.
    pub fn advance_par(&mut self, windows: usize) -> Progress {
        let shares = self.shares(windows);
        if shares.iter().all(|&s| s == 0) {
            return self.snapshot();
        }
        let threads = available_cores().min(self.sessions.len());
        let chunk = self.sessions.len().div_ceil(threads);
        let (g, cfg, seed, batch_len) = (self.g, &self.cfg, self.seed, self.batch_len);
        std::thread::scope(|scope| {
            for (c, slots) in self.sessions.chunks_mut(chunk).enumerate() {
                let shares = &shares;
                scope.spawn(move || {
                    for (off, slot) in slots.iter_mut().enumerate() {
                        let i = c * chunk + off;
                        if shares[i] == 0 {
                            continue;
                        }
                        slot.get_or_insert_with(|| {
                            AnySession::new(g, cfg, walker_seed(seed, i), batch_len)
                        })
                        .run(shares[i]);
                    }
                });
            }
        });
        self.after_round(&shares)
    }
}
