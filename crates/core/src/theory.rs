//! Theory: weighted concentration (§6.2.1), the Chernoff–Hoeffding bound
//! of Theorem 3, and spectral mixing-time estimation for small chains.
//!
//! The paper's Theorem 3 gives a sufficient sample size
//! `n ≥ ξ (W/Λ)(τ/ε²) log(‖ϕ‖_{π_e}/δ)`. On small graphs every
//! ingredient is computable exactly: `W = max 1/π_e` over the expanded
//! chain, `Λ = min(α_i C_i, α_min Σ_j C_j)`, and `τ` from the spectral
//! gap of the (explicit) walk on `G(d)`. The `theory_bound` bench
//! compares the bound's *shape* (linear in τ, inverse in ε², inverse in
//! weighted concentration) against empirically measured convergence.

use gx_graph::subrel::SubRelGraph;
use gx_graph::{Graph, NodeId};
use gx_graphlets::alpha::alpha_table;

/// Weighted concentration `α_i C_i / Σ_j α_j C_j` (§6.2.1, Figure 5a) —
/// the effective sampling mass the walk on `G(d)` assigns to each type.
/// Types with larger weighted than plain concentration are *lifted*,
/// which is the paper's explanation for why small d wins on rare types.
pub fn weighted_concentration(counts: &[u64], k: usize, d: usize) -> Vec<f64> {
    let alphas = alpha_table(k, d);
    assert_eq!(counts.len(), alphas.len());
    let mass: Vec<f64> = counts.iter().zip(alphas).map(|(&c, &a)| c as f64 * a as f64).collect();
    let total: f64 = mass.iter().sum();
    if total == 0.0 {
        return vec![0.0; counts.len()];
    }
    mass.into_iter().map(|x| x / total).collect()
}

/// `Λ = min(α_i C_i, α_min Σ_j C_j)` for target type `i` (Theorem 3),
/// where `α_min` ranges over types that actually occur (`C_j > 0`; an
/// absent type cannot constrain convergence).
pub fn lambda(counts: &[u64], k: usize, d: usize, target: usize) -> f64 {
    let alphas = alpha_table(k, d);
    let total: u64 = counts.iter().sum();
    let alpha_min =
        counts.iter().zip(alphas).filter(|(&c, _)| c > 0).map(|(_, &a)| a).min().unwrap_or(0);
    let a_i_c_i = alphas[target] as f64 * counts[target] as f64;
    a_i_c_i.min(alpha_min as f64 * total as f64)
}

/// The sample-size bound of Theorem 3 (up to the constant ξ):
/// `n ≥ ξ (W/Λ)(τ/ε²) log(‖ϕ‖/δ)`.
pub fn theorem3_sample_size(
    w: f64,
    lambda: f64,
    tau: f64,
    eps: f64,
    delta: f64,
    phi_norm: f64,
    xi: f64,
) -> f64 {
    assert!(lambda > 0.0, "Λ must be positive (the target type must occur)");
    assert!(eps > 0.0 && delta > 0.0 && delta < 1.0);
    xi * (w / lambda) * (tau / (eps * eps)) * (phi_norm / delta).ln()
}

/// `W = max 1/π_e` over the expanded chain of an *explicit* relationship
/// graph: `2|R| · Δ^{l−2}` for l ≥ 2 (interior degrees maximize the
/// product), `2|R| / δ_min` for l = 1.
pub fn w_sup(rel: &SubRelGraph, l: usize) -> f64 {
    let two_r = rel.graph.degree_sum() as f64;
    let max_deg = rel.graph.max_degree() as f64;
    match l {
        0 => panic!("l must be >= 1"),
        1 => {
            let min_deg = (0..rel.graph.num_nodes())
                .map(|v| rel.graph.degree(v as NodeId))
                .filter(|&d| d > 0)
                .min()
                .unwrap_or(1) as f64;
            two_r / min_deg
        }
        2 => two_r,
        _ => two_r * max_deg.powi(l as i32 - 2),
    }
}

/// Second-largest eigenvalue modulus (SLEM) of the lazy-free SRW
/// transition matrix on `g`, by power iteration on the symmetrized
/// operator `S = D^{-1/2} A D^{-1/2}` with the principal eigenvector
/// (√π) deflated. `g` must be connected and non-empty.
pub fn slem(g: &Graph, iterations: usize) -> f64 {
    let n = g.num_nodes();
    assert!(n > 0, "empty graph");
    // principal eigenvector of S: u(v) = sqrt(d_v / 2|E|)
    let two_m = g.degree_sum() as f64;
    let u: Vec<f64> = (0..n).map(|v| (g.degree(v as NodeId) as f64 / two_m).sqrt()).collect();
    let inv_sqrt_deg: Vec<f64> =
        (0..n).map(|v| 1.0 / (g.degree(v as NodeId) as f64).sqrt()).collect();
    // deterministic pseudo-random start, deflated
    let mut x: Vec<f64> = (0..n)
        .map(|i| {
            let mut z = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            z ^= z >> 31;
            (z % 1000) as f64 / 1000.0 - 0.5
        })
        .collect();
    let deflate = |x: &mut [f64]| {
        let dot: f64 = x.iter().zip(&u).map(|(a, b)| a * b).sum();
        for (xi, ui) in x.iter_mut().zip(&u) {
            *xi -= dot * ui;
        }
    };
    let normalize = |x: &mut [f64]| {
        let norm: f64 = x.iter().map(|a| a * a).sum::<f64>().sqrt();
        if norm > 0.0 {
            for xi in x.iter_mut() {
                *xi /= norm;
            }
        }
    };
    deflate(&mut x);
    normalize(&mut x);
    let mut lambda2 = 0.0f64;
    let mut y = vec![0.0f64; n];
    for _ in 0..iterations {
        // y = S x  where S[v][w] = 1/sqrt(d_v d_w) for edges
        for yv in y.iter_mut() {
            *yv = 0.0;
        }
        for v in 0..n {
            let xv = x[v] * inv_sqrt_deg[v];
            for &w in g.neighbors(v as NodeId) {
                y[w as usize] += xv * inv_sqrt_deg[w as usize];
            }
        }
        deflate(&mut y);
        lambda2 = y.iter().map(|a| a * a).sum::<f64>().sqrt();
        std::mem::swap(&mut x, &mut y);
        normalize(&mut x);
    }
    lambda2.min(1.0)
}

/// Mixing time upper bound `τ(ε) ≤ log(1/(ε π_min)) / (1 − λ₂)` for a
/// reversible chain with SLEM `λ₂` and minimum stationary mass `π_min`.
pub fn mixing_time_bound(lambda2: f64, pi_min: f64, eps: f64) -> f64 {
    assert!(lambda2 < 1.0, "chain must have a spectral gap");
    assert!(pi_min > 0.0 && eps > 0.0);
    (1.0 / (eps * pi_min)).ln() / (1.0 - lambda2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gx_graph::generators::classic;
    use gx_graph::subrel::subgraph_relationship_graph;

    #[test]
    fn weighted_concentration_lifts_high_alpha_types() {
        // counts equal, but the clique has the largest α: its weighted
        // concentration must exceed its plain concentration.
        let counts = vec![100u64, 100, 100, 100, 100, 100];
        let wc = weighted_concentration(&counts, 4, 2);
        assert!((wc.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(wc[5] > 1.0 / 6.0, "clique lifted: {wc:?}");
        assert!(wc[0] < 1.0 / 6.0, "path damped: {wc:?}");
    }

    #[test]
    fn weighted_concentration_handles_zeros() {
        assert_eq!(weighted_concentration(&[0, 0], 3, 1), vec![0.0, 0.0]);
    }

    #[test]
    fn lambda_ignores_absent_types() {
        // only wedges present: α_min must be the wedge's, not the
        // triangle's.
        let counts = vec![50u64, 0];
        let l = lambda(&counts, 3, 1, 0);
        // α(wedge, d=1) = 2: Λ = min(2*50, 2*50) = 100.
        assert_eq!(l, 100.0);
    }

    #[test]
    fn theorem3_scales_as_expected() {
        let base = theorem3_sample_size(100.0, 10.0, 50.0, 0.1, 0.05, 10.0, 1.0);
        // linear in τ
        assert!(
            (theorem3_sample_size(100.0, 10.0, 100.0, 0.1, 0.05, 10.0, 1.0) / base - 2.0).abs()
                < 1e-9
        );
        // inverse in ε²
        assert!(
            (theorem3_sample_size(100.0, 10.0, 50.0, 0.05, 0.05, 10.0, 1.0) / base - 4.0).abs()
                < 1e-9
        );
        // inverse in Λ
        assert!(
            (theorem3_sample_size(100.0, 20.0, 50.0, 0.1, 0.05, 10.0, 1.0) / base - 0.5).abs()
                < 1e-9
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn theorem3_rejects_zero_lambda() {
        let _ = theorem3_sample_size(1.0, 0.0, 1.0, 0.1, 0.1, 1.0, 1.0);
    }

    #[test]
    fn w_sup_cases() {
        let g = classic::paper_figure1();
        let rel = subgraph_relationship_graph(&g, 2);
        // 2|R(2)| = 16; Δ(G(2)) = 4.
        assert_eq!(w_sup(&rel, 2), 16.0);
        assert_eq!(w_sup(&rel, 3), 16.0 * 4.0);
        assert_eq!(w_sup(&rel, 1), 16.0 / 3.0); // min G(2) degree is 3
    }

    #[test]
    fn slem_of_complete_graph_is_small() {
        // K_n: SRW eigenvalues are 1 and −1/(n−1): SLEM = 1/(n−1).
        let g = classic::complete(6);
        let l2 = slem(&g, 400);
        assert!((l2 - 0.2).abs() < 0.01, "SLEM {l2}");
    }

    #[test]
    fn slem_of_odd_cycle_matches_cosine() {
        // C_n (odd, so non-bipartite): eigenvalues cos(2πj/n); the
        // largest modulus below 1 is |cos(π(n−1)/n)| = cos(π/n).
        let g = classic::cycle(11);
        let l2 = slem(&g, 2000);
        let want = (std::f64::consts::PI / 11.0).cos();
        assert!((l2 - want).abs() < 0.01, "SLEM {l2} vs {want}");
    }

    #[test]
    fn slem_of_even_cycle_detects_periodicity() {
        // bipartite graphs have eigenvalue −1: SLEM = 1 (no gap).
        let l2 = slem(&classic::cycle(10), 2000);
        assert!(l2 > 0.999, "SLEM {l2}");
    }

    #[test]
    fn lollipop_mixes_slower_than_expander() {
        let tight = slem(&classic::complete(8), 500);
        let loose = slem(&classic::lollipop(6, 6), 500);
        assert!(loose > tight, "lollipop SLEM {loose} vs K8 {tight}");
        let tau_loose = mixing_time_bound(loose, 1.0 / 50.0, 0.125);
        let tau_tight = mixing_time_bound(tight, 1.0 / 50.0, 0.125);
        assert!(tau_loose > tau_tight);
    }

    #[test]
    fn slem_on_relationship_graph() {
        // The walk the estimator actually runs is on G(d): its mixing
        // time is computable the same way.
        let g = classic::paper_figure1();
        let rel = subgraph_relationship_graph(&g, 2);
        let l2 = slem(&rel.graph, 500);
        assert!(l2 < 1.0 && l2 > 0.0);
    }
}
