//! The expanded-Markov-chain window: the last `l` walk states, their
//! distinct underlying nodes, and the induced subgraph among them.
//!
//! This implements the paper's §5 bookkeeping: when the walk advances, at
//! most one node enters the union and at most one leaves, so the induced
//! edge set is maintained with k − 1 adjacency probes per step instead of
//! C(k,2) — the edges among surviving nodes are reused from the previous
//! window.

use gx_graph::{GraphAccess, NodeId};
use gx_graphlets::mask::pair_index;
use std::collections::VecDeque;

/// Maximum union size (k ≤ 6 supported by the taxonomy, + headroom).
const MAX_NODES: usize = 8;
/// Maximum subgraph size d per state.
const MAX_D: usize = 7;

/// One remembered walk state.
#[derive(Debug, Clone, Copy)]
pub struct StateRec {
    nodes: [NodeId; MAX_D],
    len: u8,
    /// Degree of the state in `G(d)` at visit time.
    pub degree: u32,
}

impl StateRec {
    /// The state's node set.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes[..self.len as usize]
    }
}

/// Sliding window of the last `l` states of a walk on `G(d)`.
#[derive(Debug, Clone)]
pub struct NodeWindow {
    l: usize,
    k: usize,
    states: VecDeque<StateRec>,
    /// Distinct nodes currently in the union, in slot order.
    distinct: Vec<NodeId>,
    /// Reference counts parallel to `distinct`.
    refcount: Vec<u8>,
    /// Adjacency among slots: bit `q` of `adj[p]` is set iff slots `p`
    /// and `q` are adjacent in the host graph. A per-slot bitmask keeps
    /// [`NodeWindow::sample`] pure bit manipulation instead of a scan
    /// over a `bool` matrix.
    adj: [u64; MAX_NODES],
    /// Adjacency probes issued so far (the paper's per-step cost metric).
    probes: u64,
}

impl NodeWindow {
    /// Window for `l` consecutive states of d-node subgraphs
    /// (`k = l + d − 1`).
    pub fn new(l: usize, d: usize) -> Self {
        let k = l + d - 1;
        assert!(l >= 1, "window needs l >= 1");
        assert!(k <= MAX_NODES, "union size k={k} exceeds {MAX_NODES}");
        assert!(d <= MAX_D);
        Self {
            l,
            k,
            states: VecDeque::with_capacity(l),
            distinct: Vec::with_capacity(MAX_NODES),
            refcount: Vec::with_capacity(MAX_NODES),
            adj: [0; MAX_NODES],
            probes: 0,
        }
    }

    /// Number of states currently held.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when no states are held.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// True when the window holds `l` states.
    pub fn is_full(&self) -> bool {
        self.states.len() == self.l
    }

    /// Number of distinct underlying nodes in the union.
    pub fn distinct_count(&self) -> usize {
        self.distinct.len()
    }

    /// Whether the current window is a *valid* sample: full and covering
    /// exactly `k = l + d − 1` distinct nodes (paper §3.1 discards the
    /// rest).
    pub fn is_valid_sample(&self) -> bool {
        self.is_full() && self.distinct.len() == self.k
    }

    /// The remembered states, oldest first.
    pub fn states(&self) -> impl Iterator<Item = &StateRec> {
        self.states.iter()
    }

    /// Degrees of the *interior* states X₂ … X_{l−1} (the ones whose
    /// degrees enter π_e for l > 2, Theorem 2).
    pub fn interior_degrees(&self) -> impl Iterator<Item = u32> + '_ {
        let end = self.states.len().saturating_sub(1);
        self.states.iter().take(end).skip(1).map(|s| s.degree)
    }

    /// Total adjacency probes issued (k − 1 per step once warm).
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Pushes the walk's current state. `degree` is the state's degree in
    /// `G(d)` at this time.
    pub fn push<G: GraphAccess>(&mut self, g: &G, state_nodes: &[NodeId], degree: usize) {
        debug_assert!(
            u32::try_from(degree).is_ok(),
            "state degree {degree} exceeds u32 (would truncate)"
        );
        if self.states.len() == self.l {
            let old = self.states.pop_front().expect("non-empty");
            for &v in old.nodes() {
                self.release(v);
            }
        }
        let mut rec =
            StateRec { nodes: [0; MAX_D], len: state_nodes.len() as u8, degree: degree as u32 };
        rec.nodes[..state_nodes.len()].copy_from_slice(state_nodes);
        for &v in state_nodes {
            self.acquire(g, v);
        }
        self.states.push_back(rec);
    }

    fn slot_of(&self, v: NodeId) -> Option<usize> {
        self.distinct.iter().position(|&x| x == v)
    }

    fn acquire<G: GraphAccess>(&mut self, g: &G, v: NodeId) {
        if let Some(p) = self.slot_of(v) {
            self.refcount[p] += 1;
            return;
        }
        let p = self.distinct.len();
        assert!(p < MAX_NODES, "window union overflow");
        // probe adjacency vs every existing slot: the paper's k − 1
        // binary searches per step.
        let mut row = 0u64;
        for q in 0..p {
            self.probes += 1;
            if g.has_edge(v, self.distinct[q]) {
                row |= 1 << q;
                self.adj[q] |= 1 << p;
            }
        }
        self.adj[p] = row;
        self.distinct.push(v);
        self.refcount.push(1);
    }

    fn release(&mut self, v: NodeId) {
        let p = self.slot_of(v).expect("released node must be present");
        self.refcount[p] -= 1;
        if self.refcount[p] > 0 {
            return;
        }
        // swap-remove slot p, relocating the last slot's adjacency bits.
        let last = self.distinct.len() - 1;
        self.distinct.swap_remove(p);
        self.refcount.swap_remove(p);
        let pbit = 1u64 << p;
        let lastbit = 1u64 << last;
        if p != last {
            // Move `last`'s row into slot p, dropping its (p, last) bit.
            self.adj[p] = self.adj[last] & !pbit;
            // In every other row, rewrite the `last` bit as the `p` bit.
            for q in 0..=last {
                let had_last = self.adj[q] & lastbit != 0;
                self.adj[q] &= !(pbit | lastbit);
                if had_last && q != p {
                    self.adj[q] |= pbit;
                }
            }
        } else {
            for row in self.adj.iter_mut() {
                *row &= !pbit;
            }
        }
        self.adj[last] = 0;
    }

    /// The induced edge mask over the distinct nodes, in slot order
    /// (labeling compatible with [`gx_graphlets::classify_mask`] for
    /// `distinct_count()` nodes), together with the nodes.
    ///
    /// Extracted with bit operations from the per-slot adjacency masks:
    /// for each slot `i`, the bits `j > i` of `adj[i]` are exactly the
    /// edges `(i, j)`, and the upper-triangle pair layout stores them
    /// contiguously — so each row contributes one shifted bit-block, no
    /// per-pair scan.
    pub fn sample(&self) -> (u32, &[NodeId]) {
        let m = self.distinct.len();
        let mut mask = 0u32;
        // pair_index(i, j, m) = base(i) + (j - i - 1) with
        // base(i) = i*m - i(i+1)/2: within a row the pair bits are
        // consecutive in j, so the whole row moves in one shift.
        let mut base = 0usize;
        for i in 0..m {
            let above = (self.adj[i] >> (i + 1)) as u32; // bits j > i, j at j-i-1
            mask |= (above & ((1u32 << (m - i - 1)) - 1)) << base;
            base += m - i - 1;
        }
        debug_assert_eq!(mask, self.reference_mask(), "bit-block mask extraction");
        (mask, &self.distinct)
    }

    /// Reference mask built pairwise (debug cross-check for `sample`).
    fn reference_mask(&self) -> u32 {
        let m = self.distinct.len();
        let mut mask = 0u32;
        for i in 0..m {
            for j in (i + 1)..m {
                if self.adj[i] & (1 << j) != 0 {
                    mask |= 1 << pair_index(i, j, m);
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gx_graph::generators::classic;
    use gx_graphlets::{classify_mask, classify_nodes};

    #[test]
    fn window_tracks_distinct_nodes_srw1() {
        let g = classic::paper_figure1();
        let mut w = NodeWindow::new(3, 1);
        assert!(w.is_empty());
        // walk 0 -> 1 -> 0: only 2 distinct nodes -> invalid
        w.push(&g, &[0], 3);
        assert_eq!(w.len(), 1);
        w.push(&g, &[1], 2);
        w.push(&g, &[0], 3);
        assert!(w.is_full());
        assert_eq!(w.distinct_count(), 2);
        assert!(!w.is_valid_sample());
        // continue 0 -> 3: window = (1, 0, 3): wedge (1-0, 0-3, no 1-3)
        w.push(&g, &[3], 2);
        assert!(w.is_valid_sample());
        let (mask, nodes) = w.sample();
        assert_eq!(classify_mask(3, mask), classify_nodes(&g, nodes));
        assert_eq!(classify_mask(3, mask).unwrap().name(), "wedge");
        // continue 3 -> 2: window = (0, 3, 2): triangle {0,3,2}
        w.push(&g, &[2], 3);
        let (mask, _) = w.sample();
        assert_eq!(classify_mask(3, mask).unwrap().name(), "triangle");
    }

    #[test]
    fn window_matches_paper_g2_example() {
        // §3.1 example (b): states (1,2) -> (1,3) -> (3,4) on G(2) give the
        // 4-node sample {1,2,3,4} = chordal-cycle (0-based: shift by −1).
        let g = classic::paper_figure1();
        let mut w = NodeWindow::new(3, 2);
        w.push(&g, &[0, 1], 3);
        w.push(&g, &[0, 2], 4);
        w.push(&g, &[2, 3], 3);
        assert!(w.is_valid_sample());
        let (mask, nodes) = w.sample();
        assert_eq!(classify_mask(4, mask).unwrap().name(), "chordal-cycle");
        let mut sorted = nodes.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        // interior degree: only the middle state (0,2) with degree 4
        assert_eq!(w.interior_degrees().collect::<Vec<_>>(), vec![4]);
    }

    #[test]
    fn interior_degrees_for_l2_is_empty() {
        let g = classic::paper_figure1();
        let mut w = NodeWindow::new(2, 3);
        w.push(&g, &[0, 1, 2], 5);
        w.push(&g, &[0, 2, 3], 6);
        assert_eq!(w.interior_degrees().count(), 0);
    }

    #[test]
    fn probes_are_k_minus_1_per_new_node() {
        let g = classic::complete(6);
        let mut w = NodeWindow::new(3, 1);
        w.push(&g, &[0], 5);
        assert_eq!(w.probes(), 0);
        w.push(&g, &[1], 5);
        assert_eq!(w.probes(), 1);
        w.push(&g, &[2], 5);
        assert_eq!(w.probes(), 3); // 1 + 2

        // steady state: one node leaves, one enters: k-1 = 2 probes
        w.push(&g, &[3], 5);
        assert_eq!(w.probes(), 5);
    }

    #[test]
    fn mask_stays_consistent_under_long_random_walks() {
        use gx_walks::{rng_from_seed, SrwWalk, StateWalk};
        let g = classic::petersen();
        let mut rng = rng_from_seed(77);
        let mut walk = SrwWalk::new(&g, 0, false);
        let mut w = NodeWindow::new(4, 1);
        for _ in 0..5000 {
            let deg = walk.state_degree();
            w.push(&g, &[walk.state()[0]], deg);
            if w.is_full() {
                let (mask, nodes) = w.sample();
                // reference: classify from scratch
                let m = nodes.len();
                let expected = gx_graphlets::induced_mask(&g, nodes);
                assert_eq!(mask, expected, "incremental mask diverged at {nodes:?} (m={m})");
            }
            walk.step(&mut rng);
        }
    }

    #[test]
    fn mask_consistent_for_g2_windows() {
        use gx_walks::{rng_from_seed, G2Walk, StateWalk};
        let g = classic::lollipop(5, 3);
        let mut rng = rng_from_seed(13);
        let mut walk = G2Walk::new(&g, 0, 1, false);
        let mut w = NodeWindow::new(4, 2);
        for _ in 0..5000 {
            let deg = walk.state_degree();
            w.push(&g, walk.state(), deg);
            if w.is_full() {
                let (mask, nodes) = w.sample();
                assert_eq!(mask, gx_graphlets::induced_mask(&g, nodes));
                assert!(w.distinct_count() >= 2 && w.distinct_count() <= 5);
            }
            walk.step(&mut rng);
        }
    }

    #[test]
    #[should_panic(expected = "union size")]
    fn rejects_oversized_window() {
        let _ = NodeWindow::new(9, 1);
    }
}
