//! The expanded-Markov-chain window: the last `l` walk states, their
//! distinct underlying nodes, and the induced subgraph among them.
//!
//! This implements the paper's §5 bookkeeping: when the walk advances, at
//! most one node enters the union and at most one leaves, so the induced
//! edge set is maintained with k − 1 adjacency probes per step instead of
//! C(k,2) — the edges among surviving nodes are reused from the previous
//! window.
//!
//! Everything lives in fixed-size arrays (`MAX_NODES` slots, `MAX_STATES`
//! ring entries): the steady-state `push` touches no heap at all, and the
//! window additionally caches each slot's *node degree* at entry time, so
//! downstream consumers (CSS in particular) never re-derive degrees the
//! walk has already paid for. For d = 1 walks the cached degree is the
//! walk's own recorded state degree; for d ≥ 2 it is fetched once per node
//! entry (an O(1) CSR offset difference) instead of once per CSS subset
//! per sample.
//!
//! # Interplay with the batched walker engine
//!
//! The slot bookkeeping is laid out struct-of-arrays (`distinct`,
//! `degrees`, `refcount`, `adj` are parallel fixed arrays) so that the
//! window/classify/CSS work of one lock-step lane reads plain array
//! loads with no pointer chasing — the only cache-miss-prone loads in
//! `push` are against the *graph*: the entering node's CSR offset pair
//! (for the `acquire` degree fill) and its neighbor slice (for the
//! k − 1 adjacency probes, each a binary search of that one list).
//! Those are precisely the lines [`gx_walks::BatchWalk::prefetch_next`]
//! and [`gx_walks::BatchWalk::prefetch_entering`] hint one lane-batch
//! tick ahead of this `push`, which is why the batched engine overlaps
//! the probe misses of up to B walkers instead of serializing them.

use crate::checkpoint::{put_u32, put_u64, put_u8, put_usize, Reader};
use crate::error::CheckpointError;
use gx_graph::{GraphAccess, NodeId};
use gx_graphlets::mask::pair_index;

/// Maximum union size (k ≤ 6 supported by the taxonomy, + headroom).
const MAX_NODES: usize = 8;
/// Maximum subgraph size d per state.
const MAX_D: usize = 7;
/// Ring capacity for remembered states (l ≤ 6; power of two for cheap
/// wraparound).
const MAX_STATES: usize = 8;

/// One remembered walk state.
#[derive(Debug, Clone, Copy)]
pub struct StateRec {
    nodes: [NodeId; MAX_D],
    len: u8,
    /// Degree of the state in `G(d)` at visit time.
    pub degree: u32,
}

impl StateRec {
    const EMPTY: StateRec = StateRec { nodes: [0; MAX_D], len: 0, degree: 0 };

    /// The state's node set.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes[..self.len as usize]
    }
}

/// Sliding window of the last `l` states of a walk on `G(d)`.
#[derive(Debug, Clone)]
pub struct NodeWindow {
    l: usize,
    k: usize,
    d: usize,
    /// Ring buffer of the last `l` states (`head` is the oldest).
    states: [StateRec; MAX_STATES],
    head: usize,
    count: usize,
    /// Distinct nodes currently in the union, in slot order.
    distinct: [NodeId; MAX_NODES],
    /// Node degree in the host graph, parallel to `distinct` — cached at
    /// slot entry so per-sample consumers read it as an array load.
    degrees: [u32; MAX_NODES],
    /// Reference counts parallel to `distinct`.
    refcount: [u8; MAX_NODES],
    /// Number of occupied slots.
    dlen: usize,
    /// Adjacency among slots: bit `q` of `adj[p]` is set iff slots `p`
    /// and `q` are adjacent in the host graph. A per-slot bitmask keeps
    /// [`NodeWindow::sample`] pure bit manipulation instead of a scan
    /// over a `bool` matrix.
    adj: [u64; MAX_NODES],
    /// Adjacency probes issued so far (the paper's per-step cost metric).
    probes: u64,
}

impl NodeWindow {
    /// Window for `l` consecutive states of d-node subgraphs
    /// (`k = l + d − 1`).
    pub fn new(l: usize, d: usize) -> Self {
        let k = l + d - 1;
        assert!(l >= 1, "window needs l >= 1");
        assert!(k <= MAX_NODES, "union size k={k} exceeds {MAX_NODES}");
        assert!(l <= MAX_STATES, "window length l={l} exceeds {MAX_STATES}");
        assert!(d <= MAX_D);
        Self {
            l,
            k,
            d,
            states: [StateRec::EMPTY; MAX_STATES],
            head: 0,
            count: 0,
            distinct: [0; MAX_NODES],
            degrees: [0; MAX_NODES],
            refcount: [0; MAX_NODES],
            dlen: 0,
            adj: [0; MAX_NODES],
            probes: 0,
        }
    }

    /// Number of states currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no states are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// True when the window holds `l` states.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.count == self.l
    }

    /// Number of distinct underlying nodes in the union.
    #[inline]
    pub fn distinct_count(&self) -> usize {
        self.dlen
    }

    /// Whether the current window is a *valid* sample: full and covering
    /// exactly `k = l + d − 1` distinct nodes (paper §3.1 discards the
    /// rest).
    #[inline]
    pub fn is_valid_sample(&self) -> bool {
        self.is_full() && self.dlen == self.k
    }

    /// The remembered states, oldest first.
    pub fn states(&self) -> impl Iterator<Item = &StateRec> {
        (0..self.count).map(move |i| &self.states[(self.head + i) & (MAX_STATES - 1)])
    }

    /// Degrees of the *interior* states X₂ … X_{l−1} (the ones whose
    /// degrees enter π_e for l > 2, Theorem 2).
    pub fn interior_degrees(&self) -> impl Iterator<Item = u32> + '_ {
        let end = self.count.saturating_sub(1);
        self.states().take(end).skip(1).map(|s| s.degree)
    }

    /// The distinct underlying nodes, in slot order (the labeling of
    /// [`NodeWindow::sample`]'s mask).
    #[inline]
    pub fn distinct_nodes(&self) -> &[NodeId] {
        &self.distinct[..self.dlen]
    }

    /// Host-graph degree of each distinct node, parallel to
    /// [`NodeWindow::distinct_nodes`] — the degree information the walk
    /// already paid for, cached at slot entry.
    #[inline]
    pub fn slot_degrees(&self) -> &[u32] {
        &self.degrees[..self.dlen]
    }

    /// Slot-position bitmask and recorded `G(d)` degree of each remembered
    /// state, oldest first. The bitmask uses the same slot labeling as
    /// [`NodeWindow::sample`], so a CSS subset whose bits equal a state's
    /// bitmask *is* that state and can reuse its degree instead of
    /// re-enumerating `G(d)` neighbors.
    pub fn state_slot_masks(&self) -> impl Iterator<Item = (u8, u32)> + '_ {
        self.states().map(move |s| {
            let mut bits = 0u8;
            for &v in s.nodes() {
                bits |= 1 << self.slot_of(v).expect("state node is in the union");
            }
            (bits, s.degree)
        })
    }

    /// Total adjacency probes issued (k − 1 per step once warm).
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// The window's `(l, d)` dimensions — checked against the run
    /// configuration when a checkpointed window is restored.
    pub(crate) fn dims(&self) -> (usize, usize) {
        (self.l, self.d)
    }

    // --- Checkpoint field encoding -----------------------------------------

    /// Serializes the window *verbatim* into a checkpoint payload. The
    /// slot order of `distinct` is load-bearing: it is determined by the
    /// full eviction history (swap-removes), it labels the sample mask,
    /// and it fixes the floating-point summation order of the CSS
    /// probability terms — replaying pushes into a fresh window on
    /// resume would permute it and break the golden-bit contract. The
    /// ring is written oldest first and re-based to `head = 0` on
    /// decode (the rotation itself is not observable).
    pub(crate) fn encode_into(&self, buf: &mut Vec<u8>) {
        put_usize(buf, self.l);
        put_usize(buf, self.d);
        put_u64(buf, self.probes);
        put_usize(buf, self.count);
        for s in self.states() {
            put_u8(buf, s.len);
            for &v in s.nodes() {
                put_u32(buf, v);
            }
            put_u32(buf, s.degree);
        }
        put_usize(buf, self.dlen);
        for p in 0..self.dlen {
            put_u32(buf, self.distinct[p]);
            put_u32(buf, self.degrees[p]);
            put_u8(buf, self.refcount[p]);
        }
        for p in 0..self.dlen {
            put_u64(buf, self.adj[p]);
        }
    }

    /// Inverse of [`NodeWindow::encode_into`], with typed rejection of
    /// any structurally inconsistent payload (a checksum-valid snapshot
    /// from a confused writer must not panic downstream: every slot
    /// reference, refcount, and adjacency bit is cross-validated before
    /// the window is handed back).
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let l = r.usize("window.l")?;
        let d = r.usize("window.d")?;
        if !(1..=MAX_STATES).contains(&l) || !(1..=MAX_D).contains(&d) || l + d - 1 > MAX_NODES {
            return Err(CheckpointError::Malformed { what: "window.dims" });
        }
        let mut w = NodeWindow::new(l, d);
        w.probes = r.u64("window.probes")?;
        let count = r.count(l, "window.count")?;
        w.count = count;
        for i in 0..count {
            let len = r.u8("window.state.len")? as usize;
            if len != d {
                return Err(CheckpointError::Malformed { what: "window.state.len" });
            }
            let rec = &mut w.states[i];
            rec.len = len as u8;
            for j in 0..len {
                rec.nodes[j] = r.u32("window.state.node")?;
            }
            rec.degree = r.u32("window.state.degree")?;
        }
        let dlen = r.count(MAX_NODES, "window.dlen")?;
        w.dlen = dlen;
        for p in 0..dlen {
            w.distinct[p] = r.u32("window.distinct")?;
            w.degrees[p] = r.u32("window.degree")?;
            w.refcount[p] = r.u8("window.refcount")?;
        }
        let full = (1u64 << dlen) - 1;
        for p in 0..dlen {
            let row = r.u64("window.adj")?;
            if row & !full != 0 || row & (1 << p) != 0 {
                return Err(CheckpointError::Malformed { what: "window.adj" });
            }
            w.adj[p] = row;
        }
        // Cross-validate: refcounts must be exactly the occurrence
        // counts of each slot's node across the remembered states (this
        // also rejects duplicate slots — both stored refcounts cannot
        // match then), every state node must resolve to a slot (the
        // `state_slot_masks` contract), and adjacency must be symmetric.
        let mut want = [0u32; MAX_NODES];
        for i in 0..count {
            for j in 0..w.states[i].len as usize {
                let v = w.states[i].nodes[j];
                match w.distinct[..dlen].iter().position(|&x| x == v) {
                    Some(slot) => want[slot] += 1,
                    None => return Err(CheckpointError::Malformed { what: "window.state.node" }),
                }
            }
        }
        for (p, &want_p) in want.iter().enumerate().take(dlen) {
            if w.refcount[p] == 0 || u32::from(w.refcount[p]) != want_p {
                return Err(CheckpointError::Malformed { what: "window.refcount" });
            }
            for q in (p + 1)..dlen {
                if (w.adj[p] >> q) & 1 != (w.adj[q] >> p) & 1 {
                    return Err(CheckpointError::Malformed { what: "window.adj.symmetry" });
                }
            }
        }
        Ok(w)
    }

    /// Pushes the walk's current state. `degree` is the state's degree in
    /// `G(d)` at this time.
    ///
    /// Composed from three crate-internal pieces (`push_admit`,
    /// `push_acquire_first`, `push_acquire_rest`) so the batched walker engine can
    /// run each piece as its own lock-step pass over the lanes (see
    /// `estimator::batched_ticks`): both engines execute literally the
    /// same sequence of window operations per push — the split exists so
    /// the acquire probes of *different* lanes, each a serial
    /// dependent-load chain into a cold adjacency list, sit close enough
    /// together to overlap in one out-of-order window.
    // gx-lint: no_alloc
    pub fn push<G: GraphAccess>(&mut self, g: &G, state_nodes: &[NodeId], degree: usize) {
        self.push_admit(state_nodes, degree);
        let first = self.push_acquire_first(g, state_nodes, degree);
        self.push_acquire_rest(g, state_nodes, degree, first);
    }

    /// Ring admission half of [`NodeWindow::push`]: evict the oldest
    /// state once the window is full, then write the new record into its
    /// ring slot. Touches only window-resident state — no graph probes.
    // gx-lint: no_alloc
    #[inline]
    pub(crate) fn push_admit(&mut self, state_nodes: &[NodeId], degree: usize) {
        debug_assert!(
            u32::try_from(degree).is_ok(),
            "state degree {degree} exceeds u32 (would truncate)"
        );
        if self.count == self.l {
            let old = self.states[self.head];
            self.head = (self.head + 1) & (MAX_STATES - 1);
            self.count -= 1;
            for &v in old.nodes() {
                self.release(v);
            }
        }
        // Write the record straight into its ring slot (no stack copy).
        let slot = (self.head + self.count) & (MAX_STATES - 1);
        let rec = &mut self.states[slot];
        rec.len = state_nodes.len() as u8;
        rec.degree = degree as u32;
        rec.nodes[..state_nodes.len()].copy_from_slice(state_nodes);
        self.count += 1;
    }

    /// First acquire of [`NodeWindow::push`] — the probe-heavy entry of
    /// the state's first node. Returns that node's slot so
    /// [`NodeWindow::push_acquire_rest`] can reuse its cached degree.
    // gx-lint: no_alloc
    #[inline]
    pub(crate) fn push_acquire_first<G: GraphAccess>(
        &mut self,
        g: &G,
        state_nodes: &[NodeId],
        degree: usize,
    ) -> usize {
        if self.d == 2 && state_nodes.len() == 2 {
            // A G(2) state *is* an edge: each endpoint's adjacency to the
            // other is known without a probe (one of the paper's k − 1
            // per-step probes comes for free on the edge walk).
            self.acquire(g, state_nodes[0], None, Some(state_nodes[1]))
        } else {
            // For d = 1 the state degree *is* the node degree — reuse it
            // so the walk's own degree lookups are never repeated.
            let known = if state_nodes.len() == 1 { Some(degree as u32) } else { None };
            match state_nodes.first() {
                Some(&v) => self.acquire(g, v, known, None),
                None => 0,
            }
        }
    }

    /// Remaining acquires of [`NodeWindow::push`]. `first` is
    /// [`NodeWindow::push_acquire_first`]'s slot: for a G(2) edge state
    /// the second endpoint's node degree follows from the first's cached
    /// slot degree (state degree = d_a + d_b − 2) without touching the
    /// graph.
    // gx-lint: no_alloc
    #[inline]
    pub(crate) fn push_acquire_rest<G: GraphAccess>(
        &mut self,
        g: &G,
        state_nodes: &[NodeId],
        degree: usize,
        first: usize,
    ) {
        if self.d == 2 && state_nodes.len() == 2 {
            let (a, b) = (state_nodes[0], state_nodes[1]);
            let db = (degree + 2 - self.degrees[first] as usize) as u32;
            self.acquire(g, b, Some(db), Some(a));
        } else {
            for &v in state_nodes.iter().skip(1) {
                let _ = self.acquire(g, v, None, None);
            }
        }
    }

    #[inline]
    fn slot_of(&self, v: NodeId) -> Option<usize> {
        self.distinct[..self.dlen].iter().position(|&x| x == v)
    }

    fn acquire<G: GraphAccess>(
        &mut self,
        g: &G,
        v: NodeId,
        known_degree: Option<u32>,
        known_adjacent: Option<NodeId>,
    ) -> usize {
        if let Some(p) = self.slot_of(v) {
            self.refcount[p] += 1;
            return p;
        }
        let p = self.dlen;
        assert!(p < MAX_NODES, "window union overflow");
        // probe adjacency vs every existing slot: the paper's k − 1
        // binary searches per step (minus any pair the walk already
        // knows, passed as `known_adjacent`). Every probe searches the
        // entering node's own list — fetched once and cache-warm across
        // the k − 1 probes — which measures faster than the generic
        // `has_edge` (no per-pair hub-index or degree-comparison
        // overhead, one hot list instead of k − 1 cold ones).
        // `visit_neighbors` (rather than `neighbors`) lets out-of-core
        // backends lend a scoped, cache-resident slice without any
        // allocation or copy; on the in-RAM `Graph` it compiles to the
        // same direct subslice as before.
        let distinct = &self.distinct[..p];
        let adj = &mut self.adj;
        let mut row = 0u64;
        let mut probed = 0u64;
        g.visit_neighbors(v, &mut |nbrs| {
            for (q, &u) in distinct.iter().enumerate() {
                let adjacent = if known_adjacent == Some(u) {
                    true
                } else {
                    probed += 1;
                    nbrs.binary_search(&u).is_ok()
                };
                if adjacent {
                    row |= 1 << q;
                    adj[q] |= 1 << p;
                }
            }
        });
        self.probes += probed;
        self.adj[p] = row;
        self.distinct[p] = v;
        self.degrees[p] = known_degree.unwrap_or_else(|| g.degree(v) as u32);
        self.refcount[p] = 1;
        self.dlen += 1;
        p
    }

    fn release(&mut self, v: NodeId) {
        let p = self.slot_of(v).expect("released node must be present");
        self.refcount[p] -= 1;
        if self.refcount[p] > 0 {
            return;
        }
        // swap-remove slot p, relocating the last slot's adjacency bits.
        let last = self.dlen - 1;
        self.distinct[p] = self.distinct[last];
        self.degrees[p] = self.degrees[last];
        self.refcount[p] = self.refcount[last];
        self.dlen = last;
        let pbit = 1u64 << p;
        let lastbit = 1u64 << last;
        if p != last {
            // Move `last`'s row into slot p, dropping its (p, last) bit.
            self.adj[p] = self.adj[last] & !pbit;
            // In every other row, rewrite the `last` bit as the `p` bit,
            // branchlessly. (For q = p the moved row has no `last` bit —
            // it would be a self-loop — so the or-in is a no-op there.)
            for q in 0..=last {
                let row = self.adj[q];
                let had_last = (row >> last) & 1;
                self.adj[q] = (row & !(pbit | lastbit)) | (had_last << p);
            }
        } else {
            for row in self.adj.iter_mut() {
                *row &= !pbit;
            }
        }
        self.adj[last] = 0;
    }

    /// The induced edge mask over the distinct nodes, in slot order
    /// (labeling compatible with [`gx_graphlets::classify_mask`] for
    /// `distinct_count()` nodes), together with the nodes.
    ///
    /// Extracted with bit operations from the per-slot adjacency masks:
    /// for each slot `i`, the bits `j > i` of `adj[i]` are exactly the
    /// edges `(i, j)`, and the upper-triangle pair layout stores them
    /// contiguously — so each row contributes one shifted bit-block, no
    /// per-pair scan.
    // gx-lint: no_alloc
    #[inline]
    pub fn sample(&self) -> (u32, &[NodeId]) {
        let m = self.dlen;
        let mut mask = 0u32;
        // pair_index(i, j, m) = base(i) + (j - i - 1) with
        // base(i) = i*m - i(i+1)/2: within a row the pair bits are
        // consecutive in j, so the whole row moves in one shift.
        let mut base = 0usize;
        for i in 0..m {
            let above = (self.adj[i] >> (i + 1)) as u32; // bits j > i, j at j-i-1
            mask |= (above & ((1u32 << (m - i - 1)) - 1)) << base;
            base += m - i - 1;
        }
        debug_assert_eq!(mask, self.reference_mask(), "bit-block mask extraction");
        (mask, &self.distinct[..m])
    }

    /// Reference mask built pairwise (debug cross-check for `sample`).
    fn reference_mask(&self) -> u32 {
        let m = self.dlen;
        let mut mask = 0u32;
        for i in 0..m {
            for j in (i + 1)..m {
                if self.adj[i] & (1 << j) != 0 {
                    mask |= 1 << pair_index(i, j, m);
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gx_graph::generators::classic;
    use gx_graphlets::{classify_mask, classify_nodes};

    #[test]
    fn window_tracks_distinct_nodes_srw1() {
        let g = classic::paper_figure1();
        let mut w = NodeWindow::new(3, 1);
        assert!(w.is_empty());
        // walk 0 -> 1 -> 0: only 2 distinct nodes -> invalid
        w.push(&g, &[0], 3);
        assert_eq!(w.len(), 1);
        w.push(&g, &[1], 2);
        w.push(&g, &[0], 3);
        assert!(w.is_full());
        assert_eq!(w.distinct_count(), 2);
        assert!(!w.is_valid_sample());
        // continue 0 -> 3: window = (1, 0, 3): wedge (1-0, 0-3, no 1-3)
        w.push(&g, &[3], 2);
        assert!(w.is_valid_sample());
        let (mask, nodes) = w.sample();
        assert_eq!(classify_mask(3, mask), classify_nodes(&g, nodes));
        assert_eq!(classify_mask(3, mask).unwrap().name(), "wedge");
        // continue 3 -> 2: window = (0, 3, 2): triangle {0,3,2}
        w.push(&g, &[2], 3);
        let (mask, _) = w.sample();
        assert_eq!(classify_mask(3, mask).unwrap().name(), "triangle");
    }

    #[test]
    fn window_matches_paper_g2_example() {
        // §3.1 example (b): states (1,2) -> (1,3) -> (3,4) on G(2) give the
        // 4-node sample {1,2,3,4} = chordal-cycle (0-based: shift by −1).
        let g = classic::paper_figure1();
        let mut w = NodeWindow::new(3, 2);
        w.push(&g, &[0, 1], 3);
        w.push(&g, &[0, 2], 4);
        w.push(&g, &[2, 3], 3);
        assert!(w.is_valid_sample());
        let (mask, nodes) = w.sample();
        assert_eq!(classify_mask(4, mask).unwrap().name(), "chordal-cycle");
        let mut sorted = nodes.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        // interior degree: only the middle state (0,2) with degree 4
        assert_eq!(w.interior_degrees().collect::<Vec<_>>(), vec![4]);
    }

    #[test]
    fn interior_degrees_for_l2_is_empty() {
        let g = classic::paper_figure1();
        let mut w = NodeWindow::new(2, 3);
        w.push(&g, &[0, 1, 2], 5);
        w.push(&g, &[0, 2, 3], 6);
        assert_eq!(w.interior_degrees().count(), 0);
    }

    #[test]
    fn probes_are_k_minus_1_per_new_node() {
        let g = classic::complete(6);
        let mut w = NodeWindow::new(3, 1);
        w.push(&g, &[0], 5);
        assert_eq!(w.probes(), 0);
        w.push(&g, &[1], 5);
        assert_eq!(w.probes(), 1);
        w.push(&g, &[2], 5);
        assert_eq!(w.probes(), 3); // 1 + 2

        // steady state: one node leaves, one enters: k-1 = 2 probes
        w.push(&g, &[3], 5);
        assert_eq!(w.probes(), 5);
    }

    #[test]
    fn slot_degrees_track_host_graph() {
        let g = classic::paper_figure1(); // degrees: 3, 2, 3, 2
        let mut w = NodeWindow::new(3, 2);
        w.push(&g, &[0, 1], 3);
        w.push(&g, &[0, 2], 4);
        w.push(&g, &[2, 3], 3);
        for (&v, &deg) in w.distinct_nodes().iter().zip(w.slot_degrees()) {
            assert_eq!(deg as usize, g.degree(v), "slot degree of node {v}");
        }
        // slot degrees survive evictions / slot relocation
        w.push(&g, &[1, 2], 3);
        w.push(&g, &[1, 3], 2);
        for (&v, &deg) in w.distinct_nodes().iter().zip(w.slot_degrees()) {
            assert_eq!(deg as usize, g.degree(v), "slot degree of node {v}");
        }
    }

    #[test]
    fn state_slot_masks_identify_visited_states() {
        let g = classic::paper_figure1();
        let mut w = NodeWindow::new(3, 2);
        w.push(&g, &[0, 1], 3);
        w.push(&g, &[0, 2], 4);
        w.push(&g, &[2, 3], 3);
        let nodes = w.distinct_nodes();
        for ((bits, deg), rec) in w.state_slot_masks().zip(w.states()) {
            assert_eq!(deg, rec.degree);
            // the bitmask decodes back to exactly the state's node set
            let mut decoded: Vec<_> =
                (0..nodes.len()).filter(|&p| bits & (1 << p) != 0).map(|p| nodes[p]).collect();
            decoded.sort_unstable();
            let mut want = rec.nodes().to_vec();
            want.sort_unstable();
            assert_eq!(decoded, want);
        }
    }

    #[test]
    fn mask_stays_consistent_under_long_random_walks() {
        use gx_walks::{rng_from_seed, SrwWalk, StateWalk};
        let g = classic::petersen();
        let mut rng = rng_from_seed(77);
        let mut walk = SrwWalk::new(&g, 0, false);
        let mut w = NodeWindow::new(4, 1);
        for _ in 0..5000 {
            let deg = walk.state_degree();
            w.push(&g, &[walk.state()[0]], deg);
            if w.is_full() {
                let (mask, nodes) = w.sample();
                // reference: classify from scratch
                let m = nodes.len();
                let expected = gx_graphlets::induced_mask(&g, nodes);
                assert_eq!(mask, expected, "incremental mask diverged at {nodes:?} (m={m})");
            }
            walk.step(&mut rng);
        }
    }

    #[test]
    fn mask_consistent_for_g2_windows() {
        use gx_walks::{rng_from_seed, G2Walk, StateWalk};
        let g = classic::lollipop(5, 3);
        let mut rng = rng_from_seed(13);
        let mut walk = G2Walk::new(&g, 0, 1, false);
        let mut w = NodeWindow::new(4, 2);
        for _ in 0..5000 {
            let deg = walk.state_degree();
            w.push(&g, walk.state(), deg);
            if w.is_full() {
                let (mask, nodes) = w.sample();
                assert_eq!(mask, gx_graphlets::induced_mask(&g, nodes));
                assert!(w.distinct_count() >= 2 && w.distinct_count() <= 5);
            }
            walk.step(&mut rng);
        }
    }

    #[test]
    #[should_panic(expected = "union size")]
    fn rejects_oversized_window() {
        let _ = NodeWindow::new(9, 1);
    }

    #[test]
    fn checkpoint_round_trip_preserves_window_verbatim() {
        use gx_walks::{rng_from_seed, G2Walk, StateWalk};
        let g = classic::lollipop(5, 3);
        let mut rng = rng_from_seed(41);
        let mut walk = G2Walk::new(&g, 0, 1, false);
        let mut w = NodeWindow::new(4, 2);
        // Warm through plenty of evictions so slot order reflects real
        // swap-remove history, then round-trip at several depths.
        for step in 0..500 {
            let deg = walk.state_degree();
            w.push(&g, walk.state(), deg);
            walk.step(&mut rng);
            if step % 97 != 0 {
                continue;
            }
            let mut buf = Vec::new();
            w.encode_into(&mut buf);
            let mut r = crate::checkpoint::Reader::new(&buf);
            let mut back = NodeWindow::decode_from(&mut r).unwrap();
            r.finish().unwrap();
            // Slot order, masks, degrees and probes all must survive;
            // head is re-based but the ring contents are not observable
            // through any accessor except oldest-first.
            assert_eq!(back.sample(), w.sample());
            assert_eq!(back.distinct_nodes(), w.distinct_nodes());
            assert_eq!(back.slot_degrees(), w.slot_degrees());
            assert_eq!(back.probes(), w.probes());
            assert_eq!(
                back.state_slot_masks().collect::<Vec<_>>(),
                w.state_slot_masks().collect::<Vec<_>>()
            );
            // And the decoded window continues identically under the
            // same pushes.
            let mut probe_walk = G2Walk::new(&g, walk.current().0, walk.current().1, false);
            let mut probe_rng = rng_from_seed(500 + step as u64);
            let mut mirror = w.clone();
            for _ in 0..25 {
                let deg = probe_walk.state_degree();
                mirror.push(&g, probe_walk.state(), deg);
                back.push(&g, probe_walk.state(), deg);
                assert_eq!(back.sample(), mirror.sample());
                probe_walk.step(&mut probe_rng);
            }
        }
    }

    #[test]
    fn decode_rejects_inconsistent_payloads() {
        let g = classic::petersen();
        let mut w = NodeWindow::new(3, 1);
        for v in [0, 1, 2] {
            w.push(&g, &[v], g.degree(v));
        }
        let mut buf = Vec::new();
        w.encode_into(&mut buf);
        // A clean decode works.
        let mut r = crate::checkpoint::Reader::new(&buf);
        assert!(NodeWindow::decode_from(&mut r).is_ok());
        // l = 0 is out of domain.
        let mut bad = buf.clone();
        bad[..8].copy_from_slice(&0u64.to_le_bytes());
        let mut r = crate::checkpoint::Reader::new(&bad);
        assert_eq!(
            NodeWindow::decode_from(&mut r).unwrap_err(),
            CheckpointError::Malformed { what: "window.dims" }
        );
        // Truncating the payload is typed, not a panic.
        for cut in 0..buf.len() {
            let mut r = crate::checkpoint::Reader::new(&buf[..cut]);
            assert!(NodeWindow::decode_from(&mut r).is_err(), "cut {cut}");
        }
    }
}
