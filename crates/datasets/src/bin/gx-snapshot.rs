//! `gx-snapshot` — convert a SNAP/KONECT edge list into an on-disk
//! graph snapshot (`.gxsn` mmap-ready CSR, or `.gxsc` compressed).
//!
//! ```text
//! gx-snapshot <edge-list> <output> [--format gxsn|gxsc] [--block N]
//! ```
//!
//! The edge list is streamed twice (degree count, then CSR fill), so
//! inputs larger than RAM convert as long as the final CSR fits. When
//! the input's ids are already dense (`0..n` in order) the id-map
//! section is skipped — `MmapGraph` then serves identity ids for free.
//! On success the tool prints the node/edge counts, the structural
//! fingerprint embedded in the header (the same value
//! `Runner::resume_trusted` checks), and the bytes written.

use gx_datasets::LoadedDataset;
use gx_graph::disk::write_gxsc_with_block;
use gx_graph::{write_gxsn, SnapshotInfo};
use std::process::ExitCode;

const USAGE: &str = "usage: gx-snapshot <edge-list> <output> [--format gxsn|gxsc] [--block N]

  <edge-list>   SNAP/KONECT plain text: `u v` per line, #/% comments
  <output>      snapshot path, written atomically (temp + fsync + rename)
  --format      gxsn (mmap-ready CSR, default) or gxsc (delta-varint compressed)
  --block N     gxsc only: nodes per decode block (default 64)";

struct Args {
    input: String,
    output: String,
    compressed: bool,
    block: u64,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut positional: Vec<&String> = Vec::new();
    let mut compressed = false;
    let mut block = 64u64;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("gxsn") => compressed = false,
                Some("gxsc") => compressed = true,
                Some(other) => return Err(format!("unknown format `{other}` (gxsn|gxsc)")),
                None => return Err("--format needs a value".into()),
            },
            "--block" => {
                let v = it.next().ok_or("--block needs a value")?;
                block = v.parse::<u64>().map_err(|_| format!("bad --block value `{v}`"))?;
                if block == 0 {
                    return Err("--block must be >= 1".into());
                }
            }
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            _ => positional.push(a),
        }
    }
    match positional.as_slice() {
        [input, output] => {
            Ok(Args { input: (*input).clone(), output: (*output).clone(), compressed, block })
        }
        _ => Err("expected exactly two positional arguments".into()),
    }
}

fn run(args: &Args) -> Result<(), String> {
    let ds =
        LoadedDataset::load(&args.input).map_err(|e| format!("reading {}: {e}", args.input))?;
    // Dense inputs need no id-map section: compact id == original id.
    let originals = ds.ids.originals();
    let identity = originals.iter().enumerate().all(|(i, &o)| o == i as u64);
    let ids = if identity { None } else { Some(originals) };
    let info: SnapshotInfo = if args.compressed {
        write_gxsc_with_block(&ds.graph, ids, &args.output, args.block)
    } else {
        write_gxsn(&ds.graph, ids, &args.output)
    }
    .map_err(|e| format!("writing {}: {e}", args.output))?;
    println!(
        "{}: {} nodes={} edges={} fingerprint={:#018x} bytes={} id_map={}",
        args.output,
        info.kind,
        info.num_nodes,
        info.num_edges,
        info.fingerprint,
        info.bytes,
        if identity { "identity" } else { "embedded" },
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("gx-snapshot: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gx-snapshot: {msg}");
            ExitCode::FAILURE
        }
    }
}
