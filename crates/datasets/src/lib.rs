//! Seeded synthetic analogs of the paper's evaluation datasets (Table 5).
//!
//! The paper evaluates on ten SNAP/KONECT crawls (BrightKite … Sinaweibo,
//! up to 265M edges). Those are neither redistributable here nor
//! laptop-sized, so every experiment in this workspace runs on a seeded
//! synthetic analog chosen to match the *axes that drive estimator
//! behaviour* (DESIGN.md §3): heavy-tailed degrees, the dataset's relative
//! triangle/clique richness, and the small-vs-large split (the paper
//! computes 5-node ground truth only for its four smallest graphs; so do
//! we).
//!
//! Analog mapping:
//!
//! | analog          | paper dataset | generator | why |
//! |-----------------|--------------|-----------|-----|
//! | `brightkite-sim`| BrightKite   | Holme–Kim m=4, p=0.45 | moderate clustering, heavy tail |
//! | `epinion-sim`   | Epinion      | Holme–Kim m=5, p=0.25 | lower clustering |
//! | `slashdot-sim`  | Slashdot     | Barabási–Albert m=5   | heavy tail, low clustering |
//! | `facebook-sim`  | Facebook     | Holme–Kim m=6, p=0.60 | highest triangle concentration |
//! | `gowalla-sim`   | Gowalla      | Barabási–Albert m=5   | low clustering, larger |
//! | `wikipedia-sim` | Wikipedia    | Holme–Kim m=10, p=0.02 | near-zero clustering, dense |
//! | `pokec-sim`     | Pokec        | Holme–Kim m=8, p=0.12 | mild clustering, large |
//! | `flickr-sim`    | Flickr       | Holme–Kim m=6, p=0.55 | high clustering, large |
//! | `twitter-sim`   | Twitter      | Barabási–Albert m=8   | heavy tail, low clustering |
//! | `sinaweibo-sim` | Sinaweibo    | Holme–Kim m=5, p=0.005 | lowest clustering |
//!
//! Every graph is the largest connected component of its generator output
//! (the paper does the same, §6.1), built deterministically from a fixed
//! seed and cached for the process lifetime, as is its ground truth.

use gx_exact::{exact_counts, GraphletCounts};
use gx_graph::connectivity::largest_connected_component;
use gx_graph::generators::{barabasi_albert, holme_kim};
use gx_graph::Graph;
use rand::SeedableRng;
use std::sync::OnceLock;

pub mod load;

pub use load::{LoadedDataset, MappedDataset, MMAP_ENV};

/// A named synthetic dataset with lazily built graph and ground truth.
pub struct Dataset {
    /// Registry name (`*-sim`).
    pub name: &'static str,
    /// The paper dataset this stands in for.
    pub paper_analog: &'static str,
    /// Whether this belongs to the "small" group with 5-node ground truth
    /// (the paper's BrightKite/Epinion/Slashdot/Facebook group).
    pub small: bool,
    seed: u64,
    build: fn(u64) -> Graph,
    graph: OnceLock<Graph>,
    truth: [OnceLock<GraphletCounts>; 3],
}

impl Dataset {
    /// The dataset graph (LCC, deterministic), built on first use.
    pub fn graph(&self) -> &Graph {
        self.graph.get_or_init(|| {
            let raw = (self.build)(self.seed);
            largest_connected_component(&raw).0
        })
    }

    /// Exact graphlet counts for `k ∈ {3, 4, 5}`, cached. 5-node ground
    /// truth is only available for small datasets (panics otherwise),
    /// mirroring the paper's Table 5.
    ///
    /// 5-node counts (the only expensive ones — full ESU enumeration) are
    /// additionally cached on disk under `target/gx-truth/`, keyed by the
    /// dataset's name and exact size, so repeated bench invocations do
    /// not re-enumerate.
    pub fn ground_truth(&self, k: usize) -> &GraphletCounts {
        assert!((3..=5).contains(&k), "ground truth supports k = 3..=5");
        if k == 5 {
            assert!(
                self.small,
                "{}: 5-node ground truth is only computed for small datasets \
                 (the paper does the same — §6.1)",
                self.name
            );
        }
        self.truth[k - 3].get_or_init(|| {
            if k == 5 {
                if let Some(cached) = self.load_cached(k) {
                    return cached;
                }
            }
            let counts = exact_counts(self.graph(), k);
            if k == 5 {
                self.store_cached(&counts);
            }
            counts
        })
    }

    fn cache_path(&self, k: usize) -> std::path::PathBuf {
        // Anchor at the workspace target dir so tests and benches (which
        // run with different CWDs) share one cache.
        let dir = std::env::var("GX_TRUTH_CACHE").unwrap_or_else(|_| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/gx-truth").to_string()
        });
        let g = self.graph();
        // Fingerprint the edge set, not just (n, m): generator-stream
        // changes can produce a different graph with identical counts,
        // and a colliding key would silently serve stale ground truth.
        let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
        for (u, v) in g.edges() {
            for word in [u, v] {
                fp ^= word as u64;
                fp = fp.wrapping_mul(0x100_0000_01b3);
            }
        }
        std::path::PathBuf::from(dir).join(format!(
            "{}-k{}-n{}-m{}-h{fp:016x}.txt",
            self.name,
            k,
            g.num_nodes(),
            g.num_edges()
        ))
    }

    fn load_cached(&self, k: usize) -> Option<GraphletCounts> {
        let text = std::fs::read_to_string(self.cache_path(k)).ok()?;
        let counts: Vec<u64> =
            text.split_whitespace().map(|t| t.parse().ok()).collect::<Option<_>>()?;
        if counts.len() != gx_graphlets::num_graphlets(k) {
            return None;
        }
        Some(GraphletCounts { k, counts })
    }

    fn store_cached(&self, counts: &GraphletCounts) {
        let path = self.cache_path(counts.k);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let text: Vec<String> = counts.counts.iter().map(|c| c.to_string()).collect();
        let _ = std::fs::write(path, text.join(" "));
    }

    /// Exact concentration vector for `k`.
    pub fn exact_concentrations(&self, k: usize) -> Vec<f64> {
        self.ground_truth(k).concentrations()
    }
}

macro_rules! dataset {
    ($name:literal, $analog:literal, $small:expr, $seed:expr, $build:expr) => {
        Dataset {
            name: $name,
            paper_analog: $analog,
            small: $small,
            seed: $seed,
            build: $build,
            graph: OnceLock::new(),
            truth: [OnceLock::new(), OnceLock::new(), OnceLock::new()],
        }
    };
}

fn rng(seed: u64) -> rand_pcg::Pcg64 {
    rand_pcg::Pcg64::seed_from_u64(seed)
}

/// The ten analogs, in the paper's Table 5 order.
pub fn registry() -> &'static [Dataset] {
    static REGISTRY: OnceLock<Vec<Dataset>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        vec![
            dataset!("brightkite-sim", "BrightKite", true, 0xB017, |s| {
                holme_kim(1000, 4, 0.45, &mut rng(s))
            }),
            dataset!("epinion-sim", "Epinion", true, 0xE919, |s| {
                holme_kim(1500, 4, 0.25, &mut rng(s))
            }),
            dataset!("slashdot-sim", "Slashdot", true, 0x51A5, |s| {
                barabasi_albert(1600, 4, &mut rng(s))
            }),
            dataset!("facebook-sim", "Facebook", true, 0xFACE, |s| {
                holme_kim(1000, 5, 0.60, &mut rng(s))
            }),
            dataset!("gowalla-sim", "Gowalla", false, 0x90A1, |s| {
                barabasi_albert(20_000, 5, &mut rng(s))
            }),
            dataset!("wikipedia-sim", "Wikipedia", false, 0x4181, |s| {
                holme_kim(25_000, 10, 0.02, &mut rng(s))
            }),
            dataset!("pokec-sim", "Pokec", false, 0x90EC, |s| {
                holme_kim(30_000, 8, 0.12, &mut rng(s))
            }),
            dataset!("flickr-sim", "Flickr", false, 0xF11C, |s| {
                holme_kim(25_000, 6, 0.55, &mut rng(s))
            }),
            dataset!("twitter-sim", "Twitter", false, 0x7417, |s| {
                barabasi_albert(40_000, 8, &mut rng(s))
            }),
            dataset!("sinaweibo-sim", "Sinaweibo", false, 0x517A, |s| {
                holme_kim(50_000, 5, 0.005, &mut rng(s))
            }),
        ]
    })
}

/// Looks a dataset up by name.
pub fn dataset(name: &str) -> &'static Dataset {
    registry()
        .iter()
        .find(|d| d.name == name)
        .unwrap_or_else(|| panic!("unknown dataset {name:?}; see gx_datasets::registry()"))
}

/// The four small datasets (5-node ground truth available).
pub fn small_datasets() -> impl Iterator<Item = &'static Dataset> {
    registry().iter().filter(|d| d.small)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_ten_table5_entries() {
        assert_eq!(registry().len(), 10);
        assert_eq!(small_datasets().count(), 4);
        assert_eq!(dataset("facebook-sim").paper_analog, "Facebook");
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_name_panics() {
        let _ = dataset("nope");
    }

    #[test]
    fn graphs_are_connected_and_cached() {
        let d = dataset("brightkite-sim");
        let g1 = d.graph() as *const Graph;
        let g2 = d.graph() as *const Graph;
        assert_eq!(g1, g2, "cached");
        assert!(gx_graph::connectivity::is_connected(d.graph()));
        assert!(d.graph().num_nodes() >= 1000);
    }

    #[test]
    fn small_datasets_are_deterministic() {
        // re-running the generator by hand reproduces the cached graph
        let d = dataset("slashdot-sim");
        let raw = barabasi_albert(1600, 4, &mut rng(0x51A5));
        let (lcc, _) = largest_connected_component(&raw);
        assert_eq!(d.graph(), &lcc);
    }

    #[test]
    fn triangle_concentration_ordering_matches_table5() {
        // Table 5's qualitative ordering within the small group:
        // Facebook (0.0546) > BrightKite (0.0398) > Epinion (0.0229) >
        // Slashdot (0.0082).
        let c32 = |name: &str| dataset(name).exact_concentrations(3)[1];
        let fb = c32("facebook-sim");
        let bk = c32("brightkite-sim");
        let ep = c32("epinion-sim");
        let sd = c32("slashdot-sim");
        assert!(fb > bk, "facebook {fb} vs brightkite {bk}");
        assert!(bk > ep, "brightkite {bk} vs epinion {ep}");
        assert!(ep > sd, "epinion {ep} vs slashdot {sd}");
    }

    #[test]
    fn five_node_ground_truth_for_smalls() {
        let d = dataset("brightkite-sim");
        let c5 = d.ground_truth(5);
        assert_eq!(c5.k, 5);
        assert!(c5.total() > 0);
        // cliques exist but are rare (Table 5's c⁵₂₁ column is ~1e-5)
        let conc = c5.concentrations();
        assert!(conc[20] > 0.0 && conc[20] < 0.05, "c5_21 = {}", conc[20]);
    }

    #[test]
    #[should_panic(expected = "only computed for small datasets")]
    fn five_node_ground_truth_refused_for_larges() {
        let _ = dataset("twitter-sim").ground_truth(5);
    }

    #[test]
    #[ignore = "builds every large dataset (~seconds in release); run with --ignored"]
    fn large_datasets_build_and_order_by_clustering() {
        let c32 = |name: &str| dataset(name).exact_concentrations(3)[1];
        let flickr = c32("flickr-sim");
        let twitter = c32("twitter-sim");
        let weibo = c32("sinaweibo-sim");
        assert!(flickr > twitter, "flickr {flickr} vs twitter {twitter}");
        assert!(twitter > weibo, "twitter {twitter} vs sinaweibo {weibo}");
    }
}
