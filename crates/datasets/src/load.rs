//! Loading *real* snapshots (SNAP/KONECT edge lists) as datasets.
//!
//! The synthetic registry in [`crate`] covers every in-tree experiment,
//! but the north star is dropping actual KONECT crawls in. Those files
//! use sparse original ids (user ids around 10⁹ are routine), so the
//! loader goes through [`gx_graph::io::read_edge_list_compact`] and —
//! crucially — *keeps* the [`NodeIdMap`] next to the graph: every
//! estimate, sampled graphlet, or per-node statistic computed on the
//! compact graph can be translated back to the snapshot's own ids.
//! Dropping the map (the previous state of affairs: datasets and
//! examples assumed dense ids) made results on remapped graphs
//! unreportable.

use gx_graph::io::{read_edge_list_compact, NodeIdMap};
use gx_graph::{Graph, GraphError, NodeId};
use std::io::Read;
use std::path::Path;

/// A graph loaded from an external edge list, with the id remap needed
/// to translate results back to the file's original ids.
#[derive(Debug)]
pub struct LoadedDataset {
    /// Dataset name (the file stem for path-based loads).
    pub name: String,
    /// The compact graph (nodes `0..n` in sorted-original-id order).
    pub graph: Graph,
    /// Compact ↔ original id translation.
    pub ids: NodeIdMap,
}

impl LoadedDataset {
    /// Loads an edge list (SNAP/KONECT plain-text convention: `u v`
    /// per line, `#`/`%` comments, duplicates tolerated) with id
    /// compaction. A stray id like 10⁹ costs one map entry, not a
    /// billion-node allocation.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, GraphError> {
        let path = path.as_ref();
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "dataset".to_string());
        let file = std::fs::File::open(path)?;
        Self::from_reader(name, file)
    }

    /// [`LoadedDataset::load`] from any reader, with an explicit name.
    pub fn from_reader(name: impl Into<String>, reader: impl Read) -> Result<Self, GraphError> {
        let (graph, ids) = read_edge_list_compact(reader)?;
        Ok(Self { name: name.into(), graph, ids })
    }

    /// Original file id of compact node `node`.
    pub fn original_id(&self, node: NodeId) -> u64 {
        self.ids.original(node)
    }

    /// Compact node of original file id `original` (`None` if the id
    /// never appeared in the file).
    pub fn compact_id(&self, original: u64) -> Option<NodeId> {
        self.ids.compact(original)
    }

    /// Translates a compact node set (e.g. a sampled graphlet's nodes)
    /// back to original file ids, preserving order.
    pub fn originals_of(&self, nodes: &[NodeId]) -> Vec<u64> {
        nodes.iter().map(|&n| self.ids.original(n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// KONECT-style sparse ids around 10⁹: a triangle plus a pendant.
    const SPARSE: &str = "% sparse-id fixture\n\
        1000000000 1000000007\n\
        1000000007 2000000042\n\
        2000000042 1000000000\n\
        # pendant\n\
        2000000042 3000000000\n";

    #[test]
    fn sparse_id_round_trip() {
        let d = LoadedDataset::from_reader("sparse", SPARSE.as_bytes()).unwrap();
        assert_eq!(d.graph.num_nodes(), 4, "four distinct ids, not 3×10⁹ slots");
        assert_eq!(d.graph.num_edges(), 4);
        // Compact ids follow sorted original order; every node round-trips.
        for n in 0..d.graph.num_nodes() as NodeId {
            assert_eq!(d.compact_id(d.original_id(n)), Some(n));
        }
        assert_eq!(d.original_id(0), 1_000_000_000);
        assert_eq!(d.original_id(3), 3_000_000_000);
        assert_eq!(d.compact_id(999), None);
        // The triangle survives the remap.
        let (a, b, c) = (
            d.compact_id(1_000_000_000).unwrap(),
            d.compact_id(1_000_000_007).unwrap(),
            d.compact_id(2_000_000_042).unwrap(),
        );
        assert!(d.graph.has_edge(a, b) && d.graph.has_edge(b, c) && d.graph.has_edge(c, a));
        assert_eq!(d.originals_of(&[c, a]), vec![2_000_000_042, 1_000_000_000]);
    }

    #[test]
    fn file_round_trip_and_estimation_end_to_end() {
        let path = std::env::temp_dir().join("gx_datasets_sparse_fixture.txt");
        std::fs::write(&path, SPARSE).unwrap();
        let d = LoadedDataset::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(d.name, "gx_datasets_sparse_fixture");
        // The compact graph is a first-class estimation target: exact
        // counting sees the one triangle, reported in original ids.
        let counts = gx_exact::exact_counts(&d.graph, 3);
        assert_eq!(counts.counts[1], 1, "exactly one triangle");
        let tri: Vec<u64> = d.originals_of(&[0, 1, 2]);
        assert_eq!(tri, vec![1_000_000_000, 1_000_000_007, 2_000_000_042]);
    }

    #[test]
    fn load_missing_file_is_an_io_error() {
        let err = LoadedDataset::load("/nonexistent/gx-no-such-file.txt").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)), "got {err:?}");
    }
}
