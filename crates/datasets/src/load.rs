//! Loading *real* snapshots (SNAP/KONECT edge lists) as datasets.
//!
//! The synthetic registry in [`crate`] covers every in-tree experiment,
//! but the north star is dropping actual KONECT crawls in. Those files
//! use sparse original ids (user ids around 10⁹ are routine), so the
//! loader goes through [`gx_graph::io::read_edge_list_compact`] and —
//! crucially — *keeps* the [`NodeIdMap`] next to the graph: every
//! estimate, sampled graphlet, or per-node statistic computed on the
//! compact graph can be translated back to the snapshot's own ids.
//! Dropping the map (the previous state of affairs: datasets and
//! examples assumed dense ids) made results on remapped graphs
//! unreportable.

use gx_graph::io::{read_edge_list_compact, read_edge_list_compact_file, NodeIdMap};
use gx_graph::{Graph, GraphError, MmapGraph, NodeId, SnapshotError};
use std::io::Read;
use std::path::Path;
use std::sync::Arc;

/// Environment variable naming a `.gxsn` snapshot to map instead of
/// parsing an edge list (see [`MappedDataset::from_env`]).
pub const MMAP_ENV: &str = "GX_DATASET_MMAP";

/// A graph loaded from an external edge list, with the id remap needed
/// to translate results back to the file's original ids.
#[derive(Debug)]
pub struct LoadedDataset {
    /// Dataset name (the file stem for path-based loads).
    pub name: String,
    /// The compact graph (nodes `0..n` in sorted-original-id order).
    pub graph: Graph,
    /// Compact ↔ original id translation.
    pub ids: NodeIdMap,
}

impl LoadedDataset {
    /// Loads an edge list (SNAP/KONECT plain-text convention: `u v`
    /// per line, `#`/`%` comments, duplicates tolerated) with id
    /// compaction. A stray id like 10⁹ costs one map entry, not a
    /// billion-node allocation.
    ///
    /// Path-based loads stream the file twice (degree count, then CSR
    /// fill) instead of buffering every edge, so peak RAM is the final
    /// CSR plus the id map — edge lists larger than memory convert fine.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, GraphError> {
        let path = path.as_ref();
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "dataset".to_string());
        let (graph, ids) = read_edge_list_compact_file(path)?;
        Ok(Self { name, graph, ids })
    }

    /// [`LoadedDataset::load`] from any reader, with an explicit name.
    pub fn from_reader(name: impl Into<String>, reader: impl Read) -> Result<Self, GraphError> {
        let (graph, ids) = read_edge_list_compact(reader)?;
        Ok(Self { name: name.into(), graph, ids })
    }

    /// Original file id of compact node `node`.
    pub fn original_id(&self, node: NodeId) -> u64 {
        self.ids.original(node)
    }

    /// Compact node of original file id `original` (`None` if the id
    /// never appeared in the file).
    pub fn compact_id(&self, original: u64) -> Option<NodeId> {
        self.ids.compact(original)
    }

    /// Translates a compact node set (e.g. a sampled graphlet's nodes)
    /// back to original file ids, preserving order.
    pub fn originals_of(&self, nodes: &[NodeId]) -> Vec<u64> {
        nodes.iter().map(|&n| self.ids.original(n)).collect()
    }
}

/// A dataset served straight from an on-disk `.gxsn` snapshot — the
/// out-of-core analog of [`LoadedDataset`].
///
/// The adjacency arrays stay in the page cache (zero-copy mmap on
/// Linux/x86-64, read-into-RAM elsewhere), and the id translation reads
/// the snapshot's embedded id-map section in place instead of
/// materializing a [`NodeIdMap`]. Snapshots without an id map use
/// identity ids (`original == compact`), which is what `gx-snapshot`
/// writes for already-dense inputs.
#[derive(Debug)]
pub struct MappedDataset {
    /// Dataset name (the file stem of the snapshot path).
    pub name: String,
    /// The mapped graph; `Arc` so jobs and caches can share one mapping.
    pub graph: Arc<MmapGraph>,
}

impl MappedDataset {
    /// Maps a `.gxsn` snapshot. Header, section bounds, and offset
    /// monotonicity are validated before any accessor is exposed.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let path = path.as_ref();
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "dataset".to_string());
        let graph = Arc::new(MmapGraph::open(path)?);
        Ok(Self { name, graph })
    }

    /// Maps the snapshot named by `GX_DATASET_MMAP`, if set. Returns
    /// `None` when the variable is absent so callers fall back to their
    /// default dataset; a set-but-unreadable path is an error, not a
    /// silent fallback.
    pub fn from_env() -> Option<Result<Self, SnapshotError>> {
        std::env::var_os(MMAP_ENV).map(Self::open)
    }

    /// Original file id of compact node `node` (identity when the
    /// snapshot carries no id map).
    pub fn original_id(&self, node: NodeId) -> u64 {
        match self.graph.original_ids() {
            Some(ids) => ids[node as usize],
            None => u64::from(node),
        }
    }

    /// Compact node of original file id `original` (`None` if the id is
    /// not present).
    pub fn compact_id(&self, original: u64) -> Option<NodeId> {
        match self.graph.original_ids() {
            Some(ids) => ids.binary_search(&original).ok().map(|i| i as NodeId),
            None if original < self.graph.num_nodes() as u64 => Some(original as NodeId),
            None => None,
        }
    }

    /// Translates a compact node set back to original ids, preserving
    /// order.
    pub fn originals_of(&self, nodes: &[NodeId]) -> Vec<u64> {
        nodes.iter().map(|&n| self.original_id(n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// KONECT-style sparse ids around 10⁹: a triangle plus a pendant.
    const SPARSE: &str = "% sparse-id fixture\n\
        1000000000 1000000007\n\
        1000000007 2000000042\n\
        2000000042 1000000000\n\
        # pendant\n\
        2000000042 3000000000\n";

    #[test]
    fn sparse_id_round_trip() {
        let d = LoadedDataset::from_reader("sparse", SPARSE.as_bytes()).unwrap();
        assert_eq!(d.graph.num_nodes(), 4, "four distinct ids, not 3×10⁹ slots");
        assert_eq!(d.graph.num_edges(), 4);
        // Compact ids follow sorted original order; every node round-trips.
        for n in 0..d.graph.num_nodes() as NodeId {
            assert_eq!(d.compact_id(d.original_id(n)), Some(n));
        }
        assert_eq!(d.original_id(0), 1_000_000_000);
        assert_eq!(d.original_id(3), 3_000_000_000);
        assert_eq!(d.compact_id(999), None);
        // The triangle survives the remap.
        let (a, b, c) = (
            d.compact_id(1_000_000_000).unwrap(),
            d.compact_id(1_000_000_007).unwrap(),
            d.compact_id(2_000_000_042).unwrap(),
        );
        assert!(d.graph.has_edge(a, b) && d.graph.has_edge(b, c) && d.graph.has_edge(c, a));
        assert_eq!(d.originals_of(&[c, a]), vec![2_000_000_042, 1_000_000_000]);
    }

    #[test]
    fn file_round_trip_and_estimation_end_to_end() {
        let path = std::env::temp_dir().join("gx_datasets_sparse_fixture.txt");
        std::fs::write(&path, SPARSE).unwrap();
        let d = LoadedDataset::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(d.name, "gx_datasets_sparse_fixture");
        // The compact graph is a first-class estimation target: exact
        // counting sees the one triangle, reported in original ids.
        let counts = gx_exact::exact_counts(&d.graph, 3);
        assert_eq!(counts.counts[1], 1, "exactly one triangle");
        let tri: Vec<u64> = d.originals_of(&[0, 1, 2]);
        assert_eq!(tri, vec![1_000_000_000, 1_000_000_007, 2_000_000_042]);
    }

    #[test]
    fn load_missing_file_is_an_io_error() {
        let err = LoadedDataset::load("/nonexistent/gx-no-such-file.txt").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)), "got {err:?}");
    }

    #[test]
    fn mapped_dataset_round_trips_ids_through_the_snapshot() {
        let d = LoadedDataset::from_reader("sparse", SPARSE.as_bytes()).unwrap();
        let path = std::env::temp_dir().join("gx_datasets_mapped_fixture.gxsn");
        gx_graph::write_gxsn(&d.graph, Some(d.ids.originals()), &path).unwrap();
        let m = MappedDataset::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(m.name, "gx_datasets_mapped_fixture");
        assert_eq!(m.graph.num_nodes(), d.graph.num_nodes());
        assert_eq!(m.graph.num_edges(), d.graph.num_edges());
        // Same id translation as the in-RAM loader, read from the mapped
        // id-map section.
        for n in 0..d.graph.num_nodes() as NodeId {
            assert_eq!(m.original_id(n), d.original_id(n));
            assert_eq!(m.compact_id(m.original_id(n)), Some(n));
        }
        assert_eq!(m.compact_id(999), None);
        assert_eq!(m.originals_of(&[2, 0]), d.originals_of(&[2, 0]));
    }

    #[test]
    fn mapped_dataset_without_id_map_uses_identity() {
        let g = gx_graph::generators::classic::cycle(5);
        let path = std::env::temp_dir().join("gx_datasets_mapped_identity.gxsn");
        gx_graph::write_gxsn(&g, None, &path).unwrap();
        let m = MappedDataset::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(m.original_id(3), 3);
        assert_eq!(m.compact_id(4), Some(4));
        assert_eq!(m.compact_id(5), None, "past num_nodes");
    }

    #[test]
    fn mapped_dataset_missing_file_is_a_typed_snapshot_error() {
        let err = MappedDataset::open("/nonexistent/gx-no-such.gxsn").unwrap_err();
        assert_eq!(err, SnapshotError::Io(std::io::ErrorKind::NotFound));
    }
}
