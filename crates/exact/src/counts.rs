//! The result type shared by every exact counter and by the estimators'
//! ground-truth comparisons.

use gx_graphlets::{num_graphlets, GraphletId};

/// Exact (or estimated-integer) counts per k-node graphlet type, indexed
/// in paper order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphletCounts {
    /// Graphlet size.
    pub k: usize,
    /// `counts[i]` = number of induced subgraphs isomorphic to the paper's
    /// g^k_{i+1}.
    pub counts: Vec<u64>,
}

impl GraphletCounts {
    /// Zero-initialized counts for `k`.
    pub fn zero(k: usize) -> Self {
        Self { k, counts: vec![0; num_graphlets(k)] }
    }

    /// Total number of connected induced k-subgraphs.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Count for one type.
    pub fn get(&self, id: GraphletId) -> u64 {
        assert_eq!(id.k as usize, self.k);
        self.counts[id.index as usize]
    }

    /// Concentration vector c^k_i = C^k_i / Σ_j C^k_j (paper Eq. 1).
    /// All-zero counts yield all-zero concentrations.
    pub fn concentrations(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// Element-wise sum (e.g. merging per-thread partial counts).
    pub fn merge(&mut self, other: &GraphletCounts) {
        assert_eq!(self.k, other.k);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_total() {
        let c = GraphletCounts::zero(4);
        assert_eq!(c.counts.len(), 6);
        assert_eq!(c.total(), 0);
        assert_eq!(c.concentrations(), vec![0.0; 6]);
    }

    #[test]
    fn concentrations_sum_to_one() {
        let c = GraphletCounts { k: 3, counts: vec![3, 1] };
        let conc = c.concentrations();
        assert!((conc[0] - 0.75).abs() < 1e-12);
        assert!((conc[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn get_and_merge() {
        let mut a = GraphletCounts { k: 3, counts: vec![1, 2] };
        let b = GraphletCounts { k: 3, counts: vec![10, 20] };
        a.merge(&b);
        assert_eq!(a.counts, vec![11, 22]);
        assert_eq!(a.get(GraphletId::new(3, 1)), 22);
    }

    #[test]
    #[should_panic]
    fn get_rejects_wrong_k() {
        let c = GraphletCounts::zero(4);
        let _ = c.get(GraphletId::new(3, 0));
    }
}
