//! Exact counting by enumeration: ESU over all connected induced
//! k-subgraphs, each classified in O(1) via the canonical tables.

use crate::counts::GraphletCounts;
use gx_graph::subrel::Esu;
use gx_graph::{Graph, NodeId};
use gx_graphlets::classify_nodes;
use rayon::prelude::*;

/// Counts all k-node graphlets by single-threaded ESU enumeration.
pub fn count_graphlets_esu(g: &Graph, k: usize) -> GraphletCounts {
    assert!((3..=6).contains(&k), "ESU counting supports k = 3..=6");
    let mut counts = GraphletCounts::zero(k);
    let mut esu = Esu::new(g, k);
    for root in 0..g.num_nodes() as NodeId {
        esu.enumerate_root(root, |nodes| {
            let id = classify_nodes(g, nodes).expect("ESU yields connected subgraphs");
            counts.counts[id.index as usize] += 1;
        });
    }
    counts
}

/// Counts all k-node graphlets by ESU, parallelized over roots. Exact and
/// deterministic (counts are summed, order-independent).
pub fn count_graphlets_esu_parallel(g: &Graph, k: usize) -> GraphletCounts {
    assert!((3..=6).contains(&k), "ESU counting supports k = 3..=6");
    let n = g.num_nodes() as NodeId;
    // Chunk roots so each rayon task amortizes its Esu scratch allocation.
    let chunk = 256usize;
    let partials: Vec<GraphletCounts> = (0..n)
        .into_par_iter()
        .chunks(chunk)
        .map(|roots| {
            let mut counts = GraphletCounts::zero(k);
            let mut esu = Esu::new(g, k);
            for root in roots {
                esu.enumerate_root(root, |nodes| {
                    let id = classify_nodes(g, nodes).expect("connected");
                    counts.counts[id.index as usize] += 1;
                });
            }
            counts
        })
        .collect();
    let mut total = GraphletCounts::zero(k);
    for p in &partials {
        total.merge(p);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use gx_graph::generators::classic;

    #[test]
    fn figure1_worked_example() {
        // Paper §2.1: two wedges and two triangles, c³₁ = c³₂ = 0.5.
        let g = classic::paper_figure1();
        let c = count_graphlets_esu(&g, 3);
        assert_eq!(c.counts, vec![2, 2]);
        let conc = c.concentrations();
        assert!((conc[0] - 0.5).abs() < 1e-12);
        assert!((conc[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_is_all_cliques() {
        let g = classic::complete(7);
        let c4 = count_graphlets_esu(&g, 4);
        assert_eq!(c4.counts[5], 35); // C(7,4)
        assert_eq!(c4.total(), 35);
        let c5 = count_graphlets_esu(&g, 5);
        assert_eq!(c5.counts[20], 21); // C(7,5)
        assert_eq!(c5.total(), 21);
    }

    #[test]
    fn cycle_graph_counts() {
        // C_n (n > 2k): every connected k-subset is a k-path; there are n
        // of them... precisely: n contiguous arcs of length k.
        let g = classic::cycle(12);
        let c4 = count_graphlets_esu(&g, 4);
        assert_eq!(c4.counts[0], 12); // 4-paths
        assert_eq!(c4.total(), 12);
        let c5 = count_graphlets_esu(&g, 5);
        assert_eq!(c5.counts[0], 12); // 5-paths (paper g5_1)
        assert_eq!(c5.total(), 12);
    }

    #[test]
    fn star_graph_counts() {
        // S_n: every k-subset contains the hub: C(n-1, k-1) stars.
        let g = classic::star(8);
        let c4 = count_graphlets_esu(&g, 4);
        assert_eq!(c4.counts[1], 35); // C(7,3) 3-stars
        assert_eq!(c4.total(), 35);
        let c5 = count_graphlets_esu(&g, 5);
        assert_eq!(c5.counts[2], 35); // C(7,4) 4-stars (paper g5_3)
        assert_eq!(c5.total(), 35);
    }

    #[test]
    fn petersen_four_node_census() {
        // Petersen graph: 10 nodes, 15 edges, girth 5 — so no triangles,
        // no 4-cycles: only paths and stars at k = 4.
        let g = classic::petersen();
        let c = count_graphlets_esu(&g, 4);
        assert_eq!(c.counts[2], 0, "girth 5 forbids 4-cycles");
        assert_eq!(c.counts[3], 0);
        assert_eq!(c.counts[4], 0);
        assert_eq!(c.counts[5], 0);
        assert_eq!(c.counts[1], 10); // one 3-star per node (3-regular)

        // 4-paths: 15 edges, each end extends 2 ways: 2*2 = 4 per edge...
        // standard count: 30 paths of length 3 = P3_ni = Σ(du-1)(dv-1) = 15*4 = 60,
        // minus 3*triangles(0) = 60, each induced 4-path has 1: 60 4-paths.
        assert_eq!(c.counts[0], 60);
    }

    #[test]
    fn parallel_matches_sequential() {
        use gx_graph::generators::erdos_renyi_gnm;
        use rand::SeedableRng;
        let mut rng = rand_pcg::Pcg64::seed_from_u64(99);
        let g = erdos_renyi_gnm(60, 180, &mut rng);
        for k in 3..=5 {
            assert_eq!(count_graphlets_esu(&g, k), count_graphlets_esu_parallel(&g, k));
        }
    }
}
