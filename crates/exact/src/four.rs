//! Closed-form 4-node counting (PGD/ESCAPE-style combinatorics).
//!
//! Six non-induced quantities are computed in near-linear passes, then the
//! induced counts fall out of a triangular linear system. The conversion
//! multipliers are exactly the per-type embedding counts — note that the
//! 3-path multipliers are the paper's α⁴ᵢ/2 for SRW(1) (Table 2), because
//! a non-induced 3-path *is* a Hamilton path of the 4-node subgraph.
//!
//! Non-induced quantities:
//! * `P3` — 3-paths: Σ_{(u,v)∈E} (d_u−1)(d_v−1) − 3·T
//! * `S3` — 3-stars: Σ_v C(d_v, 3)
//! * `C4` — 4-cycles: ½ Σ_{u<w} C(codeg(u,w), 2)
//! * `TP` — triangle+pendant ("paws"): Σ_Δ Σ_{v∈Δ} (d_v − 2)
//! * `D`  — diamonds: Σ_e C(t(e), 2)
//! * `K4` — 4-cliques, by direct completion of per-edge triangle pairs.
//!
//! Induced solution (bottom-up):
//! ```text
//! clique   = K4
//! chordal  = D  − 6·clique
//! tailed   = TP − 4·chordal − 12·clique
//! cycle    = C4 − chordal   − 3·clique
//! star     = S3 − tailed    − 2·chordal − 4·clique
//! path     = P3 − 2·tailed  − 4·cycle   − 6·chordal − 12·clique
//! ```

use crate::counts::GraphletCounts;
use crate::triads::{per_edge_triangles, triangle_count};
use gx_graph::{Graph, NodeId};

/// Exact induced counts of the six 4-node graphlet types, in paper order
/// (4-path, 3-star, 4-cycle, tailed-triangle, chordal-cycle, 4-clique).
pub fn four_node_counts(g: &Graph) -> GraphletCounts {
    let t_total = triangle_count(g);
    let t_edge = per_edge_triangles(g);

    // P3 (non-induced 3-paths with distinct endpoints)
    let mut p3: i128 = 0;
    for (u, v) in g.edges() {
        p3 += ((g.degree(u) as i128) - 1) * ((g.degree(v) as i128) - 1);
    }
    p3 -= 3 * t_total as i128;

    // S3 (non-induced 3-stars)
    let s3: i128 = (0..g.num_nodes())
        .map(|v| {
            let d = g.degree(v as NodeId) as i128;
            d * (d - 1) * (d - 2) / 6
        })
        .sum();

    // C4 (non-induced 4-cycles) via codegrees: for each u, count two-hop
    // multiplicities; each unordered diagonal pair {u,w} contributes
    // C(codeg, 2), and each 4-cycle has two diagonals.
    let n = g.num_nodes();
    let mut codeg_scratch = vec![0u32; n];
    let mut touched: Vec<NodeId> = Vec::new();
    let mut c4_twice: i128 = 0;
    for u in 0..n as NodeId {
        touched.clear();
        for &v in g.neighbors(u) {
            for &w in g.neighbors(v) {
                if w == u {
                    continue;
                }
                if codeg_scratch[w as usize] == 0 {
                    touched.push(w);
                }
                codeg_scratch[w as usize] += 1;
            }
        }
        for &w in &touched {
            let c = codeg_scratch[w as usize] as i128;
            c4_twice += c * (c - 1) / 2;
            codeg_scratch[w as usize] = 0;
        }
    }
    // Every unordered pair {u,w} was visited twice (once from u, once
    // from w), and each 4-cycle has two diagonal pairs: divide by 2 * 2.
    let c4 = c4_twice / 4;

    // TP (paws): per triangle, pendant choices Σ_{v∈Δ}(d_v − 2).
    // Equivalent single pass: Σ_e t(e)·(d_u + d_v − 4) counts, for each
    // triangle and each of its 3 edges, (d_u + d_v − 4); summing over the
    // 3 edges gives 2·Σ_{v∈Δ}(d_v − 2) per triangle — so halve it.
    let mut tp_twice: i128 = 0;
    for ((u, v), &t_e) in g.edges().zip(&t_edge) {
        tp_twice += t_e as i128 * ((g.degree(u) + g.degree(v)) as i128 - 4);
    }
    let tp = tp_twice / 2;

    // D (non-induced diamonds): pairs of triangles sharing an edge.
    let d_cnt: i128 = t_edge
        .iter()
        .map(|&t| {
            let t = t as i128;
            t * (t - 1) / 2
        })
        .sum();

    // K4: for each edge (u,v), the common neighbors form a set S; each
    // adjacent pair inside S closes a K4. Each K4 is counted once per edge
    // of the K4 that serves as (u,v) with the remaining pair adjacent —
    // all 6 edges do — so divide by 6.
    let mut k4_six: i128 = 0;
    let mut common: Vec<NodeId> = Vec::new();
    for (u, v) in g.edges() {
        common.clear();
        let (a, b) = if g.degree(u) <= g.degree(v) { (u, v) } else { (v, u) };
        for &w in g.neighbors(a) {
            if w != b && g.has_edge(b, w) {
                common.push(w);
            }
        }
        for i in 0..common.len() {
            for j in (i + 1)..common.len() {
                if g.has_edge(common[i], common[j]) {
                    k4_six += 1;
                }
            }
        }
    }
    let k4 = k4_six / 6;

    // Triangular solve for the induced counts.
    let clique = k4;
    let chordal = d_cnt - 6 * clique;
    let tailed = tp - 4 * chordal - 12 * clique;
    let cycle = c4 - chordal - 3 * clique;
    let star = s3 - tailed - 2 * chordal - 4 * clique;
    let path = p3 - 2 * tailed - 4 * cycle - 6 * chordal - 12 * clique;

    let as_u64 = |x: i128, name: &str| -> u64 {
        assert!(x >= 0, "negative induced count for {name}: {x} (formula bug)");
        x as u64
    };
    GraphletCounts {
        k: 4,
        counts: vec![
            as_u64(path, "4-path"),
            as_u64(star, "3-star"),
            as_u64(cycle, "4-cycle"),
            as_u64(tailed, "tailed-triangle"),
            as_u64(chordal, "chordal-cycle"),
            as_u64(clique, "4-clique"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::esu::count_graphlets_esu;
    use gx_graph::generators::classic;

    #[test]
    fn known_graphs_match_esu() {
        for g in [
            classic::paper_figure1(),
            classic::complete(6),
            classic::petersen(),
            classic::cycle(9),
            classic::star(9),
            classic::path(9),
            classic::lollipop(5, 4),
            classic::barbell(4, 2),
            classic::grid(4, 5),
            classic::complete_bipartite(3, 4),
        ] {
            assert_eq!(four_node_counts(&g), count_graphlets_esu(&g, 4), "{g:?}");
        }
    }

    #[test]
    fn complete_bipartite_has_known_cycle_count() {
        // K_{a,b}: induced 4-cycles = C(a,2)·C(b,2); no triangles.
        let g = classic::complete_bipartite(4, 5);
        let c = four_node_counts(&g);
        assert_eq!(c.counts[2], 6 * 10);
        assert_eq!(c.counts[3], 0);
        assert_eq!(c.counts[4], 0);
        assert_eq!(c.counts[5], 0);
    }

    #[test]
    fn works_on_medium_random_graphs() {
        use gx_graph::generators::{barabasi_albert, erdos_renyi_gnm};
        use rand::SeedableRng;
        let mut rng = rand_pcg::Pcg64::seed_from_u64(5);
        let g = erdos_renyi_gnm(200, 800, &mut rng);
        assert_eq!(four_node_counts(&g), count_graphlets_esu(&g, 4));
        let g = barabasi_albert(300, 4, &mut rng);
        assert_eq!(four_node_counts(&g), count_graphlets_esu(&g, 4));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::esu::count_graphlets_esu;
    use gx_graph::GraphBuilder;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The closed forms agree with brute enumeration on arbitrary
        /// graphs — the strongest guard on every multiplier above.
        #[test]
        fn closed_form_matches_esu(
            edges in proptest::collection::vec((0u32..16, 0u32..16), 0..70),
        ) {
            let mut b = GraphBuilder::new(16);
            for (u, v) in edges {
                b.add_edge(u, v).unwrap();
            }
            let g = b.build();
            prop_assert_eq!(four_node_counts(&g), count_graphlets_esu(&g, 4));
        }
    }
}
