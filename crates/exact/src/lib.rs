//! Exact graphlet counting — the ground truth the paper's NRMSE
//! evaluations are measured against.
//!
//! The paper obtains exact concentrations "through well-tuned enumeration
//! methods [3, 13]" (§6.1). This crate provides two independent routes:
//!
//! * [`esu`] — enumeration of all connected induced k-subgraphs (ESU) with
//!   O(1) classification per subgraph, parallelized over roots with rayon.
//!   Works for any k ≤ 6 but costs Θ(#subgraphs);
//! * [`triads`] and [`four`] — closed-form counting for k = 3 and k = 4
//!   (PGD/ESCAPE-style combinatorics over per-edge triangle counts,
//!   codegrees and degree moments), which scales to the largest registry
//!   datasets in milliseconds-to-seconds.
//!
//! The two routes are cross-validated against each other in property
//! tests, exactly because a wrong ground truth would silently corrupt
//! every experiment downstream.

pub mod counts;
pub mod esu;
pub mod four;
pub mod triads;

pub use counts::GraphletCounts;
pub use esu::{count_graphlets_esu, count_graphlets_esu_parallel};
pub use four::four_node_counts;
pub use triads::{global_clustering_coefficient, three_node_counts, triangle_count};

use gx_graph::Graph;

/// Exact counts for any supported k, picking the fastest available route:
/// closed forms for k = 3, 4; parallel ESU for k = 5, 6.
pub fn exact_counts(g: &Graph, k: usize) -> GraphletCounts {
    match k {
        3 => three_node_counts(g),
        4 => four_node_counts(g),
        5 | 6 => count_graphlets_esu_parallel(g, k),
        _ => panic!("exact_counts: k={k} unsupported (3..=6)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gx_graph::generators::classic;

    #[test]
    fn exact_counts_dispatches_all_k() {
        let g = classic::petersen();
        // Petersen: 3-regular, triangle-free: 10 * C(3,2) = 30 wedges.
        let c3 = exact_counts(&g, 3);
        assert_eq!(c3.counts, vec![30, 0]);
        assert_eq!(exact_counts(&g, 4).k, 4);
        assert_eq!(exact_counts(&g, 5).k, 5);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn exact_counts_rejects_k7() {
        let g = classic::petersen();
        let _ = exact_counts(&g, 7);
    }
}
