//! Closed-form 3-node counting: wedges, triangles, clustering coefficient.

use crate::counts::GraphletCounts;
use gx_graph::stats::wedge_count;
use gx_graph::{Graph, NodeId};

/// Number of triangles, by sorted-adjacency intersection over edges
/// (`O(Σ_e min(d_u, d_v))` with small constants).
pub fn triangle_count(g: &Graph) -> u64 {
    let mut t = 0u64;
    for (u, v) in g.edges() {
        t += common_neighbors_above(g, u, v, v);
    }
    t
}

/// Number of common neighbors of `u` and `v` strictly greater than `floor`
/// (used to count each triangle once via u < v < w).
fn common_neighbors_above(g: &Graph, u: NodeId, v: NodeId, floor: NodeId) -> u64 {
    let (a, b) = if g.degree(u) <= g.degree(v) { (u, v) } else { (v, u) };
    let na = g.neighbors(a);
    let start = na.partition_point(|&x| x <= floor);
    let mut count = 0u64;
    for &w in &na[start..] {
        if g.has_edge(b, w) {
            count += 1;
        }
    }
    count
}

/// Triangle count per edge, aligned with `g.edges()` order. `t(e)` is the
/// building block of the 4-node closed forms.
pub fn per_edge_triangles(g: &Graph) -> Vec<u32> {
    g.edges()
        .map(|(u, v)| {
            let (a, b) = if g.degree(u) <= g.degree(v) { (u, v) } else { (v, u) };
            g.neighbors(a).iter().filter(|&&w| w != b && g.has_edge(b, w)).count() as u32
        })
        .collect()
}

/// Exact 3-node graphlet counts: wedges (g3_1) and triangles (g3_2).
///
/// Induced wedges = Σ_v C(d_v, 2) − 3·triangles (each triangle contains
/// three non-induced wedges).
pub fn three_node_counts(g: &Graph) -> GraphletCounts {
    let t = triangle_count(g);
    let w = wedge_count(g);
    GraphletCounts { k: 3, counts: vec![w - 3 * t, t] }
}

/// Global clustering coefficient 3·C³₂ / (C³₁ + 3·C³₂) = 3T / W — the
/// paper's §2.1 application formula (equal to 3c³₂/(2c³₂ + 1)).
pub fn global_clustering_coefficient(g: &Graph) -> f64 {
    let w = wedge_count(g);
    if w == 0 {
        return 0.0;
    }
    3.0 * triangle_count(g) as f64 / w as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gx_graph::generators::classic;

    #[test]
    fn triangles_on_known_graphs() {
        assert_eq!(triangle_count(&classic::complete(5)), 10);
        assert_eq!(triangle_count(&classic::petersen()), 0);
        assert_eq!(triangle_count(&classic::cycle(3)), 1);
        assert_eq!(triangle_count(&classic::paper_figure1()), 2);
        assert_eq!(triangle_count(&classic::path(5)), 0);
    }

    #[test]
    fn figure1_concentrations() {
        let c = three_node_counts(&classic::paper_figure1());
        assert_eq!(c.counts, vec![2, 2]);
    }

    #[test]
    fn per_edge_triangles_matches_total() {
        for g in [classic::paper_figure1(), classic::complete(6), classic::lollipop(5, 4)] {
            let per_edge = per_edge_triangles(&g);
            let total: u64 = per_edge.iter().map(|&x| x as u64).sum();
            // each triangle has 3 edges
            assert_eq!(total, 3 * triangle_count(&g));
        }
    }

    #[test]
    fn clustering_coefficient_extremes() {
        assert!((global_clustering_coefficient(&classic::complete(6)) - 1.0).abs() < 1e-12);
        assert_eq!(global_clustering_coefficient(&classic::petersen()), 0.0);
        assert_eq!(global_clustering_coefficient(&classic::path(2)), 0.0); // no wedges
    }

    #[test]
    fn clustering_matches_concentration_formula() {
        // §2.1: clustering = 3c/(2c+1) where c is triangle concentration.
        let g = classic::lollipop(5, 3);
        let conc = three_node_counts(&g).concentrations();
        let c = conc[1];
        let direct = global_clustering_coefficient(&g);
        assert!((direct - 3.0 * c / (2.0 * c + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn three_node_matches_esu() {
        use crate::esu::count_graphlets_esu;
        for g in [classic::paper_figure1(), classic::petersen(), classic::lollipop(4, 3)] {
            assert_eq!(three_node_counts(&g), count_graphlets_esu(&g, 3));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::esu::count_graphlets_esu;
    use gx_graph::GraphBuilder;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn closed_form_matches_esu(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 0..80),
        ) {
            let mut b = GraphBuilder::new(20);
            for (u, v) in edges {
                b.add_edge(u, v).unwrap();
            }
            let g = b.build();
            prop_assert_eq!(three_node_counts(&g), count_graphlets_esu(&g, 3));
        }
    }
}
