//! The restricted-access model of the paper.
//!
//! The paper assumes the graph "has to be externally accessed, either
//! through remote databases or by calling APIs provided by the operators of
//! OSNs" (§1). Concretely: given a node you may fetch its adjacency list;
//! nothing else is visible. [`GraphAccess`] encodes exactly that surface,
//! and every sampling algorithm in the workspace is generic over it, so the
//! same code runs against an in-memory [`Graph`] or a metered [`ApiGraph`]
//! that simulates a crawler.

use crate::csr::Graph;
use crate::NodeId;
use std::cell::{Cell, RefCell};

/// Neighborhood-level access to an undirected graph, mirroring an OSN
/// crawling API ("retrieve a list of user's friends").
///
/// `num_nodes` is exposed because our remote graphs are simulations; the
/// estimators themselves never rely on it except to pick a starting node.
pub trait GraphAccess {
    /// Total number of nodes (for choosing walk starting points in
    /// simulations).
    fn num_nodes(&self) -> usize;

    /// Degree of `v` (the length of its friend list).
    fn degree(&self, v: NodeId) -> usize;

    /// Sorted adjacency list of `v`.
    fn neighbors(&self, v: NodeId) -> &[NodeId];

    /// Whether edge `(u, v)` exists. Derived: a crawler answers this by
    /// scanning a friend list it has already fetched.
    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// The `i`-th neighbor of `v` (`i < degree(v)`).
    #[inline]
    fn neighbor_at(&self, v: NodeId, i: usize) -> NodeId {
        self.neighbors(v)[i]
    }

    /// Visits the sorted adjacency list of `v` through a scoped borrow.
    ///
    /// Semantically identical to calling `f` on
    /// [`GraphAccess::neighbors`] — and that is the default — but the
    /// slice is only guaranteed to live for the duration of the call.
    /// Backends that *decode* adjacency on demand (the compressed
    /// on-disk variant, `gx_graph::disk::CompressedGraph`) implement
    /// this without materializing a long-lived slice, which is what
    /// keeps their decode cache bounded. Hot paths that probe a list
    /// transiently (the scoring window's per-step binary searches)
    /// should prefer this over `neighbors`.
    ///
    /// `f` is `&mut dyn FnMut` rather than a generic closure so the
    /// trait stays object-safe; for concrete backends the indirect call
    /// devirtualizes after inlining.
    #[inline]
    fn visit_neighbors(&self, v: NodeId, f: &mut dyn FnMut(&[NodeId])) {
        f(self.neighbors(v));
    }

    /// Appends the sorted adjacency list of `v` to `out` — the copy-out
    /// form of [`GraphAccess::visit_neighbors`], for callers that were
    /// going to `extend_from_slice` anyway (e.g. the G(d) walk's
    /// candidate enumeration). Same default, same motivation: decoding
    /// backends fill `out` straight from their block cache without
    /// pinning a slice.
    #[inline]
    fn extend_neighbors(&self, v: NodeId, out: &mut Vec<NodeId>) {
        out.extend_from_slice(self.neighbors(v));
    }

    /// Hints that `degree(v)` will be asked soon. Purely a cache-warming
    /// hint for in-memory backends; the default (and any remote/metered
    /// backend, where "prefetch" would be a real API call) is a no-op.
    /// Implementations must not change observable state.
    #[inline]
    fn prefetch_degree(&self, _v: NodeId) {}

    /// Hints that `neighbors(v)` will be probed soon. Same contract as
    /// [`GraphAccess::prefetch_degree`]: hint only, no-op by default.
    #[inline]
    fn prefetch_neighbors(&self, _v: NodeId) {}
}

impl GraphAccess for Graph {
    #[inline]
    fn num_nodes(&self) -> usize {
        Graph::num_nodes(self)
    }
    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        Graph::degree(self, v)
    }
    #[inline]
    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        Graph::neighbors(self, v)
    }
    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        Graph::has_edge(self, u, v)
    }
    #[inline]
    fn neighbor_at(&self, v: NodeId, i: usize) -> NodeId {
        // One offset load instead of the trait default's slice
        // construction (two offset loads + bounds check) — this sits on
        // the walk's per-step critical path.
        Graph::neighbor_at(self, v, i)
    }
    #[inline]
    fn prefetch_degree(&self, v: NodeId) {
        Graph::prefetch_degree(self, v);
    }
    #[inline]
    fn prefetch_neighbors(&self, v: NodeId) {
        Graph::prefetch_neighbors(self, v);
    }
}

impl<T: GraphAccess + ?Sized> GraphAccess for &T {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }
    fn degree(&self, v: NodeId) -> usize {
        (**self).degree(v)
    }
    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        (**self).neighbors(v)
    }
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        (**self).has_edge(u, v)
    }
    fn neighbor_at(&self, v: NodeId, i: usize) -> NodeId {
        (**self).neighbor_at(v, i)
    }
    // The scoped/copy-out accessors must forward explicitly: the trait
    // defaults would route through `self.neighbors` on the *reference*,
    // bypassing a backend's own bounded-cache implementation.
    fn visit_neighbors(&self, v: NodeId, f: &mut dyn FnMut(&[NodeId])) {
        (**self).visit_neighbors(v, f);
    }
    fn extend_neighbors(&self, v: NodeId, out: &mut Vec<NodeId>) {
        (**self).extend_neighbors(v, out);
    }
    fn prefetch_degree(&self, v: NodeId) {
        (**self).prefetch_degree(v);
    }
    fn prefetch_neighbors(&self, v: NodeId) {
        (**self).prefetch_neighbors(v);
    }
}

/// Structural fingerprint of a graph: FNV-1a over the node count, every
/// degree, and every (sorted) neighbor list. Two graphs with the same
/// fingerprint present the same adjacency structure to a walk, which is
/// all a resumed run observes; a mismatch means resuming would silently
/// estimate statistics of the wrong graph, so `gx_core::Runner::resume`
/// refuses it.
///
/// The same value is embedded in on-disk snapshot headers
/// ([`crate::disk`]), which is what lets a mapped snapshot be adopted by
/// trusted-resume paths and fingerprint-keyed caches without an O(edges)
/// rescan: the converter computes it once, over exactly this traversal.
pub fn graph_fingerprint<G: GraphAccess + ?Sized>(g: &G) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    fn eat(h: &mut u64, x: u64) {
        for b in x.to_le_bytes() {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(FNV_PRIME);
        }
    }
    let mut h = FNV_OFFSET;
    let n = g.num_nodes();
    eat(&mut h, n as u64);
    for v in 0..n {
        let v = v as NodeId;
        eat(&mut h, g.degree(v) as u64);
        // Scoped visit instead of `neighbors`: fingerprinting a
        // decode-on-demand backend must not materialize every list.
        g.visit_neighbors(v, &mut |nbrs| {
            for &w in nbrs {
                eat(&mut h, u64::from(w));
            }
        });
    }
    h
}

/// Usage statistics reported by [`ApiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApiStats {
    /// Distinct nodes whose adjacency list was fetched at least once. This
    /// is the paper's cost unit: a crawler caches responses, so re-reading
    /// a known node is free.
    pub distinct_nodes_fetched: u64,
    /// Total adjacency-list requests, counting repeats (what an un-cached
    /// crawler would pay).
    pub total_requests: u64,
}

impl ApiStats {
    /// Fraction of the graph's nodes touched, the "we only exploit 0.03% of
    /// Sinaweibo" number from §6.2.1.
    pub fn coverage(&self, num_nodes: usize) -> f64 {
        if num_nodes == 0 {
            0.0
        } else {
            self.distinct_nodes_fetched as f64 / num_nodes as f64
        }
    }
}

/// A metered wrapper that simulates crawling a remote graph through an API.
///
/// Every [`GraphAccess`] method that needs a node's adjacency list counts
/// as an API request; distinct nodes are tracked separately to model a
/// caching crawler.
pub struct ApiGraph<'g> {
    inner: &'g Graph,
    fetched: RefCell<Vec<bool>>,
    distinct: Cell<u64>,
    total: Cell<u64>,
}

impl<'g> ApiGraph<'g> {
    /// Wraps an in-memory graph as a simulated remote graph.
    pub fn new(inner: &'g Graph) -> Self {
        Self {
            inner,
            fetched: RefCell::new(vec![false; inner.num_nodes()]),
            distinct: Cell::new(0),
            total: Cell::new(0),
        }
    }

    fn record(&self, v: NodeId) {
        self.total.set(self.total.get() + 1);
        let mut fetched = self.fetched.borrow_mut();
        let slot = &mut fetched[v as usize];
        if !*slot {
            *slot = true;
            self.distinct.set(self.distinct.get() + 1);
        }
    }

    /// Current usage statistics.
    pub fn stats(&self) -> ApiStats {
        ApiStats { distinct_nodes_fetched: self.distinct.get(), total_requests: self.total.get() }
    }

    /// Resets the meters (the fetched-set and counters).
    pub fn reset(&self) {
        self.fetched.borrow_mut().fill(false);
        self.distinct.set(0);
        self.total.set(0);
    }

    /// The wrapped graph.
    pub fn inner(&self) -> &'g Graph {
        self.inner
    }
}

impl GraphAccess for ApiGraph<'_> {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn degree(&self, v: NodeId) -> usize {
        self.record(v);
        self.inner.degree(v)
    }

    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        self.record(v);
        self.inner.neighbors(v)
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        // A crawler resolves adjacency by fetching one endpoint's list;
        // fetch the cheaper endpoint like the in-memory fast path does.
        if u == v {
            return false;
        }
        let probe = if self.inner.degree(u) <= self.inner.degree(v) { u } else { v };
        self.record(probe);
        self.inner.has_edge(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Graph {
        Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn graph_implements_access() {
        let g = small();
        let a: &dyn GraphAccess = &g;
        assert_eq!(a.num_nodes(), 4);
        assert_eq!(a.degree(0), 3);
        assert_eq!(a.neighbors(0), &[1, 2, 3]);
        assert!(a.has_edge(0, 1));
        assert!(!a.has_edge(1, 3));
        assert_eq!(a.neighbor_at(0, 2), 3);
    }

    #[test]
    fn reference_forwarding_works() {
        let g = small();
        fn takes_access<G: GraphAccess>(g: G) -> usize {
            g.degree(0)
        }
        assert_eq!(takes_access(&g), 3);
        assert_eq!(takes_access(&g), 3);
    }

    #[test]
    fn api_graph_counts_distinct_and_total() {
        let g = small();
        let api = ApiGraph::new(&g);
        api.neighbors(0);
        api.neighbors(0);
        api.neighbors(1);
        let s = api.stats();
        assert_eq!(s.distinct_nodes_fetched, 2);
        assert_eq!(s.total_requests, 3);
        assert!((s.coverage(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn api_graph_has_edge_charges_one_probe() {
        let g = small();
        let api = ApiGraph::new(&g);
        assert!(!api.has_edge(1, 3));
        assert_eq!(api.stats().total_requests, 1);
    }

    #[test]
    fn api_graph_reset_clears_meters() {
        let g = small();
        let api = ApiGraph::new(&g);
        api.neighbors(2);
        api.reset();
        assert_eq!(api.stats(), ApiStats::default());
        assert_eq!(api.inner().num_edges(), 5);
        // after reset the same node counts as distinct again
        api.neighbors(2);
        assert_eq!(api.stats().distinct_nodes_fetched, 1);
    }

    #[test]
    fn coverage_of_empty_graph_is_zero() {
        assert_eq!(ApiStats::default().coverage(0), 0.0);
    }
}
