//! Mutable edge accumulation that normalizes into a [`Graph`].

use crate::csr::Graph;
use crate::error::GraphError;
use crate::NodeId;

/// Accumulates edges, then normalizes (sort, dedup, drop self-loops) into a
/// CSR [`Graph`].
///
/// The builder is deliberately forgiving: duplicate edges and self-loops are
/// legal inputs and are removed at `build` time, because real edge-list
/// files (SNAP, KONECT) routinely contain both.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph over nodes `0..num_nodes`.
    pub fn new(num_nodes: usize) -> Self {
        Self { num_nodes, edges: Vec::new() }
    }

    /// Pre-allocates space for `n` edges.
    pub fn with_edge_capacity(num_nodes: usize, n: usize) -> Self {
        Self { num_nodes, edges: Vec::with_capacity(n) }
    }

    /// Number of nodes the builder was declared with.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges accumulated so far (before dedup).
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge. Self-loops are accepted and dropped at
    /// build time. Errors if an endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        for &x in &[u, v] {
            if x as usize >= self.num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: x as u64,
                    num_nodes: self.num_nodes,
                });
            }
        }
        self.edges.push(if u <= v { (u, v) } else { (v, u) });
        Ok(())
    }

    /// Adds an edge without bounds checking (debug-asserted). For hot
    /// generator loops where endpoints are in range by construction.
    pub fn add_edge_unchecked(&mut self, u: NodeId, v: NodeId) {
        debug_assert!((u as usize) < self.num_nodes && (v as usize) < self.num_nodes);
        self.edges.push(if u <= v { (u, v) } else { (v, u) });
    }

    /// Normalizes and freezes into a [`Graph`].
    pub fn build(mut self) -> Graph {
        // Sort + dedup the canonical (min, max) pairs, then expand to both
        // directions with counting sort by source.
        self.edges.sort_unstable();
        self.edges.dedup();
        self.edges.retain(|&(u, v)| u != v);

        let n = self.num_nodes;
        let mut degree = vec![0usize; n];
        for &(u, v) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        // Advise hugepage backing *before* the fill loops below fault the
        // pages in: walkers hit these two arrays at random, and for
        // DRAM-sized graphs 4 KiB paging costs a TLB walk per step (and
        // drops the batched engine's prefetch hints). See `advise_hugepages`.
        crate::csr::advise_hugepages(offsets.as_ptr() as *const u8, (n + 1) * size_of::<usize>());
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adjacency = Vec::with_capacity(acc);
        crate::csr::advise_hugepages(adjacency.as_ptr() as *const u8, acc * size_of::<NodeId>());
        adjacency.resize(acc, 0 as NodeId);
        for &(u, v) in &self.edges {
            adjacency[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adjacency[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Canonical pairs were sorted by (u, v); per-source slices for `u`
        // are therefore already sorted for the forward direction, but the
        // reverse direction interleaves, so sort each list.
        for v in 0..n {
            adjacency[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        let hubs = crate::csr::HubIndex::build(&offsets, &adjacency);
        Graph { offsets, adjacency, hubs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sorts_adjacency_lists() {
        let mut b = GraphBuilder::new(5);
        for (u, v) in [(4, 0), (2, 0), (3, 0), (1, 0)] {
            b.add_edge(u, v).unwrap();
        }
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn capacity_constructor_and_counters() {
        let mut b = GraphBuilder::with_edge_capacity(3, 10);
        assert_eq!(b.num_nodes(), 3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 0).unwrap();
        assert_eq!(b.raw_edge_count(), 2);
        assert_eq!(b.build().num_edges(), 1);
    }

    #[test]
    fn unchecked_path_matches_checked() {
        let mut a = GraphBuilder::new(4);
        let mut b = GraphBuilder::new(4);
        for (u, v) in [(0, 1), (2, 3), (1, 2)] {
            a.add_edge(u, v).unwrap();
            b.add_edge_unchecked(u, v);
        }
        assert_eq!(a.build(), b.build());
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn isolated_nodes_have_empty_lists() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.neighbors(3), &[] as &[NodeId]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// CSR invariants hold for arbitrary edge soup: sorted lists, no
        /// loops, no duplicates, symmetric adjacency.
        #[test]
        fn csr_invariants(edges in proptest::collection::vec((0u32..50, 0u32..50), 0..300)) {
            let mut b = GraphBuilder::new(50);
            for (u, v) in edges {
                b.add_edge(u, v).unwrap();
            }
            let g = b.build();
            for v in 0..50u32 {
                let ns = g.neighbors(v);
                prop_assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
                prop_assert!(!ns.contains(&v), "no self loop");
                for &w in ns {
                    prop_assert!(g.neighbors(w).contains(&v), "symmetric");
                }
            }
            prop_assert_eq!(g.degree_sum(), 2 * g.num_edges());
        }
    }
}
