//! Connectivity: BFS, connected components, LCC extraction.
//!
//! The paper evaluates exclusively on the largest connected component of
//! each dataset (§6.1), and Theorem 3.1 of \[36\] needs `G` connected for
//! `G(d)` to be connected — so LCC extraction is part of every dataset's
//! construction here too.

use crate::csr::Graph;
use crate::NodeId;

/// Labels each node with a component id in `0..num_components`, components
/// numbered in order of first discovery.
pub fn connected_components(g: &Graph) -> (usize, Vec<u32>) {
    let n = g.num_nodes();
    let mut label = vec![u32::MAX; n];
    let mut queue: Vec<NodeId> = Vec::new();
    let mut next = 0u32;
    for start in 0..n as NodeId {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = next;
        queue.clear();
        queue.push(start);
        while let Some(v) = queue.pop() {
            for &w in g.neighbors(v) {
                if label[w as usize] == u32::MAX {
                    label[w as usize] = next;
                    queue.push(w);
                }
            }
        }
        next += 1;
    }
    (next as usize, label)
}

/// Whether the graph is connected (vacuously true for 0/1-node graphs).
pub fn is_connected(g: &Graph) -> bool {
    if g.num_nodes() <= 1 {
        return true;
    }
    connected_components(g).0 == 1
}

/// Extracts the largest connected component as a renumbered graph, plus the
/// original node id for each new id. Ties broken by lowest component id
/// (i.e. earliest discovered).
pub fn largest_connected_component(g: &Graph) -> (Graph, Vec<NodeId>) {
    let (k, label) = connected_components(g);
    if k == 0 {
        return (Graph::from_edges(0, []).unwrap(), Vec::new());
    }
    let mut sizes = vec![0usize; k];
    for &l in &label {
        sizes[l as usize] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i as u32)
        .expect("k > 0");
    let keep: Vec<NodeId> =
        (0..g.num_nodes() as NodeId).filter(|&v| label[v as usize] == best).collect();
    g.induced_subgraph(&keep)
}

/// BFS distances from `start` (`usize::MAX` for unreachable nodes).
pub fn bfs_distances(g: &Graph, start: NodeId) -> Vec<usize> {
    let n = g.num_nodes();
    let mut dist = vec![usize::MAX; n];
    let mut frontier = vec![start];
    dist[start as usize] = 0;
    let mut d = 0usize;
    while !frontier.is_empty() {
        d += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &w in g.neighbors(v) {
                if dist[w as usize] == usize::MAX {
                    dist[w as usize] = d;
                    next.push(w);
                }
            }
        }
        frontier = next;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic;

    #[test]
    fn single_component() {
        let g = classic::cycle(5);
        let (k, label) = connected_components(&g);
        assert_eq!(k, 1);
        assert!(label.iter().all(|&l| l == 0));
        assert!(is_connected(&g));
    }

    #[test]
    fn two_components_and_lcc() {
        // triangle {0,1,2} plus edge {3,4} plus isolated node 5
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4)]).unwrap();
        let (k, label) = connected_components(&g);
        assert_eq!(k, 3);
        assert_eq!(label[0], label[1]);
        assert_ne!(label[0], label[3]);
        assert!(!is_connected(&g));

        let (lcc, orig) = largest_connected_component(&g);
        assert_eq!(lcc.num_nodes(), 3);
        assert_eq!(lcc.num_edges(), 3);
        assert_eq!(orig, vec![0, 1, 2]);
    }

    #[test]
    fn lcc_of_empty_graph() {
        let g = Graph::from_edges(0, []).unwrap();
        let (lcc, orig) = largest_connected_component(&g);
        assert_eq!(lcc.num_nodes(), 0);
        assert!(orig.is_empty());
    }

    #[test]
    fn lcc_tie_breaks_to_first_component() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let (_, orig) = largest_connected_component(&g);
        assert_eq!(orig, vec![0, 1]);
    }

    #[test]
    fn singleton_graphs_are_connected() {
        assert!(is_connected(&Graph::from_edges(0, []).unwrap()));
        assert!(is_connected(&Graph::from_edges(1, []).unwrap()));
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = classic::path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable_is_max() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], usize::MAX);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::builder::GraphBuilder;
    use proptest::prelude::*;

    proptest! {
        /// The LCC is connected and no other component is larger.
        #[test]
        fn lcc_is_connected_and_largest(
            edges in proptest::collection::vec((0u32..30, 0u32..30), 0..120),
        ) {
            let mut b = GraphBuilder::new(30);
            for (u, v) in edges {
                b.add_edge(u, v).unwrap();
            }
            let g = b.build();
            let (lcc, orig) = largest_connected_component(&g);
            prop_assert!(is_connected(&lcc));
            let (k, label) = connected_components(&g);
            let mut sizes = vec![0usize; k];
            for &l in &label {
                sizes[l as usize] += 1;
            }
            let max = sizes.iter().copied().max().unwrap_or(0);
            prop_assert_eq!(lcc.num_nodes(), max);
            // original ids must all map back into one component
            if let Some(&first) = orig.first() {
                let c = label[first as usize];
                prop_assert!(orig.iter().all(|&v| label[v as usize] == c));
            }
        }
    }
}
