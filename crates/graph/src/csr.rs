//! Immutable CSR (compressed sparse row) graph storage.
//!
//! The representation is the workhorse of the whole workspace: adjacency
//! lists are stored back-to-back in one `Vec<NodeId>`, per-node slices are
//! delimited by an offsets array, and every adjacency list is sorted so
//! `has_edge` is a binary search. This matches the access pattern of the
//! paper's walks: O(1) uniform neighbor selection and O(log d) adjacency
//! probes (the "k − 1 binary searches" of Section 5).

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::NodeId;

/// Issues a read prefetch for the cache line holding `p` (T0 hint —
/// all cache levels). On non-x86-64 targets this is a no-op, so callers
/// can hint unconditionally.
///
/// `PREFETCHT0` never faults, regardless of the address, so hinting a
/// pointer that is never dereferenced is sound — which is exactly how
/// the batched walk engine uses it: the *next* step's line is requested
/// while the current step's scoring work is still in flight. A real
/// (discarded) demand load was tried here instead — it would also walk
/// the page table on a TLB miss, which `PREFETCHT0` silently drops —
/// but measured strictly slower on DRAM-sized graphs: demand misses
/// occupy the ROB until in-order retirement catches up, stalling the
/// very lanes the hint was meant to unblock.
#[inline(always)]
pub(crate) fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a pure cache hint; it performs no memory
    // access that can fault and has no architectural side effects.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Best-effort `madvise(MADV_HUGEPAGE)` on the buffer behind `ptr..+bytes`.
///
/// CSR arrays for DRAM-sized graphs span hundreds of megabytes; under 4 KiB
/// pages that is far beyond TLB reach, so every random neighbor-slice access
/// pays a page walk on top of the cache miss — and `PREFETCHT0` (see
/// [`prefetch_read`]) is silently dropped on TLB misses, which blunts the
/// batched engine's one-tick-ahead hints exactly where they matter most.
/// Backing the arrays with 2 MiB transparent hugepages keeps the whole CSR
/// within TLB reach (a ~1 GiB adjacency array needs ~512 entries).
///
/// Callers advise *before* populating the buffer: with THP in `madvise`
/// mode the kernel then faults the region in as hugepages synchronously,
/// instead of waiting for `khugepaged` to collapse already-faulted 4 KiB
/// pages minutes later. The advice is a pure hint — the kernel may ignore
/// it (THP disabled, memory pressure) and the return value is deliberately
/// discarded; correctness never depends on it.
///
/// Implemented as a raw `madvise` syscall on x86-64 Linux (`std` exposes no
/// allocator hints and the workspace takes no libc-style dependency); a
/// no-op everywhere else.
pub(crate) fn advise_hugepages(ptr: *const u8, bytes: usize) {
    madvise_raw(ptr, bytes, MADV_HUGEPAGE);
}

/// `madvise` advice values used by the workspace (Linux ABI).
pub(crate) const MADV_WILLNEED: usize = 3;
pub(crate) const MADV_HUGEPAGE: usize = 14;

/// Best-effort raw `madvise(advice)` over the pages fully inside
/// `ptr..ptr+bytes` — the shared syscall plumbing behind
/// [`advise_hugepages`] and the mapped-snapshot reader's
/// `MADV_WILLNEED`/`MADV_HUGEPAGE` hints. Pure hint: the return value is
/// discarded and correctness never depends on the kernel honoring it.
/// No-op off x86-64 Linux.
pub(crate) fn madvise_raw(ptr: *const u8, bytes: usize, advice: usize) {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        const SYS_MADVISE: usize = 28;
        const PAGE: usize = 4096;
        // `madvise` demands a page-aligned start; round the range inward so
        // a mid-page Vec allocation advises only the pages it fully owns.
        let start = (ptr as usize).next_multiple_of(PAGE);
        let end = (ptr as usize).saturating_add(bytes) & !(PAGE - 1);
        if end <= start {
            return;
        }
        let mut _ret: isize;
        // SAFETY: the syscall only attaches advice to VMAs in our own
        // address space; it reads/writes no user memory through the pointer
        // and EINVAL/ENOMEM outcomes are ignored by design. The asm block
        // declares every register the `syscall` instruction clobbers
        // (rax, rcx, r11).
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") SYS_MADVISE as isize => _ret,
                in("rdi") start,
                in("rsi") end - start,
                in("rdx") advice,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    {
        let _ = (ptr, bytes, advice);
    }
}

/// An immutable, undirected, simple graph in CSR form.
///
/// Invariants (enforced by [`GraphBuilder`]):
/// * no self-loops, no duplicate edges;
/// * each adjacency list is sorted ascending;
/// * edge `(u, v)` appears in both `neighbors(u)` and `neighbors(v)`.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    pub(crate) offsets: Vec<usize>,
    pub(crate) adjacency: Vec<NodeId>,
    pub(crate) hubs: HubIndex,
}

/// Dense bitset adjacency for *hub* nodes (degree ≥ `hub_threshold`),
/// making `has_edge` O(1) when either endpoint is a hub — the common
/// case on power-law graphs, where walks spend most steps around hubs
/// and the binary-search probe is deepest exactly there.
///
/// Memory is bounded: a node qualifies only when its degree is at least
/// `n / 64`, so a hub's bitset row (n bits) costs at most 64 bits per
/// adjacency entry it replaces, and all rows together cost O(|E|).
#[derive(Clone, PartialEq, Eq, Default)]
pub(crate) struct HubIndex {
    /// `row_of[v]` = bitset row of hub `v`, or `u32::MAX` for non-hubs.
    /// Empty when the graph has no hubs.
    row_of: Vec<u32>,
    /// Words per row: `ceil(n / 64)`.
    words: usize,
    /// Concatenated rows.
    bits: Vec<u64>,
}

/// Degree at or above which a node gets a dense adjacency bitset.
///
/// The floor of 32 (rather than 64) roughly doubles hub coverage on
/// small and mid-size graphs for the remaining `has_edge` consumers —
/// the d ≥ 3 subset-connectivity checks of `GdWalk`/`gd_state_degree`
/// (O(d²) probes per state, degree-biased toward hubs), the baseline
/// samplers, and induced-mask classification. (The sliding window's
/// per-step probes no longer route through `has_edge`: they
/// binary-search the entering node's own list, see
/// `NodeWindow::acquire`.) The memory bound is unchanged in the regime
/// where it matters: for large graphs `n / 64` dominates the floor,
/// keeping total row storage O(|E|).
#[inline]
pub(crate) fn hub_threshold(num_nodes: usize) -> usize {
    (num_nodes / 64).max(32)
}

impl HubIndex {
    /// Scans the CSR arrays and builds rows for every hub.
    pub(crate) fn build(offsets: &[usize], adjacency: &[NodeId]) -> Self {
        let n = offsets.len() - 1;
        let threshold = hub_threshold(n);
        let hubs: Vec<usize> =
            (0..n).filter(|&v| offsets[v + 1] - offsets[v] >= threshold).collect();
        if hubs.is_empty() {
            return Self::default();
        }
        let words = n.div_ceil(64);
        let mut row_of = vec![u32::MAX; n];
        let mut bits = vec![0u64; hubs.len() * words];
        for (row, &v) in hubs.iter().enumerate() {
            row_of[v] = row as u32;
            let base = row * words;
            for &w in &adjacency[offsets[v]..offsets[v + 1]] {
                bits[base + w as usize / 64] |= 1 << (w % 64);
            }
        }
        Self { row_of, words, bits }
    }

    /// [`HubIndex::build`] over any [`crate::GraphAccess`] backend —
    /// the generalization that gives the mapped on-disk CSR
    /// (`gx_graph::disk::MmapGraph`) the same O(1) hub `has_edge`
    /// asymptotics as the in-RAM [`Graph`]. One O(|E|) scan; rows are
    /// bit-identical to the slice-based builder for the same adjacency
    /// structure.
    pub(crate) fn build_from_access<G: crate::GraphAccess + ?Sized>(g: &G) -> Self {
        let n = g.num_nodes();
        let threshold = hub_threshold(n);
        let hubs: Vec<usize> = (0..n).filter(|&v| g.degree(v as NodeId) >= threshold).collect();
        if hubs.is_empty() {
            return Self::default();
        }
        let words = n.div_ceil(64);
        let mut row_of = vec![u32::MAX; n];
        let mut bits = vec![0u64; hubs.len() * words];
        for (row, &v) in hubs.iter().enumerate() {
            row_of[v] = row as u32;
            let base = row * words;
            let row_bits = &mut bits[base..base + words];
            g.visit_neighbors(v as NodeId, &mut |nbrs| {
                for &w in nbrs {
                    row_bits[w as usize / 64] |= 1 << (w % 64);
                }
            });
        }
        Self { row_of, words, bits }
    }

    /// True when the graph has no hubs (fast-path bypass).
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Bitset row of `v`, if `v` is a hub.
    #[inline]
    pub(crate) fn row(&self, v: NodeId) -> Option<usize> {
        match self.row_of[v as usize] {
            u32::MAX => None,
            r => Some(r as usize),
        }
    }

    /// Whether hub row `row` contains `v`.
    #[inline]
    pub(crate) fn test(&self, row: usize, v: NodeId) -> bool {
        self.bits[row * self.words + v as usize / 64] & (1 << (v % 64)) != 0
    }
}

impl Graph {
    /// Builds a graph from an edge list over nodes `0..num_nodes`.
    ///
    /// Self-loops and duplicate edges are silently dropped (the paper works
    /// on simple graphs). Returns an error if an endpoint is out of range.
    pub fn from_edges(
        num_nodes: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::new(num_nodes);
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Builds a graph from an edge list, inferring the node count as
    /// `max endpoint + 1`.
    ///
    /// Infallible: every endpoint is in range by construction of the
    /// inferred node count, so no error path exists (unlike
    /// [`Graph::from_edges`], whose caller-supplied count can be
    /// exceeded). The builder is fed directly rather than routed through
    /// the fallible constructor to keep that guarantee structural.
    pub fn from_edges_auto(edges: &[(NodeId, NodeId)]) -> Self {
        let n = edges.iter().map(|&(u, v)| u.max(v) as usize + 1).max().unwrap_or(0);
        let mut b = GraphBuilder::with_edge_capacity(n, edges.len());
        for &(u, v) in edges {
            b.add_edge_unchecked(u, v);
        }
        b.build()
    }

    /// Assembles a graph directly from already-built CSR arrays, building
    /// only the hub index. The caller must guarantee the [`Graph`]
    /// invariants (sorted, deduplicated, symmetric, self-loop-free
    /// adjacency; `offsets.len() == num_nodes + 1` with `offsets[0] == 0`
    /// and `offsets[n] == adjacency.len()`). Used by the streaming
    /// edge-list loader, which establishes those invariants without ever
    /// materializing the full edge list.
    pub(crate) fn from_csr_parts(offsets: Vec<usize>, adjacency: Vec<NodeId>) -> Self {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert_eq!(*offsets.last().unwrap_or(&0), adjacency.len());
        let hubs = HubIndex::build(&offsets, &adjacency);
        Self { offsets, adjacency, hubs }
    }

    /// Number of nodes (including isolated ones).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adjacency.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted adjacency list of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.adjacency[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `(u, v)` exists. O(1) bitset probe
    /// when either endpoint is a hub (degree ≥ `hub_threshold`), binary
    /// search on the smaller adjacency list otherwise.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        if !self.hubs.is_empty() {
            if let Some(row) = self.hubs.row(u) {
                return self.hubs.test(row, v);
            }
            if let Some(row) = self.hubs.row(v) {
                return self.hubs.test(row, u);
            }
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// The `i`-th neighbor of `v` (`i < degree(v)`), with a single
    /// offset load.
    #[inline]
    pub fn neighbor_at(&self, v: NodeId, i: usize) -> NodeId {
        debug_assert!(i < self.degree(v), "neighbor_at({v}, {i}) out of range");
        self.adjacency[self.offsets[v as usize] + i]
    }

    /// Hints the CPU to pull `v`'s CSR offset pair into cache ahead of a
    /// [`Graph::degree`] or [`Graph::neighbors`] call. Purely a
    /// performance hint: never faults, never changes observable state,
    /// and compiles to nothing off x86-64. Out-of-range `v` is a silent
    /// no-op (the address is computed without loading through it).
    // gx-lint: no_alloc
    #[inline(always)]
    pub fn prefetch_degree(&self, v: NodeId) {
        let v = v as usize;
        if v + 1 < self.offsets.len() {
            // `offsets[v]` and `offsets[v + 1]` are 8 bytes apart, so a
            // single line fetch covers both loads `degree` will issue.
            prefetch_read(self.offsets.as_ptr().wrapping_add(v));
        }
    }

    /// Hints the CPU to pull the probe lines of `v`'s adjacency slice
    /// into cache ahead of a [`Graph::neighbors`] walk or binary search
    /// — the slice head, and for longer lists the midpoint (a binary
    /// search's first probe, whose next level stays within a line of
    /// the head or midpoint for all but the heaviest hubs; quartile
    /// pulls were tried and measured flat — extra hints past the first
    /// search level just crowd the line-fill buffers, which silently
    /// drop prefetches when full). Costs one offset load
    /// (cheap when [`Graph::prefetch_degree`] ran earlier, or when the
    /// caller just read the degree); same no-fault, no-op-off-x86-64
    /// contract as [`Graph::prefetch_degree`].
    // gx-lint: no_alloc
    #[inline(always)]
    pub fn prefetch_neighbors(&self, v: NodeId) {
        let v = v as usize;
        if v + 1 < self.offsets.len() {
            let start = self.offsets[v];
            let end = self.offsets[v + 1];
            let base = self.adjacency.as_ptr();
            prefetch_read(base.wrapping_add(start));
            let len = end - start;
            if len > 16 {
                prefetch_read(base.wrapping_add(start + len / 2));
            }
        }
    }

    /// Iterator over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Iterator over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Sum of degrees, i.e. `2|E|`.
    #[inline]
    pub fn degree_sum(&self) -> usize {
        self.adjacency.len()
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes()).map(|v| self.degree(v as NodeId)).max().unwrap_or(0)
    }

    /// Extracts the induced subgraph on `keep` (nodes renumbered to
    /// `0..keep.len()` in the given order). `keep` must not contain
    /// duplicates. Returns the subgraph together with the mapping from new
    /// id to original id (a copy of `keep`).
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut remap = vec![NodeId::MAX; self.num_nodes()];
        for (new, &old) in keep.iter().enumerate() {
            debug_assert!(remap[old as usize] == NodeId::MAX, "duplicate node in keep");
            remap[old as usize] = new as NodeId;
        }
        let mut b = GraphBuilder::new(keep.len());
        for &old in keep {
            let new_u = remap[old as usize];
            for &w in self.neighbors(old) {
                let new_w = remap[w as usize];
                if new_w != NodeId::MAX && new_u < new_w {
                    b.add_edge(new_u, new_w).expect("remapped ids in range");
                }
            }
        }
        (b.build(), keep.to_vec())
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("num_nodes", &self.num_nodes())
            .field("num_edges", &self.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 4-node example graph of the paper's Figure 1:
    /// edges {1-2, 1-3, 1-4, 2-3, 3-4} with nodes relabeled to 0..4.
    pub(crate) fn figure1_graph() -> Graph {
        Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = figure1_graph();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 2);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.degree_sum(), 10);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn has_edge_is_symmetric_and_rejects_loops() {
        let g = figure1_graph();
        for u in 0..4u32 {
            assert!(!g.has_edge(u, u));
            for v in 0..4u32 {
                assert_eq!(g.has_edge(u, v), g.has_edge(v, u));
            }
        }
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = figure1_graph();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn duplicate_and_loop_edges_are_dropped() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1), (2, 2), (1, 2)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn out_of_range_edge_is_an_error() {
        let err = Graph::from_edges(2, [(0, 5)]).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 5, num_nodes: 2 }));
    }

    #[test]
    fn from_edges_auto_infers_size() {
        let g = Graph::from_edges_auto(&[(0, 7), (3, 4)]);
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_edges(), 2);
        let empty = Graph::from_edges_auto(&[]);
        assert_eq!(empty.num_nodes(), 0);
        assert_eq!(empty.num_edges(), 0);
    }

    #[test]
    fn hub_fast_path_agrees_with_binary_search() {
        // Star with 200 leaves: the hub's degree (200) crosses the
        // threshold max(64, 201/64) = 64, the leaves stay below it.
        let hub = 0u32;
        let edges: Vec<(NodeId, NodeId)> = (1..=200).map(|v| (hub, v)).collect();
        let g = Graph::from_edges(201, edges.iter().copied()).unwrap();
        assert!(!g.hubs.is_empty(), "star center must be indexed as a hub");
        assert!(g.hubs.row(hub).is_some());
        assert!(g.hubs.row(1).is_none());
        for v in 1..=200u32 {
            assert!(g.has_edge(hub, v));
            assert!(g.has_edge(v, hub));
        }
        assert!(!g.has_edge(1, 2));
        assert!(!g.has_edge(hub, hub));
    }

    #[test]
    fn small_graphs_have_no_hub_index() {
        let g = figure1_graph();
        assert!(g.hubs.is_empty(), "degrees below 64 never qualify");
    }

    #[test]
    fn hub_threshold_scales_with_graph_size() {
        assert_eq!(super::hub_threshold(10), 32);
        assert_eq!(super::hub_threshold(32 * 64), 32);
        assert_eq!(super::hub_threshold(6400 * 64), 6400);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = figure1_graph();
        // keep nodes {0, 1, 2}: triangle
        let (sub, map) = g.induced_subgraph(&[0, 1, 2]);
        assert_eq!(map, vec![0, 1, 2]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 3);
        // keep nodes {1, 3}: no edge between them
        let (sub, _) = g.induced_subgraph(&[1, 3]);
        assert_eq!(sub.num_edges(), 0);
    }

    #[test]
    fn induced_subgraph_respects_order() {
        let g = figure1_graph();
        let (sub, map) = g.induced_subgraph(&[3, 0]);
        assert_eq!(map, vec![3, 0]);
        // original edge (0,3) becomes (1,0)
        assert!(sub.has_edge(0, 1));
    }

    #[test]
    fn debug_format_is_compact() {
        let g = figure1_graph();
        let s = format!("{g:?}");
        assert!(s.contains("num_nodes"));
        assert!(s.contains("num_edges"));
    }
}
