//! Decode-on-demand reader for delta-varint **GXSC** snapshots.
//!
//! [`CompressedGraph`] keeps the compressed bytes mapped (or RAM-loaded)
//! and decodes adjacency in fixed-size *node blocks* through a bounded
//! LRU, so resident memory stays O(cache) no matter how large the graph
//! is — the format for snapshots whose raw CSR exceeds the RAM+disk
//! budget. Degrees live in an explicit mapped `u32` array, so
//! `degree(v)` never touches a block.
//!
//! The hot accessors are the scoped/copy-out pair
//! [`GraphAccess::visit_neighbors`] / [`GraphAccess::extend_neighbors`]:
//! they pin the decoded block on the caller's stack via `Arc`, serve the
//! slice, and let eviction proceed elsewhere — which is what makes the
//! bounded cache *sound* under concurrent walkers. The long-lived
//! `neighbors()` slice contract is honored too, through an append-only
//! per-node materialization arena; it is the cold-path escape hatch, and
//! code that holds slices across calls (exact counters) pays for exactly
//! the nodes it touches.

use super::{
    as_u32s, as_u64s, ck_add, ck_mul, page_align, to_usize, varint_decode, Backing, SnapshotError,
    SnapshotHeader, SnapshotKind, HEADER_LEN, PAGE,
};
use crate::access::GraphAccess;
use crate::csr::MADV_WILLNEED;
use crate::NodeId;
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

/// Decoded blocks kept hot. With the default 64-node blocks this bounds
/// the decode cache to a few MiB on power-law graphs while one walker's
/// locality (current node + window probes) stays resident.
const CACHE_BLOCKS: usize = 64;

/// Recovers the guard from a poisoned lock: the caches hold plain data
/// that is valid at every step, so a panicking peer cannot leave them
/// torn.
fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One decoded block: the concatenated neighbor lists of nodes
/// `first .. first + nodes_in_block`, with per-node extents.
struct DecodedBlock {
    /// First node of the block.
    first: NodeId,
    /// `starts[i]..starts[i + 1]` delimits node `first + i`'s list in
    /// `neighbors`; `nodes_in_block + 1` entries.
    starts: Vec<usize>,
    /// Concatenated sorted neighbor lists.
    neighbors: Vec<NodeId>,
}

struct BlockCache {
    map: HashMap<u32, (u64, Arc<DecodedBlock>)>,
    tick: u64,
}

/// A read-only graph served by decoding a GXSC snapshot on demand.
///
/// Implements [`GraphAccess`]; `Sync`, so the parallel and batched walk
/// engines share one instance across walker threads (the caches are
/// internally locked). Opening runs a full streaming decode-validation
/// pass, so every post-open decode is infallible by construction and
/// the accessors never panic on corrupt data — corrupt files simply
/// refuse to open, with a typed [`SnapshotError`].
pub struct CompressedGraph {
    backing: Backing,
    num_nodes: usize,
    num_edges: usize,
    fingerprint: u64,
    /// Nodes per decode block (header `aux_a`).
    block: usize,
    /// Byte (start, len) of the degrees section: `n × u32`.
    deg: (usize, usize),
    /// Byte (start, len) of the block index: `(nb + 1) × u64` data
    /// offsets.
    idx: (usize, usize),
    /// Byte (start, len) of the varint data section.
    data: (usize, usize),
    /// Byte (start, len) of the optional original-id section.
    ids: Option<(usize, usize)>,
    cache: Mutex<BlockCache>,
    /// Append-only arena backing the long-lived `neighbors()` contract.
    /// Entries are never removed or replaced while `self` lives, so a
    /// returned slice stays valid for `&self`'s lifetime even though the
    /// map itself may rehash (rehashing moves the `Box` fat pointer, not
    /// the heap buffer it owns).
    materialized: Mutex<HashMap<NodeId, Box<[NodeId]>>>,
}

impl CompressedGraph {
    /// Opens a GXSC snapshot zero-copy (mapped where supported, RAM
    /// fallback elsewhere), validating the header, layout, and the
    /// entire varint stream before returning.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        Self::from_backing(Backing::map(path.as_ref())?)
    }

    /// Opens a GXSC snapshot by reading it fully into RAM — the
    /// portable path.
    pub fn open_in_ram<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        Self::from_backing(Backing::read_owned(path.as_ref())?)
    }

    fn from_backing(mut backing: Backing) -> Result<Self, SnapshotError> {
        let len = backing.bytes().len();
        if len < HEADER_LEN {
            return Err(SnapshotError::Truncated {
                expected: HEADER_LEN as u64,
                found: len as u64,
            });
        }
        let header = SnapshotHeader::parse(&backing.bytes()[..HEADER_LEN])?;
        if header.kind != SnapshotKind::Gxsc {
            return Err(SnapshotError::BadMagic);
        }
        if header.aux_a == 0 {
            return Err(SnapshotError::Malformed { what: "block size must be >= 1" });
        }
        let n = to_usize(header.num_nodes, "node count")?;
        let block = to_usize(header.aux_a, "block size")?;
        let data_len = to_usize(header.aux_b, "data section")?;
        let nb = n.div_ceil(block);
        let deg = (PAGE, ck_mul(n, 4, "degree bytes")?);
        let idx_start = page_align(ck_add(deg.0, deg.1, "layout")?, "layout")?;
        let idx = (idx_start, ck_mul(ck_add(nb, 1, "index entries")?, 8, "index bytes")?);
        let data_start = page_align(ck_add(idx.0, idx.1, "layout")?, "layout")?;
        let data = (data_start, data_len);
        let mut total = page_align(ck_add(data_start, data_len, "layout")?, "layout")?;
        let ids = if header.has_id_map() {
            let ids_len = ck_mul(n, 8, "id map bytes")?;
            let ids = (total, ids_len);
            total = page_align(ck_add(total, ids_len, "layout")?, "layout")?;
            Some(ids)
        } else {
            None
        };
        if len < total {
            return Err(SnapshotError::Truncated { expected: total as u64, found: len as u64 });
        }
        if len > total {
            return Err(SnapshotError::Malformed { what: "trailing bytes after last section" });
        }
        backing.normalize_u32s(deg.0, deg.1);
        backing.normalize_u64s(idx.0, idx.1);
        if let Some(ids) = ids {
            backing.normalize_u64s(ids.0, ids.1);
        }
        let g = CompressedGraph {
            backing,
            num_nodes: n,
            num_edges: to_usize(header.num_edges, "edge count")?,
            fingerprint: header.fingerprint,
            block,
            deg,
            idx,
            data,
            ids,
            cache: Mutex::new(BlockCache { map: HashMap::new(), tick: 0 }),
            materialized: Mutex::new(HashMap::new()),
        };
        g.validate_stream(nb)?;
        g.backing.advise(0, total, MADV_WILLNEED);
        Ok(g)
    }

    /// Streaming decode-validation of the whole data section: block
    /// index monotone and exact, every list the length its degree
    /// declares, strictly ascending, in `0..n`, and the degree sum equal
    /// to `2 × num_edges`. After this passes, [`Self::decode_block`] can
    /// never fail.
    fn validate_stream(&self, nb: usize) -> Result<(), SnapshotError> {
        let idx = self.index();
        let data = self.data_bytes();
        let degrees = self.degrees();
        if idx.first() != Some(&0) {
            return Err(SnapshotError::Malformed { what: "block index[0] != 0" });
        }
        if idx.last() != Some(&(data.len() as u64)) {
            return Err(SnapshotError::Malformed { what: "block index end != data length" });
        }
        if idx.windows(2).any(|w| w[1] < w[0]) {
            return Err(SnapshotError::Malformed { what: "block index not monotone" });
        }
        // Monotone + exact final entry bounds every offset by the data
        // length, so the per-block slices below cannot go out of range.
        let n64 = self.num_nodes as u64;
        let mut dsum = 0u64;
        for b in 0..nb {
            let (lo, hi) = self.block_span(b as u32);
            let mut pos = to_usize(idx[b], "block offset")?;
            let stop = to_usize(idx[b + 1], "block offset")?;
            for &d in &degrees[lo..hi] {
                dsum += u64::from(d);
                let mut prev = 0u64;
                for i in 0..d {
                    let Some((x, next)) = varint_decode(&data[..stop], pos) else {
                        return Err(SnapshotError::Malformed {
                            what: "varint stream out of bounds",
                        });
                    };
                    pos = next;
                    if i > 0 && x == 0 {
                        return Err(SnapshotError::Malformed {
                            what: "adjacency list not strictly ascending",
                        });
                    }
                    let w = if i == 0 { x } else { prev.saturating_add(x) };
                    if w >= n64 {
                        return Err(SnapshotError::Malformed { what: "neighbor id out of range" });
                    }
                    prev = w;
                }
            }
            if pos != stop {
                return Err(SnapshotError::Malformed { what: "block length disagrees with index" });
            }
        }
        if dsum != 2 * self.num_edges as u64 {
            return Err(SnapshotError::Malformed { what: "degree sum != 2 * num_edges" });
        }
        Ok(())
    }

    #[inline]
    fn degrees(&self) -> &[u32] {
        as_u32s(&self.backing.bytes()[self.deg.0..self.deg.0 + self.deg.1])
    }

    #[inline]
    fn index(&self) -> &[u64] {
        as_u64s(&self.backing.bytes()[self.idx.0..self.idx.0 + self.idx.1])
    }

    #[inline]
    fn data_bytes(&self) -> &[u8] {
        &self.backing.bytes()[self.data.0..self.data.0 + self.data.1]
    }

    /// Node range `[lo, hi)` of block `b`.
    #[inline]
    fn block_span(&self, b: u32) -> (usize, usize) {
        let lo = (b as usize).saturating_mul(self.block).min(self.num_nodes);
        let hi = (b as usize + 1).saturating_mul(self.block).min(self.num_nodes);
        (lo, hi)
    }

    /// Decodes block `b`. Infallible by construction: the open-time
    /// [`Self::validate_stream`] pass proved every varint in bounds and
    /// every value in range, so the defensive fallbacks below are
    /// unreachable (kept instead of panics to honor the never-panic
    /// contract even against logic bugs).
    fn decode_block(&self, b: u32) -> DecodedBlock {
        let (lo, hi) = self.block_span(b);
        let data = self.data_bytes();
        let degrees = self.degrees();
        let mut pos = self.index()[b as usize] as usize;
        let total: usize = degrees[lo..hi].iter().map(|&d| d as usize).sum();
        let mut starts = Vec::with_capacity(hi - lo + 1);
        let mut neighbors = Vec::with_capacity(total);
        starts.push(0);
        for &dv in &degrees[lo..hi] {
            let d = dv as usize;
            let mut prev = 0u64;
            for i in 0..d {
                let (x, next) = varint_decode(data, pos).unwrap_or((0, pos + 1));
                pos = next;
                let w = if i == 0 { x } else { prev + x };
                neighbors.push(w as NodeId);
                prev = w;
            }
            starts.push(neighbors.len());
        }
        DecodedBlock { first: lo as NodeId, starts, neighbors }
    }

    /// The decoded block holding `v`, served from the bounded LRU.
    fn cached_block(&self, b: u32) -> Arc<DecodedBlock> {
        {
            let mut c = locked(&self.cache);
            c.tick += 1;
            let tick = c.tick;
            if let Some(entry) = c.map.get_mut(&b) {
                entry.0 = tick;
                return entry.1.clone();
            }
        }
        // Decode outside the lock: concurrent walkers may both decode
        // the same block; both Arcs are identical in content and the
        // loser's insert simply refreshes the entry.
        let decoded = Arc::new(self.decode_block(b));
        let mut c = locked(&self.cache);
        c.tick += 1;
        let tick = c.tick;
        if c.map.len() >= CACHE_BLOCKS && !c.map.contains_key(&b) {
            let victim = c.map.iter().min_by_key(|(_, (t, _))| *t).map(|(k, _)| *k);
            if let Some(k) = victim {
                c.map.remove(&k);
            }
        }
        c.map.insert(b, (tick, decoded.clone()));
        decoded
    }

    /// Arc-pinned slice coordinates of `v`'s list: the block, plus the
    /// start/end extents within `block.neighbors`.
    #[inline]
    fn pinned(&self, v: NodeId) -> (Arc<DecodedBlock>, usize, usize) {
        let b = (v as usize / self.block) as u32;
        let block = self.cached_block(b);
        let i = v as usize - block.first as usize;
        let (s, e) = (block.starts[i], block.starts[i + 1]);
        (block, s, e)
    }

    /// Number of nodes (including isolated ones).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The header-embedded [`crate::access::graph_fingerprint`].
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Nodes per decode block (the writer's granularity choice).
    #[inline]
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Original dataset ids (`compact id → source id`), when the
    /// converter stored them.
    pub fn original_ids(&self) -> Option<&[u64]> {
        self.ids.map(|(start, len)| as_u64s(&self.backing.bytes()[start..start + len]))
    }

    /// True when served from a zero-copy mapping (false on the RAM
    /// fallback path).
    pub fn is_mapped(&self) -> bool {
        self.backing.is_mapped()
    }

    #[cfg(test)]
    fn decode_cache_len(&self) -> usize {
        locked(&self.cache).map.len()
    }

    #[cfg(test)]
    fn materialized_len(&self) -> usize {
        locked(&self.materialized).len()
    }
}

impl std::fmt::Debug for CompressedGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressedGraph")
            .field("num_nodes", &self.num_nodes)
            .field("num_edges", &self.num_edges)
            .field("fingerprint", &self.fingerprint)
            .field("block", &self.block)
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl GraphAccess for CompressedGraph {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        self.degrees()[v as usize] as usize
    }

    /// Cold-path escape hatch: materializes `v`'s list once into the
    /// append-only arena and serves the same allocation forever after.
    /// Walk-engine hot paths use [`GraphAccess::visit_neighbors`] /
    /// [`GraphAccess::extend_neighbors`] instead and never land here.
    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        {
            let mat = locked(&self.materialized);
            if let Some(list) = mat.get(&v) {
                let (ptr, len) = (list.as_ptr(), list.len());
                drop(mat);
                // SAFETY: `list` is a `Box<[NodeId]>` whose heap buffer
                // is stable; the arena never removes or replaces
                // entries, so the buffer lives as long as `self`.
                // Rehashing moves only the fat pointer.
                return unsafe { std::slice::from_raw_parts(ptr, len) };
            }
        }
        // Decode before re-taking the arena lock (no nested locks).
        let (block, s, e) = self.pinned(v);
        let boxed: Box<[NodeId]> = block.neighbors[s..e].to_vec().into_boxed_slice();
        drop(block);
        let mut mat = locked(&self.materialized);
        let list = mat.entry(v).or_insert(boxed);
        let (ptr, len) = (list.as_ptr(), list.len());
        drop(mat);
        // SAFETY: as above — entry just inserted (or raced in by a
        // peer), never removed or replaced for `self`'s lifetime.
        unsafe { std::slice::from_raw_parts(ptr, len) }
    }

    fn visit_neighbors(&self, v: NodeId, f: &mut dyn FnMut(&[NodeId])) {
        let (block, s, e) = self.pinned(v);
        f(&block.neighbors[s..e]);
    }

    fn extend_neighbors(&self, v: NodeId, out: &mut Vec<NodeId>) {
        let (block, s, e) = self.pinned(v);
        out.extend_from_slice(&block.neighbors[s..e]);
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        let (block, s, e) = self.pinned(a);
        block.neighbors[s..e].binary_search(&b).is_ok()
    }

    fn neighbor_at(&self, v: NodeId, i: usize) -> NodeId {
        let (block, s, e) = self.pinned(v);
        debug_assert!(i < e - s);
        block.neighbors[s + i]
    }
    // `prefetch_degree` / `prefetch_neighbors` stay the no-op defaults
    // deliberately: decoding from a prefetch hook would mutate the cache,
    // violating the "no observable state change" contract — and the
    // useful prefetch distance here is the block, not the cache line.
}

#[cfg(test)]
mod tests {
    use super::super::{write_gxsc, write_gxsc_with_block, write_gxsn, SnapshotKind};
    use super::*;
    use crate::access::graph_fingerprint;
    use crate::generators::classic;
    use crate::Graph;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gx_gxsc_test_{}_{name}", std::process::id()));
        p
    }

    fn sample() -> Graph {
        let mut edges: Vec<(NodeId, NodeId)> = (1..40).map(|v| (0, v)).collect();
        edges.extend([(1, 2), (2, 3), (3, 4), (5, 6), (37, 38), (10, 30)]);
        Graph::from_edges_auto(&edges)
    }

    #[test]
    fn gxsc_roundtrips_adjacency_bit_for_bit() {
        let g = sample();
        for block in [1u64, 3, 64, 1024] {
            let path = tmp(&format!("rt_{block}.gxsc"));
            let info = write_gxsc_with_block(&g, None, &path, block).expect("write");
            assert_eq!(info.kind, SnapshotKind::Gxsc);
            let c = CompressedGraph::open(&path).expect("open");
            assert_eq!(c.num_nodes(), g.num_nodes());
            assert_eq!(c.num_edges(), g.num_edges());
            assert_eq!(c.block_size(), block as usize);
            assert_eq!(c.fingerprint(), graph_fingerprint(&g));
            // The fingerprint recomputed *through the decode path* must
            // match too — proves visit_neighbors serves identical bits.
            assert_eq!(graph_fingerprint(&c), graph_fingerprint(&g));
            for v in 0..g.num_nodes() as NodeId {
                assert_eq!(GraphAccess::degree(&c, v), g.degree(v), "degree({v})");
                assert_eq!(c.neighbors(v), g.neighbors(v), "neighbors({v})");
                let mut out = Vec::new();
                c.extend_neighbors(v, &mut out);
                assert_eq!(out, g.neighbors(v), "extend({v})");
            }
            for u in 0..g.num_nodes() as NodeId {
                for v in 0..g.num_nodes() as NodeId {
                    assert_eq!(c.has_edge(u, v), g.has_edge(u, v), "has_edge({u},{v})");
                }
            }
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn decode_cache_stays_bounded() {
        let g = classic::cycle(600);
        let path = tmp("bounded.gxsc");
        // Block size 1: 600 blocks, far above the cache cap.
        write_gxsc_with_block(&g, None, &path, 1).expect("write");
        let c = CompressedGraph::open(&path).expect("open");
        for v in 0..600u32 {
            c.visit_neighbors(v, &mut |nbrs| assert_eq!(nbrs.len(), 2));
        }
        assert!(c.decode_cache_len() <= CACHE_BLOCKS, "cache grew past its bound");
        // visit_neighbors never touches the materialization arena.
        assert_eq!(c.materialized_len(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn materialized_neighbors_slice_is_stable() {
        let g = sample();
        let path = tmp("stable.gxsc");
        write_gxsc(&g, None, &path).expect("write");
        let c = CompressedGraph::open(&path).expect("open");
        let first = c.neighbors(0);
        let first_ptr = first.as_ptr();
        // Materialize many other nodes to force arena rehashing.
        for v in 1..c.num_nodes() as NodeId {
            let _ = c.neighbors(v);
        }
        let again = c.neighbors(0);
        assert_eq!(first_ptr, again.as_ptr(), "arena entry moved");
        assert_eq!(first, g.neighbors(0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn gxsn_file_is_refused_by_gxsc_reader() {
        let g = classic::path(4);
        let path = tmp("wrongkind.gxsn");
        write_gxsn(&g, None, &path).expect("write");
        assert_eq!(CompressedGraph::open(&path).unwrap_err(), SnapshotError::BadMagic);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn id_map_roundtrips_through_gxsc() {
        let g = classic::path(3);
        let ids: Vec<u64> = vec![7, 900, 1_000_000_007];
        let path = tmp("ids.gxsc");
        write_gxsc(&g, Some(&ids), &path).expect("write");
        let c = CompressedGraph::open(&path).expect("open");
        assert_eq!(c.original_ids(), Some(&ids[..]));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_walkers_share_one_reader() {
        let g = classic::complete(24);
        let path = tmp("threads.gxsc");
        write_gxsc_with_block(&g, None, &path, 4).expect("write");
        let c = std::sync::Arc::new(CompressedGraph::open(&path).expect("open"));
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let mut sum = 0usize;
                for round in 0..50 {
                    let v = ((t * 7 + round * 5) % 24) as NodeId;
                    c.visit_neighbors(v, &mut |nbrs| sum += nbrs.len());
                }
                sum
            }));
        }
        for h in handles {
            assert_eq!(h.join().expect("thread"), 50 * 23);
        }
        let _ = std::fs::remove_file(&path);
    }
}
