//! Zero-copy reader for raw-CSR **GXSN** snapshots.
//!
//! [`MmapGraph`] maps the snapshot read-only and serves [`GraphAccess`]
//! straight out of the mapping: `neighbors(v)` is a subslice of the
//! page cache, never a copy, so N walker threads — and N *processes* —
//! share one physical copy of a billion-edge CSR. On x86-64 Linux the
//! mapping is a raw `mmap` syscall (the workspace takes no libc-style
//! dependency; same precedent as the `madvise` call in `csr.rs`);
//! everywhere else, and via [`MmapGraph::open_in_ram`], the file is
//! read into an owned aligned buffer behind the identical API.

use super::{
    as_u32s, as_u64s, ck_add, ck_mul, page_align, to_usize, Backing, SnapshotError, SnapshotHeader,
    SnapshotKind, HEADER_LEN, PAGE,
};
use crate::access::{graph_fingerprint, GraphAccess};
use crate::csr::{prefetch_read, HubIndex, MADV_HUGEPAGE, MADV_WILLNEED};
use crate::NodeId;
use std::path::Path;

/// A read-only CSR graph served from a mapped (or RAM-loaded) GXSN
/// snapshot. Implements [`GraphAccess`], so every walk engine — scalar
/// and lock-step batched — runs on it unmodified and bit-identically to
/// the in-RAM [`crate::Graph`] built from the same edges.
///
/// Opening validates the header checksum, the exact file length, and
/// the monotonicity/bounds of the offset array before any accessor can
/// run, so the accessors themselves are plain bounds-checked loads.
/// The neighbor *values* are trusted from the (checksummed) writer; a
/// paranoid consumer can call [`MmapGraph::validate_deep`] for the full
/// O(edges) scan.
///
/// `has_edge` defaults to a binary search of the smaller endpoint's
/// list — O(log d), measured and documented in the bench. Call
/// [`MmapGraph::build_hub_index`] after opening to spend one O(edges)
/// scan on the same hub-bitset acceleration the in-RAM graph gets from
/// its builder, making hub probes O(1).
pub struct MmapGraph {
    backing: Backing,
    num_nodes: usize,
    num_edges: usize,
    fingerprint: u64,
    /// Byte (start, len) of the offsets section: `(n + 1) × u64`.
    off: (usize, usize),
    /// Byte (start, len) of the adjacency section: `2E × u32`.
    adj: (usize, usize),
    /// Byte (start, len) of the optional original-id section: `n × u64`.
    ids: Option<(usize, usize)>,
    hubs: HubIndex,
}

impl MmapGraph {
    /// Opens a GXSN snapshot zero-copy (mapped where supported, RAM
    /// fallback elsewhere), validating header and index bounds first.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        Self::from_backing(Backing::map(path.as_ref())?)
    }

    /// Opens a GXSN snapshot by reading it fully into RAM — the
    /// portable path, and the bench's page-cache A/B baseline.
    pub fn open_in_ram<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        Self::from_backing(Backing::read_owned(path.as_ref())?)
    }

    fn from_backing(mut backing: Backing) -> Result<Self, SnapshotError> {
        let len = backing.bytes().len();
        if len < HEADER_LEN {
            return Err(SnapshotError::Truncated {
                expected: HEADER_LEN as u64,
                found: len as u64,
            });
        }
        let header = SnapshotHeader::parse(&backing.bytes()[..HEADER_LEN])?;
        if header.kind != SnapshotKind::Gxsn {
            return Err(SnapshotError::BadMagic);
        }
        if header.aux_a != 0 || header.aux_b != 0 {
            return Err(SnapshotError::Malformed { what: "GXSN reserves aux header words" });
        }
        let n = to_usize(header.num_nodes, "node count")?;
        let entries = to_usize(header.num_edges.saturating_mul(2), "adjacency entries")?;
        let off_len = ck_mul(ck_add(n, 1, "offsets entries")?, 8, "offsets bytes")?;
        let adj_len = ck_mul(entries, 4, "adjacency bytes")?;
        let off = (PAGE, off_len);
        let adj_start = page_align(ck_add(PAGE, off_len, "layout")?, "layout")?;
        let adj = (adj_start, adj_len);
        let mut total = page_align(ck_add(adj_start, adj_len, "layout")?, "layout")?;
        let ids = if header.has_id_map() {
            let ids_len = ck_mul(n, 8, "id map bytes")?;
            let ids = (total, ids_len);
            total = page_align(ck_add(total, ids_len, "layout")?, "layout")?;
            Some(ids)
        } else {
            None
        };
        if len < total {
            return Err(SnapshotError::Truncated { expected: total as u64, found: len as u64 });
        }
        if len > total {
            return Err(SnapshotError::Malformed { what: "trailing bytes after last section" });
        }
        backing.normalize_u64s(off.0, off.1);
        backing.normalize_u32s(adj.0, adj.1);
        if let Some(ids) = ids {
            backing.normalize_u64s(ids.0, ids.1);
        }
        let g = MmapGraph {
            backing,
            num_nodes: n,
            num_edges: to_usize(header.num_edges, "edge count")?,
            fingerprint: header.fingerprint,
            off,
            adj,
            ids,
            hubs: HubIndex::default(),
        };
        // Offsets must be a valid CSR index: start at 0, never decrease,
        // and end exactly at the adjacency entry count. With that, every
        // accessor's slice arithmetic is in-bounds by construction.
        {
            let offsets = g.offsets();
            if offsets.first() != Some(&0) {
                return Err(SnapshotError::Malformed { what: "offsets[0] != 0" });
            }
            if offsets.last() != Some(&(entries as u64)) {
                return Err(SnapshotError::Malformed { what: "offsets[n] != 2 * num_edges" });
            }
            if offsets.windows(2).any(|w| w[1] < w[0]) {
                return Err(SnapshotError::Malformed { what: "offsets not monotone" });
            }
        }
        // Pure hints, in walk-priority order: fault the index arrays in
        // soon, and back them with hugepages so random neighbor probes
        // stay within TLB reach (see `csr::advise_hugepages`).
        g.backing.advise(0, total, MADV_WILLNEED);
        g.backing.advise(off.0, adj.0 + adj.1 - off.0, MADV_HUGEPAGE);
        Ok(g)
    }

    #[inline]
    fn offsets(&self) -> &[u64] {
        as_u64s(&self.backing.bytes()[self.off.0..self.off.0 + self.off.1])
    }

    #[inline]
    fn adjacency(&self) -> &[u32] {
        as_u32s(&self.backing.bytes()[self.adj.0..self.adj.0 + self.adj.1])
    }

    /// Number of nodes (including isolated ones).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The [`graph_fingerprint`] embedded (and checksummed) in the
    /// header at write time — what trusted-resume and the service's
    /// snapshot cache key on without rescanning the edges.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Original dataset ids (`compact id → source id`), when the
    /// converter stored them.
    pub fn original_ids(&self) -> Option<&[u64]> {
        self.ids.map(|(start, len)| as_u64s(&self.backing.bytes()[start..start + len]))
    }

    /// True when served zero-copy from a mapping (false on the RAM
    /// fallback path).
    pub fn is_mapped(&self) -> bool {
        self.backing.is_mapped()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let o = self.offsets();
        let v = v as usize;
        (o[v + 1] - o[v]) as usize
    }

    /// Sorted adjacency list of `v` — a subslice of the mapping, zero
    /// copies.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let o = self.offsets();
        let v = v as usize;
        &self.adjacency()[o[v] as usize..o[v + 1] as usize]
    }

    /// Builds the same hub-bitset `has_edge` acceleration the in-RAM
    /// [`crate::Graph`] gets from its builder: one O(edges) scan, O(1)
    /// probes against hub endpoints afterwards. Opt-in because opening
    /// stays O(nodes) without it and many workloads (pure SRW) never
    /// call `has_edge` against hubs hot enough to matter.
    pub fn build_hub_index(&mut self) {
        let hubs = HubIndex::build_from_access(&*self);
        self.hubs = hubs;
    }

    /// Whether [`MmapGraph::build_hub_index`] has produced a non-empty
    /// index.
    pub fn has_hub_index(&self) -> bool {
        !self.hubs.is_empty()
    }

    /// Full O(edges) integrity scan: every neighbor id in range, every
    /// list strictly ascending (sorted, deduplicated, self-loop-free is
    /// implied together with symmetry of the writer), and the
    /// recomputed [`graph_fingerprint`] equal to the header's. `open`
    /// skips this deliberately — the header checksum already guards
    /// against torn writes — but a consumer adopting a snapshot from an
    /// untrusted producer can insist.
    pub fn validate_deep(&self) -> Result<(), SnapshotError> {
        let n = self.num_nodes as u64;
        for v in 0..self.num_nodes {
            let nbrs = self.neighbors(v as NodeId);
            let mut prev: Option<NodeId> = None;
            for &w in nbrs {
                if u64::from(w) >= n {
                    return Err(SnapshotError::Malformed { what: "neighbor id out of range" });
                }
                if prev.is_some_and(|p| p >= w) {
                    return Err(SnapshotError::Malformed {
                        what: "adjacency list not strictly ascending",
                    });
                }
                prev = Some(w);
            }
        }
        if graph_fingerprint(self) != self.fingerprint {
            return Err(SnapshotError::Malformed { what: "fingerprint mismatch" });
        }
        Ok(())
    }
}

impl std::fmt::Debug for MmapGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapGraph")
            .field("num_nodes", &self.num_nodes)
            .field("num_edges", &self.num_edges)
            .field("fingerprint", &self.fingerprint)
            .field("mapped", &self.is_mapped())
            .field("hub_index", &self.has_hub_index())
            .finish()
    }
}

impl GraphAccess for MmapGraph {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        MmapGraph::degree(self, v)
    }

    #[inline]
    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        MmapGraph::neighbors(self, v)
    }

    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        if !self.hubs.is_empty() {
            if let Some(row) = self.hubs.row(u) {
                return self.hubs.test(row, v);
            }
            if let Some(row) = self.hubs.row(v) {
                return self.hubs.test(row, u);
            }
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    #[inline]
    fn neighbor_at(&self, v: NodeId, i: usize) -> NodeId {
        // One offset load, as in the in-RAM graph: this sits on the
        // walk's per-step critical path.
        let o = self.offsets();
        self.adjacency()[o[v as usize] as usize + i]
    }

    // gx-lint: no_alloc
    #[inline(always)]
    fn prefetch_degree(&self, v: NodeId) {
        let o = self.offsets();
        let v = v as usize;
        if v + 1 < o.len() {
            // `offsets[v]` and `offsets[v + 1]` share a line fetch.
            prefetch_read(o.as_ptr().wrapping_add(v));
        }
    }

    // gx-lint: no_alloc
    #[inline(always)]
    fn prefetch_neighbors(&self, v: NodeId) {
        let o = self.offsets();
        let v = v as usize;
        if v + 1 < o.len() {
            let start = o[v] as usize;
            let len = (o[v + 1] - o[v]) as usize;
            let base = self.adjacency().as_ptr();
            prefetch_read(base.wrapping_add(start));
            if len > 16 {
                prefetch_read(base.wrapping_add(start + len / 2));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{read_header, write_gxsn, SnapshotKind};
    use super::*;
    use crate::generators::classic;
    use crate::Graph;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gx_mmap_test_{}_{name}", std::process::id()));
        p
    }

    fn sample() -> Graph {
        // Star-heavy graph so a hub exists (center degree ≥ 32).
        let mut edges: Vec<(NodeId, NodeId)> = (1..40).map(|v| (0, v)).collect();
        edges.extend([(1, 2), (2, 3), (3, 4), (5, 6)]);
        Graph::from_edges_auto(&edges)
    }

    #[test]
    fn gxsn_roundtrips_structure_and_fingerprint() {
        let g = sample();
        let path = tmp("roundtrip.gxsn");
        let info = write_gxsn(&g, None, &path).expect("write");
        assert_eq!(info.kind, SnapshotKind::Gxsn);
        assert_eq!(info.num_nodes, g.num_nodes() as u64);
        assert_eq!(info.num_edges, g.num_edges() as u64);
        assert_eq!(read_header(&path).expect("header").fingerprint, info.fingerprint);

        for m in
            [MmapGraph::open(&path).expect("open"), MmapGraph::open_in_ram(&path).expect("ram")]
        {
            assert_eq!(m.num_nodes(), g.num_nodes());
            assert_eq!(m.num_edges(), g.num_edges());
            assert_eq!(m.fingerprint(), graph_fingerprint(&g));
            assert_eq!(m.original_ids(), None);
            for v in 0..g.num_nodes() as NodeId {
                assert_eq!(m.neighbors(v), g.neighbors(v), "node {v}");
                assert_eq!(GraphAccess::degree(&m, v), g.degree(v));
            }
            m.validate_deep().expect("deep validation");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn id_map_section_roundtrips() {
        let g = classic::path(5);
        let ids: Vec<u64> = vec![100, 205, 307, 409, 511];
        let path = tmp("ids.gxsn");
        write_gxsn(&g, Some(&ids), &path).expect("write");
        let m = MmapGraph::open(&path).expect("open");
        assert_eq!(m.original_ids(), Some(&ids[..]));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn id_map_length_mismatch_is_refused() {
        let g = classic::path(5);
        let err = write_gxsn(&g, Some(&[1, 2]), tmp("badids.gxsn")).unwrap_err();
        assert_eq!(err, SnapshotError::Malformed { what: "id map length != num_nodes" });
    }

    #[test]
    fn hub_index_matches_binary_search_fallback() {
        let g = sample();
        let path = tmp("hubs.gxsn");
        write_gxsn(&g, None, &path).expect("write");
        let plain = MmapGraph::open(&path).expect("open");
        let mut accel = MmapGraph::open(&path).expect("open");
        assert!(!plain.has_hub_index());
        accel.build_hub_index();
        assert!(accel.has_hub_index(), "sample graph has a degree-39 hub");
        for u in 0..g.num_nodes() as NodeId {
            for v in 0..g.num_nodes() as NodeId {
                let want = g.has_edge(u, v);
                assert_eq!(plain.has_edge(u, v), want, "fallback ({u},{v})");
                assert_eq!(accel.has_edge(u, v), want, "hub path ({u},{v})");
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_and_isolated_graphs_roundtrip() {
        for g in [Graph::from_edges(0, []).expect("empty"), Graph::from_edges(3, []).expect("iso")]
        {
            let path = tmp("empty.gxsn");
            write_gxsn(&g, None, &path).expect("write");
            let m = MmapGraph::open(&path).expect("open");
            assert_eq!(m.num_nodes(), g.num_nodes());
            assert_eq!(m.num_edges(), 0);
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn gxsc_file_is_refused_by_gxsn_reader() {
        let g = classic::path(4);
        let path = tmp("wrongkind.gxsc");
        super::super::write_gxsc(&g, None, &path).expect("write");
        assert_eq!(MmapGraph::open(&path).unwrap_err(), SnapshotError::BadMagic);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_not_found() {
        let err = MmapGraph::open(tmp("nonexistent.gxsn")).unwrap_err();
        assert_eq!(err, SnapshotError::Io(std::io::ErrorKind::NotFound));
    }
}
