//! Out-of-core graph snapshots: build once, `mmap` forever.
//!
//! The paper targets Twitter/Friendster-class graphs that do not fit the
//! RAM of a commodity box (§1), yet the `GX_DATASET` loader materializes
//! an in-RAM `Vec`-backed CSR. This module adds the on-disk counterpart:
//! a versioned snapshot format holding the same CSR arrays as
//! [`crate::Graph`], page-aligned and little-endian, so a reader can map
//! the file read-only and serve walks with **zero copies** — the offset
//! and neighbor arrays *are* the page cache, shared across walker
//! threads and across processes.
//!
//! Two formats share one 64-byte header:
//!
//! * **GXSN** ([`MmapGraph`]) — raw CSR. Offsets as `u64`, neighbors as
//!   `u32`, each section page-aligned. Fastest; file size ≈ the in-RAM
//!   CSR.
//! * **GXSC** ([`CompressedGraph`]) — per-node delta-encoded varint
//!   neighbor lists with an explicit degree array and a block-sampled
//!   offset index, decoded on demand through a bounded block LRU. For
//!   snapshots whose raw form exceeds the RAM+disk budget; typically
//!   2–4× smaller on power-law graphs.
//!
//! ```text
//! byte 0                                            64            4096
//! ┌──────┬─────────┬───────┬────────┬────────┬────┬──────┬───┬────┐
//! │magic │ version │ flags │ nodes  │ edges  │ fp │ aux  │ck │ pad│
//! │ 4 B  │ u32     │ u64   │ u64    │ u64    │u64 │2×u64 │u64│    │
//! └──────┴─────────┴───────┴────────┴────────┴────┴──────┴───┴────┘
//! GXSN: [offsets (n+1)×u64][neighbors 2E×u32][original ids n×u64]?
//! GXSC: [degrees n×u32][block index (nb+1)×u64][varint data][ids]?
//! (each section zero-padded to the next 4 KiB page boundary)
//! ```
//!
//! The header embeds the [`graph_fingerprint`] of the stored graph,
//! checksummed together with the counts (FNV-1a over the first 56
//! bytes). That single validated word is what lets
//! `gx_core::Runner::resume_trusted` and `gx-service`'s fingerprint-
//! keyed snapshot cache adopt a mapped snapshot without the O(edges)
//! rescan — the converter paid for the scan exactly once, at write time.
//!
//! # Corruption model
//!
//! Opening validates the header checksum, the exact file length against
//! the layout the header declares, and the structural invariants of the
//! index arrays (offsets monotone and bounded for GXSN; a full decode
//! pass for GXSC) *before* exposing anything. Every corrupt, truncated,
//! or oversized input surfaces as a typed [`SnapshotError`] — never a
//! panic, never a silently-wrong graph — mirroring the checkpoint
//! envelope's contract in `gx_core::checkpoint`.

mod compressed;
mod mmap;

pub use compressed::CompressedGraph;
pub use mmap::MmapGraph;

use crate::access::{graph_fingerprint, GraphAccess};
use crate::NodeId;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Section alignment: every array starts on a 4 KiB page boundary so a
/// mapped file can be reinterpreted in place and advised per-section.
pub const PAGE: usize = 4096;

/// Header size in bytes (one cache-line pair; the rest of page 0 is
/// zero padding).
pub const HEADER_LEN: usize = 64;

/// Current snapshot format version, shared by GXSN and GXSC.
pub const VERSION: u32 = 1;

/// Header flag bit: an original-id section (`n × u64`) follows the
/// graph arrays, mapping compact node ids back to the source dataset's
/// sparse ids (KONECT-style).
pub const FLAG_ID_MAP: u64 = 1;

/// Default GXSC block granularity: nodes per decode block. 64 keeps a
/// decoded block around a few KiB on power-law graphs while the block
/// index stays at `n/8` bytes.
pub const GXSC_BLOCK: u64 = 64;

const MAGIC_GXSN: [u8; 4] = *b"GXSN";
const MAGIC_GXSC: [u8; 4] = *b"GXSC";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit digest (same function, same constants as the
/// checkpoint envelope): every byte step is a bijection of the running
/// state, so same-length headers differing in any single bit hash
/// differently — the guarantee the corruption tests lean on.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed refusal reasons for snapshot files. Every corrupt, truncated,
/// foreign, or oversized input maps to one of these — opening a
/// snapshot never panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with a known snapshot magic, or carries
    /// the magic of the *other* format than the reader asked for.
    BadMagic,
    /// The header declares a format version this build cannot read.
    UnsupportedVersion {
        /// The version the header declared.
        found: u32,
    },
    /// The header checksum does not match its contents: a torn write or
    /// bit rot in the first 64 bytes.
    HeaderChecksumMismatch,
    /// The file is shorter than the layout its header declares.
    Truncated {
        /// Bytes the layout requires.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// A structural invariant of the declared layout does not hold
    /// (non-monotone offsets, varint stream out of bounds, trailing
    /// bytes, unknown flags, …).
    Malformed {
        /// Which invariant was violated.
        what: &'static str,
    },
    /// A size in the header overflows the address space of this host.
    TooLarge {
        /// Which quantity overflowed.
        what: &'static str,
    },
    /// The underlying I/O operation failed.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a graph snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found} (reader supports {VERSION})")
            }
            SnapshotError::HeaderChecksumMismatch => {
                write!(f, "snapshot header checksum mismatch (corrupted header)")
            }
            SnapshotError::Truncated { expected, found } => {
                write!(f, "snapshot truncated: need {expected} bytes, found {found}")
            }
            SnapshotError::Malformed { what } => write!(f, "malformed snapshot: {what}"),
            SnapshotError::TooLarge { what } => {
                write!(f, "snapshot too large for this host: {what}")
            }
            SnapshotError::Io(kind) => write!(f, "snapshot I/O error: {kind}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.kind())
    }
}

// ---------------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------------

/// Which snapshot format a header announces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// Raw page-aligned CSR arrays ([`MmapGraph`]).
    Gxsn,
    /// Delta-varint compressed adjacency ([`CompressedGraph`]).
    Gxsc,
}

impl SnapshotKind {
    fn magic(self) -> [u8; 4] {
        match self {
            SnapshotKind::Gxsn => MAGIC_GXSN,
            SnapshotKind::Gxsc => MAGIC_GXSC,
        }
    }
}

impl std::fmt::Display for SnapshotKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SnapshotKind::Gxsn => "GXSN",
            SnapshotKind::Gxsc => "GXSC",
        })
    }
}

/// Decoded, checksum-verified snapshot header.
///
/// [`read_header`] reads just these 64 bytes, which is how the service's
/// snapshot cache keys a mapped submission by fingerprint *before*
/// deciding whether mapping the file is needed at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Format of the sections that follow.
    pub kind: SnapshotKind,
    /// Format version ([`VERSION`]).
    pub version: u32,
    /// Flag bits ([`FLAG_ID_MAP`] is the only one defined).
    pub flags: u64,
    /// Node count (including isolated nodes).
    pub num_nodes: u64,
    /// Undirected edge count; adjacency sections hold `2 × num_edges`
    /// entries.
    pub num_edges: u64,
    /// [`graph_fingerprint`] of the stored graph, computed at write
    /// time.
    pub fingerprint: u64,
    /// Format-specific: GXSC block granularity (nodes per block); 0 for
    /// GXSN.
    pub aux_a: u64,
    /// Format-specific: GXSC varint data section length in bytes; 0 for
    /// GXSN.
    pub aux_b: u64,
}

impl SnapshotHeader {
    /// Whether the snapshot carries an original-id section.
    pub fn has_id_map(&self) -> bool {
        self.flags & FLAG_ID_MAP != 0
    }

    fn encode(&self) -> [u8; HEADER_LEN] {
        let mut h = [0u8; HEADER_LEN];
        h[0..4].copy_from_slice(&self.kind.magic());
        h[4..8].copy_from_slice(&self.version.to_le_bytes());
        h[8..16].copy_from_slice(&self.flags.to_le_bytes());
        h[16..24].copy_from_slice(&self.num_nodes.to_le_bytes());
        h[24..32].copy_from_slice(&self.num_edges.to_le_bytes());
        h[32..40].copy_from_slice(&self.fingerprint.to_le_bytes());
        h[40..48].copy_from_slice(&self.aux_a.to_le_bytes());
        h[48..56].copy_from_slice(&self.aux_b.to_le_bytes());
        let ck = fnv1a(&h[..56]);
        h[56..64].copy_from_slice(&ck.to_le_bytes());
        h
    }

    fn parse(h: &[u8]) -> Result<Self, SnapshotError> {
        debug_assert!(h.len() >= HEADER_LEN);
        let kind = if h[0..4] == MAGIC_GXSN {
            SnapshotKind::Gxsn
        } else if h[0..4] == MAGIC_GXSC {
            SnapshotKind::Gxsc
        } else {
            return Err(SnapshotError::BadMagic);
        };
        let declared = rd_u64(h, 56);
        if fnv1a(&h[..56]) != declared {
            return Err(SnapshotError::HeaderChecksumMismatch);
        }
        let version = u32::from_le_bytes([h[4], h[5], h[6], h[7]]);
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let flags = rd_u64(h, 8);
        if flags & !FLAG_ID_MAP != 0 {
            return Err(SnapshotError::Malformed { what: "unknown header flag bits" });
        }
        Ok(SnapshotHeader {
            kind,
            version,
            flags,
            num_nodes: rd_u64(h, 16),
            num_edges: rd_u64(h, 24),
            fingerprint: rd_u64(h, 32),
            aux_a: rd_u64(h, 40),
            aux_b: rd_u64(h, 48),
        })
    }
}

fn rd_u64(bytes: &[u8], at: usize) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(w)
}

/// Reads and validates just the 64-byte header of a snapshot file —
/// O(1) in the graph size, no mapping.
pub fn read_header<P: AsRef<Path>>(path: P) -> Result<SnapshotHeader, SnapshotError> {
    let mut f = File::open(path)?;
    let mut h = [0u8; HEADER_LEN];
    let mut got = 0;
    while got < HEADER_LEN {
        match f.read(&mut h[got..]) {
            Ok(0) => {
                return Err(SnapshotError::Truncated {
                    expected: HEADER_LEN as u64,
                    found: got as u64,
                })
            }
            Ok(k) => got += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    SnapshotHeader::parse(&h)
}

// ---------------------------------------------------------------------------
// Layout arithmetic (overflow-checked: header words are attacker-ish input)
// ---------------------------------------------------------------------------

fn to_usize(x: u64, what: &'static str) -> Result<usize, SnapshotError> {
    usize::try_from(x).map_err(|_| SnapshotError::TooLarge { what })
}

fn ck_mul(a: usize, b: usize, what: &'static str) -> Result<usize, SnapshotError> {
    a.checked_mul(b).ok_or(SnapshotError::TooLarge { what })
}

fn ck_add(a: usize, b: usize, what: &'static str) -> Result<usize, SnapshotError> {
    a.checked_add(b).ok_or(SnapshotError::TooLarge { what })
}

/// Rounds `len` up to the next [`PAGE`] boundary.
fn page_align(len: usize, what: &'static str) -> Result<usize, SnapshotError> {
    ck_add(len, PAGE - 1, what).map(|x| x & !(PAGE - 1))
}

// ---------------------------------------------------------------------------
// LEB128 varints (GXSC payload encoding)
// ---------------------------------------------------------------------------

/// Appends `x` as an LEB128 varint (7 bits per byte, high bit =
/// continuation).
pub(crate) fn varint_encode(mut x: u64, out: &mut Vec<u8>) {
    loop {
        let b = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Encoded length of `x` in bytes, without materializing the bytes —
/// used by the GXSC writer's index-building dry pass.
pub(crate) fn varint_len(x: u64) -> usize {
    (64 - x.max(1).leading_zeros() as usize).div_ceil(7)
}

/// Decodes one LEB128 varint at `pos`. Returns `(value, next_pos)`, or
/// `None` on out-of-bounds or a >64-bit encoding.
pub(crate) fn varint_decode(bytes: &[u8], mut pos: usize) -> Option<(u64, usize)> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(pos)?;
        pos += 1;
        if shift >= 64 || (shift == 63 && b & 0x7e != 0) {
            return None;
        }
        x |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some((x, pos));
        }
        shift += 7;
    }
}

// ---------------------------------------------------------------------------
// Atomic streaming writer
// ---------------------------------------------------------------------------

/// Streaming counterpart of `gx_core::checkpoint::write_atomic` for
/// multi-gigabyte section writes: bytes land in a `.tmp` sibling through
/// a buffer, are fsynced, then renamed over the destination — a crash
/// leaves either the old snapshot or the new one, never a torn file.
struct AtomicFile {
    tmp: PathBuf,
    dest: PathBuf,
    w: BufWriter<File>,
    written: u64,
}

impl AtomicFile {
    fn create(path: &Path) -> Result<Self, SnapshotError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let f = File::create(&tmp)?;
        Ok(Self {
            tmp,
            dest: path.to_path_buf(),
            w: BufWriter::with_capacity(1 << 20, f),
            written: 0,
        })
    }

    fn write(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.w.write_all(bytes)?;
        self.written += bytes.len() as u64;
        Ok(())
    }

    /// Zero-pads to the next page boundary (section separator).
    fn pad_to_page(&mut self) -> Result<(), SnapshotError> {
        const ZEROS: [u8; 256] = [0; 256];
        let mut gap = (PAGE as u64 - self.written % PAGE as u64) % PAGE as u64;
        while gap > 0 {
            let k = gap.min(ZEROS.len() as u64) as usize;
            self.write(&ZEROS[..k])?;
            gap -= k as u64;
        }
        Ok(())
    }

    fn commit(self) -> Result<u64, SnapshotError> {
        let AtomicFile { tmp, dest, w, written } = self;
        let f = w.into_inner().map_err(|e| SnapshotError::Io(e.error().kind()))?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, &dest)?;
        // Rename durability needs the directory entry flushed too; where
        // opening a directory for sync is unsupported, the rename alone
        // is the best available ordering.
        if let Some(dir) = dest.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(written)
    }
}

/// Runs `build` against a fresh [`AtomicFile`], removing the temp file
/// on any error so failed conversions leave no debris.
fn write_snapshot(
    path: &Path,
    build: impl FnOnce(&mut AtomicFile) -> Result<(), SnapshotError>,
) -> Result<u64, SnapshotError> {
    let mut f = AtomicFile::create(path)?;
    let tmp = f.tmp.clone();
    let result = build(&mut f).and_then(|()| f.commit());
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

/// What a snapshot writer produced — the converter's report line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Format written.
    pub kind: SnapshotKind,
    /// Nodes stored.
    pub num_nodes: u64,
    /// Undirected edges stored.
    pub num_edges: u64,
    /// Fingerprint embedded in the header.
    pub fingerprint: u64,
    /// Total file size in bytes.
    pub bytes: u64,
}

fn degree_sum<G: GraphAccess + ?Sized>(g: &G) -> u64 {
    let n = g.num_nodes();
    let mut sum = 0u64;
    for v in 0..n {
        sum += g.degree(v as NodeId) as u64;
    }
    sum
}

fn check_ids(ids: Option<&[u64]>, n: usize) -> Result<u64, SnapshotError> {
    match ids {
        None => Ok(0),
        Some(ids) if ids.len() == n => Ok(FLAG_ID_MAP),
        Some(_) => Err(SnapshotError::Malformed { what: "id map length != num_nodes" }),
    }
}

fn write_ids(f: &mut AtomicFile, ids: Option<&[u64]>) -> Result<(), SnapshotError> {
    if let Some(ids) = ids {
        for &id in ids {
            f.write(&id.to_le_bytes())?;
        }
        f.pad_to_page()?;
    }
    Ok(())
}

/// Writes `g` as a raw-CSR **GXSN** snapshot at `path` (atomically).
///
/// `ids`, when given, must map every compact node id to its original
/// dataset id (`ids.len() == num_nodes`) and is stored as the trailing
/// id-map section. Three streaming passes over the graph (fingerprint,
/// degrees, adjacency); never materializes a section in RAM.
pub fn write_gxsn<G: GraphAccess + ?Sized, P: AsRef<Path>>(
    g: &G,
    ids: Option<&[u64]>,
    path: P,
) -> Result<SnapshotInfo, SnapshotError> {
    let n = g.num_nodes();
    let flags = check_ids(ids, n)?;
    let dsum = degree_sum(g);
    if !dsum.is_multiple_of(2) {
        return Err(SnapshotError::Malformed { what: "odd degree sum (graph not undirected)" });
    }
    let header = SnapshotHeader {
        kind: SnapshotKind::Gxsn,
        version: VERSION,
        flags,
        num_nodes: n as u64,
        num_edges: dsum / 2,
        fingerprint: graph_fingerprint(g),
        aux_a: 0,
        aux_b: 0,
    };
    let bytes = write_snapshot(path.as_ref(), |f| {
        f.write(&header.encode())?;
        f.pad_to_page()?;
        let mut running = 0u64;
        f.write(&running.to_le_bytes())?;
        for v in 0..n {
            running += g.degree(v as NodeId) as u64;
            f.write(&running.to_le_bytes())?;
        }
        f.pad_to_page()?;
        let mut err = Ok(());
        for v in 0..n {
            g.visit_neighbors(v as NodeId, &mut |nbrs| {
                if err.is_ok() {
                    err = write_u32s(f, nbrs);
                }
            });
            err?;
        }
        f.pad_to_page()?;
        write_ids(f, ids)
    })?;
    Ok(SnapshotInfo {
        kind: SnapshotKind::Gxsn,
        num_nodes: header.num_nodes,
        num_edges: header.num_edges,
        fingerprint: header.fingerprint,
        bytes,
    })
}

fn write_u32s(f: &mut AtomicFile, xs: &[u32]) -> Result<(), SnapshotError> {
    // Chunked little-endian serialization: one `write` per 4 KiB rather
    // than per entry keeps the BufWriter overhead off the 2E-entry loop.
    let mut buf = [0u8; 4096];
    for chunk in xs.chunks(buf.len() / 4) {
        for (i, &x) in chunk.iter().enumerate() {
            buf[i * 4..i * 4 + 4].copy_from_slice(&x.to_le_bytes());
        }
        f.write(&buf[..chunk.len() * 4])?;
    }
    Ok(())
}

/// Writes `g` as a delta-varint **GXSC** snapshot at `path`
/// (atomically), with the default block granularity [`GXSC_BLOCK`].
pub fn write_gxsc<G: GraphAccess + ?Sized, P: AsRef<Path>>(
    g: &G,
    ids: Option<&[u64]>,
    path: P,
) -> Result<SnapshotInfo, SnapshotError> {
    write_gxsc_with_block(g, ids, path, GXSC_BLOCK)
}

/// [`write_gxsc`] with an explicit block granularity (nodes per decode
/// block; must be ≥ 1). Smaller blocks decode faster per access but
/// grow the block index; 64 is a good default.
pub fn write_gxsc_with_block<G: GraphAccess + ?Sized, P: AsRef<Path>>(
    g: &G,
    ids: Option<&[u64]>,
    path: P,
    block: u64,
) -> Result<SnapshotInfo, SnapshotError> {
    if block == 0 {
        return Err(SnapshotError::Malformed { what: "block size must be >= 1" });
    }
    let n = g.num_nodes();
    let flags = check_ids(ids, n)?;
    let dsum = degree_sum(g);
    if !dsum.is_multiple_of(2) {
        return Err(SnapshotError::Malformed { what: "odd degree sum (graph not undirected)" });
    }
    let bsz = to_usize(block, "block size")?;
    let nb = n.div_ceil(bsz.max(1));
    // Dry pass: per-block encoded sizes -> the block index, without
    // buffering the data section.
    let mut index = Vec::with_capacity(nb + 1);
    index.push(0u64);
    let mut data_len = 0u64;
    for b in 0..nb {
        let lo = b * bsz;
        let hi = ((b + 1) * bsz).min(n);
        for v in lo..hi {
            g.visit_neighbors(v as NodeId, &mut |nbrs| {
                let mut prev = 0u64;
                for (i, &w) in nbrs.iter().enumerate() {
                    let w = u64::from(w);
                    data_len += if i == 0 { varint_len(w) } else { varint_len(w - prev) } as u64;
                    prev = w;
                }
            });
        }
        index.push(data_len);
    }
    let header = SnapshotHeader {
        kind: SnapshotKind::Gxsc,
        version: VERSION,
        flags,
        num_nodes: n as u64,
        num_edges: dsum / 2,
        fingerprint: graph_fingerprint(g),
        aux_a: block,
        aux_b: data_len,
    };
    let bytes = write_snapshot(path.as_ref(), |f| {
        f.write(&header.encode())?;
        f.pad_to_page()?;
        // Degrees: O(1) mapped degree lookups without touching a block.
        let mut dbuf = [0u8; 4096];
        let mut fill = 0usize;
        for v in 0..n {
            dbuf[fill..fill + 4].copy_from_slice(&(g.degree(v as NodeId) as u32).to_le_bytes());
            fill += 4;
            if fill == dbuf.len() {
                f.write(&dbuf)?;
                fill = 0;
            }
        }
        f.write(&dbuf[..fill])?;
        f.pad_to_page()?;
        for &off in &index {
            f.write(&off.to_le_bytes())?;
        }
        f.pad_to_page()?;
        // Encode pass: one reusable per-node scratch buffer.
        let mut scratch: Vec<u8> = Vec::with_capacity(4096);
        let mut err = Ok(());
        for v in 0..n {
            scratch.clear();
            g.visit_neighbors(v as NodeId, &mut |nbrs| {
                let mut prev = 0u64;
                for (i, &w) in nbrs.iter().enumerate() {
                    let w = u64::from(w);
                    varint_encode(if i == 0 { w } else { w - prev }, &mut scratch);
                    prev = w;
                }
            });
            if err.is_ok() {
                err = f.write(&scratch);
            }
            err?;
        }
        f.pad_to_page()?;
        write_ids(f, ids)
    })?;
    Ok(SnapshotInfo {
        kind: SnapshotKind::Gxsc,
        num_nodes: header.num_nodes,
        num_edges: header.num_edges,
        fingerprint: header.fingerprint,
        bytes,
    })
}

// ---------------------------------------------------------------------------
// Backing storage: a raw mmap on x86-64 Linux, an owned aligned buffer
// elsewhere (and on demand, for A/B benchmarking the page-cache path).
// ---------------------------------------------------------------------------

/// The bytes behind an open snapshot.
///
/// `Mapped` is the zero-copy path: the kernel's page cache *is* the CSR,
/// shared read-only across threads and processes. `Owned` reads the file
/// into an 8-byte-aligned private buffer — the portable fallback, and
/// the explicit `open_in_ram` baseline the bench compares against.
pub(crate) enum Backing {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Mapped {
        ptr: *const u8,
        len: usize,
    },
    Owned {
        buf: Vec<u64>,
        len: usize,
    },
}

// SAFETY: the mapping is created PROT_READ and never written through;
// the owned buffer is immutable after open (endianness normalization
// happens before the value is shared). All access is via `&self` shared
// reads of plain-old-data.
unsafe impl Send for Backing {}
// SAFETY: as above — read-only after construction, no interior
// mutability.
unsafe impl Sync for Backing {}

impl Backing {
    /// The whole file as bytes. Alignment: page for `Mapped`, 8 bytes
    /// for `Owned` — either satisfies every section (sections start on
    /// page boundaries relative to byte 0).
    pub(crate) fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, valid until `munmap` in `Drop`; the borrow is tied
            // to `&self`, which outlives no drop.
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Owned { buf, len } => {
                // SAFETY: the u64 buffer owns at least `len` initialized
                // bytes; reinterpreting u64 storage as bytes is always
                // valid.
                unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), *len) }
            }
        }
    }

    /// Maps `path` read-only (zero-copy) where supported, else falls
    /// back to [`Backing::read_owned`].
    pub(crate) fn map(path: &Path) -> Result<Self, SnapshotError> {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            use std::os::fd::AsRawFd;
            let f = File::open(path)?;
            let len = to_usize(f.metadata()?.len(), "file length")?;
            if len == 0 {
                return Err(SnapshotError::Truncated { expected: HEADER_LEN as u64, found: 0 });
            }
            const SYS_MMAP: usize = 9;
            const PROT_READ: usize = 1;
            const MAP_SHARED: usize = 1;
            let fd = f.as_raw_fd();
            let ret: usize;
            // SAFETY: a fresh PROT_READ/MAP_SHARED mapping of a file we
            // hold open; the kernel picks the address (addr = 0), so no
            // existing mapping is clobbered. The asm block declares every
            // register the `syscall` instruction clobbers (rax, rcx,
            // r11).
            unsafe {
                core::arch::asm!(
                    "syscall",
                    inlateout("rax") SYS_MMAP => ret,
                    in("rdi") 0usize,
                    in("rsi") len,
                    in("rdx") PROT_READ,
                    in("r10") MAP_SHARED,
                    in("r8") fd,
                    in("r9") 0usize,
                    lateout("rcx") _,
                    lateout("r11") _,
                    options(nostack),
                );
            }
            // Linux returns a small negative errno in the canonical
            // -4095..=-1 range on failure.
            if ret >= -4095isize as usize {
                return Err(SnapshotError::Io(std::io::ErrorKind::OutOfMemory));
            }
            // The fd can close now: the mapping keeps the inode pinned.
            drop(f);
            Ok(Backing::Mapped { ptr: ret as *const u8, len })
        }
        #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
        {
            Self::read_owned(path)
        }
    }

    /// Reads `path` fully into an owned 8-byte-aligned buffer.
    pub(crate) fn read_owned(path: &Path) -> Result<Self, SnapshotError> {
        let mut f = File::open(path)?;
        let len = to_usize(f.metadata()?.len(), "file length")?;
        let words = len.div_ceil(8);
        let mut buf = vec![0u64; words];
        {
            // SAFETY: the u64 buffer owns `words * 8 >= len` writable
            // bytes; filling them through a byte view is valid.
            let dst = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), len) };
            let mut got = 0usize;
            while got < len {
                match f.read(&mut dst[got..]) {
                    Ok(0) => break,
                    Ok(k) => got += k,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e.into()),
                }
            }
            if got < len {
                return Err(SnapshotError::Truncated { expected: len as u64, found: got as u64 });
            }
        }
        Ok(Backing::Owned { buf, len })
    }

    /// True when this is the zero-copy mapped variant.
    pub(crate) fn is_mapped(&self) -> bool {
        match self {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Backing::Mapped { .. } => true,
            Backing::Owned { .. } => false,
        }
    }

    /// Best-effort `madvise` over a byte subrange (no-op for owned
    /// backing on non-Linux; harmless anonymous-memory advice
    /// otherwise).
    pub(crate) fn advise(&self, start: usize, len: usize, advice: usize) {
        let bytes = self.bytes();
        let end = start.saturating_add(len).min(bytes.len());
        if start < end {
            crate::csr::madvise_raw(bytes[start..end].as_ptr(), end - start, advice);
        }
    }

    /// Normalizes a section of on-disk little-endian `u64`s to native
    /// order in place. A no-op on little-endian hosts and on mapped
    /// backing (mapping only exists on x86-64 Linux, which is LE).
    #[allow(unused_variables)]
    pub(crate) fn normalize_u64s(&mut self, start: usize, len_bytes: usize) {
        #[cfg(target_endian = "big")]
        if let Backing::Owned { buf, .. } = self {
            let lo = start / 8;
            let hi = (start + len_bytes) / 8;
            for w in &mut buf[lo..hi] {
                *w = u64::from_le(*w);
            }
        }
    }

    /// Normalizes a section of on-disk little-endian `u32`s to native
    /// order in place (see [`Backing::normalize_u64s`]).
    #[allow(unused_variables)]
    pub(crate) fn normalize_u32s(&mut self, start: usize, len_bytes: usize) {
        #[cfg(target_endian = "big")]
        if let Backing::Owned { buf, len } = self {
            // SAFETY: in-bounds u32 view over owned initialized storage.
            let words =
                unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u32>(), *len / 4) };
            let lo = start / 4;
            let hi = (start + len_bytes) / 4;
            for w in &mut words[lo..hi] {
                *w = u32::from_le(*w);
            }
        }
    }
}

impl Drop for Backing {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if let Backing::Mapped { ptr, len } = *self {
            const SYS_MUNMAP: usize = 11;
            let mut _ret: isize;
            // SAFETY: unmaps exactly the range this value owns; after
            // Drop no borrow of the bytes can exist (they were all tied
            // to `&self`). Clobbers declared as for every other raw
            // syscall in the crate.
            unsafe {
                core::arch::asm!(
                    "syscall",
                    inlateout("rax") SYS_MUNMAP as isize => _ret,
                    in("rdi") ptr as usize,
                    in("rsi") len,
                    lateout("rcx") _,
                    lateout("r11") _,
                    options(nostack),
                );
            }
        }
    }
}

/// Reinterprets an 8-aligned byte slice as native-order `u64`s.
/// Callers guarantee alignment and `len % 8 == 0` (both hold for every
/// page-aligned section; checked in debug builds).
pub(crate) fn as_u64s(bytes: &[u8]) -> &[u64] {
    debug_assert_eq!(bytes.as_ptr() as usize % 8, 0);
    debug_assert_eq!(bytes.len() % 8, 0);
    // SAFETY: alignment and length are section invariants established at
    // open (sections start on page boundaries of an 8-aligned backing);
    // u64 has no invalid bit patterns.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u64>(), bytes.len() / 8) }
}

/// Reinterprets a 4-aligned byte slice as native-order `u32`s (see
/// [`as_u64s`]).
pub(crate) fn as_u32s(bytes: &[u8]) -> &[u32] {
    debug_assert_eq!(bytes.as_ptr() as usize % 4, 0);
    debug_assert_eq!(bytes.len() % 4, 0);
    // SAFETY: as for `as_u64s`, with 4-byte alignment.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u32>(), bytes.len() / 4) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_and_lengths_agree() {
        let samples =
            [0u64, 1, 127, 128, 300, 16383, 16384, u32::MAX as u64, u64::MAX / 7, u64::MAX];
        let mut buf = Vec::new();
        for &x in &samples {
            buf.clear();
            varint_encode(x, &mut buf);
            assert_eq!(buf.len(), varint_len(x), "length mismatch for {x}");
            let (y, used) = varint_decode(&buf, 0).expect("decode");
            assert_eq!((y, used), (x, buf.len()), "roundtrip mismatch for {x}");
        }
    }

    #[test]
    fn varint_decode_rejects_truncation_and_overflow() {
        assert_eq!(varint_decode(&[], 0), None);
        assert_eq!(varint_decode(&[0x80], 0), None); // dangling continuation
        let too_wide = [0xffu8; 10]; // 70 bits, all continuations
        assert_eq!(varint_decode(&too_wide, 0), None);
        // Exactly 64 bits is fine: 9 continuation bytes + final 1 bit.
        let mut max = Vec::new();
        varint_encode(u64::MAX, &mut max);
        assert_eq!(varint_decode(&max, 0), Some((u64::MAX, max.len())));
    }

    #[test]
    fn header_roundtrips_and_checksum_catches_any_flip() {
        let h = SnapshotHeader {
            kind: SnapshotKind::Gxsn,
            version: VERSION,
            flags: FLAG_ID_MAP,
            num_nodes: 12345,
            num_edges: 67890,
            fingerprint: 0xdead_beef_cafe_f00d,
            aux_a: 0,
            aux_b: 0,
        };
        let enc = h.encode();
        assert_eq!(SnapshotHeader::parse(&enc), Ok(h));
        for byte in 0..HEADER_LEN {
            for bit in 0..8 {
                let mut bad = enc;
                bad[byte] ^= 1 << bit;
                assert!(
                    SnapshotHeader::parse(&bad).is_err(),
                    "flip at byte {byte} bit {bit} was accepted"
                );
            }
        }
    }

    #[test]
    fn header_rejects_unknown_version_and_flags() {
        let mut h = SnapshotHeader {
            kind: SnapshotKind::Gxsc,
            version: VERSION + 1,
            flags: 0,
            num_nodes: 1,
            num_edges: 0,
            fingerprint: 0,
            aux_a: 64,
            aux_b: 0,
        };
        assert_eq!(
            SnapshotHeader::parse(&h.encode()),
            Err(SnapshotError::UnsupportedVersion { found: VERSION + 1 })
        );
        h.version = VERSION;
        h.flags = 0x10;
        assert_eq!(
            SnapshotHeader::parse(&h.encode()),
            Err(SnapshotError::Malformed { what: "unknown header flag bits" })
        );
    }

    #[test]
    fn snapshot_error_display_is_informative() {
        let cases: [(SnapshotError, &str); 4] = [
            (SnapshotError::BadMagic, "bad magic"),
            (SnapshotError::Truncated { expected: 10, found: 3 }, "need 10 bytes, found 3"),
            (SnapshotError::Malformed { what: "x" }, "malformed"),
            (SnapshotError::Io(std::io::ErrorKind::NotFound), "I/O"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e} missing {needle:?}");
        }
    }
}
