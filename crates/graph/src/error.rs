//! Error type for graph construction and I/O.

use std::fmt;

/// Errors produced while building, loading or validating graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge endpoint is outside the declared node range.
    NodeOutOfRange {
        /// The offending endpoint.
        node: u64,
        /// Number of nodes the graph was declared with.
        num_nodes: usize,
    },
    /// The requested operation needs a non-empty graph.
    EmptyGraph,
    /// The graph is not connected but the operation requires it.
    NotConnected,
    /// A parameter is outside its valid domain.
    InvalidParameter(String),
    /// An I/O failure while reading or writing an edge list.
    Io(std::io::Error),
    /// A malformed line in an edge-list file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range for graph with {num_nodes} nodes")
            }
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            GraphError::NotConnected => write!(f, "operation requires a connected graph"),
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange { node: 9, num_nodes: 5 };
        assert!(e.to_string().contains("node 9"));
        assert!(e.to_string().contains("5 nodes"));
        assert!(GraphError::EmptyGraph.to_string().contains("non-empty"));
        assert!(GraphError::NotConnected.to_string().contains("connected"));
        let p = GraphError::Parse { line: 3, message: "bad token".into() };
        assert!(p.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: GraphError = io.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
