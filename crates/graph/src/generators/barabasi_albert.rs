//! Barabási–Albert preferential attachment.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::NodeId;
use rand::Rng;

/// Barabási–Albert graph: starts from a clique on `m + 1` nodes, then each
/// new node attaches to `m` distinct existing nodes chosen proportionally
/// to degree.
///
/// Degrees follow a power law with exponent ≈ 3; clustering is low —
/// the right analog for OSN crawls like Slashdot or Gowalla whose triangle
/// concentration is small (Table 5). Use
/// [`holme_kim`](super::holme_kim::holme_kim) when high clustering is
/// needed.
///
/// Preferential selection uses the standard repeated-endpoints trick: a
/// node's probability is proportional to how often it appears in the edge
/// endpoint list.
pub fn barabasi_albert<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m >= 1, "BA: m must be >= 1");
    assert!(n > m, "BA: need n > m (n={n}, m={m})");
    let mut b = GraphBuilder::with_edge_capacity(n, n * m);
    // Endpoint multiset: node v appears deg(v) times.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    // Seed clique on m+1 nodes.
    for u in 0..=(m as NodeId) {
        for v in (u + 1)..=(m as NodeId) {
            b.add_edge_unchecked(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut targets: Vec<NodeId> = Vec::with_capacity(m);
    for new in (m + 1)..n {
        targets.clear();
        // Sample m distinct targets by preferential attachment.
        while targets.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge_unchecked(new as NodeId, t);
            endpoints.push(new as NodeId);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    #[test]
    fn edge_count_is_clique_plus_m_per_node() {
        let mut rng = Pcg64::seed_from_u64(5);
        let n = 200;
        let m = 3;
        let g = barabasi_albert(n, m, &mut rng);
        let clique_edges = m * (m + 1) / 2;
        assert_eq!(g.num_edges(), clique_edges + (n - m - 1) * m);
        assert_eq!(g.num_nodes(), n);
    }

    #[test]
    fn is_connected_and_min_degree_m() {
        let mut rng = Pcg64::seed_from_u64(6);
        let g = barabasi_albert(300, 2, &mut rng);
        assert!(is_connected(&g));
        for v in 0..300u32 {
            assert!(g.degree(v) >= 2, "node {v} has degree {}", g.degree(v));
        }
    }

    #[test]
    fn has_heavy_tail() {
        let mut rng = Pcg64::seed_from_u64(7);
        let g = barabasi_albert(2000, 3, &mut rng);
        // hubs should be far above the mean degree (~6)
        assert!(g.max_degree() > 40, "max degree {} too small", g.max_degree());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = barabasi_albert(100, 2, &mut Pcg64::seed_from_u64(9));
        let b = barabasi_albert(100, 2, &mut Pcg64::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "n > m")]
    fn rejects_tiny_n() {
        let mut rng = Pcg64::seed_from_u64(1);
        let _ = barabasi_albert(3, 3, &mut rng);
    }
}
