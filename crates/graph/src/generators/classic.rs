//! Deterministic classic graph families.
//!
//! Tiny graphs with known graphlet counts are the backbone of the unit
//! tests (a clique's concentration vector is a point mass; a star has no
//! 4-paths; the lollipop is the canonical slow-mixing example for the
//! theory bench).

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::NodeId;

/// Complete graph K_n.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            b.add_edge_unchecked(u, v);
        }
    }
    b.build()
}

/// Path graph P_n (n nodes, n−1 edges).
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 1..n as NodeId {
        b.add_edge_unchecked(u - 1, u);
    }
    b.build()
}

/// Cycle graph C_n.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs n >= 3");
    let mut b = GraphBuilder::new(n);
    for u in 0..n as NodeId {
        b.add_edge_unchecked(u, (u + 1) % n as NodeId);
    }
    b.build()
}

/// Star S_{n−1}: node 0 is the hub.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star needs n >= 2");
    let mut b = GraphBuilder::new(n);
    for v in 1..n as NodeId {
        b.add_edge_unchecked(0, v);
    }
    b.build()
}

/// Complete bipartite graph K_{a,b} (first `a` nodes on the left side).
pub fn complete_bipartite(a: usize, b_size: usize) -> Graph {
    let mut b = GraphBuilder::new(a + b_size);
    for u in 0..a as NodeId {
        for v in 0..b_size as NodeId {
            b.add_edge_unchecked(u, a as NodeId + v);
        }
    }
    b.build()
}

/// Lollipop: K_m glued to a path of `tail` extra nodes. The classic
/// worst-case mixing example (the walk gets trapped in the clique).
pub fn lollipop(m: usize, tail: usize) -> Graph {
    assert!(m >= 3, "lollipop clique needs m >= 3");
    let n = m + tail;
    let mut b = GraphBuilder::new(n);
    for u in 0..m as NodeId {
        for v in (u + 1)..m as NodeId {
            b.add_edge_unchecked(u, v);
        }
    }
    for t in 0..tail {
        let prev = if t == 0 { (m - 1) as NodeId } else { (m + t - 1) as NodeId };
        b.add_edge_unchecked(prev, (m + t) as NodeId);
    }
    b.build()
}

/// Barbell: two K_m cliques joined by a path of `bridge` nodes.
pub fn barbell(m: usize, bridge: usize) -> Graph {
    assert!(m >= 3, "barbell cliques need m >= 3");
    let n = 2 * m + bridge;
    let mut b = GraphBuilder::new(n);
    let clique = |b: &mut GraphBuilder, base: usize| {
        for u in 0..m {
            for v in (u + 1)..m {
                b.add_edge_unchecked((base + u) as NodeId, (base + v) as NodeId);
            }
        }
    };
    clique(&mut b, 0);
    clique(&mut b, m + bridge);
    // chain: last node of clique 1 -> bridge nodes -> first node of clique 2
    let mut prev = (m - 1) as NodeId;
    for t in 0..bridge {
        let cur = (m + t) as NodeId;
        b.add_edge_unchecked(prev, cur);
        prev = cur;
    }
    b.add_edge_unchecked(prev, (m + bridge) as NodeId);
    b.build()
}

/// r × c grid graph.
pub fn grid(r: usize, c: usize) -> Graph {
    let mut b = GraphBuilder::new(r * c);
    let id = |i: usize, j: usize| (i * c + j) as NodeId;
    for i in 0..r {
        for j in 0..c {
            if j + 1 < c {
                b.add_edge_unchecked(id(i, j), id(i, j + 1));
            }
            if i + 1 < r {
                b.add_edge_unchecked(id(i, j), id(i + 1, j));
            }
        }
    }
    b.build()
}

/// The Petersen graph: 10 nodes, 15 edges, 3-regular, girth 5 — a
/// triangle-free stress case for classifiers.
pub fn petersen() -> Graph {
    let mut b = GraphBuilder::new(10);
    for u in 0..5u32 {
        b.add_edge_unchecked(u, (u + 1) % 5); // outer cycle
        b.add_edge_unchecked(u, u + 5); // spokes
        b.add_edge_unchecked(u + 5, (u + 2) % 5 + 5); // inner pentagram
    }
    b.build()
}

/// The 4-node graph of the paper's Figure 1 (nodes 1..4 relabeled 0..3):
/// edges {1-2, 1-3, 1-4, 2-3, 3-4}. Used throughout the paper's worked
/// examples; used throughout our tests for the same reason.
pub fn paper_figure1() -> Graph {
    Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)]).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;

    #[test]
    fn complete_graph_counts() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert!((0..6u32).all(|v| g.degree(v) == 5));
    }

    #[test]
    fn path_and_cycle() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert!((0..5u32).all(|v| cycle(5).degree(v) == 2));
        assert_eq!(path(0).num_nodes(), 0);
        assert_eq!(path(1).num_edges(), 0);
    }

    #[test]
    fn star_is_a_hub() {
        let g = star(7);
        assert_eq!(g.degree(0), 6);
        assert!((1..7u32).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn complete_bipartite_counts() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.num_edges(), 12);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 3));
    }

    #[test]
    fn lollipop_structure() {
        let g = lollipop(4, 3);
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 6 + 3);
        assert!(is_connected(&g));
        assert_eq!(g.degree(6), 1); // tail end
    }

    #[test]
    fn barbell_structure() {
        let g = barbell(3, 2);
        assert_eq!(g.num_nodes(), 8);
        // 3 + 3 clique edges + 3 chain edges
        assert_eq!(g.num_edges(), 9);
        assert!(is_connected(&g));
        let g0 = barbell(3, 0);
        assert_eq!(g0.num_edges(), 7);
        assert!(is_connected(&g0));
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(g.degree(0), 2); // corner
    }

    #[test]
    fn petersen_is_three_regular_triangle_free() {
        let g = petersen();
        assert_eq!(g.num_edges(), 15);
        assert!((0..10u32).all(|v| g.degree(v) == 3));
        // explicit triangle-free check
        let mut triangles = 0;
        for (u, v) in g.edges() {
            for &w in g.neighbors(u) {
                if w > v && g.has_edge(v, w) {
                    triangles += 1;
                }
            }
        }
        assert_eq!(triangles, 0);
    }

    #[test]
    fn paper_figure1_matches_text() {
        let g = paper_figure1();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 5);
        // Two triangles: {0,2,3} and {0,1,2} (paper: {1,3,4} and {1,2,3}).
        assert!(g.has_edge(0, 2) && g.has_edge(2, 3) && g.has_edge(0, 3));
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(0, 2));
        assert!(!g.has_edge(1, 3));
    }
}
