//! Erdős–Rényi random graphs, both G(n, m) and G(n, p) flavours.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::NodeId;
use rand::Rng;
use std::collections::HashSet;

/// G(n, m): exactly `m` distinct edges chosen uniformly among all node
/// pairs.
///
/// Uses rejection sampling, which is near-optimal while
/// `m ≪ n(n−1)/2`; panics if `m` exceeds the number of possible edges.
pub fn erdos_renyi_gnm<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    let possible = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= possible, "G(n,m): m={m} exceeds {possible} possible edges");
    let mut chosen: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_edge_capacity(n, m);
    while chosen.len() < m {
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            b.add_edge_unchecked(key.0, key.1);
        }
    }
    b.build()
}

/// G(n, p): every pair independently with probability `p`.
///
/// Implemented with geometric skipping over the flattened pair index, so
/// the cost is O(expected edges) rather than O(n²).
pub fn erdos_renyi_gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "G(n,p): p={p} out of [0,1]");
    let mut b = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return b.build();
    }
    if p == 1.0 {
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                b.add_edge_unchecked(u, v);
            }
        }
        return b.build();
    }
    // Iterate pairs (u, v), u < v, in lexicographic order; skip ahead by
    // Geometric(p) between successes.
    let log_q = (1.0 - p).ln();
    let total = n as u64 * (n as u64 - 1) / 2;
    let mut idx: u64 = 0;
    loop {
        let r: f64 = rng.gen::<f64>();
        // number of failures before next success
        let skip = ((1.0 - r).ln() / log_q).floor() as u64;
        idx = idx.saturating_add(skip);
        if idx >= total {
            break;
        }
        let (u, v) = unflatten_pair(idx, n as u64);
        b.add_edge_unchecked(u as NodeId, v as NodeId);
        idx += 1;
        if idx >= total {
            break;
        }
    }
    b.build()
}

/// Maps a flat index in `0..n(n-1)/2` to the pair (u, v), u < v, in
/// lexicographic order.
fn unflatten_pair(idx: u64, n: u64) -> (u64, u64) {
    // Row u owns (n-1-u) pairs. Solve for the row by the quadratic formula
    // then fix up boundary cases caused by floating point.
    let total_before = |u: u64| u * (2 * n - u - 1) / 2;
    let mut u = {
        let fi = idx as f64;
        let fn_ = n as f64;
        let disc = (2.0 * fn_ - 1.0) * (2.0 * fn_ - 1.0) - 8.0 * fi;
        (((2.0 * fn_ - 1.0) - disc.max(0.0).sqrt()) / 2.0).floor() as u64
    };
    while u + 1 < n && total_before(u + 1) <= idx {
        u += 1;
    }
    while u > 0 && total_before(u) > idx {
        u -= 1;
    }
    let v = u + 1 + (idx - total_before(u));
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    #[test]
    fn gnm_has_exactly_m_edges() {
        let mut rng = Pcg64::seed_from_u64(7);
        let g = erdos_renyi_gnm(100, 250, &mut rng);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 250);
    }

    #[test]
    fn gnm_is_deterministic_per_seed() {
        let a = erdos_renyi_gnm(50, 100, &mut Pcg64::seed_from_u64(1));
        let b = erdos_renyi_gnm(50, 100, &mut Pcg64::seed_from_u64(1));
        let c = erdos_renyi_gnm(50, 100, &mut Pcg64::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnm_complete_graph_boundary() {
        let mut rng = Pcg64::seed_from_u64(3);
        let g = erdos_renyi_gnm(6, 15, &mut rng);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn gnm_rejects_impossible_m() {
        let mut rng = Pcg64::seed_from_u64(3);
        let _ = erdos_renyi_gnm(4, 7, &mut rng);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = Pcg64::seed_from_u64(11);
        assert_eq!(erdos_renyi_gnp(40, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(erdos_renyi_gnp(10, 1.0, &mut rng).num_edges(), 45);
        assert_eq!(erdos_renyi_gnp(1, 0.5, &mut rng).num_edges(), 0);
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let mut rng = Pcg64::seed_from_u64(13);
        let n = 400;
        let p = 0.05;
        let g = erdos_renyi_gnp(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let sd = (expected * (1.0 - p)).sqrt();
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 6.0 * sd,
            "edges {got} too far from expectation {expected}"
        );
    }

    #[test]
    fn unflatten_pair_roundtrip() {
        let n = 13u64;
        let mut idx = 0u64;
        for u in 0..n {
            for v in (u + 1)..n {
                assert_eq!(unflatten_pair(idx, n), (u, v), "idx={idx}");
                idx += 1;
            }
        }
    }
}
