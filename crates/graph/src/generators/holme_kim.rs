//! Holme–Kim preferential attachment with tunable clustering.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::NodeId;
use rand::Rng;
use std::collections::HashSet;

/// Holme–Kim model: Barabási–Albert growth where, after each preferential
/// attachment to a node `t`, a *triad formation* step follows with
/// probability `p_triad` — the new node also links to a random neighbor of
/// `t`, closing a triangle.
///
/// This produces power-law degrees **and** tunable clustering, which makes
/// it the analog for triangle-rich OSNs (Facebook/Flickr/BrightKite in
/// Table 5 have triangle concentrations around 4–5%; BA alone is an order
/// of magnitude lower at the same density).
pub fn holme_kim<R: Rng>(n: usize, m: usize, p_triad: f64, rng: &mut R) -> Graph {
    assert!(m >= 1, "HK: m must be >= 1");
    assert!(n > m, "HK: need n > m (n={n}, m={m})");
    assert!((0.0..=1.0).contains(&p_triad), "HK: p_triad out of [0,1]");
    let mut b = GraphBuilder::with_edge_capacity(n, n * m);
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    // adjacency known so far, needed for triad formation
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let link = |b: &mut GraphBuilder,
                endpoints: &mut Vec<NodeId>,
                adj: &mut Vec<Vec<NodeId>>,
                u: NodeId,
                v: NodeId| {
        b.add_edge_unchecked(u, v);
        endpoints.push(u);
        endpoints.push(v);
        adj[u as usize].push(v);
        adj[v as usize].push(u);
    };
    for u in 0..=(m as NodeId) {
        for v in (u + 1)..=(m as NodeId) {
            link(&mut b, &mut endpoints, &mut adj, u, v);
        }
    }
    let mut picked: HashSet<NodeId> = HashSet::with_capacity(m * 2);
    for new in (m + 1)..n {
        let new = new as NodeId;
        picked.clear();
        let mut last_target: Option<NodeId> = None;
        while picked.len() < m {
            // Triad step: connect to a random neighbor of the previous
            // target if possible; otherwise fall back to preferential
            // attachment (standard Holme–Kim fallback).
            let candidate = match last_target {
                Some(t) if rng.gen_bool(p_triad) => {
                    let ns = &adj[t as usize];
                    let w = ns[rng.gen_range(0..ns.len())];
                    if w != new && !picked.contains(&w) {
                        Some(w)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            let target = match candidate {
                Some(w) => w,
                None => {
                    let t = endpoints[rng.gen_range(0..endpoints.len())];
                    if t == new || picked.contains(&t) {
                        continue;
                    }
                    t
                }
            };
            picked.insert(target);
            link(&mut b, &mut endpoints, &mut adj, new, target);
            last_target = Some(target);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    /// Count triangles naively (test-only helper).
    fn triangles(g: &Graph) -> usize {
        let mut t = 0;
        for (u, v) in g.edges() {
            for &w in g.neighbors(u) {
                if w > v && g.has_edge(v, w) {
                    t += 1;
                }
            }
        }
        t
    }

    #[test]
    fn edge_count_matches_ba_growth() {
        let mut rng = Pcg64::seed_from_u64(21);
        let n = 300;
        let m = 3;
        let g = holme_kim(n, m, 0.5, &mut rng);
        assert_eq!(g.num_edges(), m * (m + 1) / 2 + (n - m - 1) * m);
        assert!(is_connected(&g));
    }

    #[test]
    fn triad_formation_raises_triangle_count() {
        let lo = holme_kim(1500, 3, 0.0, &mut Pcg64::seed_from_u64(2));
        let hi = holme_kim(1500, 3, 0.9, &mut Pcg64::seed_from_u64(2));
        let (tl, th) = (triangles(&lo), triangles(&hi));
        assert!(
            th as f64 > 2.0 * tl as f64,
            "expected p_triad=0.9 to beat p=0 clearly: {th} vs {tl}"
        );
    }

    #[test]
    fn p_zero_behaves_like_ba() {
        let mut rng = Pcg64::seed_from_u64(3);
        let g = holme_kim(500, 2, 0.0, &mut rng);
        for v in 0..500u32 {
            assert!(g.degree(v) >= 2);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = holme_kim(200, 2, 0.4, &mut Pcg64::seed_from_u64(77));
        let b = holme_kim(200, 2, 0.4, &mut Pcg64::seed_from_u64(77));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "p_triad")]
    fn rejects_bad_probability() {
        let mut rng = Pcg64::seed_from_u64(1);
        let _ = holme_kim(10, 2, 1.5, &mut rng);
    }
}
