//! Seeded synthetic graph generators.
//!
//! These are the substitutes for the paper's evaluation datasets (SNAP and
//! KONECT crawls that we neither redistribute nor fit on a laptop — see
//! `DESIGN.md` §3). The families are chosen so the *axes that drive the
//! estimator's behaviour* can be dialed in:
//!
//! * heavy-tailed degrees → [`mod@barabasi_albert`], [`mod@holme_kim`];
//! * tunable triangle density (graphlet concentration) → [`mod@holme_kim`]
//!   (triad-formation probability), [`mod@watts_strogatz`];
//! * low-clustering nulls → [`erdos_renyi`];
//! * community structure → [`sbm`];
//! * worst/best-case mixing → [`classic`] (lollipop vs complete).
//!
//! All generators take an explicit `Rng` so dataset construction is fully
//! deterministic given a seed.

pub mod barabasi_albert;
pub mod classic;
pub mod erdos_renyi;
pub mod holme_kim;
pub mod sbm;
pub mod watts_strogatz;

pub use barabasi_albert::barabasi_albert;
pub use erdos_renyi::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use holme_kim::holme_kim;
pub use sbm::stochastic_block_model;
pub use watts_strogatz::watts_strogatz;
