//! Stochastic block model.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::NodeId;
use rand::Rng;

/// Stochastic block model: nodes are partitioned into blocks of the given
/// sizes; pairs within a block connect with probability `p_in`, pairs in
/// different blocks with `p_out`.
///
/// Used to emulate community structure (the paper's §2.1 discussion of
/// community-related graphlets in Friendster) and to create slow-mixing
/// workloads for the theory bench: `p_out ≪ p_in` creates a bottleneck the
/// Chernoff bound's mixing-time term must pay for.
pub fn stochastic_block_model<R: Rng>(
    sizes: &[usize],
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> Graph {
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let n: usize = sizes.iter().sum();
    let mut block_of = Vec::with_capacity(n);
    for (b, &s) in sizes.iter().enumerate() {
        block_of.extend(std::iter::repeat_n(b, s));
    }
    let mut builder = GraphBuilder::new(n);
    // Bernoulli per pair with geometric skipping per probability class would
    // complicate the two-probability split; at registry scale (n ≤ ~2000 for
    // SBM datasets) the O(n²) loop below is < 10ms and far simpler.
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if block_of[u] == block_of[v] { p_in } else { p_out };
            if p > 0.0 && rng.gen_bool(p) {
                builder.add_edge_unchecked(u as NodeId, v as NodeId);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    #[test]
    fn block_structure_dominates() {
        let mut rng = Pcg64::seed_from_u64(10);
        let g = stochastic_block_model(&[60, 60], 0.3, 0.01, &mut rng);
        let mut within = 0usize;
        let mut across = 0usize;
        for (u, v) in g.edges() {
            if (u < 60) == (v < 60) {
                within += 1;
            } else {
                across += 1;
            }
        }
        assert!(within > 8 * across, "within={within} across={across}");
    }

    #[test]
    fn degenerate_probabilities() {
        let mut rng = Pcg64::seed_from_u64(1);
        let g = stochastic_block_model(&[10, 10], 0.0, 0.0, &mut rng);
        assert_eq!(g.num_edges(), 0);
        let g = stochastic_block_model(&[5], 1.0, 0.0, &mut rng);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn total_nodes_is_sum_of_sizes() {
        let mut rng = Pcg64::seed_from_u64(2);
        let g = stochastic_block_model(&[7, 11, 3], 0.2, 0.05, &mut rng);
        assert_eq!(g.num_nodes(), 21);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = stochastic_block_model(&[30, 30], 0.2, 0.02, &mut Pcg64::seed_from_u64(5));
        let b = stochastic_block_model(&[30, 30], 0.2, 0.02, &mut Pcg64::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
