//! Watts–Strogatz small-world graphs.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::NodeId;
use rand::Rng;
use std::collections::HashSet;

/// Watts–Strogatz: a ring lattice where each node connects to its `k`
/// nearest neighbors (`k` even), with each edge rewired to a uniform random
/// endpoint with probability `beta`.
///
/// Bounded maximum degree and high clustering make this the family of
/// choice for the *small* ground-truth datasets: 5-node exact enumeration
/// (needed for Figure 4c / Table 5's c⁵₂₁ column) stays cheap because there
/// are no hubs.
pub fn watts_strogatz<R: Rng>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    assert!(k >= 2 && k.is_multiple_of(2), "WS: k must be even and >= 2");
    assert!(n > k, "WS: need n > k");
    assert!((0.0..=1.0).contains(&beta), "WS: beta out of [0,1]");
    let half = k / 2;
    let mut present: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(n * half * 2);
    let norm = |u: NodeId, v: NodeId| if u < v { (u, v) } else { (v, u) };
    // ring lattice
    for u in 0..n {
        for j in 1..=half {
            let v = (u + j) % n;
            present.insert(norm(u as NodeId, v as NodeId));
        }
    }
    // rewiring pass, in deterministic lattice order
    for u in 0..n {
        for j in 1..=half {
            let v = ((u + j) % n) as NodeId;
            let u = u as NodeId;
            if !rng.gen_bool(beta) {
                continue;
            }
            let key = norm(u, v);
            if !present.contains(&key) {
                continue; // already rewired away by an earlier step
            }
            // pick a new endpoint avoiding self-loops and duplicates
            let mut attempts = 0;
            loop {
                let w = rng.gen_range(0..n as NodeId);
                attempts += 1;
                if attempts > 4 * n {
                    break; // node saturated; keep original edge
                }
                if w == u || present.contains(&norm(u, w)) {
                    continue;
                }
                present.remove(&key);
                present.insert(norm(u, w));
                break;
            }
        }
    }
    let mut b = GraphBuilder::with_edge_capacity(n, present.len());
    for (u, v) in present {
        b.add_edge_unchecked(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    #[test]
    fn beta_zero_is_exact_ring_lattice() {
        let mut rng = Pcg64::seed_from_u64(1);
        let g = watts_strogatz(20, 4, 0.0, &mut rng);
        assert_eq!(g.num_edges(), 20 * 2);
        for v in 0..20u32 {
            assert_eq!(g.degree(v), 4);
        }
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(0, 19));
        assert!(g.has_edge(0, 18));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn edge_count_preserved_under_rewiring() {
        let mut rng = Pcg64::seed_from_u64(5);
        let g = watts_strogatz(200, 6, 0.3, &mut rng);
        assert_eq!(g.num_edges(), 200 * 3);
    }

    #[test]
    fn rewiring_shrinks_diameter() {
        use crate::connectivity::bfs_distances;
        let ring = watts_strogatz(400, 4, 0.0, &mut Pcg64::seed_from_u64(2));
        let sw = watts_strogatz(400, 4, 0.2, &mut Pcg64::seed_from_u64(2));
        let ecc =
            |g: &Graph| bfs_distances(g, 0).into_iter().filter(|&d| d != usize::MAX).max().unwrap();
        assert!(ecc(&sw) < ecc(&ring), "small world should have smaller eccentricity");
    }

    #[test]
    fn degrees_stay_bounded() {
        let mut rng = Pcg64::seed_from_u64(9);
        let g = watts_strogatz(500, 8, 0.1, &mut rng);
        // no hubs: max degree stays near k
        assert!(g.max_degree() <= 24, "max degree {}", g.max_degree());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = watts_strogatz(100, 4, 0.25, &mut Pcg64::seed_from_u64(42));
        let b = watts_strogatz(100, 4, 0.25, &mut Pcg64::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_k() {
        let mut rng = Pcg64::seed_from_u64(1);
        let _ = watts_strogatz(10, 3, 0.1, &mut rng);
    }
}
