//! Edge-list I/O in the SNAP/KONECT plain-text convention.
//!
//! Format: one `u v` pair per line, whitespace separated; lines starting
//! with `#` or `%` are comments; duplicate edges, reversed duplicates and
//! self-loops are tolerated (and removed on build), since real snapshots
//! contain all three.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::error::GraphError;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads an edge list from any reader. Node ids must be non-negative
/// integers; the node count is `max id + 1`.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let mut edges: Vec<(u64, u64)> = Vec::new();
    let mut max_id: u64 = 0;
    let mut r = BufReader::new(reader);
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |tok: Option<&str>, lineno: usize| -> Result<u64, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: lineno,
                message: "expected two node ids".into(),
            })?
            .parse::<u64>()
            .map_err(|e| GraphError::Parse { line: lineno, message: e.to_string() })
        };
        let u = parse(it.next(), lineno)?;
        let v = parse(it.next(), lineno)?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = if edges.is_empty() { 0 } else { max_id as usize + 1 };
    if n > u32::MAX as usize {
        return Err(GraphError::NodeOutOfRange { node: max_id, num_nodes: u32::MAX as usize });
    }
    let mut b = GraphBuilder::with_edge_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u as u32, v as u32)?;
    }
    Ok(b.build())
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file(path: impl AsRef<Path>) -> Result<Graph, GraphError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes each edge once as `u v` with `u < v`, preceded by a summary
/// comment header.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# nodes {} edges {}", g.num_nodes(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes an edge list to a file path.
pub fn write_edge_list_file(g: &Graph, path: impl AsRef<Path>) -> Result<(), GraphError> {
    write_edge_list(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic;

    #[test]
    fn roundtrip_preserves_graph() {
        let g = classic::petersen();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn comments_blank_lines_and_duplicates_are_tolerated() {
        let text = "# comment\n% another\n\n0 1\n1 0\n1 2\n2 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_lines_report_position() {
        let err = read_edge_list("0 1\nnot numbers\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        let err = read_edge_list("0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    fn file_roundtrip() {
        let g = classic::grid(3, 3);
        let dir = std::env::temp_dir().join("gx_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.txt");
        write_edge_list_file(&g, &path).unwrap();
        let back = read_edge_list_file(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }
}
