//! Edge-list I/O in the SNAP/KONECT plain-text convention.
//!
//! Format: one `u v` pair per line, whitespace separated; lines starting
//! with `#` or `%` are comments; duplicate edges, reversed duplicates and
//! self-loops are tolerated (and removed on build), since real snapshots
//! contain all three.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::error::GraphError;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Streams the raw `u v` pairs of an edge list to a callback, one line
/// at a time, without materializing anything: the shared front half of
/// every reader in this module, and what lets the two-pass compact file
/// loader convert edge lists larger than RAM.
fn for_each_edge<R: Read>(
    reader: R,
    mut f: impl FnMut(u64, u64) -> Result<(), GraphError>,
) -> Result<(), GraphError> {
    let mut r = BufReader::new(reader);
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Ok(());
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |tok: Option<&str>, lineno: usize| -> Result<u64, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: lineno,
                message: "expected two node ids".into(),
            })?
            .parse::<u64>()
            .map_err(|e| GraphError::Parse { line: lineno, message: e.to_string() })
        };
        let u = parse(it.next(), lineno)?;
        let v = parse(it.next(), lineno)?;
        f(u, v)?;
    }
}

/// Parses the raw `u v` pairs of an edge list into a vector: the
/// buffered front half of [`read_edge_list`] and
/// [`read_edge_list_compact`]. Returns the edges plus the maximum node
/// id seen (0 for an empty list).
fn parse_edges<R: Read>(reader: R) -> Result<(Vec<(u64, u64)>, u64), GraphError> {
    let mut edges: Vec<(u64, u64)> = Vec::new();
    let mut max_id: u64 = 0;
    for_each_edge(reader, |u, v| {
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
        Ok(())
    })?;
    Ok((edges, max_id))
}

/// Reads an edge list from any reader. Node ids must be non-negative
/// integers; the node count is `max id + 1`.
///
/// **Default id semantics:** ids are taken as dense — the graph is
/// allocated over `0..=max id`, and ids that never appear become
/// isolated nodes. That matches SNAP-style files with (near-)contiguous
/// ids, but is a footgun for KONECT-style files with sparse ids: one
/// stray id like 10⁹ allocates a billion-node graph. For such files use
/// [`read_edge_list_compact`], which remaps ids to `0..n` and returns
/// the remap table.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let (edges, max_id) = parse_edges(reader)?;
    let n = if edges.is_empty() { 0 } else { max_id as usize + 1 };
    if n > u32::MAX as usize {
        return Err(GraphError::NodeOutOfRange { node: max_id, num_nodes: u32::MAX as usize });
    }
    let mut b = GraphBuilder::with_edge_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u as u32, v as u32)?;
    }
    Ok(b.build())
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file(path: impl AsRef<Path>) -> Result<Graph, GraphError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// The id remap produced by [`read_edge_list_compact`]: compact id `c`
/// (a node of the returned graph) corresponds to original file id
/// `originals()[c]`. Compact ids follow the sorted order of the original
/// ids, so the mapping is deterministic for a given edge set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeIdMap {
    originals: Vec<u64>,
}

impl NodeIdMap {
    /// Number of distinct original ids (the compact graph's node count).
    pub fn len(&self) -> usize {
        self.originals.len()
    }

    /// True when the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.originals.is_empty()
    }

    /// Original file id of compact node `compact`.
    pub fn original(&self, compact: u32) -> u64 {
        self.originals[compact as usize]
    }

    /// Compact id of an original file id, or `None` if it never appeared.
    pub fn compact(&self, original: u64) -> Option<u32> {
        self.originals.binary_search(&original).ok().map(|i| i as u32)
    }

    /// All original ids, indexed by compact id (sorted ascending).
    pub fn originals(&self) -> &[u64] {
        &self.originals
    }
}

/// Reads an edge list with **id compaction**: the distinct original ids
/// are sorted, deduplicated, and remapped to `0..n`, so memory scales
/// with the number of ids actually present rather than with their
/// magnitude. This is the right entry point for KONECT-style snapshots
/// whose ids are sparse (e.g. a single id near 10⁹ — which would make
/// [`read_edge_list`] allocate a billion-node graph). Returns the graph
/// together with the [`NodeIdMap`] for translating results back to
/// original ids.
pub fn read_edge_list_compact<R: Read>(reader: R) -> Result<(Graph, NodeIdMap), GraphError> {
    let (edges, _) = parse_edges(reader)?;
    let mut ids: Vec<u64> = Vec::with_capacity(edges.len() * 2);
    for &(u, v) in &edges {
        ids.push(u);
        ids.push(v);
    }
    ids.sort_unstable();
    ids.dedup();
    if ids.len() > u32::MAX as usize {
        return Err(GraphError::NodeOutOfRange {
            node: *ids.last().expect("non-empty id set"),
            num_nodes: u32::MAX as usize,
        });
    }
    let map = NodeIdMap { originals: ids };
    let mut b = GraphBuilder::with_edge_capacity(map.len(), edges.len());
    for (u, v) in edges {
        let cu = map.compact(u).expect("endpoint is in the id set");
        let cv = map.compact(v).expect("endpoint is in the id set");
        b.add_edge(cu, cv)?;
    }
    Ok((b.build(), map))
}

/// Reads an edge list file with id compaction — **streaming**, in two
/// passes, so peak memory is the finished CSR plus an id→count table
/// (O(distinct ids)), never a buffered copy of the edge list. This is
/// what lets `gx-snapshot` convert KONECT dumps larger than RAM; the
/// reader-based [`read_edge_list_compact`] necessarily buffers (a
/// generic `Read` cannot be rewound) and should be reserved for
/// in-memory or pipe inputs.
///
/// Pass 1 counts each id's non-self-loop incidences (duplicates
/// included); the sorted distinct ids become the [`NodeIdMap`] and the
/// counts become CSR offsets. Pass 2 re-reads the file and drops every
/// edge directly into its final slot; per-node sort + dedup then
/// compacts the lists in place. The result is bit-identical to the
/// buffered path (same sort-dedup-drop-loops semantics as
/// [`GraphBuilder`]). If the file changes between the passes the
/// mismatch is detected and reported as [`GraphError::Parse`] rather
/// than producing a silently wrong graph.
pub fn read_edge_list_compact_file(
    path: impl AsRef<Path>,
) -> Result<(Graph, NodeIdMap), GraphError> {
    let path = path.as_ref();
    let drift = || GraphError::Parse {
        line: 0,
        message: "edge list changed between the two streaming passes".into(),
    };

    // Pass 1: id -> incidence count (self-loops register the id but add
    // no adjacency slot, matching the builder's drop-loops semantics).
    let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for_each_edge(std::fs::File::open(path)?, |u, v| {
        let inc = u64::from(u != v);
        *counts.entry(u).or_insert(0) += inc;
        *counts.entry(v).or_insert(0) += inc;
        Ok(())
    })?;
    let mut originals: Vec<u64> = counts.keys().copied().collect();
    originals.sort_unstable();
    if originals.len() > u32::MAX as usize {
        return Err(GraphError::NodeOutOfRange {
            node: originals.last().copied().unwrap_or(0),
            num_nodes: u32::MAX as usize,
        });
    }
    let n = originals.len();
    let mut offsets = vec![0usize; n + 1];
    for (c, &id) in originals.iter().enumerate() {
        offsets[c + 1] = offsets[c] + counts[&id] as usize;
    }
    drop(counts);
    let map = NodeIdMap { originals };
    let mut adjacency = vec![0 as crate::NodeId; offsets[n]];
    // Same pre-fill hugepage advice as the builder: the fill below is
    // random-access across the whole array.
    crate::csr::advise_hugepages(offsets.as_ptr().cast(), offsets.len() * 8);
    crate::csr::advise_hugepages(adjacency.as_ptr().cast(), adjacency.len() * 4);

    // Pass 2: drop each endpoint into its node's cursor slot.
    let mut cursor: Vec<usize> = offsets[..n].to_vec();
    for_each_edge(std::fs::File::open(path)?, |u, v| {
        if u == v {
            return Ok(());
        }
        let (cu, cv) = match (map.compact(u), map.compact(v)) {
            (Some(cu), Some(cv)) => (cu, cv),
            _ => return Err(drift()),
        };
        let (iu, iv) = (cu as usize, cv as usize);
        if cursor[iu] >= offsets[iu + 1] || cursor[iv] >= offsets[iv + 1] {
            return Err(drift());
        }
        adjacency[cursor[iu]] = cv;
        cursor[iu] += 1;
        adjacency[cursor[iv]] = cu;
        cursor[iv] += 1;
        Ok(())
    })?;
    if (0..n).any(|c| cursor[c] != offsets[c + 1]) {
        return Err(drift());
    }
    drop(cursor);

    // Per-node sort + dedup, compacting leftwards in place (the write
    // cursor never passes the read cursor).
    let mut write = 0usize;
    let mut start = 0usize;
    for c in 0..n {
        let end = offsets[c + 1];
        adjacency[start..end].sort_unstable();
        let node_start = write;
        for i in start..end {
            let w = adjacency[i];
            if write == node_start || adjacency[write - 1] != w {
                adjacency[write] = w;
                write += 1;
            }
        }
        start = end;
        offsets[c + 1] = write;
    }
    adjacency.truncate(write);
    Ok((Graph::from_csr_parts(offsets, adjacency), map))
}

/// Writes each edge once as `u v` with `u < v`, preceded by a summary
/// comment header.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# nodes {} edges {}", g.num_nodes(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes an edge list to a file path.
pub fn write_edge_list_file(g: &Graph, path: impl AsRef<Path>) -> Result<(), GraphError> {
    write_edge_list(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic;

    #[test]
    fn roundtrip_preserves_graph() {
        let g = classic::petersen();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn comments_blank_lines_and_duplicates_are_tolerated() {
        let text = "# comment\n% another\n\n0 1\n1 0\n1 2\n2 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_lines_report_position() {
        let err = read_edge_list("0 1\nnot numbers\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        let err = read_edge_list("0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    fn compact_remaps_sparse_konect_style_ids() {
        // One KONECT-style id near 10⁹: the dense reader would allocate a
        // billion-node graph; the compact reader allocates three nodes.
        let text = "# sparse ids\n1000000000 7\n7 42\n";
        let (g, map) = read_edge_list_compact(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(map.len(), 3);
        assert_eq!(map.originals(), &[7, 42, 1_000_000_000]);
        // compact ids follow sorted original order
        assert_eq!(map.compact(7), Some(0));
        assert_eq!(map.compact(42), Some(1));
        assert_eq!(map.compact(1_000_000_000), Some(2));
        assert_eq!(map.compact(8), None);
        for c in 0..3u32 {
            assert_eq!(map.compact(map.original(c)), Some(c));
        }
        // edges survive the remap: 10⁹–7 and 7–42
        assert!(g.has_edge(map.compact(1_000_000_000).unwrap(), map.compact(7).unwrap()));
        assert!(g.has_edge(map.compact(7).unwrap(), map.compact(42).unwrap()));
        assert!(!g.has_edge(map.compact(1_000_000_000).unwrap(), map.compact(42).unwrap()));
    }

    #[test]
    fn compact_on_contiguous_ids_is_the_identity_remap() {
        let g = classic::petersen();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (back, map) = read_edge_list_compact(&buf[..]).unwrap();
        assert_eq!(g, back);
        assert_eq!(map.originals(), (0..10u64).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn compact_tolerates_comments_duplicates_and_empty_input() {
        let (g, map) = read_edge_list_compact("".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert!(map.is_empty());
        let text = "# c\n% c\n\n5 9\n9 5\n9 9\n";
        let (g, map) = read_edge_list_compact(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1); // dup + self-loop dropped at build
        assert_eq!(map.originals(), &[5, 9]);
    }

    #[test]
    fn streaming_file_loader_matches_buffered_reader_exactly() {
        // Sparse ids, duplicate edges (both orders), self-loops, a
        // self-loop-only id (must become an isolated node), comments.
        let text = "# messy KONECT-style dump\n\
                    1000000000 7\n\
                    7 1000000000\n\
                    7 42\n\
                    42 7\n\
                    42 42\n\
                    999 999\n\
                    % trailing comment\n\
                    7 13\n";
        let (buffered, buffered_map) = read_edge_list_compact(text.as_bytes()).unwrap();
        let dir = std::env::temp_dir().join("gx_graph_io_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("messy.txt");
        std::fs::write(&path, text).unwrap();
        let (streamed, streamed_map) = read_edge_list_compact_file(&path).unwrap();
        assert_eq!(streamed, buffered);
        assert_eq!(streamed_map, buffered_map);
        // The self-loop-only id 999 is present but isolated.
        let c999 = streamed_map.compact(999).unwrap();
        assert_eq!(streamed.degree(c999), 0);
        assert_eq!(streamed.num_edges(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_loader_empty_file() {
        let dir = std::env::temp_dir().join("gx_graph_io_stream_empty");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.txt");
        std::fs::write(&path, "# only comments\n\n").unwrap();
        let (g, map) = read_edge_list_compact_file(&path).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert!(map.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_file_roundtrip() {
        let dir = std::env::temp_dir().join("gx_graph_io_compact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sparse.txt");
        std::fs::write(&path, "100 200\n200 300000\n").unwrap();
        let (g, map) = read_edge_list_compact_file(&path).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(map.originals(), &[100, 200, 300_000]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_roundtrip() {
        let g = classic::grid(3, 3);
        let dir = std::env::temp_dir().join("gx_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.txt");
        write_edge_list_file(&g, &path).unwrap();
        let back = read_edge_list_file(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }
}
