//! Graph substrate for the `graphlet-rw` workspace.
//!
//! This crate provides everything the random-walk framework of
//! Chen et al. (VLDB 2016) needs from the *underlying* graph `G`:
//!
//! * [`Graph`] — an immutable, CSR-backed, undirected simple graph with
//!   sorted adjacency lists (O(log d) edge queries, O(1) uniform neighbor
//!   access);
//! * [`GraphBuilder`] — ingestion with de-duplication and self-loop removal;
//! * [`GraphAccess`] — the *restricted access* abstraction of the paper:
//!   algorithms written against this trait can only look at one node's
//!   neighborhood at a time, exactly like crawling an OSN through its API.
//!   [`ApiGraph`] wraps a graph and meters API usage;
//! * [`generators`] — seeded synthetic graph families used as substitutes
//!   for the paper's proprietary datasets (see `DESIGN.md` §3);
//! * [`subrel`] — explicit construction of the d-node subgraph relationship
//!   graph `G(d)` for small graphs, used to validate stationary
//!   distributions and mixing times against theory;
//! * [`connectivity`] — BFS, connected components and LCC extraction (the
//!   paper evaluates on the largest connected component of every dataset);
//! * [`disk`] — out-of-core snapshots: the page-aligned `GXSN` format
//!   served zero-copy by [`MmapGraph`], the delta-varint `GXSC` format
//!   behind [`CompressedGraph`]'s bounded decode cache, and atomic
//!   writers for both. Both implement [`GraphAccess`], so every walk
//!   engine runs unmodified — and bit-identically — off disk.
//!
//! All randomness is injected through [`rand::Rng`], and the workspace uses
//! PCG64 seeds everywhere so experiments are exactly reproducible.

pub mod access;
pub mod builder;
pub mod connectivity;
pub mod csr;
pub mod disk;
pub mod error;
pub mod generators;
pub mod io;
pub mod stats;
pub mod subrel;

pub use access::{graph_fingerprint, ApiGraph, ApiStats, GraphAccess};
pub use builder::GraphBuilder;
pub use csr::Graph;
pub use disk::{
    read_header, write_gxsc, write_gxsn, CompressedGraph, MmapGraph, SnapshotError, SnapshotHeader,
    SnapshotInfo, SnapshotKind,
};
pub use error::GraphError;

/// Node identifier. Kept as a bare `u32`: graphs in this workspace are
/// node-addressed arrays, and a newtype would add friction at every call
/// site without preventing any realistic bug class.
pub type NodeId = u32;
