//! Descriptive graph statistics used by dataset inventories and the theory
//! module.

use crate::csr::Graph;
use crate::NodeId;

/// Average degree `2|E| / |V|`.
pub fn average_degree(g: &Graph) -> f64 {
    if g.num_nodes() == 0 {
        0.0
    } else {
        g.degree_sum() as f64 / g.num_nodes() as f64
    }
}

/// Histogram of degrees: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in 0..g.num_nodes() {
        hist[g.degree(v as NodeId)] += 1;
    }
    hist
}

/// `p`-th moment of the degree distribution, `E[d^p]`.
pub fn degree_moment(g: &Graph, p: f64) -> f64 {
    if g.num_nodes() == 0 {
        return 0.0;
    }
    let sum: f64 = (0..g.num_nodes()).map(|v| (g.degree(v as NodeId) as f64).powf(p)).sum();
    sum / g.num_nodes() as f64
}

/// Total number of wedges (paths of length two), `Σ_v C(d_v, 2)`. This is
/// the normalizer of wedge sampling \[32\] and the `W` of clustering
/// coefficient computations.
pub fn wedge_count(g: &Graph) -> u64 {
    (0..g.num_nodes())
        .map(|v| {
            let d = g.degree(v as NodeId) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

/// `Σ_{(u,v) ∈ E} (d_u − 1)(d_v − 1)`, the normalizer `S` of 3-path
/// sampling \[14\] and, divided by 2, the edge count of `G(2)` plus...
/// precisely: `|R(2)| = ½ Σ_{(u,v)∈E} (d_u + d_v − 2)` is
/// [`g2_edge_count`]; this function is the *path* normalizer.
pub fn three_path_weight(g: &Graph) -> u64 {
    g.edges().map(|(u, v)| (g.degree(u) as u64 - 1) * (g.degree(v) as u64 - 1)).sum()
}

/// Number of edges of the 2-node subgraph relationship graph `G(2)`:
/// `|R(2)| = ½ Σ_{e=(u,v)} (d_u + d_v − 2)` (paper §3.3). A single pass
/// over the edge list.
pub fn g2_edge_count(g: &Graph) -> u64 {
    let sum: u64 = g.edges().map(|(u, v)| (g.degree(u) + g.degree(v) - 2) as u64).sum();
    sum / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic;

    #[test]
    fn average_degree_of_cycle_is_two() {
        assert!((average_degree(&classic::cycle(17)) - 2.0).abs() < 1e-12);
        assert_eq!(average_degree(&Graph::from_edges(0, []).unwrap()), 0.0);
    }

    #[test]
    fn histogram_of_star() {
        let hist = degree_histogram(&classic::star(5));
        assert_eq!(hist, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn moments() {
        let g = classic::complete(4); // all degrees 3
        assert!((degree_moment(&g, 1.0) - 3.0).abs() < 1e-12);
        assert!((degree_moment(&g, 2.0) - 9.0).abs() < 1e-12);
        assert_eq!(degree_moment(&Graph::from_edges(0, []).unwrap(), 2.0), 0.0);
    }

    #[test]
    fn wedge_counts() {
        // K4: each node C(3,2)=3 wedges -> 12
        assert_eq!(wedge_count(&classic::complete(4)), 12);
        // star with hub degree 4: C(4,2)=6
        assert_eq!(wedge_count(&classic::star(5)), 6);
        // path of 3 nodes: 1 wedge
        assert_eq!(wedge_count(&classic::path(3)), 1);
    }

    #[test]
    fn three_path_weight_on_path4() {
        // P4: edges (0,1),(1,2),(2,3); degrees 1,2,2,1
        // per-edge: (1-1)(2-1)=0, (2-1)(2-1)=1, 0 -> total 1
        assert_eq!(three_path_weight(&classic::path(4)), 1);
    }

    #[test]
    fn g2_edge_count_examples() {
        // Paper Figure 1's G(2) has 8 edges (drawn in the figure).
        assert_eq!(g2_edge_count(&classic::paper_figure1()), 8);
        // Triangle: each pair of edges adjacent -> G(2) = triangle, 3 edges.
        assert_eq!(g2_edge_count(&classic::cycle(3)), 3);
        // P3: two edges sharing a node -> 1.
        assert_eq!(g2_edge_count(&classic::path(3)), 1);
    }
}
