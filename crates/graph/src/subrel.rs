//! Explicit construction of the d-node subgraph relationship graph `G(d)`
//! and ESU enumeration of connected induced subgraphs.
//!
//! Definition (paper §2.1, following \[36\]): the nodes of `G(d)` are all
//! connected induced d-node subgraphs of `G`; two are adjacent iff they
//! share `d − 1` nodes of `G`. `G(1) = G`.
//!
//! The paper never materializes `G(d)` ("constructing G(d) is impractical
//! due to intensive computation cost" — §2.1); the walks generate neighbors
//! on the fly. We *do* materialize it here for small graphs, because having
//! the explicit chain lets the test-suite verify Theorem 2 (stationary
//! distribution of the expanded chain), the α coefficients, and mixing
//! times against brute-force linear algebra.
//!
//! The enumeration uses the ESU algorithm (Wernicke 2006), which visits
//! every connected induced k-subgraph exactly once. It is also re-exported
//! for the exact-counting crate.

use crate::csr::Graph;
use crate::NodeId;
use std::collections::HashMap;

/// Reusable scratch state for ESU enumeration rooted at single nodes.
/// Lets callers parallelize over roots (one `Esu` per worker thread).
pub struct Esu<'g> {
    g: &'g Graph,
    k: usize,
    in_sub: Vec<bool>,
    in_hood: Vec<bool>,
    sub: Vec<NodeId>,
    sorted: Vec<NodeId>,
}

impl<'g> Esu<'g> {
    /// Creates scratch for enumerating `k`-node subgraphs of `g`.
    pub fn new(g: &'g Graph, k: usize) -> Self {
        assert!(k >= 1, "Esu requires k >= 1");
        let n = g.num_nodes();
        Self {
            g,
            k,
            in_sub: vec![false; n],
            in_hood: vec![false; n],
            sub: Vec::with_capacity(k),
            sorted: Vec::with_capacity(k),
        }
    }

    /// Enumerates every connected induced k-subgraph whose *minimum* node
    /// is `root`, invoking `visit` with the sorted node set.
    pub fn enumerate_root<F: FnMut(&[NodeId])>(&mut self, root: NodeId, mut visit: F) {
        if self.k == 1 {
            visit(&[root]);
            return;
        }
        let g = self.g;
        self.in_sub[root as usize] = true;
        self.in_hood[root as usize] = true;
        self.sub.push(root);
        let mut touched = vec![root];
        let ext: Vec<NodeId> = g
            .neighbors(root)
            .iter()
            .copied()
            .filter(|&u| u > root)
            .inspect(|&u| {
                self.in_hood[u as usize] = true;
                touched.push(u);
            })
            .collect();
        extend(
            g,
            self.k,
            root,
            &mut self.sub,
            ext,
            &mut self.in_sub,
            &mut self.in_hood,
            &mut self.sorted,
            &mut visit,
        );
        self.sub.pop();
        for t in touched {
            self.in_hood[t as usize] = false;
        }
        self.in_sub[root as usize] = false;
    }
}

/// Enumerates every connected induced `k`-node subgraph of `g` exactly
/// once, invoking `visit` with the node set (sorted ascending).
///
/// This is the ESU ("FANMOD") algorithm: subgraphs are rooted at their
/// minimum node and extended only with larger nodes from the exclusive
/// neighborhood, which guarantees uniqueness.
pub fn enumerate_connected_subgraphs<F: FnMut(&[NodeId])>(g: &Graph, k: usize, mut visit: F) {
    if k == 0 || g.num_nodes() == 0 {
        return;
    }
    let mut esu = Esu::new(g, k);
    for v in 0..g.num_nodes() as NodeId {
        esu.enumerate_root(v, &mut visit);
    }
}

#[allow(clippy::too_many_arguments)]
fn extend<F: FnMut(&[NodeId])>(
    g: &Graph,
    k: usize,
    root: NodeId,
    sub: &mut Vec<NodeId>,
    mut ext: Vec<NodeId>,
    in_sub: &mut [bool],
    in_hood: &mut [bool],
    sorted: &mut Vec<NodeId>,
    visit: &mut F,
) {
    if sub.len() == k {
        sorted.clear();
        sorted.extend_from_slice(sub);
        sorted.sort_unstable();
        visit(sorted);
        return;
    }
    while let Some(w) = ext.pop() {
        // Extension set for the recursive call: remaining candidates plus
        // the exclusive neighborhood of w (neighbors > root not already in
        // the subgraph's closed neighborhood).
        let mut new_ext = ext.clone();
        let mut newly_marked: Vec<NodeId> = Vec::new();
        for &u in g.neighbors(w) {
            if u > root && !in_hood[u as usize] {
                in_hood[u as usize] = true;
                newly_marked.push(u);
                new_ext.push(u);
            }
        }
        in_sub[w as usize] = true;
        sub.push(w);
        extend(g, k, root, sub, new_ext, in_sub, in_hood, sorted, visit);
        sub.pop();
        in_sub[w as usize] = false;
        // w stays in in_hood for the remaining iterations at this level
        // (ESU: once considered, w must not be re-added deeper), but the
        // *exclusive* marks added for w's branch must be rolled back.
        for u in newly_marked {
            in_hood[u as usize] = false;
        }
    }
}

/// Counts connected induced `k`-subgraphs (convenience over
/// [`enumerate_connected_subgraphs`]).
pub fn count_connected_subgraphs(g: &Graph, k: usize) -> u64 {
    let mut c = 0u64;
    enumerate_connected_subgraphs(g, k, |_| c += 1);
    c
}

/// An explicitly materialized subgraph relationship graph `G(d)`.
#[derive(Debug, Clone)]
pub struct SubRelGraph {
    /// State `i` is the sorted node set of the i-th connected induced
    /// d-subgraph.
    pub states: Vec<Vec<NodeId>>,
    /// The relationship graph: node `i` ↔ state `i`.
    pub graph: Graph,
    /// d (subgraph size).
    pub d: usize,
}

impl SubRelGraph {
    /// Index of a state given its sorted node set.
    pub fn state_index(&self, nodes: &[NodeId]) -> Option<usize> {
        // states are sorted lexicographically at construction
        self.states.binary_search_by(|s| s.as_slice().cmp(nodes)).ok()
    }
}

/// Materializes `G(d)` for a small graph. `G(1)` is the graph itself.
///
/// Cost is O(|H(d)| · d · deg) with hashing — only intended for graphs
/// small enough that |H(d)| fits in memory (tests, theory benches).
pub fn subgraph_relationship_graph(g: &Graph, d: usize) -> SubRelGraph {
    assert!(d >= 1, "G(d) needs d >= 1");
    if d == 1 {
        return SubRelGraph {
            states: (0..g.num_nodes() as NodeId).map(|v| vec![v]).collect(),
            graph: g.clone(),
            d,
        };
    }
    let mut states: Vec<Vec<NodeId>> = Vec::new();
    enumerate_connected_subgraphs(g, d, |s| states.push(s.to_vec()));
    states.sort_unstable();
    let index: HashMap<&[NodeId], usize> =
        states.iter().enumerate().map(|(i, s)| (s.as_slice(), i)).collect();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut candidate: Vec<NodeId> = Vec::with_capacity(d);
    for (i, s) in states.iter().enumerate() {
        // neighbors of s: replace one node by an outside node; the result
        // must itself be a connected induced subgraph, i.e. present in the
        // index.
        for drop_pos in 0..d {
            for &b in s.iter().enumerate().filter(|&(p, _)| p != drop_pos).map(|(_, x)| x) {
                for &w in g.neighbors(b) {
                    if s.contains(&w) {
                        continue;
                    }
                    candidate.clear();
                    candidate.extend(
                        s.iter().enumerate().filter(|&(p, _)| p != drop_pos).map(|(_, &x)| x),
                    );
                    candidate.push(w);
                    candidate.sort_unstable();
                    if let Some(&j) = index.get(candidate.as_slice()) {
                        if i < j {
                            edges.push((i as NodeId, j as NodeId));
                        }
                    }
                }
            }
        }
    }
    let graph = Graph::from_edges(states.len(), edges).expect("indices in range");
    SubRelGraph { states, graph, d }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic;

    #[test]
    fn esu_counts_on_known_graphs() {
        // K4: C(4,2)=6 pairs all connected, C(4,3)=4 triples, 1 quad.
        let k4 = classic::complete(4);
        assert_eq!(count_connected_subgraphs(&k4, 2), 6);
        assert_eq!(count_connected_subgraphs(&k4, 3), 4);
        assert_eq!(count_connected_subgraphs(&k4, 4), 1);
        // P4 path: connected 3-subsets must be contiguous: {0,1,2},{1,2,3}.
        let p4 = classic::path(4);
        assert_eq!(count_connected_subgraphs(&p4, 2), 3);
        assert_eq!(count_connected_subgraphs(&p4, 3), 2);
        assert_eq!(count_connected_subgraphs(&p4, 4), 1);
        // Star S4 (5 nodes): every subset containing hub is connected:
        // k-subsets = C(4, k-1).
        let s = classic::star(5);
        assert_eq!(count_connected_subgraphs(&s, 3), 6);
        assert_eq!(count_connected_subgraphs(&s, 4), 4);
        assert_eq!(count_connected_subgraphs(&s, 5), 1);
    }

    #[test]
    fn esu_k1_and_degenerate() {
        let g = classic::path(3);
        assert_eq!(count_connected_subgraphs(&g, 1), 3);
        assert_eq!(count_connected_subgraphs(&g, 0), 0);
        assert_eq!(count_connected_subgraphs(&g, 4), 0);
        let empty = Graph::from_edges(0, []).unwrap();
        assert_eq!(count_connected_subgraphs(&empty, 3), 0);
    }

    #[test]
    fn esu_yields_sorted_unique_connected_sets() {
        use crate::connectivity::is_connected;
        let g = classic::petersen();
        let mut seen = std::collections::HashSet::new();
        enumerate_connected_subgraphs(&g, 4, |s| {
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted: {s:?}");
            assert!(seen.insert(s.to_vec()), "duplicate: {s:?}");
            let (sub, _) = g.induced_subgraph(s);
            assert!(is_connected(&sub), "not connected: {s:?}");
        });
        assert!(!seen.is_empty());
    }

    #[test]
    fn figure1_g2_matches_paper() {
        let g = classic::paper_figure1();
        let rel = subgraph_relationship_graph(&g, 2);
        // Paper Figure 1: G(2) has the 5 node pairs (edges of G) and 8
        // relationship edges.
        assert_eq!(rel.states.len(), 5);
        assert_eq!(rel.graph.num_edges(), 8);
        // (0,1)-(1,2) share node 1: adjacent. (0,1)-(2,3) share none.
        let a = rel.state_index(&[0, 1]).unwrap();
        let b = rel.state_index(&[1, 2]).unwrap();
        let c = rel.state_index(&[2, 3]).unwrap();
        assert!(rel.graph.has_edge(a as NodeId, b as NodeId));
        assert!(!rel.graph.has_edge(a as NodeId, c as NodeId));
    }

    #[test]
    fn figure1_g3_matches_paper() {
        let g = classic::paper_figure1();
        let rel = subgraph_relationship_graph(&g, 3);
        // All four 3-subsets of Figure 1's graph are connected and pairwise
        // share 2 nodes: G(3) = K4 (as drawn in the paper's Figure 1).
        assert_eq!(rel.states.len(), 4);
        assert_eq!(rel.graph.num_edges(), 6);
    }

    #[test]
    fn g1_is_the_graph_itself() {
        let g = classic::cycle(5);
        let rel = subgraph_relationship_graph(&g, 1);
        assert_eq!(rel.graph, g);
        assert_eq!(rel.states.len(), 5);
        assert_eq!(rel.state_index(&[3]), Some(3));
    }

    #[test]
    fn g2_edge_count_formula_agrees_with_materialization() {
        use crate::stats::g2_edge_count;
        for g in [
            classic::paper_figure1(),
            classic::petersen(),
            classic::complete(5),
            classic::lollipop(4, 3),
        ] {
            let rel = subgraph_relationship_graph(&g, 2);
            assert_eq!(rel.graph.num_edges() as u64, g2_edge_count(&g));
        }
    }

    #[test]
    fn g2_of_connected_graph_is_connected() {
        use crate::connectivity::is_connected;
        // Theorem 3.1 of [36]: G connected => G(d) connected.
        for g in [classic::petersen(), classic::lollipop(4, 3), classic::grid(3, 3)] {
            for d in 2..=3 {
                let rel = subgraph_relationship_graph(&g, d);
                assert!(is_connected(&rel.graph), "G({d}) disconnected");
            }
        }
    }

    #[test]
    fn state_index_misses() {
        let g = classic::path(4);
        let rel = subgraph_relationship_graph(&g, 2);
        assert_eq!(rel.state_index(&[0, 3]), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::connectivity::is_connected;
    use proptest::prelude::*;

    /// Brute-force reference: count connected induced k-subgraphs by
    /// checking all C(n, k) subsets.
    fn brute_count(g: &Graph, k: usize) -> u64 {
        let n = g.num_nodes();
        if k == 0 || k > n {
            return 0;
        }
        let mut count = 0u64;
        let mut subset: Vec<usize> = (0..k).collect();
        loop {
            let nodes: Vec<NodeId> = subset.iter().map(|&i| i as NodeId).collect();
            let (sub, _) = g.induced_subgraph(&nodes);
            if sub.num_edges() >= k - 1 && is_connected(&sub) {
                count += 1;
            }
            // next k-combination
            let mut i = k;
            loop {
                if i == 0 {
                    return count;
                }
                i -= 1;
                if subset[i] != i + n - k {
                    subset[i] += 1;
                    for j in (i + 1)..k {
                        subset[j] = subset[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn esu_matches_brute_force(
            edges in proptest::collection::vec((0u32..9, 0u32..9), 0..25),
            k in 2usize..5,
        ) {
            let mut b = GraphBuilder::new(9);
            for (u, v) in edges {
                b.add_edge(u, v).unwrap();
            }
            let g = b.build();
            prop_assert_eq!(count_connected_subgraphs(&g, k), brute_count(&g, k));
        }
    }
}
