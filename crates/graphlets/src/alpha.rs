//! Algorithm 2: the state corresponding coefficient α.
//!
//! For a graphlet g on k nodes and a walk on `G(d)`, α counts the ordered
//! sequences of `l = k − d + 1` *distinct* connected induced d-subgraphs of
//! g such that consecutive subgraphs are adjacent in the subgraph
//! relationship graph (share d − 1 nodes; for d = 1, are joined by an edge)
//! and the union covers all k nodes. Each valid l-step window of the walk
//! that lands on a copy of g corresponds to exactly one such sequence, so α
//! is the number of times g is "replicated" in the expanded chain's state
//! space (paper Definition 3).
//!
//! Equivalently (paper's remark), α is twice the number of undirected
//! Hamilton paths of the subgraph relationship graph of g restricted to
//! covering sequences. Tables 2 and 3 of the paper list α/2; the test suite
//! regenerates both tables from this module and fails on any mismatch.

use crate::atlas::atlas;
use crate::mask::SmallGraph;
use crate::GraphletId;
use std::sync::OnceLock;

/// Whether the subset of nodes given by `bits` induces a connected
/// subgraph of `g`.
fn subset_connected(g: &SmallGraph, bits: u8) -> bool {
    if bits == 0 {
        return false;
    }
    let start = bits.trailing_zeros() as usize;
    let mut reached: u8 = 1 << start;
    loop {
        let mut next = reached;
        for i in 0..g.k() {
            if reached & (1 << i) != 0 {
                next |= g.neighbors_bits(i) & bits;
            }
        }
        if next == reached {
            return reached == bits;
        }
        reached = next;
    }
}

/// All connected induced d-subgraphs of `g`, as node bitmasks.
fn connected_subsets(g: &SmallGraph, d: usize) -> Vec<u8> {
    let k = g.k();
    let mut out = Vec::new();
    for bits in 0u8..(1u16 << k) as u8 {
        if bits.count_ones() as usize == d && subset_connected(g, bits) {
            out.push(bits);
        }
    }
    out
}

/// The corresponding-state structure of a graphlet under SRW(d): its
/// connected d-subgraphs and every covering l-sequence (the states of
/// `C(s)` in Definition 3, as index sequences into `subsets`).
#[derive(Debug, Clone)]
pub struct CoveringSequences {
    /// Connected induced d-subgraphs of the graphlet, as node bitmasks.
    pub subsets: Vec<u8>,
    /// Every ordered sequence of l = k − d + 1 distinct subsets with
    /// consecutive subsets adjacent in the relationship graph and union
    /// covering all k nodes. `α = sequences.len()`.
    pub sequences: Vec<Vec<u8>>,
}

impl CoveringSequences {
    /// The interior subset-indices (X₂ … X_{l−1}) of every sequence,
    /// flattened into one contiguous array with constant stride `l − 2`
    /// (empty for `l ≤ 2`, where sequences have no interior states).
    ///
    /// CSS sums `Π 1/d_{X_i}` over exactly these interiors (Algorithm 3);
    /// the flat layout lets that sum stream through one cache-friendly
    /// array instead of chasing one heap pointer per sequence.
    pub fn flat_interiors(&self, l: usize) -> Vec<u8> {
        if l <= 2 {
            return Vec::new();
        }
        let mut flat = Vec::with_capacity(self.sequences.len() * (l - 2));
        for seq in &self.sequences {
            debug_assert_eq!(seq.len(), l, "covering sequence length is l");
            flat.extend_from_slice(&seq[1..seq.len() - 1]);
        }
        flat
    }
}

/// Enumerates the covering sequences of `g` under SRW(d) — the machinery
/// shared by Algorithm 2 (α = number of sequences) and Algorithm 3 (CSS
/// sums π_e over exactly these sequences).
pub fn covering_sequences(g: &SmallGraph, d: usize) -> CoveringSequences {
    let k = g.k();
    assert!((1..=k).contains(&d), "alpha: d={d} must be in 1..=k={k}");
    assert!(g.is_connected(), "alpha is defined for connected graphlets");
    let l = k - d + 1;
    let subs = connected_subsets(g, d);
    let m = subs.len();
    let mut out = CoveringSequences { subsets: subs, sequences: Vec::new() };
    if m == 0 {
        return out;
    }
    // Adjacency in the relationship graph restricted to g's subgraphs.
    let mut adj = vec![0u64; m];
    for i in 0..m {
        for j in (i + 1)..m {
            let adjacent = if d == 1 {
                let u = out.subsets[i].trailing_zeros() as usize;
                let v = out.subsets[j].trailing_zeros() as usize;
                g.has_edge(u, v)
            } else {
                (out.subsets[i] & out.subsets[j]).count_ones() as usize == d - 1
            };
            if adjacent {
                adj[i] |= 1 << j;
                adj[j] |= 1 << i;
            }
        }
    }
    let full: u8 = ((1u16 << k) - 1) as u8;
    // DFS over ordered sequences of distinct subgraphs. A window of k
    // distinct nodes visits k − d + 1 distinct states, so distinctness is
    // enforced (Algorithm 2 draws combinations, then permutations).
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        subs: &[u8],
        adj: &[u64],
        used: u64,
        covered: u8,
        seq: &mut Vec<u8>,
        l: usize,
        full: u8,
        out: &mut Vec<Vec<u8>>,
    ) {
        if seq.len() == l {
            if covered == full {
                out.push(seq.clone());
            }
            return;
        }
        // Prune: each further step adds at most one uncovered node.
        let missing = (full & !covered).count_ones() as usize;
        if missing > l - seq.len() {
            return;
        }
        let last = *seq.last().expect("seq starts non-empty") as usize;
        let mut candidates = adj[last] & !used;
        while candidates != 0 {
            let j = candidates.trailing_zeros() as usize;
            candidates &= candidates - 1;
            seq.push(j as u8);
            dfs(subs, adj, used | (1 << j), covered | subs[j], seq, l, full, out);
            seq.pop();
        }
    }
    let mut seq: Vec<u8> = Vec::with_capacity(l);
    for start in 0..m {
        seq.push(start as u8);
        if l == 1 {
            if out.subsets[start] == full {
                out.sequences.push(seq.clone());
            }
        } else {
            dfs(
                &out.subsets,
                &adj,
                1 << start,
                out.subsets[start],
                &mut seq,
                l,
                full,
                &mut out.sequences,
            );
        }
        seq.pop();
    }
    out
}

/// α for graphlet `g` under SRW(d). `1 ≤ d ≤ k`; `d = k` gives l = 1 and
/// α = 1 for every connected g (the single state covering g).
pub fn alpha(g: &SmallGraph, d: usize) -> u64 {
    covering_sequences(g, d).sequences.len() as u64
}

/// α for every k-node graphlet type in paper order, under SRW(d). Cached.
pub fn alpha_table(k: usize, d: usize) -> &'static [u64] {
    // Index by (k, d); k ≤ 6, d ≤ 6.
    static TABLES: OnceLock<[[OnceLock<Vec<u64>>; 7]; 7]> = OnceLock::new();
    let tables = TABLES.get_or_init(Default::default);
    assert!((3..=6).contains(&k), "alpha_table: k={k} unsupported");
    assert!((1..=k).contains(&d), "alpha_table: d={d} must be in 1..=k");
    tables[k][d].get_or_init(|| {
        atlas(k)
            .iter()
            .map(|info| alpha(&SmallGraph::from_mask(k, info.canonical_mask), d))
            .collect()
    })
}

/// α for one graphlet id under SRW(d).
pub fn alpha_of(id: GraphletId, d: usize) -> u64 {
    alpha_table(id.k as usize, d)[id.index as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::canon_table;

    /// Table 2 of the paper, times two (the paper lists α/2): 3-node
    /// graphlets (wedge, triangle) under SRW(1..3).
    #[test]
    fn table2_three_node_alphas_match_paper() {
        assert_eq!(alpha_table(3, 1), &[2, 6]);
        assert_eq!(alpha_table(3, 2), &[2, 6]);
        assert_eq!(alpha_table(3, 3), &[1, 1]);
    }

    /// Table 2 of the paper, times two: 4-node graphlets under SRW(1..3).
    #[test]
    fn table2_four_node_alphas_match_paper() {
        assert_eq!(alpha_table(4, 1), &[2, 0, 8, 4, 12, 24]);
        assert_eq!(alpha_table(4, 2), &[2, 6, 8, 10, 24, 48]);
        assert_eq!(alpha_table(4, 3), &[2, 6, 12, 6, 12, 12]);
    }

    /// Table 3 of the paper, times two: all 21 five-node graphlets under
    /// SRW(1..4). This test *pins the paper's column ordering*: each
    /// column's (SRW1..SRW4) α-vector is unique, so a wrong
    /// `PAPER_TO_CANON_5` permutation cannot pass. On failure the error
    /// message prints the permutation that would make it pass.
    #[test]
    fn table3_five_node_alphas_match_paper() {
        // Paper Table 3 (α/2), columns 1..21, rows SRW(1..4).
        //
        // ERRATUM (documented in EXPERIMENTS.md): the published SRW(4) row
        // reads 12 in columns 8, 9, 10, 11 and 15. Those are exactly the
        // five graphlets with |S| = 4 connected 4-node subgraphs, for
        // which the paper's own PSRW closed form (Appendix B:
        // α = (|S|−1)·|S|) gives α = 12, i.e. α/2 = 6 — the published
        // cells list α instead of α/2 (for every |S| = 5 column the table
        // correctly lists (|S|−1)|S|/2 = 10). The row below carries the
        // corrected value 6; `table3_published_srw4_cells_are_alpha_not_half`
        // pins the relationship to the published 12s.
        const TABLE3_HALF: [[u64; 21]; 4] = [
            [1, 0, 0, 1, 2, 0, 5, 2, 2, 4, 4, 6, 7, 6, 6, 10, 14, 18, 24, 36, 60],
            [1, 2, 12, 5, 4, 16, 5, 6, 24, 24, 12, 18, 15, 54, 36, 42, 34, 82, 76, 144, 240],
            [1, 5, 24, 8, 5, 24, 5, 16, 30, 24, 16, 63, 26, 63, 30, 43, 63, 63, 90, 90, 90],
            [1, 3, 6, 3, 3, 6, 10, 6, 6, 6, 6, 10, 10, 10, 6, 10, 10, 10, 10, 10, 10],
        ];
        // Vector per paper column.
        let want: Vec<[u64; 4]> = (0..21)
            .map(|c| {
                [
                    2 * TABLE3_HALF[0][c],
                    2 * TABLE3_HALF[1][c],
                    2 * TABLE3_HALF[2][c],
                    2 * TABLE3_HALF[3][c],
                ]
            })
            .collect();
        // Vector per canonical class.
        let t = canon_table(5);
        let got: Vec<[u64; 4]> = (0..21)
            .map(|i| {
                let g = SmallGraph::from_mask(5, t.representative(i));
                [alpha(&g, 1), alpha(&g, 2), alpha(&g, 3), alpha(&g, 4)]
            })
            .collect();
        // Derive the permutation paper -> canonical by unique matching.
        let mut derived = [usize::MAX; 21];
        for (paper_idx, w) in want.iter().enumerate() {
            let matches: Vec<usize> = (0..21).filter(|&i| &got[i] == w).collect();
            assert_eq!(
                matches.len(),
                1,
                "paper column {} (α-vector {:?}) matches canonical classes {:?}; \
                 expected exactly one",
                paper_idx + 1,
                w,
                matches
            );
            derived[paper_idx] = matches[0];
        }
        assert_eq!(
            crate::atlas::PAPER_TO_CANON_5.as_slice(),
            derived.as_slice(),
            "PAPER_TO_CANON_5 must be {derived:?}"
        );
        // And the atlas-facing table must therefore equal the paper's.
        for d in 1..=4 {
            let table = alpha_table(5, d);
            for c in 0..21 {
                assert_eq!(table[c], 2 * TABLE3_HALF[d - 1][c], "d={d} col={}", c + 1);
            }
        }
    }

    /// The five published Table-3 SRW(4) cells that read 12 are α, not
    /// α/2: each of those graphlets has exactly |S| = 4 connected 4-node
    /// subgraphs, so α = (|S|−1)|S| = 12 by the paper's own PSRW formula.
    #[test]
    fn table3_published_srw4_cells_are_alpha_not_half() {
        // paper columns (1-based): banner 8, dart 9, bowtie 10, kite 11,
        // tailed-clique 15.
        for paper_col in [8usize, 9, 10, 11, 15] {
            let a = alpha_table(5, 4)[paper_col - 1];
            assert_eq!(a, 12, "α itself equals the published cell");
            assert_eq!(a / 2, 6, "the corrected α/2 value");
        }
        // Sanity: every non-erratum PSRW cell satisfies α = (|S|−1)|S|
        // with integral |S| ∈ {2,...,5}.
        for (c, &a) in alpha_table(5, 4).iter().enumerate() {
            let s = (1.0 + (1.0 + 4.0 * a as f64).sqrt()) / 2.0;
            assert!(
                (s - s.round()).abs() < 1e-9 && (2.0..=5.0).contains(&s),
                "column {}: α = {a} is not (s−1)s for integral s",
                c + 1
            );
        }
    }

    #[test]
    fn flat_interiors_matches_nested_layout() {
        // Tailed triangle under SRW(2): l = 3, stride 1, α = 10 interiors.
        let tt = SmallGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let cover = covering_sequences(&tt, 2);
        let flat = cover.flat_interiors(3);
        assert_eq!(flat.len(), cover.sequences.len());
        for (chunk, seq) in flat.chunks_exact(1).zip(&cover.sequences) {
            assert_eq!(chunk, &seq[1..2]);
        }
        // l = 2 (PSRW) and l = 1 have no interiors.
        assert!(cover.flat_interiors(2).is_empty());
        let tri = SmallGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!(covering_sequences(&tri, 3).flat_interiors(1).is_empty());
        // k = 5, d = 2: l = 4, stride 2.
        let k5 = SmallGraph::from_mask(5, (1 << 10) - 1);
        let cover5 = covering_sequences(&k5, 2);
        let flat5 = cover5.flat_interiors(4);
        assert_eq!(flat5.len(), 2 * cover5.sequences.len());
        for (chunk, seq) in flat5.chunks_exact(2).zip(&cover5.sequences) {
            assert_eq!(chunk, &seq[1..3]);
        }
    }

    #[test]
    fn alpha_hand_checked_cases() {
        // Triangle under SRW(1): all 6 node orderings traverse it.
        let tri = SmallGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(alpha(&tri, 1), 6);
        // Wedge under SRW(1): 2 orderings (each end to the other).
        let wedge = SmallGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(alpha(&wedge, 1), 2);
        // 3-star under SRW(1): no Hamilton path.
        let star = SmallGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(alpha(&star, 1), 0);
        // K5 under SRW(4): 5 K4-subgraphs, all pairs share 3 nodes, any
        // ordered pair covers 5 nodes: 5 * 4 = 20.
        let k5 = SmallGraph::from_mask(5, (1 << 10) - 1);
        assert_eq!(alpha(&k5, 4), 20);
        // d = k: the single full state, α = 1.
        assert_eq!(alpha(&k5, 5), 1);
        assert_eq!(alpha(&tri, 3), 1);
    }

    #[test]
    fn alpha_tailed_triangle_worked_example() {
        // Worked in DESIGN review: tailed triangle under SRW(2) has α = 10
        // (paper Table 2: α/2 = 5).
        let tt = SmallGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(alpha(&tt, 2), 10);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn alpha_rejects_disconnected() {
        let g = SmallGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let _ = alpha(&g, 1);
    }

    #[test]
    #[should_panic(expected = "must be in")]
    fn alpha_rejects_bad_d() {
        let tri = SmallGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let _ = alpha(&tri, 4);
    }

    #[test]
    fn alpha_of_uses_paper_ordering() {
        use crate::GraphletId;
        // g4_2 is the 3-star; under SRW(1) it cannot be sampled.
        assert_eq!(alpha_of(GraphletId::new(4, 1), 1), 0);
        // g4_6 is the clique; Table 2: α/2 = 24 under SRW(2).
        assert_eq!(alpha_of(GraphletId::new(4, 5), 2), 48);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::mask::permutations;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// α is an isomorphism invariant.
        #[test]
        fn alpha_invariant_under_relabeling(
            mask in 0u32..1024,
            perm_seed in 0usize..120,
            d in 1usize..=4,
        ) {
            let g = SmallGraph::from_mask(5, mask);
            prop_assume!(g.is_connected());
            let perm: Vec<usize> = permutations(5).nth(perm_seed).unwrap().to_vec();
            let h = g.permute(&perm);
            prop_assert_eq!(alpha(&g, d), alpha(&h, d));
        }
    }
}
