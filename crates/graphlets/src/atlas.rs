//! The graphlet catalogue, ordered as in the paper.
//!
//! * k = 3, 4: Figure 2 of the paper fixes the order (wedge, triangle;
//!   4-path, 3-star, cycle, tailed-triangle, chordal-cycle, clique). We
//!   hardcode those edge lists directly.
//! * k = 5: Table 3 fixes the order through its shape row, which we cannot
//!   see in text form — but the table's α-coefficient columns pin it down
//!   uniquely: the (SRW1..SRW4) α-vector of every 5-node graphlet is
//!   distinct. `PAPER_TO_CANON_5` stores the resulting permutation from
//!   paper index to canonical class index; the `gx-graphlets` test
//!   `alpha::tests::table3_five_node_alphas_match_paper` recomputes every α
//!   with Algorithm 2 and verifies the assignment, so a wrong permutation
//!   cannot survive the test suite.
//! * k = 6: the paper assigns no order; canonical order is used.

use crate::canon::canon_table;
use crate::mask::SmallGraph;
use crate::{num_graphlets, GraphletId};
use std::sync::OnceLock;

/// Static description of one graphlet type.
#[derive(Debug, Clone)]
pub struct GraphletInfo {
    /// Identifier (paper ordering).
    pub id: GraphletId,
    /// Human-readable name.
    pub name: &'static str,
    /// Edge list of a canonical representative labeling.
    pub edges: Vec<(u8, u8)>,
    /// Canonical mask of the class (see [`crate::mask`]).
    pub canonical_mask: u32,
    /// Ascending degree sequence.
    pub degree_sequence: Vec<u8>,
    /// Number of edges.
    pub num_edges: usize,
}

/// Paper-ordered edge lists for the 3-node graphlets (Figure 2).
const PAPER_3: [(&str, &[(u8, u8)]); 2] =
    [("wedge", &[(0, 1), (1, 2)]), ("triangle", &[(0, 1), (1, 2), (0, 2)])];

/// Paper-ordered edge lists for the 4-node graphlets (Figure 2).
const PAPER_4: [(&str, &[(u8, u8)]); 6] = [
    ("4-path", &[(0, 1), (1, 2), (2, 3)]),
    ("3-star", &[(0, 1), (0, 2), (0, 3)]),
    ("4-cycle", &[(0, 1), (1, 2), (2, 3), (3, 0)]),
    ("tailed-triangle", &[(0, 1), (1, 2), (0, 2), (2, 3)]),
    ("chordal-cycle", &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]),
    ("4-clique", &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]),
];

/// Permutation from paper index (Table 3 column, 0-based) to canonical
/// class index for 5-node graphlets. Derived by matching Algorithm-2 α
/// vectors against Table 3 (unique match per column on the SRW(1..3)
/// rows); verified by the alpha test suite.
pub(crate) const PAPER_TO_CANON_5: [usize; 21] =
    [2, 1, 0, 4, 6, 3, 7, 5, 8, 11, 10, 9, 12, 13, 14, 15, 16, 17, 18, 19, 20];

/// Names for the 5-node graphlets in paper (Table 3) order. Standard names
/// from the graphlet-counting literature where they exist:
/// fork = star with one subdivided edge; bull = triangle with pendants on
/// two vertices; tadpole = triangle with a 2-path tail; cricket = triangle
/// with two pendants on one vertex; banner = 4-cycle with a pendant;
/// dart = chordal-cycle with a pendant on a degree-3 vertex; kite = the
/// same with the pendant on a degree-2 vertex; 3-book = three triangles
/// sharing an edge; gem = 4-path plus a dominating vertex;
/// subdivided-k4 = K4 with one edge subdivided (≅ 4-wheel minus a spoke);
/// k5-minus-p3 = K5 minus two adjacent edges; k5-minus-e = K5 minus one
/// edge.
pub(crate) const NAMES_5: [&str; 21] = [
    "5-path",
    "fork",
    "4-star",
    "bull",
    "tadpole",
    "cricket",
    "5-cycle",
    "banner",
    "dart",
    "bowtie",
    "kite",
    "k2-3",
    "house",
    "3-book",
    "tailed-clique",
    "gem",
    "subdivided-k4",
    "k5-minus-p3",
    "4-wheel",
    "k5-minus-e",
    "5-clique",
];

fn build_atlas(k: usize) -> Vec<GraphletInfo> {
    let table = canon_table(k);
    let m = num_graphlets(k);
    assert_eq!(table.num_classes(), m);
    let make = |index: usize, name: &'static str, rep: SmallGraph| GraphletInfo {
        id: GraphletId { k: k as u8, index: index as u8 },
        name,
        edges: rep.edges(),
        canonical_mask: rep.canonical_mask(),
        degree_sequence: rep.degree_sequence(),
        num_edges: rep.num_edges(),
    };
    match k {
        3 | 4 => {
            let paper: &[(&str, &[(u8, u8)])] = if k == 3 { &PAPER_3 } else { &PAPER_4 };
            paper
                .iter()
                .enumerate()
                .map(|(i, &(name, edges))| make(i, name, SmallGraph::from_edges(k, edges)))
                .collect()
        }
        5 => PAPER_TO_CANON_5
            .iter()
            .enumerate()
            .map(|(paper_idx, &canon_idx)| {
                let rep = SmallGraph::from_mask(5, table.representative(canon_idx));
                make(paper_idx, NAMES_5[paper_idx], rep)
            })
            .collect(),
        6 => (0..m)
            .map(|i| {
                let rep = SmallGraph::from_mask(6, table.representative(i));
                let name: &'static str = Box::leak(format!("g6_{}", i + 1).into_boxed_str());
                make(i, name, rep)
            })
            .collect(),
        _ => unreachable!("num_graphlets guards k"),
    }
}

/// The paper-ordered atlas for `k` (3..=6), cached.
pub fn atlas(k: usize) -> &'static [GraphletInfo] {
    static ATLASES: [OnceLock<Vec<GraphletInfo>>; 7] = [
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
    ];
    assert!((3..=6).contains(&k), "atlas: k={k} unsupported (3..=6)");
    ATLASES[k].get_or_init(|| build_atlas(k))
}

/// Maps a canonical class index to the paper index for `k`.
pub(crate) fn canon_to_paper(k: usize) -> &'static [u8] {
    static MAPS: [OnceLock<Vec<u8>>; 7] = [
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
    ];
    assert!((3..=6).contains(&k));
    MAPS[k].get_or_init(|| {
        let table = canon_table(k);
        let m = table.num_classes();
        let mut map = vec![u8::MAX; m];
        for info in atlas(k) {
            let canon_idx = table.class_of(info.canonical_mask).expect("rep is connected");
            assert_eq!(map[canon_idx], u8::MAX, "duplicate canonical class in atlas(k={k})");
            map[canon_idx] = info.id.index;
        }
        assert!(map.iter().all(|&x| x != u8::MAX), "atlas(k={k}) misses a class");
        map
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure2_degree_sequences() {
        let a = atlas(4);
        assert_eq!(a[0].degree_sequence, vec![1, 1, 2, 2]); // 4-path
        assert_eq!(a[1].degree_sequence, vec![1, 1, 1, 3]); // 3-star
        assert_eq!(a[2].degree_sequence, vec![2, 2, 2, 2]); // cycle
        assert_eq!(a[3].degree_sequence, vec![1, 2, 2, 3]); // tailed-triangle
        assert_eq!(a[4].degree_sequence, vec![2, 2, 3, 3]); // chordal-cycle
        assert_eq!(a[5].degree_sequence, vec![3, 3, 3, 3]); // clique
    }

    #[test]
    fn three_node_atlas() {
        let a = atlas(3);
        assert_eq!(a[0].name, "wedge");
        assert_eq!(a[0].num_edges, 2);
        assert_eq!(a[1].name, "triangle");
        assert_eq!(a[1].num_edges, 3);
    }

    #[test]
    fn atlas_entries_are_distinct_classes() {
        for k in 3..=5 {
            let masks: std::collections::HashSet<u32> =
                atlas(k).iter().map(|i| i.canonical_mask).collect();
            assert_eq!(masks.len(), num_graphlets(k));
        }
    }

    #[test]
    fn canon_to_paper_is_a_bijection() {
        for k in 3..=5 {
            let map = canon_to_paper(k);
            let mut seen: Vec<bool> = vec![false; map.len()];
            for &p in map {
                assert!(!seen[p as usize]);
                seen[p as usize] = true;
            }
        }
    }

    #[test]
    fn ids_and_names_line_up() {
        for k in 3..=5 {
            for (i, info) in atlas(k).iter().enumerate() {
                assert_eq!(info.id, GraphletId::new(k as u8, i as u8));
                assert_eq!(info.id.name(), info.name);
                assert_eq!(info.edges.len(), info.num_edges);
            }
        }
    }

    #[test]
    fn five_node_extremes() {
        let a = atlas(5);
        // Table 3 column 1 is the 5-path (α/2 = 1 under SRW1: unique
        // Hamilton path), column 21 is K5.
        assert_eq!(a[0].num_edges, 4);
        assert_eq!(a[20].num_edges, 10);
        assert_eq!(a[20].degree_sequence, vec![4, 4, 4, 4, 4]);
    }
}
