//! Exact classification tables.
//!
//! For each k, a table over all 2^C(k,2) edge masks mapping a labeled
//! induced subgraph to its graphlet class in O(1). The table is built once
//! by canonicalizing every mask over all k! permutations — 1024 × 120
//! operations for k = 5, 32768 × 720 for k = 6 — and cached for the
//! process lifetime.
//!
//! Classes are numbered here in *canonical order* (ascending edge count,
//! then ascending canonical mask). The [`mod@crate::atlas`] module maps
//! canonical order to the paper's ordering.

use crate::mask::{num_pairs, SmallGraph};
use std::sync::OnceLock;

/// Classification table for one k.
pub struct CanonTable {
    /// Node count.
    pub k: usize,
    /// `table[mask]` = canonical class index, or `NONE` if the mask is a
    /// disconnected graph.
    table: Vec<i16>,
    /// Canonical representative mask of each class, in canonical order.
    reps: Vec<u32>,
}

const NONE: i16 = -1;

impl CanonTable {
    fn build(k: usize) -> CanonTable {
        let bits = num_pairs(k);
        let size = 1usize << bits;
        // Map each mask to its canonical mask; collect connected classes.
        let mut canon_of = vec![0u32; size];
        let mut class_of_canon = std::collections::HashMap::new();
        let mut reps: Vec<u32> = Vec::new();
        for m in 0..size as u32 {
            let g = SmallGraph::from_mask(k, m);
            if !g.is_connected() {
                canon_of[m as usize] = u32::MAX;
                continue;
            }
            let c = g.canonical_mask();
            canon_of[m as usize] = c;
            class_of_canon.entry(c).or_insert_with(|| {
                reps.push(c);
                reps.len() - 1
            });
        }
        // Canonical order: ascending (edge count, mask value).
        reps.sort_unstable_by_key(|&m| (m.count_ones(), m));
        let rank: std::collections::HashMap<u32, i16> =
            reps.iter().enumerate().map(|(i, &m)| (m, i as i16)).collect();
        let table =
            canon_of.into_iter().map(|c| if c == u32::MAX { NONE } else { rank[&c] }).collect();
        CanonTable { k, table, reps }
    }

    /// Canonical class index of `mask`, or `None` if disconnected.
    #[inline]
    pub fn class_of(&self, mask: u32) -> Option<usize> {
        match self.table[mask as usize] {
            NONE => None,
            c => Some(c as usize),
        }
    }

    /// Number of classes (distinct connected k-node graphs up to
    /// isomorphism).
    pub fn num_classes(&self) -> usize {
        self.reps.len()
    }

    /// Canonical representative mask of class `i`.
    pub fn representative(&self, i: usize) -> u32 {
        self.reps[i]
    }
}

/// The classification table for `k` (3..=6), built lazily and cached.
pub fn canon_table(k: usize) -> &'static CanonTable {
    static TABLES: [OnceLock<CanonTable>; 7] = [
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
    ];
    assert!((1..=6).contains(&k), "canon_table: k={k} unsupported (1..=6)");
    TABLES[k].get_or_init(|| CanonTable::build(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::permutations;

    #[test]
    fn class_counts_match_known_sequence() {
        // Connected graphs on n nodes up to isomorphism (OEIS A001349):
        // 1, 1, 2, 6, 21, 112.
        assert_eq!(canon_table(1).num_classes(), 1);
        assert_eq!(canon_table(2).num_classes(), 1);
        assert_eq!(canon_table(3).num_classes(), 2);
        assert_eq!(canon_table(4).num_classes(), 6);
        assert_eq!(canon_table(5).num_classes(), 21);
    }

    #[test]
    #[ignore = "builds the 32768x720 six-node table (~seconds); run with --ignored"]
    fn six_node_class_count() {
        assert_eq!(canon_table(6).num_classes(), 112);
    }

    #[test]
    fn disconnected_masks_have_no_class() {
        let t = canon_table(4);
        assert_eq!(t.class_of(0), None); // empty graph
        let two_disjoint = SmallGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(t.class_of(two_disjoint.mask()), None);
    }

    #[test]
    fn representatives_classify_to_themselves() {
        for k in 3..=5 {
            let t = canon_table(k);
            for i in 0..t.num_classes() {
                assert_eq!(t.class_of(t.representative(i)), Some(i));
            }
        }
    }

    #[test]
    fn canonical_order_is_by_edge_count() {
        let t = canon_table(5);
        let counts: Vec<u32> = (0..21).map(|i| t.representative(i).count_ones()).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(counts[0], 4); // tree (path/star/...)
        assert_eq!(counts[20], 10); // K5
    }

    #[test]
    fn classification_is_permutation_invariant_k4() {
        let t = canon_table(4);
        for mask in 0u32..64 {
            let g = SmallGraph::from_mask(4, mask);
            let class = t.class_of(mask);
            for perm in permutations(4) {
                assert_eq!(t.class_of(g.permute(perm).mask()), class);
            }
        }
    }

    #[test]
    fn every_connected_mask_is_classified_k5() {
        let t = canon_table(5);
        for mask in 0u32..1024 {
            let g = SmallGraph::from_mask(5, mask);
            assert_eq!(t.class_of(mask).is_some(), g.is_connected(), "mask {mask:#x}");
        }
    }
}
