//! Classifying concrete node sets of a host graph.

use crate::atlas::canon_to_paper;
use crate::canon::canon_table;
use crate::mask::{num_pairs, pair_index, SmallGraph};
use crate::GraphletId;
use gx_graph::{GraphAccess, NodeId};
use std::sync::OnceLock;

/// Edge bitmask of the subgraph induced by `nodes` in `g` (pair layout of
/// [`crate::mask`]). `nodes` must be distinct; order defines the labeling.
pub fn induced_mask<G: GraphAccess>(g: &G, nodes: &[NodeId]) -> u32 {
    let k = nodes.len();
    let mut mask = 0u32;
    for i in 0..k {
        for j in (i + 1)..k {
            debug_assert_ne!(nodes[i], nodes[j], "induced_mask: duplicate node");
            if g.has_edge(nodes[i], nodes[j]) {
                mask |= 1 << pair_index(i, j, k);
            }
        }
    }
    mask
}

/// Sentinel for disconnected masks in [`classify_table`].
pub const NOT_A_GRAPHLET: u8 = u8::MAX;

/// Direct-indexed `mask → paper graphlet index` table for one `k`:
/// `table[mask]` is the 0-based paper index, or [`NOT_A_GRAPHLET`] for
/// disconnected masks. Fuses the two lookups of the canonical path
/// (`canon_table` + `canon_to_paper`) into one cache-friendly byte load —
/// this is the estimator's per-sample hot path.
fn graphlet_index_table(k: usize) -> &'static [u8] {
    static TABLES: [OnceLock<Vec<u8>>; 6] = [
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
    ];
    debug_assert!((3..=5).contains(&k));
    TABLES[k].get_or_init(|| {
        let canon = canon_table(k);
        let paper = canon_to_paper(k);
        (0..1u32 << num_pairs(k))
            .map(|mask| match canon.class_of(mask) {
                Some(canon_idx) => paper[canon_idx],
                None => NOT_A_GRAPHLET,
            })
            .collect()
    })
}

/// The dense `mask → paper graphlet index` table for `k ≤ 5`, with
/// [`NOT_A_GRAPHLET`] marking disconnected masks; `None` for `k = 6`
/// (whose table stays on the two-step canonical path).
///
/// Exposed so per-step hot loops can resolve the `OnceLock` once and
/// classify with a single byte load per sample afterwards.
pub fn classify_table(k: usize) -> Option<&'static [u8]> {
    ((3..=5).contains(&k)).then(|| graphlet_index_table(k))
}

/// Classifies an edge mask on `k` labeled nodes. Returns `None` for
/// disconnected subgraphs (which are not graphlets).
///
/// For `k ≤ 5` (up to 1024 masks) this is a single lookup in a fused
/// direct-indexed table; k = 6 keeps the two-step canonical path (its
/// table is 32768 entries and built lazily in seconds — not worth
/// duplicating).
#[inline]
pub fn classify_mask(k: usize, mask: u32) -> Option<GraphletId> {
    if k <= 5 {
        let index = graphlet_index_table(k)[mask as usize];
        if index == NOT_A_GRAPHLET {
            return None;
        }
        return Some(GraphletId { k: k as u8, index });
    }
    let canon_idx = canon_table(k).class_of(mask)?;
    Some(GraphletId { k: k as u8, index: canon_to_paper(k)[canon_idx] })
}

/// Classifies the subgraph induced by `nodes` (distinct) in `g`.
pub fn classify_nodes<G: GraphAccess>(g: &G, nodes: &[NodeId]) -> Option<GraphletId> {
    classify_mask(nodes.len(), induced_mask(g, nodes))
}

/// Classifies a [`SmallGraph`] directly.
pub fn classify_small(g: &SmallGraph) -> Option<GraphletId> {
    classify_mask(g.k(), g.mask())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gx_graph::generators::classic;
    use gx_graph::Graph;

    #[test]
    fn figure1_worked_examples() {
        // Paper §2.1: G of Figure 1 has two triangles ({1,3,4}, {1,2,3})
        // and two wedges ({4,1,2}, {2,3,4}); 0-based: nodes shifted by -1.
        let g = classic::paper_figure1();
        let triangle = GraphletId::new(3, 1);
        let wedge = GraphletId::new(3, 0);
        assert_eq!(classify_nodes(&g, &[0, 2, 3]), Some(triangle));
        assert_eq!(classify_nodes(&g, &[0, 1, 2]), Some(triangle));
        assert_eq!(classify_nodes(&g, &[3, 0, 1]), Some(wedge));
        assert_eq!(classify_nodes(&g, &[1, 2, 3]), Some(wedge));
    }

    #[test]
    fn figure1_four_node_sample_is_chordal_cycle() {
        // Paper §3.1 example (b): the walk on G(2) visiting states
        // (1,2) -> (1,3) -> (3,4) yields the sample {1,2,3,4}, identified
        // as g4_5 (chordal-cycle).
        let g = classic::paper_figure1();
        assert_eq!(classify_nodes(&g, &[0, 1, 2, 3]), Some(GraphletId::new(4, 4)));
        assert_eq!(GraphletId::new(4, 4).name(), "chordal-cycle");
    }

    #[test]
    fn classify_handles_disconnected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(classify_nodes(&g, &[0, 1, 2, 3]), None);
        assert_eq!(classify_nodes(&g, &[0, 1, 2]), None);
    }

    #[test]
    fn order_of_nodes_does_not_matter() {
        let g = classic::petersen();
        let nodes = [0u32, 1, 2, 5];
        let base = classify_nodes(&g, &nodes);
        assert!(base.is_some());
        let mut perm = nodes;
        perm.reverse();
        assert_eq!(classify_nodes(&g, &perm), base);
    }

    #[test]
    fn cliques_classify_as_cliques() {
        let k5 = classic::complete(5);
        assert_eq!(classify_nodes(&k5, &[0, 1, 2, 3]), Some(GraphletId::new(4, 5)));
        assert_eq!(classify_nodes(&k5, &[0, 1, 2, 3, 4]), Some(GraphletId::new(5, 20)));
        assert_eq!(classify_nodes(&k5, &[0, 1, 2]), Some(GraphletId::new(3, 1)));
    }

    #[test]
    fn cycles_classify_as_cycles() {
        let c4 = classic::cycle(4);
        assert_eq!(classify_nodes(&c4, &[0, 1, 2, 3]), Some(GraphletId::new(4, 2)));
        let c5 = classic::cycle(5);
        let five = classify_nodes(&c5, &[0, 1, 2, 3, 4]).unwrap();
        // 5-cycle: the unique 5-node graphlet with all degrees 2.
        let info = &crate::atlas::atlas(5)[five.index as usize];
        assert_eq!(info.degree_sequence, vec![2, 2, 2, 2, 2]);
    }

    #[test]
    fn classify_small_agrees_with_mask_path() {
        for mask in 0u32..64 {
            let g = SmallGraph::from_mask(4, mask);
            assert_eq!(classify_small(&g), classify_mask(4, mask));
        }
    }

    #[test]
    fn fused_table_agrees_with_canonical_path_for_all_masks() {
        for k in 3..=5usize {
            for mask in 0u32..1 << crate::mask::num_pairs(k) {
                let fused = classify_mask(k, mask);
                let canonical = crate::canon::canon_table(k)
                    .class_of(mask)
                    .map(|c| GraphletId { k: k as u8, index: crate::atlas::canon_to_paper(k)[c] });
                assert_eq!(fused, canonical, "k={k} mask={mask:#x}");
            }
        }
    }

    #[test]
    fn induced_mask_respects_labeling_order() {
        let g = classic::path(3); // 0-1-2

        // ordering [0,1,2]: edges (0,1),(1,2) -> wedge centered at label 1
        let m = induced_mask(&g, &[0, 1, 2]);
        let sg = SmallGraph::from_mask(3, m);
        assert!(sg.has_edge(0, 1) && sg.has_edge(1, 2) && !sg.has_edge(0, 2));
        // ordering [0,2,1]: center is now label 2
        let m = induced_mask(&g, &[0, 2, 1]);
        let sg = SmallGraph::from_mask(3, m);
        assert!(sg.has_edge(0, 2) && sg.has_edge(1, 2) && !sg.has_edge(0, 1));
    }
}
