//! Graphlet taxonomy for the `graphlet-rw` workspace.
//!
//! Graphlets are connected, non-isomorphic, induced subgraphs (paper
//! Definition 1). This crate owns everything about *identifying* them:
//!
//! * [`mask`] — small graphs on k ≤ 7 nodes as edge bitmasks;
//! * [`canon`] — exact classification tables built by canonicalizing every
//!   possible mask over all k! permutations (k = 3..6);
//! * [`mod@atlas`] — the catalogue of graphlet types, ordered to match the
//!   paper's Figure 2 (k = 3, 4) and Table 3 (k = 5), with names, canonical
//!   edge lists and degree sequences;
//! * [`classify`] — classifying a concrete node set of a host graph;
//! * [`signature`] — the degree-signature fast path described in the
//!   paper's §5 (after GUISE \[6\]), kept as an independently-implemented
//!   classifier that the tests cross-validate against the canonical tables.
//!
//! There are 2 three-node, 6 four-node, 21 five-node and 112 six-node
//! graphlets; all four counts are asserted in tests.

pub mod alpha;
pub mod atlas;
pub mod canon;
pub mod classify;
pub mod mask;
pub mod signature;

pub use atlas::{atlas, GraphletInfo};
pub use classify::{classify_mask, classify_nodes, classify_table, induced_mask, NOT_A_GRAPHLET};
pub use mask::SmallGraph;

/// Identifies a graphlet type: `k` nodes, `index` in the paper's ordering
/// (0-based: the paper's g³₁ is `GraphletId { k: 3, index: 0 }`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphletId {
    /// Number of nodes (3..=6 supported).
    pub k: u8,
    /// 0-based index within the k-node graphlets, paper ordering.
    pub index: u8,
}

impl GraphletId {
    /// Construct, asserting the index is in range for `k`.
    pub fn new(k: u8, index: u8) -> Self {
        assert!(
            (index as usize) < num_graphlets(k as usize),
            "graphlet index {index} out of range for k={k}"
        );
        Self { k, index }
    }

    /// Human-readable name (e.g. "triangle", "4-path"); `g6_17`-style names
    /// for k = 6 where the paper assigns none.
    pub fn name(&self) -> &'static str {
        atlas::atlas(self.k as usize)[self.index as usize].name
    }
}

impl std::fmt::Display for GraphletId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}_{}", self.k, self.index + 1)
    }
}

/// Number of distinct k-node graphlets (k = 1..=6).
pub fn num_graphlets(k: usize) -> usize {
    match k {
        1 => 1,
        2 => 1,
        3 => 2,
        4 => 6,
        5 => 21,
        6 => 112,
        _ => panic!("num_graphlets: k={k} unsupported (1..=6)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display_uses_one_based_paper_numbering() {
        let id = GraphletId::new(3, 1);
        assert_eq!(id.to_string(), "g3_2");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn id_rejects_out_of_range() {
        let _ = GraphletId::new(4, 6);
    }

    #[test]
    fn graphlet_counts_match_the_paper() {
        // §2.1: "There are 2 different 3-node graphlets and 6 different
        // 4-node graphlets... 21 different 5-node graphlets... 112
        // different 6-node graphlets".
        assert_eq!(num_graphlets(3), 2);
        assert_eq!(num_graphlets(4), 6);
        assert_eq!(num_graphlets(5), 21);
        assert_eq!(num_graphlets(6), 112);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn k7_is_rejected() {
        num_graphlets(7);
    }
}
