//! Small graphs on up to 7 nodes encoded as edge bitmasks.
//!
//! A graph on `k` nodes is a `u32` whose bit `pair_index(i, j, k)` is set
//! iff edge `(i, j)` exists (`i < j`, C(7,2) = 21 bits max). Everything the
//! classifiers need — degrees, connectivity, permutation, canonical form —
//! is a few bit operations.

/// Maximum supported node count for mask-encoded graphs.
pub const MAX_K: usize = 7;

/// Index of pair `(i, j)` (`i < j`) within the upper-triangle bit layout
/// for a k-node graph.
#[inline]
pub fn pair_index(i: usize, j: usize, k: usize) -> usize {
    debug_assert!(i < j && j < k, "pair_index({i},{j},{k})");
    i * k - i * (i + 1) / 2 + (j - i - 1)
}

/// Number of node pairs, C(k, 2).
#[inline]
pub fn num_pairs(k: usize) -> usize {
    k * (k - 1) / 2
}

/// A labeled simple graph on `k ≤ 7` nodes, stored as an edge bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SmallGraph {
    k: u8,
    mask: u32,
}

impl SmallGraph {
    /// Empty graph on `k` nodes.
    pub fn empty(k: usize) -> Self {
        assert!((1..=MAX_K).contains(&k), "SmallGraph supports 1..={MAX_K} nodes, got {k}");
        Self { k: k as u8, mask: 0 }
    }

    /// From a raw mask (bits beyond C(k,2) must be zero).
    pub fn from_mask(k: usize, mask: u32) -> Self {
        assert!((1..=MAX_K).contains(&k));
        assert!(
            mask < (1u32 << num_pairs(k)) || num_pairs(k) == 32,
            "mask {mask:#x} out of range for k={k}"
        );
        Self { k: k as u8, mask }
    }

    /// From an explicit edge list.
    pub fn from_edges(k: usize, edges: &[(u8, u8)]) -> Self {
        let mut g = Self::empty(k);
        for &(a, b) in edges {
            g.add_edge(a as usize, b as usize);
        }
        g
    }

    /// Node count.
    #[inline]
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// Raw bitmask.
    #[inline]
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// Add edge `(i, j)`.
    #[inline]
    pub fn add_edge(&mut self, i: usize, j: usize) {
        assert!(i != j, "no self loops");
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        self.mask |= 1 << pair_index(i, j, self.k());
    }

    /// Whether edge `(i, j)` exists.
    #[inline]
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        if i == j {
            return false;
        }
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        self.mask & (1 << pair_index(i, j, self.k())) != 0
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// Degree of node `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.neighbors_bits(i).count_ones() as usize
    }

    /// Sorted (ascending) degree sequence.
    pub fn degree_sequence(&self) -> Vec<u8> {
        let mut d: Vec<u8> = (0..self.k()).map(|i| self.degree(i) as u8).collect();
        d.sort_unstable();
        d
    }

    /// Neighbors of `i` as a node bitmask (bit j set iff edge (i,j)).
    pub fn neighbors_bits(&self, i: usize) -> u8 {
        let mut bits = 0u8;
        for j in 0..self.k() {
            if j != i && self.has_edge(i, j) {
                bits |= 1 << j;
            }
        }
        bits
    }

    /// Whether the graph is connected (single node counts as connected).
    pub fn is_connected(&self) -> bool {
        let k = self.k();
        if k == 1 {
            return true;
        }
        let mut reached: u8 = 1; // start at node 0
        loop {
            let mut next = reached;
            for i in 0..k {
                if reached & (1 << i) != 0 {
                    next |= self.neighbors_bits(i);
                }
            }
            if next == reached {
                break;
            }
            reached = next;
        }
        reached == (1u8 << k) - 1
    }

    /// The graph relabeled by `perm`: the result has edge `(i, j)` iff
    /// `self` has edge `(perm[i], perm[j])`.
    pub fn permute(&self, perm: &[usize]) -> SmallGraph {
        debug_assert_eq!(perm.len(), self.k());
        let mut out = SmallGraph::empty(self.k());
        for i in 0..self.k() {
            for j in (i + 1)..self.k() {
                if self.has_edge(perm[i], perm[j]) {
                    out.add_edge(i, j);
                }
            }
        }
        out
    }

    /// Canonical form: the minimum mask over all k! relabelings. Two small
    /// graphs are isomorphic iff their canonical masks are equal.
    pub fn canonical_mask(&self) -> u32 {
        let mut best = u32::MAX;
        for perm in permutations(self.k()) {
            best = best.min(self.permute(perm).mask);
        }
        best
    }

    /// Edge list `(i, j)` with `i < j`.
    pub fn edges(&self) -> Vec<(u8, u8)> {
        let mut out = Vec::with_capacity(self.num_edges());
        for i in 0..self.k() {
            for j in (i + 1)..self.k() {
                if self.has_edge(i, j) {
                    out.push((i as u8, j as u8));
                }
            }
        }
        out
    }

    /// Per-node count of triangles through that node, sorted ascending.
    /// Used by the degree-signature classifier's tie-break.
    pub fn triangle_profile(&self) -> Vec<u8> {
        let k = self.k();
        let mut t = vec![0u8; k];
        for i in 0..k {
            for j in (i + 1)..k {
                if !self.has_edge(i, j) {
                    continue;
                }
                for l in (j + 1)..k {
                    if self.has_edge(i, l) && self.has_edge(j, l) {
                        t[i] += 1;
                        t[j] += 1;
                        t[l] += 1;
                    }
                }
            }
        }
        t.sort_unstable();
        t
    }
}

/// All permutations of `0..k`, cached per `k` (k ≤ 7 → at most 5040).
pub fn permutations(k: usize) -> impl Iterator<Item = &'static [usize]> {
    use std::sync::OnceLock;
    static CACHE: OnceLock<Vec<Vec<Vec<usize>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| {
        (0..=MAX_K)
            .map(|k| {
                let mut out = Vec::new();
                let mut items: Vec<usize> = (0..k).collect();
                heap_permutations(&mut items, k, &mut out);
                out
            })
            .collect()
    });
    cache[k].iter().map(|p| p.as_slice())
}

fn heap_permutations(items: &mut Vec<usize>, n: usize, out: &mut Vec<Vec<usize>>) {
    if n <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..n {
        heap_permutations(items, n - 1, out);
        if n.is_multiple_of(2) {
            items.swap(i, n - 1);
        } else {
            items.swap(0, n - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_index_layout_is_dense_and_unique() {
        for k in 2..=MAX_K {
            let mut seen = vec![false; num_pairs(k)];
            for i in 0..k {
                for j in (i + 1)..k {
                    let idx = pair_index(i, j, k);
                    assert!(!seen[idx], "collision at ({i},{j}) k={k}");
                    seen[idx] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn edge_basics() {
        let mut g = SmallGraph::empty(4);
        g.add_edge(2, 0);
        g.add_edge(1, 3);
        assert!(g.has_edge(0, 2) && g.has_edge(2, 0));
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(1, 1));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edges(), vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn degrees_and_sequence() {
        let g = SmallGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]); // star
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.degree_sequence(), vec![1, 1, 1, 3]);
    }

    #[test]
    fn connectivity() {
        assert!(SmallGraph::from_edges(3, &[(0, 1), (1, 2)]).is_connected());
        assert!(!SmallGraph::from_edges(3, &[(0, 1)]).is_connected());
        assert!(SmallGraph::empty(1).is_connected());
        assert!(!SmallGraph::empty(2).is_connected());
        // two disjoint edges on 4 nodes
        assert!(!SmallGraph::from_edges(4, &[(0, 1), (2, 3)]).is_connected());
    }

    #[test]
    fn permutation_group_action() {
        let g = SmallGraph::from_edges(3, &[(0, 1)]);
        // perm maps new label -> old label; [2,1,0] swaps 0 and 2
        let h = g.permute(&[2, 1, 0]);
        assert!(h.has_edge(1, 2));
        assert!(!h.has_edge(0, 1));
        // identity
        assert_eq!(g.permute(&[0, 1, 2]), g);
    }

    #[test]
    fn canonical_mask_is_isomorphism_invariant() {
        // a path 0-1-2-3 in two labelings
        let a = SmallGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let b = SmallGraph::from_edges(4, &[(2, 0), (0, 3), (3, 1)]);
        assert_eq!(a.canonical_mask(), b.canonical_mask());
        // ...and differs from the star
        let s = SmallGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_ne!(a.canonical_mask(), s.canonical_mask());
    }

    #[test]
    fn permutations_have_correct_count() {
        assert_eq!(permutations(3).count(), 6);
        assert_eq!(permutations(5).count(), 120);
        let unique: std::collections::HashSet<_> = permutations(4).collect();
        assert_eq!(unique.len(), 24);
    }

    #[test]
    fn triangle_profile_distinguishes() {
        let tri_tail = SmallGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(tri_tail.triangle_profile(), vec![0, 1, 1, 1]);
        let cycle = SmallGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(cycle.triangle_profile(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn from_mask_roundtrip() {
        let g = SmallGraph::from_edges(5, &[(0, 4), (1, 3)]);
        let h = SmallGraph::from_mask(5, g.mask());
        assert_eq!(g, h);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_mask_rejects_overflow_bits() {
        let _ = SmallGraph::from_mask(3, 0b1000);
    }

    #[test]
    #[should_panic(expected = "no self loops")]
    fn no_self_loops() {
        let mut g = SmallGraph::empty(3);
        g.add_edge(1, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Canonicalization is invariant under arbitrary relabeling.
        #[test]
        fn canonical_invariant_under_permutation(
            mask in 0u32..1024,
            perm_seed in 0usize..120,
        ) {
            let g = SmallGraph::from_mask(5, mask);
            let perm: Vec<usize> = permutations(5).nth(perm_seed).unwrap().to_vec();
            let h = g.permute(&perm);
            prop_assert_eq!(g.canonical_mask(), h.canonical_mask());
            // permutation preserves edge count, degree sequence, connectivity
            prop_assert_eq!(g.num_edges(), h.num_edges());
            prop_assert_eq!(g.degree_sequence(), h.degree_sequence());
            prop_assert_eq!(g.is_connected(), h.is_connected());
            prop_assert_eq!(g.triangle_profile(), h.triangle_profile());
        }
    }
}
