//! The degree-signature classifier (paper §5, after GUISE \[6\]).
//!
//! The paper identifies sample types by comparing the subgraph's
//! degree-signature against precomputed signatures — cheaper than a full
//! isomorphism test in their C++ setting. In this workspace the canonical
//! table of [`crate::canon`] is already O(1), so this module exists to
//! (a) reproduce the paper's §5 machinery faithfully and (b) serve as an
//! independent implementation that cross-validates the tables.
//!
//! Degree sequences alone do **not** separate all 21 five-node graphlets
//! (see `degree_sequence_alone_is_ambiguous_for_k5`), so — like GUISE's
//! extended signatures — the signature here is the pair
//! (sorted degree sequence, sorted per-node triangle counts), which the
//! tests prove is a perfect discriminator for k ≤ 5.

use crate::atlas::atlas;
use crate::mask::SmallGraph;
use crate::GraphletId;
use std::collections::HashMap;
use std::sync::OnceLock;

/// The signature: ascending degree sequence plus ascending per-node
/// triangle participation counts.
pub fn signature(g: &SmallGraph) -> (Vec<u8>, Vec<u8>) {
    (g.degree_sequence(), g.triangle_profile())
}

/// A degree-sequence + triangle-profile signature key.
type Signature = (Vec<u8>, Vec<u8>);

fn signature_map(k: usize) -> &'static HashMap<Signature, GraphletId> {
    static MAPS: [OnceLock<HashMap<Signature, GraphletId>>; 7] = [
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
    ];
    assert!((3..=5).contains(&k), "signature classifier supports k = 3..=5, got {k}");
    MAPS[k].get_or_init(|| {
        let mut map = HashMap::new();
        for info in atlas(k) {
            let rep = SmallGraph::from_mask(k, info.canonical_mask);
            let prev = map.insert(signature(&rep), info.id);
            assert!(prev.is_none(), "signature collision at k={k}: {:?} vs {:?}", prev, info.id);
        }
        map
    })
}

/// Classifies a connected small graph by its degree signature. Returns
/// `None` for disconnected inputs (checked, since a disconnected graph's
/// signature could shadow a graphlet's).
pub fn classify_by_signature(g: &SmallGraph) -> Option<GraphletId> {
    if !g.is_connected() {
        return None;
    }
    signature_map(g.k()).get(&signature(g)).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_mask;
    use crate::mask::num_pairs;

    #[test]
    fn signature_map_builds_without_collisions_k3_to_k5() {
        for k in 3..=5 {
            assert_eq!(signature_map(k).len(), crate::num_graphlets(k));
        }
    }

    #[test]
    fn signature_classifier_matches_canonical_tables() {
        for k in 3..=5 {
            for mask in 0u32..(1 << num_pairs(k)) {
                let g = SmallGraph::from_mask(k, mask);
                assert_eq!(
                    classify_by_signature(&g),
                    classify_mask(k, mask),
                    "k={k} mask={mask:#x}"
                );
            }
        }
    }

    #[test]
    fn degree_sequence_alone_is_ambiguous_for_k5() {
        // Demonstrates why the paper's signature needs more than degrees
        // for k = 5: at least two distinct graphlets share a degree
        // sequence.
        let mut seen: HashMap<Vec<u8>, u32> = HashMap::new();
        let mut collision = false;
        for info in atlas(5) {
            let rep = SmallGraph::from_mask(5, info.canonical_mask);
            if let Some(&other) = seen.get(&rep.degree_sequence()) {
                collision = true;
                assert_ne!(other, info.canonical_mask);
            }
            seen.insert(rep.degree_sequence(), info.canonical_mask);
        }
        assert!(
            collision,
            "expected at least one degree-sequence collision among 5-node graphlets"
        );
    }

    #[test]
    fn degree_sequence_alone_suffices_for_k3_k4() {
        for k in 3..=4 {
            let mut seen = std::collections::HashSet::new();
            for info in atlas(k) {
                let rep = SmallGraph::from_mask(k, info.canonical_mask);
                assert!(seen.insert(rep.degree_sequence()), "collision at k={k}");
            }
        }
    }

    #[test]
    fn disconnected_inputs_return_none() {
        let g = SmallGraph::from_edges(5, &[(0, 1), (2, 3)]);
        assert_eq!(classify_by_signature(&g), None);
    }

    #[test]
    #[should_panic(expected = "supports k = 3..=5")]
    fn k6_signatures_unsupported() {
        let g = SmallGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let _ = classify_by_signature(&g);
    }
}
