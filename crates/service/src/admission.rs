//! Admission control: a bounded job queue that sheds load as a typed
//! rejection instead of queuing unboundedly.
//!
//! The serving failure mode this prevents: a burst of submissions piles
//! onto a fixed worker pool, every job's latency grows without bound,
//! and by the time early jobs finish the late ones have blown their
//! deadlines anyway. Shedding at admission keeps the jobs that *are*
//! accepted schedulable, and the rejection carries an honest
//! `retry_after_hint` derived from the observed lease rate so clients
//! can back off intelligently rather than hammering.

use std::time::Duration;

/// The pure admission decision: compare incomplete jobs against the
/// configured bound.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Admission {
    /// Maximum incomplete (queued + in-flight) jobs the service holds.
    pub max_pending: usize,
}

impl Admission {
    /// Whether a new job fits under the bound right now.
    pub(crate) fn admits(&self, incomplete: usize) -> bool {
        incomplete < self.max_pending
    }

    /// How long a rejected client should wait before retrying: the time
    /// until the backlog drains one slot, estimated from the observed
    /// per-lease wall time. `incomplete / workers` leases must complete
    /// before the queue head moves, but one slot frees as soon as any
    /// job finishes, so the hint is one average *job's* remaining
    /// share — approximated as one full queue drain divided by the
    /// backlog, i.e. one lease round per worker. Clamped to
    /// `[1ms, 10s]` so a cold clock (no lease observed yet) still
    /// yields a usable hint.
    pub(crate) fn retry_after_hint(
        &self,
        incomplete: usize,
        workers: usize,
        clock: &LeaseClock,
    ) -> Duration {
        let per_lease = clock.average().unwrap_or(Duration::from_millis(5));
        let rounds_ahead = incomplete.div_ceil(workers.max(1)) as u32;
        let hint = per_lease.saturating_mul(rounds_ahead.max(1));
        hint.clamp(Duration::from_millis(1), Duration::from_secs(10))
    }
}

/// Exponential moving average of lease wall time — the service's one
/// piece of load telemetry, feeding the rejection hint and the service
/// stats.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LeaseClock {
    ema_secs: f64,
    observed: u64,
}

impl LeaseClock {
    /// Smoothing factor: ~20-lease memory, enough to ride out one slow
    /// lease without forgetting the steady state.
    const ALPHA: f64 = 0.1;

    /// Folds one completed lease's wall time into the average.
    pub(crate) fn observe(&mut self, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        self.ema_secs = if self.observed == 0 {
            secs
        } else {
            Self::ALPHA * secs + (1.0 - Self::ALPHA) * self.ema_secs
        };
        self.observed += 1;
    }

    /// The smoothed per-lease wall time (`None` before any lease).
    pub(crate) fn average(&self) -> Option<Duration> {
        (self.observed > 0).then(|| Duration::from_secs_f64(self.ema_secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_the_bound_exclusive() {
        let a = Admission { max_pending: 3 };
        assert!(a.admits(0));
        assert!(a.admits(2));
        assert!(!a.admits(3));
        assert!(!a.admits(100));
    }

    #[test]
    fn hint_is_clamped_and_positive_even_cold() {
        let a = Admission { max_pending: 8 };
        let cold = LeaseClock::default();
        let hint = a.retry_after_hint(8, 2, &cold);
        assert!(hint >= Duration::from_millis(1));
        assert!(hint <= Duration::from_secs(10));
    }

    #[test]
    fn hint_scales_with_backlog_and_observed_lease_time() {
        let a = Admission { max_pending: 64 };
        let mut clock = LeaseClock::default();
        clock.observe(Duration::from_millis(10));
        let shallow = a.retry_after_hint(2, 2, &clock);
        let deep = a.retry_after_hint(40, 2, &clock);
        assert!(deep > shallow, "deeper backlog must hint a longer wait");
        assert!(deep <= Duration::from_secs(10));
    }

    #[test]
    fn lease_clock_ema_tracks_and_smooths() {
        let mut clock = LeaseClock::default();
        assert_eq!(clock.average(), None);
        clock.observe(Duration::from_millis(100));
        assert_eq!(clock.average(), Some(Duration::from_millis(100)));
        // One outlier moves the average by at most ALPHA of the gap.
        clock.observe(Duration::from_millis(1100));
        let avg = clock.average().unwrap();
        assert!(avg > Duration::from_millis(100));
        assert!(avg < Duration::from_millis(300));
    }
}
